"""The sparse backend: compiled CSR operators, the operator cache, split/pool.

Contracts pinned here:

* classification — every registry op is compilable (``matvec``/``pre``) or
  an intentional counted fallback, consistent with ``INTENTIONAL_FALLBACKS``;
* the two-level operator cache — memory memoization returns the same CSR
  instance, disk archives round-trip, version/fingerprint mismatches
  recompile (and restamp) instead of loading, and meshes without a
  persistent disk identity never write operator files;
* decomposition stability — each compiled row sums in lane order, so owned
  rows of a rank-local mesh are bitwise identical to the global rows, and a
  split dispatch is bitwise identical to the unsplit one;
* the acceptance run — a 10-step Galewsky integration under ``sparse``
  agrees with ``numpy`` to <= 1e-12 serially, and split execution of every
  splittable pattern reproduces the serial sparse states bitwise.  (The
  4-rank pool leg lives in test_public_api.py's bitwise pool test, now
  parametrized over ``sparse``.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import default_registry, dispatch, use_placements
from repro.engine.backends import INTENTIONAL_FALLBACKS
from repro.engine.sparse import (
    OPERATOR_CACHE_VERSION,
    SPARSE_FALLBACK_OPS,
    classify_op,
    clear_operator_memory_cache,
    mesh_fingerprint,
    operator_cache_path,
    sparse_operator,
)
from repro.hybrid.executor import Placement
from repro.obs.metrics import MetricsRegistry, use_registry

# (op, Table I label, input point kinds) for every sparse-registered op.
_SPARSE_OPS = [
    ("flux_divergence", "A1", ("edge", "edge")),
    ("kinetic_energy", "A2", ("edge",)),
    ("cell_divergence", "A3", ("edge",)),
    ("velocity_reconstruction", "A4", ("edge",)),
    ("tangential_velocity", "B2", ("edge",)),
    ("cell_to_edge_mean", "D1", ("cell",)),
    ("vertex_from_cells_kite", "E1", ("cell",)),
    ("cell_from_vertices_kite", "F1", ("vertex",)),
    ("vertex_to_edge_mean", "G1", ("vertex",)),
    ("vertex_curl", "H1", ("edge",)),
    ("edge_gradient_of_cell", None, ("cell",)),
    ("edge_gradient_of_vertex", None, ("vertex",)),
    ("d2fdx2", "C1,C2", ("cell",)),
]


def _fields(mesh, kinds, rng):
    n = {"cell": mesh.nCells, "edge": mesh.nEdges, "vertex": mesh.nVertices}
    return tuple(rng.standard_normal(n[kind]) for kind in kinds)


@pytest.fixture()
def op_cache(tmp_path, monkeypatch):
    """Redirect the operator disk cache and clear memory around each test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_operator_memory_cache()
    yield tmp_path
    clear_operator_memory_cache()


class TestClassification:
    def test_every_op_classified(self):
        reg = default_registry()
        for op in reg.ops():
            assert classify_op(op) in ("matvec", "pre", "fallback")

    def test_classification_matches_registrations(self):
        reg = default_registry()
        for op in reg.ops():
            registered = "sparse" in reg.op(op).impls
            assert registered == (classify_op(op) != "fallback"), op

    def test_fallback_set_matches_whitelist(self):
        assert SPARSE_FALLBACK_OPS == INTENTIONAL_FALLBACKS["sparse"]

    def test_bilinear_ops_are_pre(self):
        assert classify_op("flux_divergence") == "pre"
        assert classify_op("kinetic_energy") == "pre"
        assert classify_op("cell_divergence") == "matvec"

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError, match="classification"):
            classify_op("no_such_op")


class TestFallback:
    def test_coriolis_falls_back_counted(self, mesh3, rng):
        """B1 is genuinely non-linear: it runs on the counted numpy path."""
        reg = default_registry()
        assert "sparse" not in reg.op("coriolis_edge_term").impls
        u, h, pv = _fields(mesh3, ("edge", "edge", "edge"), rng)
        metrics = MetricsRegistry()
        with use_registry(metrics):
            got = dispatch(
                "coriolis_edge_term", mesh3, u, h, pv, backend="sparse"
            )
        want = dispatch("coriolis_edge_term", mesh3, u, h, pv, backend="numpy")
        assert np.array_equal(got, want)
        (fallback,) = metrics.series("engine.fallback")
        assert fallback.tags == {"op": "coriolis_edge_term", "backend": "sparse"}
        assert fallback.value == 1.0
        (timer,) = metrics.series("engine.op")
        assert timer.tags["backend"] == "numpy"


class TestOperatorCache:
    def test_memory_memoization_returns_same_instance(self, mesh3, op_cache):
        a = sparse_operator(mesh3, "cell_divergence")
        b = sparse_operator(mesh3, "cell_divergence")
        assert a is b

    def test_disk_roundtrip(self, mesh3, op_cache):
        a = sparse_operator(mesh3, "cell_divergence", use_disk=True)
        path = operator_cache_path(mesh3, "cell_divergence")
        assert path.exists()
        clear_operator_memory_cache()
        b = sparse_operator(mesh3, "cell_divergence", use_disk=True)
        assert a is not b
        # Loaded archives preserve the exact storage (lane) order, not just
        # the matrix values — the order is the bitwise contract.
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_version_mismatch_recompiles_and_restamps(self, mesh3, op_cache):
        a = sparse_operator(mesh3, "vertex_curl", use_disk=True)
        path = operator_cache_path(mesh3, "vertex_curl")
        stale = dict(np.load(path))
        stale["format_version"] = np.array(OPERATOR_CACHE_VERSION + 1)
        np.savez_compressed(path, **stale)
        clear_operator_memory_cache()
        b = sparse_operator(mesh3, "vertex_curl", use_disk=True)
        assert np.array_equal(a.data, b.data)
        with np.load(path) as d:
            assert int(d["format_version"]) == OPERATOR_CACHE_VERSION

    def test_unstamped_archive_recompiles(self, mesh3, op_cache):
        sparse_operator(mesh3, "vertex_curl", use_disk=True)
        path = operator_cache_path(mesh3, "vertex_curl")
        stale = dict(np.load(path))
        del stale["format_version"]
        np.savez_compressed(path, **stale)
        clear_operator_memory_cache()
        sparse_operator(mesh3, "vertex_curl", use_disk=True)
        with np.load(path) as d:
            assert int(d["format_version"]) == OPERATOR_CACHE_VERSION

    def test_fingerprint_mismatch_recompiles(self, mesh3, op_cache):
        sparse_operator(mesh3, "cell_divergence", use_disk=True)
        path = operator_cache_path(mesh3, "cell_divergence")
        stale = dict(np.load(path))
        stale["fingerprint"] = np.array("deadbeef")
        stale["data"] = np.zeros_like(stale["data"])  # poison the payload
        np.savez_compressed(path, **stale)
        clear_operator_memory_cache()
        m = sparse_operator(mesh3, "cell_divergence", use_disk=True)
        assert np.any(m.data != 0.0)  # recompiled, not the poisoned load

    def test_rank_local_meshes_stay_memory_only(self, mesh3, op_cache):
        from repro.parallel.halo import build_local_mesh
        from repro.parallel.partition import partition_cells

        owner = partition_cells(mesh3, 2, method="kmeans")
        lm = build_local_mesh(mesh3, owner, 0, halo_layers=2)
        rng = np.random.default_rng(0)
        dispatch("cell_divergence", lm, rng.standard_normal(lm.nEdges),
                 backend="sparse")
        assert not list((op_cache / "operators").glob("*.npz"))

    def test_disk_policy_follows_mesh_identity(self, op_cache):
        from repro.mesh import cached_mesh, clear_memory_cache

        clear_memory_cache()
        nodisk = cached_mesh(2, lloyd_iterations=0, use_disk=False)
        sparse_operator(nodisk, "vertex_curl")
        assert not list((op_cache / "operators").glob("*.npz"))
        disk = cached_mesh(2, lloyd_iterations=0, use_disk=True)
        sparse_operator(disk, "vertex_curl")
        assert operator_cache_path(disk, "vertex_curl").exists()
        clear_memory_cache()

    def test_fingerprint_is_content_keyed(self, mesh3, mesh4):
        assert mesh_fingerprint(mesh3) != mesh_fingerprint(mesh4)
        assert mesh_fingerprint(mesh3) == mesh_fingerprint(mesh3)


class TestDecompositionStability:
    @pytest.mark.parametrize(
        "op,label,kinds", _SPARSE_OPS, ids=[o for o, _, _ in _SPARSE_OPS]
    )
    def test_owned_rows_bitwise_on_local_mesh(self, mesh3, rng, op, label, kinds):
        """Lane-ordered CSR rows make local owned rows bitwise == global."""
        from repro.parallel.halo import build_local_mesh
        from repro.parallel.partition import partition_cells

        owner = partition_cells(mesh3, 4, method="kmeans")
        lm = build_local_mesh(mesh3, owner, 0, halo_layers=2)
        gmaps = {
            "cell": lm.cells_global,
            "edge": lm.edges_global,
            "vertex": lm.vertices_global,
        }
        fields = _fields(mesh3, kinds, rng)
        local_fields = tuple(
            f[gmaps[k]] for f, k in zip(fields, kinds)
        )
        g = dispatch(op, mesh3, *fields, backend="sparse")
        l = dispatch(op, lm, *local_fields, backend="sparse")
        if op == "d2fdx2":
            # The fused C1,C2 sweep returns the two per-*edge* derivative
            # arrays (its C-kind metadata names the gathered cell points).
            out_kind = "edge"
        else:
            entry = default_registry().op(op)
            out_kind = str(entry.output_point.name).lower()
        n_owned = {
            "cell": lm.n_owned_cells,
            "edge": lm.n_owned_edges,
            "vertex": lm.n_owned_vertices,
        }[out_kind]
        gmap = gmaps[out_kind]
        g_arrays = g if isinstance(g, tuple) else (g,)
        l_arrays = l if isinstance(l, tuple) else (l,)
        for ga, la in zip(g_arrays, l_arrays):
            assert np.array_equal(
                np.asarray(ga)[gmap[:n_owned]], np.asarray(la)[:n_owned]
            )

    @pytest.mark.parametrize(
        "op,label,kinds",
        [(o, lab, k) for o, lab, k in _SPARSE_OPS if lab not in (None, "C1,C2")],
        ids=[o for o, lab, _ in _SPARSE_OPS if lab not in (None, "C1,C2")],
    )
    def test_split_dispatch_bitwise(self, mesh3, rng, op, label, kinds):
        """CSR row slicing keeps split execution bitwise == unsplit."""
        fields = _fields(mesh3, kinds, rng)
        want = np.asarray(dispatch(op, mesh3, *fields, backend="sparse"))
        placement = Placement(device="split", cpu_fraction=0.37)
        with use_placements({label: placement}):
            got = np.asarray(dispatch(op, mesh3, *fields, backend="sparse"))
        assert np.array_equal(got, want)


class TestAcceptanceRun:
    """10 Galewsky RK steps: sparse vs numpy <= 1e-12; split bitwise."""

    @pytest.fixture(scope="class")
    def galewsky_states(self, mesh3):
        from repro import api

        case = api.resolve_case("galewsky")
        dt = api.suggested_dt(mesh3, case, 9.80616, cfl=0.5)
        out = {}
        for backend in ("numpy", "sparse"):
            result = api.run(
                case, mesh=mesh3,
                config=api.SWConfig(dt=dt, backend=backend), steps=10,
            )
            out[backend] = (result.state.h, result.state.u)
        out["dt"] = dt
        return out

    def test_serial_agrees_with_numpy(self, galewsky_states):
        h_ref, u_ref = galewsky_states["numpy"]
        h, u = galewsky_states["sparse"]
        assert np.max(np.abs(h - h_ref)) / np.max(np.abs(h_ref)) <= 1e-12
        assert np.max(np.abs(u - u_ref)) / np.max(np.abs(u_ref)) <= 1e-12

    def test_split_run_bitwise_equals_serial(self, mesh3, galewsky_states):
        from repro import api

        case = api.resolve_case("galewsky")
        labels = [lab for _, lab, _ in _SPARSE_OPS if lab not in (None, "C1,C2")]
        placements = {
            lab: Placement(device="split", cpu_fraction=0.43) for lab in labels
        }
        with use_placements(placements):
            result = api.run(
                case, mesh=mesh3,
                config=api.SWConfig(dt=galewsky_states["dt"], backend="sparse"),
                steps=10,
            )
        h_ref, u_ref = galewsky_states["sparse"]
        assert np.array_equal(result.state.h, h_ref)
        assert np.array_equal(result.state.u, u_ref)
