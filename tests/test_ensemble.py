"""Batched ensemble engine: bitwise member identity and divergence isolation.

The acceptance contract of the ensemble layer is sharp: member ``k`` of a
batched lockstep run must be **bitwise identical** to a serial run of the
same member — same seed, same perturbation, same steps — under both the
unfused sparse backend and the fused plan executor.  Everything else
(quarantine, detach, summaries) is checked around that invariant: a
diverging member must not perturb the healthy members' bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SWConfig, resolve_case, suggested_dt
from repro.constants import GRAVITY
from repro.ensemble import (
    BatchedIntegrator,
    ensemble_initial_states,
    member_initial_state,
    member_rng,
)
from repro.ensemble.run import EnsembleRun, run_ensemble
from repro.resilience.guards import member_finite_mask
from repro.swm.model import ShallowWaterModel
from repro.swm.state import State

SEED = 2015
AMPLITUDE = 1e-6
STEPS = 5
N = 3


@pytest.fixture(scope="module")
def case():
    return resolve_case("galewsky")


@pytest.fixture(scope="module")
def dt(mesh3, case):
    return suggested_dt(mesh3, case, GRAVITY, cfl=0.5)


def _f_vertex(mesh, case, cfg=None):
    if case.coriolis is not None:
        return case.coriolis(mesh.metrics.xVertex)
    cfg = cfg if cfg is not None else SWConfig(dt=600.0)
    return cfg.coriolis(mesh.metrics.latVertex)


def _config(dt, **extra) -> SWConfig:
    base = dict(
        dt=dt, backend="sparse", ensemble=N,
        ensemble_seed=SEED, ensemble_amplitude=AMPLITUDE,
    )
    base.update(extra)
    return SWConfig(**base)


def _serial_member(mesh, case, dt, k, **extra):
    """The reference: one member integrated through the serial model."""
    cfg = SWConfig(dt=dt, backend="sparse", **extra)
    state, b = member_initial_state(mesh, case, k, SEED, AMPLITUDE)
    model = ShallowWaterModel.from_state(
        mesh, cfg, case, state, b, _f_vertex(mesh, case, cfg)
    )
    return model.run(steps=STEPS, invariant_interval=1)


# ------------------------------------------------------------------ members
class TestMemberICs:
    def test_streams_are_independent_and_deterministic(self):
        a = member_rng(SEED, 0).standard_normal(8)
        b = member_rng(SEED, 1).standard_normal(8)
        assert not np.array_equal(a, b)
        assert np.array_equal(a, member_rng(SEED, 0).standard_normal(8))

    def test_builder_paths_agree_bitwise(self, mesh3, case):
        states, b = ensemble_initial_states(mesh3, case, N, SEED, AMPLITUDE)
        for k in range(N):
            ref, b_ref = member_initial_state(mesh3, case, k, SEED, AMPLITUDE)
            assert np.array_equal(states[k].h, ref.h)
            assert np.array_equal(states[k].u, ref.u)
            assert np.array_equal(b, b_ref)

    def test_zero_amplitude_members_identical(self, mesh3, case):
        states, _ = ensemble_initial_states(mesh3, case, 2, SEED, 0.0)
        assert np.array_equal(states[0].h, states[1].h)

    def test_width_must_be_positive(self, mesh3, case):
        with pytest.raises(ValueError, match="n_members must be >= 1"):
            ensemble_initial_states(mesh3, case, 0, SEED, AMPLITUDE)


class TestBatchedState:
    def test_stack_member_round_trip(self, mesh3, case):
        states, _ = ensemble_initial_states(mesh3, case, N, SEED, AMPLITUDE)
        packed = State.stack(states)
        assert packed.n_members == N
        assert packed.h.shape == (mesh3.nCells, N)
        for k in range(N):
            got = packed.member(k)
            assert np.array_equal(got.h, states[k].h)
            assert np.array_equal(got.u, states[k].u)
            assert got.h.flags.c_contiguous

    def test_member_requires_batch(self, mesh3, case):
        states, _ = ensemble_initial_states(mesh3, case, 1, SEED, AMPLITUDE)
        with pytest.raises(ValueError, match="batched state"):
            states[0].member(0)

    def test_finite_mask_flags_only_the_poisoned_column(self, mesh3, case):
        states, _ = ensemble_initial_states(mesh3, case, N, SEED, AMPLITUDE)
        states[1].u[3] = np.nan
        mask = member_finite_mask(State.stack(states))
        assert mask.tolist() == [False, True, False]


# ---------------------------------------------------------- bitwise identity
class TestBitwiseMemberIdentity:
    @pytest.mark.parametrize("plan", [False, True], ids=["sparse", "plan"])
    def test_lockstep_member_equals_serial_run(self, mesh3, case, dt, plan):
        """The acceptance criterion: every member, both plan modes."""
        ens = run_ensemble(
            mesh3, case, _config(dt, plan=plan), STEPS, invariant_interval=1
        )
        for k in range(N):
            ref = _serial_member(mesh3, case, dt, k, plan=plan)
            got = ens.members[k]
            assert np.array_equal(got.state.h, ref.state.h), f"member {k} h"
            assert np.array_equal(got.state.u, ref.state.u), f"member {k} u"
            assert np.array_equal(
                got.reconstruction.uReconstructZonal,
                ref.reconstruction.uReconstructZonal,
            )
            assert [i.mass for i in got.invariant_history] == [
                i.mass for i in ref.invariant_history
            ]

    def test_serial_mode_equals_lockstep_mode(self, mesh3, case, dt):
        lock = run_ensemble(mesh3, case, _config(dt), STEPS)
        ser = run_ensemble(
            mesh3, case, _config(dt, ensemble_mode="serial"), STEPS
        )
        for a, b in zip(lock.members, ser.members):
            assert np.array_equal(a.state.h, b.state.h)
            assert np.array_equal(a.state.u, b.state.u)

    def test_api_wrapper_agrees(self, mesh3, dt):
        from repro.api import run_ensemble as api_run_ensemble

        via_api = api_run_ensemble(
            "galewsky", mesh=mesh3, config=_config(dt), steps=STEPS
        )
        direct = run_ensemble(
            mesh3, resolve_case("galewsky"), _config(dt), STEPS
        )
        for a, b in zip(via_api.members, direct.members):
            assert np.array_equal(a.state.h, b.state.h)


# -------------------------------------------------------- divergence handling
class TestDivergenceIsolation:
    def test_quarantined_member_leaves_healthy_bits_alone(self, mesh3, case, dt):
        states, _ = ensemble_initial_states(mesh3, case, N, SEED, AMPLITUDE)
        states[1].h[:] = np.nan
        res = EnsembleRun(
            mesh3, case, _config(dt, guard_policy="halt"),
            initial_states=states,
        ).execute(STEPS)
        assert [v.status for v in res.verdicts] == ["ok", "diverged", "ok"]
        assert res.verdicts[1].failed_step == 0
        assert res.members[1] is None
        assert res.survivors() == [0, 2]
        clean = run_ensemble(mesh3, case, _config(dt), STEPS)
        for k in (0, 2):
            assert np.array_equal(res.members[k].state.h, clean.members[k].state.h)
            assert np.array_equal(res.members[k].state.u, clean.members[k].state.u)

    def test_nonpositive_thickness_trips_the_e1_guard(self, mesh3, case, dt):
        states, _ = ensemble_initial_states(mesh3, case, N, SEED, AMPLITUDE)
        states[2].h *= -1.0  # finite but unphysical: caught by E1, not isfinite
        res = EnsembleRun(
            mesh3, case, _config(dt, guard_policy="halt"),
            initial_states=states,
        ).execute(STEPS)
        assert res.verdicts[2].status == "diverged"
        assert res.verdicts[0].status == res.verdicts[1].status == "ok"

    def test_rollback_detaches_member_to_serial_continuation(self, mesh3, case, dt):
        """A clean snapshot detaches into a finished serial run at dt/2."""
        run = EnsembleRun(mesh3, case, _config(dt, guard_policy="rollback"))
        states, b = ensemble_initial_states(mesh3, case, N, SEED, AMPLITUDE)
        f = _f_vertex(mesh3, case)
        detail = [""] * N
        res = run._detach(
            1, 2, State.stack(states), b, f, STEPS, 0, detail
        )
        assert res is not None and res.steps == STEPS - 2
        assert "dt=" in detail[1] and "step 2" in detail[1]

    def test_rollback_of_poisoned_ic_reports_failed_continuation(
        self, mesh3, case, dt
    ):
        states, _ = ensemble_initial_states(mesh3, case, N, SEED, AMPLITUDE)
        states[2].h *= -1.0
        res = EnsembleRun(
            mesh3, case, _config(dt, guard_policy="rollback"),
            initial_states=states,
        ).execute(STEPS)
        assert res.verdicts[2].status == "diverged"
        assert "continuation failed" in res.verdicts[2].detail

    def test_without_mask_the_batch_raises_like_serial(self, mesh3, case, dt):
        states, _ = ensemble_initial_states(mesh3, case, 2, SEED, AMPLITUDE)
        states[0].h *= -1.0
        cfg = _config(dt, ensemble=2)
        integ = BatchedIntegrator(
            mesh3, cfg, np.zeros(mesh3.nCells), _f_vertex(mesh3, case), 2
        )
        with pytest.raises(FloatingPointError, match="non-positive h_vertex"):
            integ.diagnostics_for(State.stack(states))


# ----------------------------------------------------------- driver plumbing
class TestEnsembleRunSurface:
    def test_requires_ensemble_config(self, mesh3, case, dt):
        with pytest.raises(ValueError, match="config.ensemble >= 1"):
            EnsembleRun(mesh3, case, SWConfig(dt=dt, backend="sparse"))

    def test_explicit_states_must_match_width(self, mesh3, case, dt):
        states, _ = ensemble_initial_states(mesh3, case, 2, SEED, AMPLITUDE)
        with pytest.raises(ValueError, match="2 members"):
            EnsembleRun(mesh3, case, _config(dt), initial_states=states)

    def test_batched_integrator_rejects_non_sparse(self, mesh3, case, dt):
        with pytest.raises(ValueError, match="backend='sparse'"):
            BatchedIntegrator(
                mesh3, SWConfig(dt=dt), np.zeros(mesh3.nCells),
                _f_vertex(mesh3, case), 2,
            )

    def test_summary_table_lists_every_member(self, mesh3, case, dt):
        res = run_ensemble(mesh3, case, _config(dt), STEPS, invariant_interval=1)
        table = res.summary_table()
        lines = table.splitlines()
        assert "member" in lines[0] and "mass_drift" in lines[0]
        assert len(lines) == 2 + N
        assert all("ok" in line for line in lines[2:])

    def test_mean_invariants_average_the_survivors(self, mesh3, case, dt):
        res = run_ensemble(mesh3, case, _config(dt), STEPS, invariant_interval=1)
        mean = res.mean_invariants()
        assert len(mean) == STEPS + 1
        expect = float(np.mean(
            [m.invariant_history[0].mass for m in res.members]
        ))
        assert mean[0].mass == expect


class TestConfigKnobs:
    def test_rejects_negative_width(self, dt):
        with pytest.raises(ValueError, match="ensemble must be a non-negative"):
            SWConfig(dt=600.0, ensemble=-1)

    def test_rejects_negative_amplitude(self, dt):
        with pytest.raises(ValueError, match="relative thickness perturbation"):
            SWConfig(dt=600.0, ensemble_amplitude=-1e-6)

    def test_rejects_unknown_mode(self, dt):
        with pytest.raises(ValueError, match="ensemble_mode"):
            SWConfig(dt=600.0, ensemble_mode="async")

    def test_ensemble_requires_sparse_backend(self, dt):
        with pytest.raises(ValueError, match="backend='sparse'"):
            SWConfig(dt=600.0, ensemble=2)

    def test_ensemble_requires_serial_executor(self, dt):
        with pytest.raises(ValueError, match="parallel='serial'"):
            SWConfig(
                dt=600.0, ensemble=2, backend="sparse",
                parallel="pool", ranks=2,
            )
