"""Unit tests of the mesh metric fields (areas, lengths, frames, kites)."""

from __future__ import annotations

import numpy as np

from repro.constants import EARTH_RADIUS


class TestAreas:
    def test_cell_areas_partition_sphere(self, mesh3):
        assert np.isclose(np.sum(mesh3.areaCell), mesh3.sphere_area, rtol=1e-10)

    def test_triangle_areas_partition_sphere(self, mesh3):
        assert np.isclose(np.sum(mesh3.areaTriangle), mesh3.sphere_area, rtol=1e-10)

    def test_kites_partition_triangles(self, mesh3):
        kite_sum = np.sum(mesh3.kiteAreasOnVertex, axis=1)
        assert np.allclose(kite_sum, mesh3.areaTriangle, rtol=1e-9)

    def test_kites_partition_cells(self, mesh3):
        # Summing each vertex's kite into its cell recovers the cell areas.
        conn, met = mesh3.connectivity, mesh3.metrics
        acc = np.zeros(mesh3.nCells)
        for v in range(mesh3.nVertices):
            for j in range(3):
                acc[conn.cellsOnVertex[v, j]] += met.kiteAreasOnVertex[v, j]
        assert np.allclose(acc, met.areaCell, rtol=1e-9)

    def test_all_positive(self, mesh3):
        assert np.all(mesh3.areaCell > 0)
        assert np.all(mesh3.areaTriangle > 0)
        assert np.all(mesh3.kiteAreasOnVertex > 0)

    def test_diamond_tiling(self, mesh3):
        diamond = np.sum(mesh3.dcEdge * mesh3.dvEdge) / 2.0
        assert np.isclose(diamond, mesh3.sphere_area, rtol=2e-2)


class TestLengths:
    def test_positive(self, mesh3):
        assert np.all(mesh3.dcEdge > 0)
        assert np.all(mesh3.dvEdge > 0)

    def test_dc_matches_cell_centres(self, mesh3):
        from repro.geometry import arc_length

        conn, met = mesh3.connectivity, mesh3.metrics
        e = 37
        c0, c1 = conn.cellsOnEdge[e]
        expected = EARTH_RADIUS * arc_length(met.xCell[c0], met.xCell[c1])
        assert np.isclose(met.dcEdge[e], expected)

    def test_quasi_uniform(self, mesh3):
        assert mesh3.dcEdge.max() / mesh3.dcEdge.min() < 2.0


class TestEdgeFrames:
    def test_orthonormal(self, mesh3):
        met = mesh3.metrics
        assert np.allclose(np.linalg.norm(met.edgeNormal, axis=1), 1.0)
        assert np.allclose(np.linalg.norm(met.edgeTangent, axis=1), 1.0)
        assert np.allclose(
            np.sum(met.edgeNormal * met.edgeTangent, axis=1), 0.0, atol=1e-13
        )

    def test_tangent_plane(self, mesh3):
        met = mesh3.metrics
        assert np.allclose(np.sum(met.edgeNormal * met.xEdge, axis=1), 0.0, atol=1e-13)
        assert np.allclose(np.sum(met.edgeTangent * met.xEdge, axis=1), 0.0, atol=1e-13)

    def test_right_handed(self, mesh3):
        met = mesh3.metrics
        t = np.cross(met.xEdge, met.edgeNormal)
        assert np.allclose(t, met.edgeTangent, atol=1e-12)

    def test_normal_points_c0_to_c1(self, mesh3):
        conn, met = mesh3.connectivity, mesh3.metrics
        chord = met.xCell[conn.cellsOnEdge[:, 1]] - met.xCell[conn.cellsOnEdge[:, 0]]
        assert np.all(np.sum(chord * met.edgeNormal, axis=1) > 0)

    def test_tangent_points_v0_to_v1(self, mesh3):
        conn, met = mesh3.connectivity, mesh3.metrics
        chord = met.xVertex[conn.verticesOnEdge[:, 1]] - met.xVertex[conn.verticesOnEdge[:, 0]]
        assert np.all(np.sum(chord * met.edgeTangent, axis=1) > 0)

    def test_angle_edge(self, mesh3):
        from repro.geometry import tangent_basis

        met = mesh3.metrics
        east, north = tangent_basis(met.xEdge)
        reconstructed = (
            np.cos(met.angleEdge)[:, None] * east
            + np.sin(met.angleEdge)[:, None] * north
        )
        assert np.allclose(reconstructed, met.edgeNormal, atol=1e-12)


class TestPositions:
    def test_edge_on_midpoint_arc(self, mesh3):
        conn, met = mesh3.connectivity, mesh3.metrics
        mid = met.xCell[conn.cellsOnEdge[:, 0]] + met.xCell[conn.cellsOnEdge[:, 1]]
        mid /= np.linalg.norm(mid, axis=1, keepdims=True)
        assert np.allclose(met.xEdge, mid, atol=1e-14)

    def test_lonlat_consistent(self, mesh3):
        from repro.geometry import lonlat_to_xyz

        met = mesh3.metrics
        assert np.allclose(lonlat_to_xyz(met.lonCell, met.latCell), met.xCell, atol=1e-12)
        assert np.allclose(
            lonlat_to_xyz(met.lonVertex, met.latVertex), met.xVertex, atol=1e-12
        )
