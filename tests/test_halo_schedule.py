"""The comm-avoiding halo schedule (repro.dataflow.schedule + runners).

Three layers of evidence that eliding and thinning sync points is safe:

* **Derivation units** — the schedule derived from the Figure 4 step
  graph elides exactly the points whose halo the graph proves clean, and
  sizes the survivors (variables, ring depth) from the config.
* **Lint** — every sync point the static schedule runs is either kept by
  the dataflow derivation for *some* config, or explicitly whitelisted
  with a written rationale.  No unexplained synchronization.
* **Skip-refresh oracle** — on random (non-icosahedral) SCVTs and a grid
  of configs, brute force every ``(sync point, field)`` pair by skipping
  exactly that halo refresh in the static lockstep runner: every pair
  whose skip perturbs the owned state must be kept by the derived
  schedule (``needed ⊆ derived``).

Plus the end-to-end contract: the lockstep runner under the dataflow
schedule stays bitwise identical to serial while exchanging half the sync
points and a fraction of the bytes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.dataflow.schedule import (
    STATIC_SYNC_WHITELIST,
    SYNC_POINT_NAMES,
    derive_halo_schedule,
    halo_schedule_for,
    static_halo_schedule,
)
from repro.geometry import lloyd_relax, normalize
from repro.mesh import Mesh
from repro.parallel import (
    DecomposedShallowWater,
    build_local_mesh,
    halo_layers_required,
    partition_cells,
)
from repro.parallel.halo import (
    exchange_bytes,
    ring_halo_indices,
    schedule_exchange_bytes,
)
from repro.swm import ShallowWaterModel, SWConfig, steady_zonal_flow, suggested_dt

#: The config grid the lint and oracle sweep: thickness advection order
#: x APVM upwinding x viscosity (the dimensions that change the stencil
#: footprint), plus the advection-only degenerate case.
CONFIG_GRID = [
    dict(thickness_adv_order=2),
    dict(thickness_adv_order=3, apvm_upwinding=0.5),
    dict(thickness_adv_order=4),
    dict(thickness_adv_order=2, viscosity=1.0e4),
    dict(thickness_adv_order=4, apvm_upwinding=0.5, viscosity=1.0e4),
    dict(advection_only=True),
]


def _cfg(**kw) -> SWConfig:
    return SWConfig(dt=60.0, **kw)


class TestDerivation:
    def test_static_keeps_all_eight_points(self):
        sched = static_halo_schedule(_cfg())
        assert sched.mode == "static"
        assert tuple(p.name for p in sched.points) == SYNC_POINT_NAMES
        assert sched.elided == ()
        assert sched.exchanges_per_step == 8

    @pytest.mark.parametrize("kw", CONFIG_GRID, ids=str)
    def test_dataflow_elides_every_pre_point(self, kw):
        sched = derive_halo_schedule(_cfg(**kw))
        assert sched.mode == "dataflow"
        # The RK substate entering compute_tend was exchanged when it was
        # produced (post@s{k-1}); the accepted state entering stage 1 was
        # exchanged at the previous post@s4 (or seeded globally).
        assert set(sched.elided) >= {"pre@s1", "pre@s2", "pre@s3", "pre@s4"}
        assert sched.exchanges_per_step <= 4
        assert sched.entry("post@s4") is not None  # h is always dirty

    def test_advection_only_drops_velocity_everywhere(self):
        sched = derive_halo_schedule(_cfg(advection_only=True))
        for point in sched.points:
            assert point.fields == ("h",)

    def test_dynamics_keeps_both_fields_at_post_points(self):
        sched = derive_halo_schedule(_cfg(thickness_adv_order=4))
        for point in sched.points:
            assert point.fields == ("h", "u")

    @pytest.mark.parametrize("order,apvm", [(2, 0.0), (3, 0.5), (4, 0.0)])
    def test_ring_depth_matches_stencil_requirement(self, order, apvm):
        cfg = _cfg(thickness_adv_order=order, apvm_upwinding=apvm)
        required = halo_layers_required(order, apvm != 0.0)
        for sched in (static_halo_schedule(cfg), derive_halo_schedule(cfg)):
            assert {p.rings for p in sched.points} == {required}

    def test_halo_schedule_for_dispatches_on_config(self):
        assert halo_schedule_for(_cfg()).mode == "static"
        assert halo_schedule_for(_cfg(halo_schedule="dataflow")).mode == "dataflow"

    def test_config_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="halo_schedule"):
            _cfg(halo_schedule="psychic")


class TestStaticScheduleLint:
    """No sync point without a justification.

    Every point the static schedule executes must either be *provably
    needed* (the dataflow derivation keeps it for at least one config in
    the grid) or carry an explicit whitelist rationale explaining why the
    static schedule runs it anyway.
    """

    def test_every_static_point_justified_or_whitelisted(self):
        derived_somewhere = set()
        for kw in CONFIG_GRID:
            sched = derive_halo_schedule(_cfg(**kw))
            derived_somewhere.update(p.name for p in sched.points)
        for name in SYNC_POINT_NAMES:
            assert name in derived_somewhere or name in STATIC_SYNC_WHITELIST, (
                f"static sync point {name!r} is neither kept by the dataflow "
                f"derivation for any config nor whitelisted with a rationale"
            )

    def test_whitelist_entries_carry_rationales(self):
        for name, rationale in STATIC_SYNC_WHITELIST.items():
            assert name in SYNC_POINT_NAMES
            assert isinstance(rationale, str) and len(rationale.split()) >= 5

    def test_whitelist_is_not_stale(self):
        """A point the derivation keeps for every config needs no excuse."""
        always_kept = set(SYNC_POINT_NAMES)
        for kw in CONFIG_GRID:
            sched = derive_halo_schedule(_cfg(**kw))
            always_kept &= {p.name for p in sched.points}
        assert not always_kept & set(STATIC_SYNC_WHITELIST)


class TestRingIndices:
    def test_ring_subset_matches_shallower_local_mesh(self, mesh3):
        owner = partition_cells(mesh3, 3)
        for r in range(3):
            deep = build_local_mesh(mesh3, owner, r, halo_layers=3)
            shallow = build_local_mesh(mesh3, owner, r, halo_layers=2)
            cell_idx, edge_idx = ring_halo_indices(deep, 2)
            assert np.array_equal(
                np.sort(deep.cells_global[cell_idx]),
                np.sort(shallow.cells_global[shallow.n_owned_cells :]),
            )
            assert np.array_equal(
                np.sort(deep.edges_global[edge_idx]),
                np.sort(shallow.edges_global[shallow.n_owned_edges :]),
            )

    def test_full_depth_rings_cover_the_whole_halo(self, mesh3):
        owner = partition_cells(mesh3, 2)
        lm = build_local_mesh(mesh3, owner, 0, halo_layers=3)
        cell_idx, edge_idx = ring_halo_indices(lm, 3)
        assert cell_idx.size == lm.n_halo_cells
        assert edge_idx.size == lm.n_halo_edges

    def test_schedule_bytes_static_vs_dataflow(self, mesh3):
        cfg = _cfg(thickness_adv_order=4)
        owner = partition_cells(mesh3, 2)
        layers = halo_layers_required(4, False)
        meshes = [
            build_local_mesh(mesh3, owner, r, halo_layers=layers)
            for r in range(2)
        ]
        static_bytes = schedule_exchange_bytes(meshes, static_halo_schedule(cfg))
        assert static_bytes == 8 * exchange_bytes(meshes)
        dataflow_bytes = schedule_exchange_bytes(meshes, derive_halo_schedule(cfg))
        assert 0 < dataflow_bytes <= static_bytes / 2


class TestLockstepDataflow:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(thickness_adv_order=2),
            dict(thickness_adv_order=4),
            dict(thickness_adv_order=3, apvm_upwinding=0.5, viscosity=1.0e4),
        ],
        ids=str,
    )
    def test_bitwise_equal_to_serial_with_half_the_exchanges(self, mesh3, kw):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5), **kw)
        model = ShallowWaterModel(mesh3, cfg)
        model.initialize(case)
        serial = model.run(steps=3)

        dec = DecomposedShallowWater(
            mesh3, 3, case, dataclasses.replace(cfg, halo_schedule="dataflow")
        )
        res = dec.run(3)
        assert np.array_equal(res.state.h, serial.state.h)
        assert np.array_equal(res.state.u, serial.state.u)
        assert dec.exchange_count == dec.schedule.exchanges_per_step * 3
        assert dec.exchange_count <= 4 * 3  # half of the 8-per-step static


# --------------------------------------------------------------------- oracle
@pytest.fixture(scope="module", params=[11, 23])
def oracle_mesh(request):
    """A small random (non-icosahedral) SCVT, so the oracle cannot lean on
    icosahedral symmetry."""
    rng = np.random.default_rng(request.param)
    pts = lloyd_relax(
        normalize(rng.standard_normal((120, 3))), iterations=60
    ).points
    return Mesh.from_points(pts, name=f"oracle120-{request.param}")


class TestSkipRefreshOracle:
    """Brute-force soundness: the derived schedule ⊇ the needed refreshes.

    For every ``(sync point, field)`` pair, run the *static* lockstep
    runner with exactly that one halo refresh skipped.  If the owned state
    diverges from serial, the refresh was needed — and must be kept by the
    dataflow derivation.  (The converse — pairs the derivation drops never
    diverge — is implied: ``needed ⊆ kept`` checks every dropped pair.)
    """

    @pytest.mark.parametrize(
        "kw",
        [
            dict(thickness_adv_order=2),
            dict(thickness_adv_order=3, apvm_upwinding=0.5),
            dict(thickness_adv_order=4, viscosity=1.0e4),
        ],
        ids=str,
    )
    def test_needed_refreshes_are_kept(self, oracle_mesh, kw):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(oracle_mesh, case, GRAVITY, cfl=0.5), **kw)
        model = ShallowWaterModel(oracle_mesh, cfg)
        model.initialize(case)
        serial = model.run(steps=2).state

        kept = {
            (p.name, f)
            for p in derive_halo_schedule(cfg).points
            for f in p.fields
        }
        needed = set()
        for sync in SYNC_POINT_NAMES:
            for field in ("h", "u"):
                dec = DecomposedShallowWater(oracle_mesh, 2, case, cfg)
                dec._skip_refresh = (sync, field)
                res = dec.run(2)
                if not (
                    np.array_equal(res.state.h, serial.h)
                    and np.array_equal(res.state.u, serial.u)
                ):
                    needed.add((sync, field))
        assert needed <= kept, f"needed-but-elided refreshes: {sorted(needed - kept)}"
        # The oracle must have teeth: dynamics needs every post refresh.
        assert {("post@s1", "h"), ("post@s4", "h")} <= needed

    def test_advection_only_never_needs_velocity(self, oracle_mesh):
        case = steady_zonal_flow()
        cfg = SWConfig(
            dt=suggested_dt(oracle_mesh, case, GRAVITY, cfl=0.5),
            advection_only=True,
        )
        model = ShallowWaterModel(oracle_mesh, cfg)
        model.initialize(case)
        serial = model.run(steps=2).state
        for sync in SYNC_POINT_NAMES:
            dec = DecomposedShallowWater(oracle_mesh, 2, case, cfg)
            dec._skip_refresh = (sync, "u")
            res = dec.run(2)
            assert np.array_equal(res.state.h, serial.h)
            assert np.array_equal(res.state.u, serial.u)
