"""Unit tests of the ring-rotation (summation-order) perturbation."""

from __future__ import annotations

import numpy as np

from repro.mesh import rotate_cell_rings
from repro.swm.operators import (
    cell_divergence,
    cell_kinetic_energy,
    tangential_velocity,
)


class TestRotation:
    def test_same_edge_sets(self, mesh3):
        rot = rotate_cell_rings(mesh3, shift=1)
        for c in range(0, mesh3.nCells, 31):
            n = int(mesh3.connectivity.nEdgesOnCell[c])
            a = set(mesh3.connectivity.edgesOnCell[c, :n].tolist())
            b = set(rot.connectivity.edgesOnCell[c, :n].tolist())
            assert a == b

    def test_ring_alignment_preserved(self, mesh3):
        rot = rotate_cell_rings(mesh3, shift=2)
        conn = rot.connectivity
        for c in range(0, rot.nCells, 31):
            n = int(conn.nEdgesOnCell[c])
            for j in range(n):
                e = conn.edgesOnCell[c, j]
                pair = {conn.verticesOnCell[c, j], conn.verticesOnCell[c, (j + 1) % n]}
                assert set(conn.verticesOnEdge[e]) == pair

    def test_signs_follow_rotation(self, mesh3):
        rot = rotate_cell_rings(mesh3, shift=1)
        conn = rot.connectivity
        for c in range(0, rot.nCells, 31):
            for j in range(int(conn.nEdgesOnCell[c])):
                e = conn.edgesOnCell[c, j]
                expected = 1.0 if conn.cellsOnEdge[e, 0] == c else -1.0
                assert conn.edgeSignOnCell[c, j] == expected

    def test_divergence_roundoff_equivalent(self, mesh3, edge_field):
        rot = rotate_cell_rings(mesh3, shift=1)
        a = cell_divergence(mesh3, edge_field)
        b = cell_divergence(rot, edge_field)
        assert not np.array_equal(a, b)  # order really changed somewhere
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-18)

    def test_ke_roundoff_equivalent(self, mesh3, edge_field):
        rot = rotate_cell_rings(mesh3, shift=1)
        a = cell_kinetic_energy(mesh3, edge_field)
        b = cell_kinetic_energy(rot, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_trisk_roundoff_equivalent(self, mesh3, edge_field):
        rot = rotate_cell_rings(mesh3, shift=1)
        a = tangential_velocity(mesh3, edge_field)
        b = tangential_velocity(rot, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-14)

    def test_shift_zero_mod_ring(self, mesh3):
        # A shift that is a multiple of every ring length is the identity on
        # hexagons; pentagons rotate, so arrays differ but sets match.
        rot = rotate_cell_rings(mesh3, shift=6)
        hexes = np.flatnonzero(mesh3.connectivity.nEdgesOnCell == 6)
        assert np.array_equal(
            rot.connectivity.edgesOnCell[hexes],
            mesh3.connectivity.edgesOnCell[hexes],
        )
