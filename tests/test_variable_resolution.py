"""Tests of the variable-resolution (multiresolution) SCVT extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.geometry import (
    arc_length,
    icosahedral_points,
    lonlat_to_xyz,
    radial_refinement,
    weighted_lloyd_relax,
)
from repro.mesh import Mesh

CENTRE = (np.pi, 0.5)


@pytest.fixture(scope="module")
def refined_mesh():
    rho = radial_refinement(
        CENTRE, inner_radius=0.5, transition_width=0.2, amplification=16.0
    )
    result = weighted_lloyd_relax(icosahedral_points(3), rho, iterations=40)
    mesh = Mesh.from_points(result.points, name="refined642")
    return mesh


class TestDensityFunction:
    def test_radial_profile(self):
        rho = radial_refinement(CENTRE, 0.5, 0.1, amplification=9.0)
        centre = lonlat_to_xyz(np.array(CENTRE[0]), np.array(CENTRE[1]))
        antipode = -centre
        assert rho(centre[None, :])[0] == pytest.approx(9.0, rel=0.01)
        assert rho(antipode[None, :])[0] == pytest.approx(1.0, rel=0.01)

    def test_monotone_decay(self):
        rho = radial_refinement(CENTRE, 0.5, 0.2, amplification=4.0)
        centre = lonlat_to_xyz(np.array(CENTRE[0]), np.array(CENTRE[1]))
        # Sample along a meridian away from the centre.
        from repro.geometry import rotate

        pts = np.stack([rotate(centre, [0.0, 0.0, 1.0], a) for a in np.linspace(0, 2, 15)])
        values = rho(pts)
        assert np.all(np.diff(values) <= 1e-9)


class TestWeightedLloyd:
    def test_uniform_density_matches_plain_lloyd(self):
        from repro.geometry import lloyd_relax

        pts = icosahedral_points(2)
        plain = lloyd_relax(pts, iterations=3).points
        weighted = weighted_lloyd_relax(pts, lambda p: np.ones(p.shape[0]), iterations=3).points
        # One-point quadrature vs exact fan centroids agree closely for
        # uniform density.
        assert np.max(np.linalg.norm(plain - weighted, axis=1)) < 5e-3

    def test_displacement_history(self):
        rho = radial_refinement(CENTRE, 0.5, 0.2, 4.0)
        res = weighted_lloyd_relax(icosahedral_points(2), rho, iterations=5)
        assert len(res.displacement_history) == 5
        assert res.displacement_history[-1] < res.displacement_history[0]


class TestRefinedMesh:
    def test_valid_c_grid(self, refined_mesh):
        refined_mesh.validate()
        assert refined_mesh.nCells == 642

    def test_resolution_gradient(self, refined_mesh):
        centre = lonlat_to_xyz(np.array(CENTRE[0]), np.array(CENTRE[1]))
        d = arc_length(refined_mesh.xCell, centre)
        near = refined_mesh.areaCell[d < 0.3].mean()
        far = refined_mesh.areaCell[d > 1.5].mean()
        # 40 Lloyd sweeps reach a clear (if not yet equilibrium) grading.
        assert far / near > 1.25

    def test_model_runs_stably(self, refined_mesh):
        from repro.swm import (
            ShallowWaterModel,
            SWConfig,
            steady_zonal_flow,
            suggested_dt,
        )

        case = steady_zonal_flow()
        dt = suggested_dt(refined_mesh, case, GRAVITY, cfl=0.5)
        model = ShallowWaterModel(refined_mesh, SWConfig(dt=dt))
        model.initialize(case)
        res = model.run(days=1.0, invariant_interval=10)
        assert res.mass_drift() < 1e-13
        assert model.exact_error().l2 < 5e-3

    def test_patterns_resolution_agnostic(self, refined_mesh, rng):
        """The pattern kernels run unchanged on the graded mesh and keep
        their invariants (the paper's machinery is mesh-general)."""
        from repro.swm.operators import cell_divergence, coriolis_edge_term

        u = rng.standard_normal(refined_mesh.nEdges)
        div = cell_divergence(refined_mesh, u)
        total = np.sum(div * refined_mesh.areaCell)
        assert abs(total) < 1e-11 * np.sum(np.abs(u) * refined_mesh.dvEdge)

        h_edge = rng.uniform(0.5, 2.0, refined_mesh.nEdges)
        q = rng.standard_normal(refined_mesh.nEdges)
        term = coriolis_edge_term(refined_mesh, u, h_edge, q)
        work = np.sum(u * h_edge * term * refined_mesh.dcEdge * refined_mesh.dvEdge)
        scale = np.sum((u * h_edge) ** 2 * refined_mesh.dcEdge * refined_mesh.dvEdge)
        assert abs(work) < 1e-10 * scale
