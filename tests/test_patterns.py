"""Unit tests of the pattern taxonomy and the Table I catalog."""

from __future__ import annotations

import pytest

from repro.machine.counts import MeshCounts
from repro.patterns import (
    KERNELS,
    STENCIL_PATTERNS,
    PatternKind,
    PointType,
    build_catalog,
    classify,
    instances_by_kernel,
    point_of,
)
from repro.swm import SWConfig


class TestPointType:
    def test_counts(self):
        counts = MeshCounts(nCells=100)
        assert PointType.CELL.count(counts) == 100
        assert PointType.EDGE.count(counts) == 294
        assert PointType.VERTEX.count(counts) == 196


class TestPatternKind:
    def test_eight_kinds(self):
        assert len(PatternKind) == 8
        assert {k.letter for k in PatternKind} == set("ABCDEFGH")

    def test_from_types(self):
        assert PatternKind.from_types(PointType.CELL, PointType.EDGE) is PatternKind.A
        assert PatternKind.from_types(PointType.EDGE, PointType.EDGE) is PatternKind.B
        assert PatternKind.from_types(PointType.VERTEX, PointType.EDGE) is PatternKind.H

    def test_from_types_rejects_unused(self):
        with pytest.raises(ValueError):
            PatternKind.from_types(PointType.VERTEX, PointType.VERTEX)

    def test_all_directed_pairs_distinct(self):
        pairs = {(k.output, k.input) for k in PatternKind}
        assert len(pairs) == 8

    def test_canonical_fan_in(self):
        assert STENCIL_PATTERNS[PatternKind.A].fan_in == 6
        assert STENCIL_PATTERNS[PatternKind.B].fan_in == 10
        assert STENCIL_PATTERNS[PatternKind.E].fan_in == 3


class TestClassify:
    def test_local(self):
        assert classify(("tend_u",), ("tend_u",), neighborhood=False) is None

    def test_cell_from_edges(self):
        assert classify(("tend_h",), ("provis_u", "h_edge")) is PatternKind.A

    def test_trisk(self):
        assert classify(("v",), ("provis_u",)) is PatternKind.B

    def test_same_type_cell_stencil(self):
        assert classify(("d2fdx2_cell1",), ("provis_h",)) is PatternKind.C

    def test_point_local_excluded(self):
        got = classify(
            ("pv_edge",),
            ("pv_vertex", "pv_cell", "provis_u", "v"),
            point_local=("provis_u", "v"),
        )
        assert got is PatternKind.G

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            point_of("no_such_var")

    def test_mixed_output_types_rejected(self):
        with pytest.raises(ValueError):
            classify(("tend_h", "tend_u"), ("provis_u",))

    def test_non_neighborhood_is_local(self):
        assert classify(("provis_h",), ("h", "tend_h"), neighborhood=False) is None


class TestCatalog:
    def test_default_full_inventory(self):
        catalog = build_catalog()
        labels = [i.label for i in catalog]
        assert len(labels) == len(set(labels))
        kinds = {i.kind for i in catalog if i.kind is not None}
        assert kinds == set(PatternKind)

    def test_kernel_grouping_order(self):
        grouped = instances_by_kernel(build_catalog())
        assert list(grouped) == list(KERNELS)
        assert [i.label for i in grouped["compute_tend"]] == ["A1", "B1"]
        assert [i.label for i in grouped["mpas_reconstruct"]] == ["A4", "X6"]

    def test_second_order_drops_c_patterns(self):
        catalog = build_catalog(SWConfig(dt=1.0, thickness_adv_order=2))
        labels = {i.label for i in catalog}
        assert "C1" not in labels and "C2" not in labels
        d1 = next(i for i in catalog if i.label == "D1")
        assert d1.inputs == ("provis_h",)

    def test_third_order_adds_upwinding_input(self):
        catalog = build_catalog(SWConfig(dt=1.0, thickness_adv_order=3))
        d1 = next(i for i in catalog if i.label == "D1")
        assert "provis_u" in d1.inputs

    def test_viscosity_extends_b1(self):
        catalog = build_catalog(SWConfig(dt=1.0, viscosity=1e4))
        b1 = next(i for i in catalog if i.label == "B1")
        assert "divergence" in b1.inputs and "vorticity" in b1.inputs

    def test_apvm_off_shrinks_g1(self):
        catalog = build_catalog(SWConfig(dt=1.0, apvm_upwinding=0.0))
        g1 = next(i for i in catalog if i.label == "G1")
        assert g1.inputs == ("pv_vertex",)

    def test_costs_positive(self):
        for inst in build_catalog():
            assert inst.flops_per_point > 0
            assert inst.f64_per_point > 0
            assert inst.i32_per_point >= 0

    def test_mesh_scaling(self):
        counts = MeshCounts(nCells=1000)
        for inst in build_catalog():
            assert inst.flops(counts) == inst.flops_per_point * inst.n_points(counts)
            assert inst.bytes_moved(counts) > 0

    def test_splittable_set(self):
        catalog = build_catalog()
        splittable = {i.label for i in catalog if i.splittable}
        assert splittable == {"B1", "B2", "A2", "A3", "C1", "C2"}

    def test_str_rendering(self):
        inst = build_catalog()[0]
        assert "A1" in str(inst) and "compute_tend" in str(inst)
