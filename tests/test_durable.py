"""Durable runs: crash-consistent manifests, bitwise resume, crash chaos.

Three layers, mirroring :mod:`repro.resilience.durable`:

* manifest mechanics — create/open/commit/validate and the
  crash-consistency bookkeeping (uncommitted files cleaned, digest
  mismatches quarantined);
* in-process interrupts — a ``process.crash`` fault *raised* mid-run, then
  ``repro.api.run(resume=...)`` continuing bitwise-identically to an
  uninterrupted reference, for the serial, lockstep and pool executors;
* crash chaos (``@pytest.mark.chaos``) — subprocesses really SIGKILLed
  mid-step via ``--chaos-crash-at``, resumed with ``--resume``, and the
  final checkpoint compared byte-for-byte against an uninterrupted
  in-process reference, across backends and executors.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import resolve_case, run, suggested_dt
from repro.constants import GRAVITY
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience.durable import (
    MANIFEST_NAME,
    DurableRun,
    ManifestError,
)
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    use_fault_plan,
)
from repro.swm.config import SWConfig

SRC = Path(__file__).parent.parent / "src"


def _cfg(mesh, **overrides) -> SWConfig:
    case = resolve_case("galewsky")
    dt = suggested_dt(mesh, case, GRAVITY, cfl=0.5)
    return SWConfig(dt=dt, **overrides)


def _crash_plan(step: int) -> FaultPlan:
    """Raise FaultInjected when integration step ``step`` starts."""
    return FaultPlan(
        [FaultSpec("process.crash", at=(1,), match={"step": step})]
    )


def _committed_steps(directory: Path) -> list[int]:
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    return [c["step"] for c in manifest["checkpoints"]]


def _subprocess_env() -> dict:
    env = {
        "PYTHONPATH": str(SRC),
        "PATH": "/usr/bin:/bin",
        "HOME": os.environ["HOME"],  # share the mesh/operator disk cache
    }
    if "REPRO_CACHE_DIR" in os.environ:
        env["REPRO_CACHE_DIR"] = os.environ["REPRO_CACHE_DIR"]
    return env


# ---------------------------------------------------------------- manifest
class TestManifest:
    def test_create_refuses_existing_run(self, mesh3, tmp_path):
        cfg = _cfg(mesh3)
        DurableRun.create(tmp_path, "galewsky", mesh3, cfg, 4)
        with pytest.raises(ManifestError, match="resume"):
            DurableRun.create(tmp_path, "galewsky", mesh3, cfg, 4)

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(ManifestError, match="not a durable run"):
            DurableRun.open(tmp_path / "nowhere")

    def test_open_version_mismatch(self, mesh3, tmp_path):
        run_ = DurableRun.create(tmp_path, "galewsky", mesh3, _cfg(mesh3), 4)
        run_.manifest["manifest_version"] = 999
        run_.save()
        with pytest.raises(ManifestError, match="version"):
            DurableRun.open(tmp_path)

    def test_commit_and_latest_valid(self, mesh3, tmp_path):
        run_ = DurableRun.create(tmp_path, "galewsky", mesh3, _cfg(mesh3), 4)
        for step in (0, 2):
            path = run_.checkpoint_path / f"auto-{step:08d}.npz"
            path.write_bytes(f"checkpoint {step}".encode())
            run_.commit_checkpoint(step, path)
        assert _committed_steps(tmp_path) == [0, 2]
        step, path = run_.latest_valid_checkpoint()
        assert (step, path.name) == (2, "auto-00000002.npz")
        # Re-committing a step replaces its entry, not duplicates it.
        path.write_bytes(b"checkpoint 2 rewritten")
        run_.commit_checkpoint(2, path)
        assert _committed_steps(tmp_path) == [0, 2]

    def test_digest_mismatch_quarantined(self, mesh3, tmp_path):
        run_ = DurableRun.create(tmp_path, "galewsky", mesh3, _cfg(mesh3), 4)
        for step in (0, 2):
            path = run_.checkpoint_path / f"auto-{step:08d}.npz"
            path.write_bytes(f"checkpoint {step}".encode())
            run_.commit_checkpoint(step, path)
        # Damage the newest *after* commit: same length, different bytes.
        newest = run_.checkpoint_path / "auto-00000002.npz"
        newest.write_bytes(b"checkpoint X")
        registry = MetricsRegistry()
        with use_registry(registry):
            step, path = run_.latest_valid_checkpoint()
        assert step == 0
        assert not newest.exists()
        assert (run_.checkpoint_path / "quarantine" / newest.name).exists()
        (series,) = registry.series("resilience.cache.quarantined")
        assert series.tags["kind"] == "checkpoint" and series.value == 1

    def test_clean_uncommitted(self, mesh3, tmp_path):
        run_ = DurableRun.create(tmp_path, "galewsky", mesh3, _cfg(mesh3), 4)
        committed = run_.checkpoint_path / "auto-00000000.npz"
        committed.write_bytes(b"committed")
        run_.commit_checkpoint(0, committed)
        orphan = run_.checkpoint_path / "auto-00000002.npz"
        orphan.write_bytes(b"published but never committed")
        torn = run_.checkpoint_path / "auto-00000004.npz.tmp"
        torn.write_bytes(b"died mid-write")
        removed = run_.clean_uncommitted()
        assert sorted(p.name for p in removed) == [
            "auto-00000002.npz",
            "auto-00000004.npz.tmp",
        ]
        assert committed.exists()

    def test_validate_compatible_config_diff_is_actionable(
        self, mesh3, tmp_path
    ):
        cfg = _cfg(mesh3)
        run_ = DurableRun.create(tmp_path, "galewsky", mesh3, cfg, 4)
        import dataclasses

        other = dataclasses.replace(cfg, thickness_adv_order=4)
        with pytest.raises(ManifestError, match="thickness_adv_order"):
            run_.validate_compatible(config=other)
        run_.validate_compatible(config=cfg)  # identical config passes

    def test_validate_compatible_mesh_fingerprint(self, mesh3, tmp_path):
        from repro.mesh.cache import cached_mesh

        run_ = DurableRun.create(tmp_path, "galewsky", mesh3, _cfg(mesh3), 4)
        run_.validate_compatible(mesh=mesh3)
        with pytest.raises(ManifestError, match="fingerprint"):
            run_.validate_compatible(mesh=cached_mesh(2, lloyd_iterations=0))

    def test_validate_compatible_case(self, mesh3, tmp_path):
        run_ = DurableRun.create(tmp_path, "galewsky", mesh3, _cfg(mesh3), 4)
        with pytest.raises(ManifestError, match="case"):
            run_.validate_compatible(case_token="tc5")

    def test_case_must_be_a_token(self, mesh3, tmp_path):
        with pytest.raises(ManifestError, match="name or Williamson number"):
            run(
                resolve_case("galewsky"), mesh=mesh3, config=_cfg(mesh3),
                steps=2, run_dir=tmp_path / "d",
            )


# ------------------------------------------------------------ serial runs
class TestSerialDurable:
    def test_matches_plain_run_bitwise(self, mesh3, tmp_path):
        cfg = _cfg(mesh3, checkpoint_interval=2)
        ref = run("galewsky", mesh=mesh3, config=cfg, steps=6)
        d = tmp_path / "run"
        durable = run("galewsky", mesh=mesh3, config=cfg, steps=6, run_dir=d)
        assert np.array_equal(durable.state.h, ref.state.h)
        assert np.array_equal(durable.state.u, ref.state.u)
        manifest = json.loads((d / MANIFEST_NAME).read_text())
        assert manifest["completed"] is True
        assert _committed_steps(d) == [0, 2, 4, 6]

    def test_interrupt_and_resume_bitwise(self, mesh3, tmp_path):
        cfg = _cfg(mesh3, checkpoint_interval=2)
        ref = run("galewsky", mesh=mesh3, config=cfg, steps=6)
        d = tmp_path / "run"
        with use_fault_plan(_crash_plan(4)):
            with pytest.raises(FaultInjected):
                run("galewsky", mesh=mesh3, config=cfg, steps=6, run_dir=d)
        assert _committed_steps(d) == [0, 2]  # steps 1-3 ran, 4 never did
        resumed = run(resume=d, mesh=mesh3)
        assert np.array_equal(resumed.state.h, ref.state.h)
        assert np.array_equal(resumed.state.u, ref.state.u)
        manifest = json.loads((d / MANIFEST_NAME).read_text())
        assert manifest["completed"] is True
        assert _committed_steps(d) == [0, 2, 4, 6]

    def test_resume_rebuilds_mesh_from_manifest(self, mesh3, tmp_path):
        """resume= alone suffices: the mesh comes back through the cache."""
        cfg = _cfg(mesh3, checkpoint_interval=2)
        ref = run("galewsky", mesh=mesh3, config=cfg, steps=4)
        d = tmp_path / "run"
        with use_fault_plan(_crash_plan(3)):
            with pytest.raises(FaultInjected):
                run("galewsky", mesh=mesh3, config=cfg, steps=4, run_dir=d)
        resumed = run(resume=d)  # no mesh argument
        assert np.array_equal(resumed.state.h, ref.state.h)

    def test_resume_rejects_run_arguments(self, mesh3, tmp_path):
        with pytest.raises(ValueError, match="resume"):
            run(resume=tmp_path, case="galewsky")
        with pytest.raises(ValueError, match="resume"):
            run(resume=tmp_path, steps=4)

    def test_resume_completed_run_refused(self, mesh3, tmp_path):
        cfg = _cfg(mesh3)
        d = tmp_path / "run"
        run("galewsky", mesh=mesh3, config=cfg, steps=2, run_dir=d)
        with pytest.raises(ManifestError, match="already completed"):
            run(resume=d, mesh=mesh3)

    def test_torn_newest_checkpoint_falls_back_a_step(self, mesh3, tmp_path):
        """A checkpoint damaged after commit costs recomputation, not the run."""
        cfg = _cfg(mesh3, checkpoint_interval=2)
        ref = run("galewsky", mesh=mesh3, config=cfg, steps=6)
        d = tmp_path / "run"
        with use_fault_plan(_crash_plan(5)):
            with pytest.raises(FaultInjected):
                run("galewsky", mesh=mesh3, config=cfg, steps=6, run_dir=d)
        assert _committed_steps(d) == [0, 2, 4]
        newest = d / "checkpoints" / "auto-00000004.npz"
        newest.write_bytes(newest.read_bytes()[:100])  # truncate: torn
        resumed = run(resume=d, mesh=mesh3)
        assert (d / "checkpoints" / "quarantine" / newest.name).exists()
        assert np.array_equal(resumed.state.h, ref.state.h)
        assert np.array_equal(resumed.state.u, ref.state.u)

    def test_no_surviving_checkpoint_is_actionable(self, mesh3, tmp_path):
        cfg = _cfg(mesh3, checkpoint_interval=2)
        d = tmp_path / "run"
        with use_fault_plan(_crash_plan(3)):
            with pytest.raises(FaultInjected):
                run("galewsky", mesh=mesh3, config=cfg, steps=6, run_dir=d)
        for path in (d / "checkpoints").glob("auto-*.npz"):
            path.unlink()
        with pytest.raises(ManifestError, match="no committed checkpoint"):
            run(resume=d, mesh=mesh3)


# -------------------------------------------------------- decomposed runs
class TestDecomposedDurable:
    @pytest.mark.parametrize(
        "parallel,ranks", [("lockstep", 4), ("pool", 4)]
    )
    def test_interrupt_and_resume_matches_serial(
        self, mesh3, tmp_path, parallel, ranks
    ):
        serial = run(
            "galewsky", mesh=mesh3,
            config=_cfg(mesh3, checkpoint_interval=2), steps=6,
        )
        cfg = _cfg(
            mesh3, checkpoint_interval=2, parallel=parallel, ranks=ranks
        )
        d = tmp_path / "run"
        with use_fault_plan(_crash_plan(5)):
            with pytest.raises(FaultInjected):
                run("galewsky", mesh=mesh3, config=cfg, steps=6, run_dir=d)
        assert _committed_steps(d) == [0, 2, 4]
        resumed = run(resume=d, mesh=mesh3)
        assert np.array_equal(resumed.state.h, serial.state.h)
        assert np.array_equal(resumed.state.u, serial.state.u)
        assert json.loads((d / MANIFEST_NAME).read_text())["completed"]

    def test_resume_rejects_serial_only_arguments(self, mesh3, tmp_path):
        cfg = _cfg(mesh3, checkpoint_interval=2, parallel="lockstep", ranks=2)
        with pytest.raises(ValueError, match="serial"):
            run(
                "galewsky", mesh=mesh3, config=cfg, steps=4,
                run_dir=tmp_path / "d", invariant_interval=1,
            )


# ------------------------------------------------------------ crash chaos
@pytest.mark.chaos
class TestChaosKill:
    """Real SIGKILLs: the subprocess dies mid-step and --resume finishes.

    The matrix covers both engine backends in the serial executor and the
    4-rank shared-memory pool; the final committed checkpoint of the
    killed-and-resumed run must match an uninterrupted in-process
    reference byte-for-byte in ``h`` and ``u``.
    """

    STEPS = 6
    KILL_AT = 5

    def _cli(self, *extra: str, timeout: int = 600):
        return subprocess.run(
            [
                sys.executable, "-m", "repro", "run",
                "--case", "galewsky", "--level", "3",
                "--steps", str(self.STEPS), "--cfl", "0.5",
                "--checkpoint-interval", "2",
                *extra,
            ],
            capture_output=True, text=True, timeout=timeout,
            env=_subprocess_env(),
        )

    def _reference(self, mesh3, backend: str):
        return run(
            "galewsky", mesh=mesh3, config=_cfg(mesh3, backend=backend),
            steps=self.STEPS,
        )

    @pytest.mark.parametrize(
        "backend,parallel,ranks",
        [
            ("numpy", "serial", 1),
            ("sparse", "serial", 1),
            ("numpy", "pool", 4),
            ("sparse", "pool", 4),
        ],
    )
    def test_sigkill_then_resume_is_bitwise(
        self, mesh3, tmp_path, backend, parallel, ranks
    ):
        d = tmp_path / "run"
        executor = [
            "--backend", backend, "--parallel", parallel, "--ranks",
            str(ranks), "--run-dir", str(d),
        ]
        killed = self._cli(*executor, "--chaos-crash-at", str(self.KILL_AT))
        assert killed.returncode == -9, killed.stdout + killed.stderr[-2000:]
        manifest = json.loads((d / MANIFEST_NAME).read_text())
        assert manifest["completed"] is False
        assert max(_committed_steps(d)) < self.STEPS

        resumed = self._cli("--resume", str(d))
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr[-2000:]
        assert json.loads((d / MANIFEST_NAME).read_text())["completed"]

        final = d / "checkpoints" / f"auto-{self.STEPS:08d}.npz"
        ref = self._reference(mesh3, backend)
        with np.load(final) as data:
            assert np.array_equal(data["h"], ref.state.h)
            assert np.array_equal(data["u"], ref.state.u)

    def test_sigkill_torn_checkpoint_then_resume(self, mesh3, tmp_path):
        """Kill, then truncate the newest checkpoint: resume still lands."""
        d = tmp_path / "run"
        killed = self._cli(
            "--backend", "numpy", "--run-dir", str(d),
            "--chaos-crash-at", str(self.KILL_AT),
        )
        assert killed.returncode == -9, killed.stdout + killed.stderr[-2000:]
        step, path = DurableRun.open(d).latest_valid_checkpoint()
        path.write_bytes(path.read_bytes()[:50])

        resumed = self._cli("--resume", str(d))
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr[-2000:]
        assert (d / "checkpoints" / "quarantine" / path.name).exists()
        final = d / "checkpoints" / f"auto-{self.STEPS:08d}.npz"
        ref = self._reference(mesh3, "numpy")
        with np.load(final) as data:
            assert np.array_equal(data["h"], ref.state.h)
            assert np.array_equal(data["u"], ref.state.u)
