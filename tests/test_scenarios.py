"""The scenario library: registry round-trips and the case-plumbing fixes.

Three bugs motivated the registry, and each keeps a failing-before
regression test here:

* ``repro.obs.report`` carried a private 3-entry case dict, so
  ``run_traced("tc6")`` / ``run_traced("mountain")`` raised even though
  ``repro.api.resolve_case`` accepted both;
* ``suggested_dt`` computed the gravity-wave speed from
  ``max(thickness + topography)``, though the shallow-water phase speed
  depends on the *fluid* thickness only;
* a :class:`~repro.swm.model.RunResult` with an empty invariant history
  crashed ``mass_drift()`` with a bare ``IndexError`` (the durable-job
  reconstruction path; its end-to-end test lives in ``test_jobs.py``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import RunRequest, resolve_case, suggested_dt
from repro.constants import GRAVITY
from repro.swm import scenarios
from repro.swm.scenarios import (
    SCENARIOS,
    canonical_name,
    known_names,
    perturbed_case,
    scenario,
    scenario_for,
)
from repro.swm.testcases import TEST_CASES, initialize


class TestRegistryRoundTrip:
    def test_every_alias_resolves_to_its_scenario(self):
        for sc in SCENARIOS:
            for alias in sc.all_names:
                assert scenario(alias) is sc, alias
                assert resolve_case(alias).name == sc.name, alias
                assert canonical_name(alias) == sc.name, alias

    def test_factory_name_matches_registry_name(self):
        for sc in SCENARIOS:
            assert sc.build().name == sc.name

    def test_williamson_numbers_resolve(self):
        for number in TEST_CASES:
            assert scenario(number).number == number
            assert resolve_case(number).number == number

    def test_non_williamson_numbers_do_not(self):
        # 8/9/10 are catalogue labels, not Williamson identities.
        for number in (8, 9, 10):
            with pytest.raises(ValueError, match="known numbers"):
                scenario(number)

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(ValueError, match="known names"):
            scenario("tc99")

    def test_every_scenario_initializes(self, mesh3):
        for sc in SCENARIOS:
            state, b = initialize(mesh3, sc.build())
            assert state.h.shape == (mesh3.nCells,), sc.name
            assert state.u.shape == (mesh3.nEdges,), sc.name
            assert b.shape == (mesh3.nCells,), sc.name
            assert np.all(np.isfinite(state.h)) and np.all(state.h > 0), sc.name
            assert np.all(np.isfinite(state.u)), sc.name
            assert np.all(np.isfinite(b)), sc.name
            if sc.topographic:
                assert np.max(np.abs(b)) > 0, sc.name
            else:
                assert np.max(np.abs(b)) == 0, sc.name

    def test_scenario_for_built_and_perturbed_cases(self):
        tc5 = resolve_case("tc5")
        assert scenario_for(tc5) is scenario("tc5")
        assert scenario_for(perturbed_case("galewsky", 1, 2)) is scenario(
            "galewsky"
        )
        assert scenario_for("perturbed:tc5:0:0") is scenario("tc5")
        unknown = dataclasses.replace(tc5, name="not_in_catalogue")
        assert scenario_for(unknown) is None

    def test_run_request_key_collapses_aliases(self, mesh3):
        keys = {
            RunRequest(case=token, mesh=mesh3, steps=2).key()
            for token in ("tc5", "mountain", 5, "isolated_mountain")
        }
        assert len(keys) == 1

    def test_run_request_key_separates_perturbed_members(self, mesh3):
        keys = {
            RunRequest(case=token, mesh=mesh3, steps=2).key()
            for token in (
                "galewsky",
                "perturbed:galewsky:0:0",
                "perturbed:galewsky:1:0",
                "perturbed:galewsky:0:1",
            )
        }
        assert len(keys) == 4


class TestPerturbedFamily:
    def test_matches_ensemble_member_bitwise(self, mesh3):
        from repro.ensemble.members import member_initial_state

        base = resolve_case("galewsky")
        ref_state, ref_b = member_initial_state(mesh3, base, 2, 7, 1e-6)
        state, b = initialize(mesh3, perturbed_case("galewsky", 2, 7, 1e-6))
        assert np.array_equal(state.h, ref_state.h)
        assert np.array_equal(state.u, ref_state.u)
        assert np.array_equal(b, ref_b)

    def test_zero_amplitude_is_the_base_case(self, mesh3):
        base_state, _ = initialize(mesh3, resolve_case("galewsky"))
        state, _ = initialize(
            mesh3, perturbed_case("galewsky", 3, 5, amplitude=0.0)
        )
        assert np.array_equal(state.h, base_state.h)

    def test_members_differ(self, mesh3):
        a, _ = initialize(mesh3, perturbed_case("galewsky", 0, 0))
        b, _ = initialize(mesh3, perturbed_case("galewsky", 1, 0))
        assert not np.array_equal(a.h, b.h)

    def test_case_is_reusable(self, mesh3):
        """The closure draws a fresh rng per call: two inits agree bitwise."""
        case = perturbed_case("galewsky", 2, 7)
        first, _ = initialize(mesh3, case)
        second, _ = initialize(mesh3, case)
        assert np.array_equal(first.h, second.h)

    def test_token_spelling(self):
        case = resolve_case("perturbed:galewsky:2:7")
        assert case.name == "galewsky_jet+m2s7a1e-06"
        assert resolve_case("perturbed:tc5:0:3:1e-4").name == (
            "isolated_mountain+m0s3a0.0001"
        )

    @pytest.mark.parametrize("token", [
        "perturbed:galewsky",           # too few fields
        "perturbed:galewsky:2:7:1:9",   # too many
        "perturbed:galewsky:x:7",       # non-integer member
        "perturbed:galewsky:2:7:oops",  # non-float amplitude
    ])
    def test_malformed_tokens_raise(self, token):
        with pytest.raises(ValueError, match="malformed"):
            resolve_case(token)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError, match="member"):
            perturbed_case("galewsky", member=-1)
        with pytest.raises(ValueError, match="amplitude"):
            perturbed_case("galewsky", amplitude=-1e-6)


class TestReportRouting:
    """Bugfix: the obs report's private case table is gone.

    Before the registry, ``run_traced`` accepted exactly
    {galewsky, tc2, tc5}; any other alias the rest of the package resolved
    — ``tc6``, ``mountain``, a Williamson number — raised ``ValueError``.
    """

    @pytest.mark.parametrize("token", ["tc6", "mountain"])
    def test_registry_aliases_work(self, token):
        from repro.obs.report import run_traced

        tracer, registry, mesh, config = run_traced(token, level=2, steps=1)
        assert tracer.finished(), token

    def test_unknown_case_still_raises(self):
        from repro.obs.report import run_traced

        with pytest.raises(ValueError, match="known names"):
            run_traced("tc99", level=2, steps=1)

    def test_advection_only_comes_from_the_registry(self):
        from repro.obs.report import run_traced

        tracer, registry, mesh, config = run_traced("tc1", level=2, steps=1)
        assert config.advection_only


class TestSuggestedDt:
    """Bugfix: the CFL wave speed uses the fluid thickness only."""

    def test_ignores_topography(self, mesh3):
        """Raising the bottom under a fixed fluid layer must not shrink dt.

        Before the fix the estimate used ``max(h + b)``: stacking an extra
        2 km of rock under the mountain (same fluid thickness) tightened
        the time step by ~15% for no physical reason.
        """
        case = resolve_case("tc5")
        taller = dataclasses.replace(
            case, topography=lambda points: 2.0 * case.topography(points)
        )
        assert suggested_dt(mesh3, taller, GRAVITY) == suggested_dt(
            mesh3, case, GRAVITY
        )

    def test_tc5_matches_fluid_thickness_formula(self, mesh3):
        case = resolve_case("tc5")
        met = mesh3.metrics
        h = case.thickness(met.xCell)
        umax = float(np.max(np.linalg.norm(case.velocity(met.xCell), axis=1)))
        expected = (
            0.5 * float(np.min(met.dcEdge))
            / (umax + np.sqrt(GRAVITY * float(np.max(h))))
        )
        assert suggested_dt(mesh3, case, GRAVITY, cfl=0.5) == expected


class TestDriftAccessors:
    """Bugfix: an endpoint-free RunResult refuses drift questions clearly."""

    def test_empty_history_raises_value_error(self, mesh3):
        from repro.api import run

        result = run("tc2", mesh=mesh3, steps=1)
        hollow = dataclasses.replace(result, invariant_history=[])
        with pytest.raises(ValueError, match="invariant records"):
            hollow.mass_drift()
        with pytest.raises(ValueError, match="invariant records"):
            hollow.energy_drift()
        # the real result still answers
        assert np.isfinite(result.mass_drift())


class TestNewCases:
    def test_dam_break_is_a_two_level_cap_at_rest(self, mesh3):
        case = resolve_case("dambreak")
        state, b = initialize(mesh3, case)
        levels = np.unique(state.h)
        assert set(levels) == {2000.0, 2500.0}
        assert np.all(state.u == 0.0)
        assert np.all(b == 0.0)
        assert scenario("dam_break").discontinuous

    def test_flow_over_ridge_has_bounded_ridge(self, mesh3):
        case = resolve_case("ridge")
        state, b = initialize(mesh3, case)
        assert float(np.max(b)) == pytest.approx(1500.0, rel=1e-3)
        assert float(np.min(b)) == 0.0
        assert np.all(state.h > 0)

    def test_balanced_jet_is_galewsky_without_the_bump(self, mesh3):
        bumped, _ = initialize(mesh3, resolve_case("galewsky"))
        flat, _ = initialize(mesh3, resolve_case("galewsky_balanced"))
        assert not np.array_equal(bumped.h, flat.h)
        # the bump is a small positive perturbation: the balanced field
        # is nowhere thicker than the perturbed one
        assert np.all(bumped.h - flat.h >= -1e-9)
