"""Unit tests of the icosahedral geodesic point generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    base_icosahedron,
    icosahedral_count,
    icosahedral_points,
    resolution_km,
    subdivision_level_for,
)
from repro.geometry.sphere import spherical_triangle_area


class TestBaseIcosahedron:
    def test_counts(self):
        verts, faces = base_icosahedron()
        assert verts.shape == (12, 3)
        assert faces.shape == (20, 3)

    def test_unit_vertices(self):
        verts, _ = base_icosahedron()
        assert np.allclose(np.linalg.norm(verts, axis=1), 1.0)

    def test_faces_ccw_outward(self):
        verts, faces = base_icosahedron()
        areas = spherical_triangle_area(
            verts[faces[:, 0]], verts[faces[:, 1]], verts[faces[:, 2]]
        )
        assert np.all(areas > 0)

    def test_faces_cover_sphere(self):
        verts, faces = base_icosahedron()
        total = np.sum(
            spherical_triangle_area(
                verts[faces[:, 0]], verts[faces[:, 1]], verts[faces[:, 2]]
            )
        )
        assert np.isclose(total, 4.0 * np.pi)

    def test_edge_lengths_equal(self):
        verts, faces = base_icosahedron()
        from repro.geometry import arc_length

        lengths = []
        for a, b, c in faces:
            lengths += [
                arc_length(verts[a], verts[b]),
                arc_length(verts[b], verts[c]),
                arc_length(verts[c], verts[a]),
            ]
        assert np.allclose(lengths, lengths[0])


class TestCounts:
    @pytest.mark.parametrize("level,expected", [(0, 12), (1, 42), (2, 162), (3, 642), (6, 40962), (9, 2621442)])
    def test_icosahedral_count(self, level, expected):
        assert icosahedral_count(level) == expected

    def test_negative_level_raises(self):
        with pytest.raises(ValueError):
            icosahedral_count(-1)

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_inverse(self, level):
        assert subdivision_level_for(icosahedral_count(level)) == level

    def test_inverse_rejects_non_geodesic(self):
        with pytest.raises(ValueError):
            subdivision_level_for(1000)

    def test_table3_resolutions(self):
        # Table III naming: sqrt(mean cell area) matches the paper's labels.
        assert 100 < resolution_km(6) < 130  # "120-km"
        assert 50 < resolution_km(7) < 65  # "60-km"
        assert 25 < resolution_km(8) < 33  # "30-km"
        assert 12 < resolution_km(9) < 17  # "15-km"


class TestPoints:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_count_and_norm(self, level):
        pts = icosahedral_points(level)
        assert pts.shape == (icosahedral_count(level), 3)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_no_duplicates(self):
        pts = icosahedral_points(3)
        from scipy.spatial import cKDTree

        assert len(cKDTree(pts).query_pairs(1e-9)) == 0

    def test_deterministic(self):
        assert np.array_equal(icosahedral_points(2), icosahedral_points(2))

    def test_original_vertices_first(self):
        verts, _ = base_icosahedron()
        pts = icosahedral_points(2)
        assert np.allclose(pts[:12], verts)

    def test_quasi_uniform_spacing(self):
        pts = icosahedral_points(3)
        from scipy.spatial import cKDTree

        d, _ = cKDTree(pts).query(pts, k=2)
        nearest = d[:, 1]
        assert nearest.max() / nearest.min() < 1.5
