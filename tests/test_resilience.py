"""Fault injection, per-layer recovery, watchdogs and auto-checkpointing.

The acceptance contract of the resilience layer: every *recoverable*
injected fault is bitwise-invisible (the faulted run's final state equals
the fault-free run's), every unrecoverable one raises ``FaultInjected``
rather than corrupting state, and numerical blow-ups are caught by the
watchdog instead of silently propagating NaN.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.engine import default_registry, dispatch, use_placements
from repro.engine.registry import KernelRegistry
from repro.engine.split import active_placements, run_split
from repro.hybrid.executor import Placement
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    active_recovery_policy,
    use_fault_plan,
    use_recovery_policy,
)
from repro.resilience.checkpoint import AutoCheckpointer
from repro.resilience.guards import NumericalBlowup, Watchdog, cfl_number
from repro.swm.config import SWConfig
from repro.swm.galewsky import galewsky_jet
from repro.swm.model import ShallowWaterModel, suggested_dt


def _stable_dt(mesh) -> float:
    return suggested_dt(mesh, galewsky_jet(), GRAVITY, cfl=0.5)


def _model(mesh, **overrides):
    case = galewsky_jet()
    kwargs = dict(dt=_stable_dt(mesh))
    kwargs.update(overrides)
    model = ShallowWaterModel(mesh, SWConfig(**kwargs))
    model.initialize(case)
    return model


# ---------------------------------------------------------------- fault plans
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("engine.nonsense", at=(1,))

    def test_spec_must_fire(self):
        with pytest.raises(ValueError, match="never fires"):
            FaultSpec("engine.dispatch")

    def test_one_based_indices(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("engine.dispatch", at=(0,))

    def test_probability_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("engine.dispatch", probability=1.5)

    def test_deterministic_at_indices(self):
        plan = FaultPlan([FaultSpec("engine.dispatch", at=(2, 4))])
        fired = []
        with use_fault_plan(plan):
            for i in range(1, 6):
                try:
                    plan.check("engine.dispatch", op="x")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
        assert fired == [False, True, False, True, False]

    def test_seeded_probability_reproducible(self):
        def fires(seed):
            plan = FaultPlan(
                [FaultSpec("halo.exchange", probability=0.3)], seed=seed
            )
            out = []
            for _ in range(50):
                try:
                    plan.check("halo.exchange")
                    out.append(0)
                except FaultInjected:
                    out.append(1)
            return out

        assert fires(7) == fires(7)
        assert fires(7) != fires(8)

    def test_max_fires_bounds(self):
        plan = FaultPlan([FaultSpec("halo.exchange", probability=1.0, max_fires=2)])
        fired = 0
        for _ in range(10):
            try:
                plan.check("halo.exchange")
            except FaultInjected:
                fired += 1
        assert fired == 2 and plan.total_fires == 2

    def test_match_filters_tags(self):
        plan = FaultPlan(
            [FaultSpec("engine.split.device", at=(1,), match={"device": "mic"})]
        )
        plan.check("engine.split.device", device="cpu")  # no match, no count
        with pytest.raises(FaultInjected) as exc:
            plan.check("engine.split.device", device="mic")
        assert exc.value.site == "engine.split.device"
        assert exc.value.tags == {"device": "mic"}

    def test_reset_rewinds(self):
        plan = FaultPlan([FaultSpec("halo.exchange", at=(1,), max_fires=1)])
        with pytest.raises(FaultInjected):
            plan.check("halo.exchange")
        plan.check("halo.exchange")  # spent
        plan.reset()
        with pytest.raises(FaultInjected):
            plan.check("halo.exchange")

    def test_no_plan_is_noop(self):
        from repro.resilience import active_fault_plan, fault_site

        assert active_fault_plan() is None
        fault_site("engine.dispatch", op="anything")  # must not raise


# ----------------------------------------------------------- dispatch recovery
class TestDispatchRecovery:
    def test_transient_fault_retried_bitwise(self, mesh3, edge_field):
        base = dispatch("cell_divergence", mesh3, edge_field)
        plan = FaultPlan(
            [FaultSpec("engine.dispatch", at=(1,), max_fires=1,
                       match={"op": "cell_divergence"})]
        )
        metrics = MetricsRegistry()
        with use_registry(metrics), use_fault_plan(plan):
            got = dispatch("cell_divergence", mesh3, edge_field)
        assert np.array_equal(base, got)
        (retry,) = metrics.series("resilience.recovery.retry")
        assert retry.value == 1
        assert not metrics.series("resilience.recovery.fallback")

    def test_persistent_fault_falls_back_to_numpy(self, mesh3, edge_field):
        base = dispatch("cell_divergence", mesh3, edge_field)  # numpy
        plan = FaultPlan(
            [FaultSpec("engine.dispatch", at=(1, 2), max_fires=2,
                       match={"op": "cell_divergence"})]
        )
        metrics = MetricsRegistry()
        with use_registry(metrics), use_fault_plan(plan):
            got = dispatch("cell_divergence", mesh3, edge_field, backend="codegen")
        assert np.array_equal(base, got)  # the fallback *is* numpy
        (fallback,) = metrics.series("resilience.recovery.fallback")
        assert fallback.value == 1 and fallback.tags["backend"] == "codegen"

    def test_unrecoverable_fault_propagates(self, mesh3, edge_field):
        plan = FaultPlan(
            [FaultSpec("engine.dispatch", probability=1.0,
                       match={"op": "cell_divergence"})]
        )
        policy = RecoveryPolicy(backend_retries=0, backend_fallback=False)
        with use_fault_plan(plan), use_recovery_policy(policy):
            with pytest.raises(FaultInjected):
                dispatch("cell_divergence", mesh3, edge_field)

    def test_real_errors_are_not_retried(self, mesh3):
        reg = KernelRegistry()
        calls = []

        def broken(mesh):
            calls.append(1)
            raise ValueError("a genuine bug, not a fault")

        reg.register("boom", "numpy", broken)
        plan = FaultPlan([FaultSpec("engine.dispatch", at=(99,))])
        with use_fault_plan(plan):
            with pytest.raises(ValueError, match="genuine bug"):
                reg.dispatch("boom", mesh3)
        assert len(calls) == 1  # exactly one attempt: no retry loop

    def test_ten_step_run_bitwise_under_faults(self, mesh3):
        ref = _model(mesh3)
        ref.run(steps=10)
        plan = FaultPlan(
            [
                FaultSpec("engine.dispatch", at=(5,), max_fires=1),
                FaultSpec("engine.dispatch", probability=0.002, max_fires=3),
            ],
            seed=11,
        )
        faulted = _model(mesh3)
        with use_fault_plan(plan):
            faulted.run(steps=10)
        assert plan.total_fires >= 1
        assert np.array_equal(ref.state.h, faulted.state.h)
        assert np.array_equal(ref.state.u, faulted.state.u)


# -------------------------------------------------------------- split recovery
class TestSplitRecovery:
    def test_device_failure_redone_bitwise_and_degraded(self, mesh3, edge_field):
        base = dispatch("cell_divergence", mesh3, edge_field)
        plan = FaultPlan(
            [FaultSpec("engine.split.device", at=(1,), match={"device": "mic"},
                       max_fires=1)]
        )
        metrics = MetricsRegistry()
        placement = Placement("split", 0.5)
        with use_registry(metrics), use_placements({"A3": placement}):
            with use_fault_plan(plan):
                got = dispatch("cell_divergence", mesh3, edge_field)
            # Degraded mode: the label now routes to the survivor alone.
            demoted = active_placements()["A3"]
            assert demoted.device == "cpu"
            again = dispatch("cell_divergence", mesh3, edge_field)
        assert np.array_equal(base, got)
        assert np.array_equal(base, again)
        (degraded,) = metrics.series("resilience.split.degraded")
        assert degraded.value == 1
        assert metrics.series("resilience.split.redo")
        # Leaving the block restores the pre-degradation routing.
        assert active_placements() == {}

    def test_both_devices_failing_is_unrecoverable(self, mesh3, edge_field):
        plan = FaultPlan(
            [FaultSpec("engine.split.device", probability=1.0, max_fires=2)]
        )
        with use_placements({"A3": Placement("split", 0.5)}), use_fault_plan(plan):
            with pytest.raises(FaultInjected):
                dispatch("cell_divergence", mesh3, edge_field)

    def test_degrade_disabled_propagates(self, mesh3, edge_field):
        plan = FaultPlan(
            [FaultSpec("engine.split.device", at=(1,), match={"device": "cpu"})]
        )
        policy = RecoveryPolicy(split_degrade=False)
        with use_placements({"A3": Placement("split", 0.5)}):
            with use_fault_plan(plan), use_recovery_policy(policy):
                with pytest.raises(FaultInjected):
                    dispatch("cell_divergence", mesh3, edge_field)

    def test_active_placements_returns_copy(self):
        with use_placements({"A1": Placement("split", 0.5)}):
            snapshot = active_placements()
            snapshot.clear()
            snapshot["A9"] = Placement("cpu")
            assert set(active_placements()) == {"A1"}

    def test_degenerate_single_output_runs_unsplit(self, mesh3):
        from repro.engine.registry import OpEntry

        class _Points:
            def __init__(self, n):
                self.n = n

            def count(self, mesh):
                return self.n

        calls = []

        def fn(mesh, x):
            calls.append(1)
            return np.array([x.sum()])

        entry = OpEntry(
            op="scalar_sum",
            input_point=_Points(5),
            output_point=_Points(1),
            stencil=lambda mesh: np.arange(5)[None, :],
        )
        x = np.arange(5.0)
        out = run_split(entry, fn, "numpy", None, (x,), Placement("split", 0.5))
        assert np.array_equal(out, np.array([10.0]))
        assert len(calls) == 1  # one unsplit execution, not two empty shares


# --------------------------------------------------------------- halo recovery
class TestHaloRecovery:
    def _decomposed(self, mesh, steps, plan=None):
        from repro.parallel.runner import DecomposedShallowWater

        case = galewsky_jet()
        config = SWConfig(dt=suggested_dt(mesh, case, GRAVITY, cfl=0.5))
        runner = DecomposedShallowWater(mesh, 2, case, config)
        if plan is None:
            runner.run(steps)
        else:
            with use_fault_plan(plan):
                runner.run(steps)
        return runner.gather_state()

    def test_faulted_exchange_retried_bitwise(self, mesh3):
        ref = self._decomposed(mesh3, 2)
        plan = FaultPlan([FaultSpec("halo.exchange", at=(3,), max_fires=1)])
        metrics = MetricsRegistry()
        with use_registry(metrics):
            got = self._decomposed(mesh3, 2, plan)
        assert plan.total_fires == 1
        assert np.array_equal(ref.h, got.h)
        assert np.array_equal(ref.u, got.u)
        (retry,) = metrics.series("resilience.recovery.retry")
        assert retry.tags["site"] == "halo.exchange"

    def test_backoff_accounted(self, mesh3):
        plan = FaultPlan([FaultSpec("halo.exchange", at=(1, 2), max_fires=2)])
        metrics = MetricsRegistry()
        policy = RecoveryPolicy(halo_retries=2, halo_backoff_s=0.5)
        with use_registry(metrics), use_recovery_policy(policy):
            self._decomposed(mesh3, 1, plan)
        (backoff,) = metrics.series("resilience.halo.backoff_s")
        assert backoff.value == pytest.approx(0.5 + 1.0)  # 0.5 * (2**0 + 2**1)

    def test_retries_exhausted_raises(self, mesh3):
        plan = FaultPlan([FaultSpec("halo.exchange", probability=1.0)])
        policy = RecoveryPolicy(halo_retries=1)
        with use_recovery_policy(policy):
            with pytest.raises(FaultInjected):
                self._decomposed(mesh3, 1, plan)


# ----------------------------------------------------------- transfer recovery
class TestTransferRecovery:
    @pytest.fixture(scope="class")
    def executor(self):
        from repro.dataflow.build import build_step_graph
        from repro.hybrid.executor import HybridExecutor
        from repro.hybrid.schedule import node_times, pattern_level_assignment
        from repro.hybrid.stepmodel import _cpu_parallel_model, _mic_model, _perf_config
        from repro.machine.counts import MeshCounts
        from repro.machine.interconnect import TransferModel
        from repro.machine.spec import PAPER_NODE

        dfg = build_step_graph(_perf_config())
        counts = MeshCounts(nCells=40962, name="120-km")
        times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
        transfer = TransferModel(PAPER_NODE.pcie_bw_gbs, PAPER_NODE.pcie_latency_us)
        ex = HybridExecutor(dfg, times, counts, transfer)
        return dfg, ex, pattern_level_assignment(dfg, times)

    def test_faulted_transfer_rescheduled(self, executor):
        dfg, ex, assignment = executor
        clean = ex.run(assignment)
        plan = FaultPlan([FaultSpec("hybrid.transfer", at=(1,), max_fires=1)])
        metrics = MetricsRegistry()
        with use_registry(metrics), use_fault_plan(plan):
            faulted = ex.run(assignment)
        faulted.validate_no_overlap()
        faulted.validate_dependencies(dfg)
        retried = [t for t in faulted.tasks if t.name.startswith("xfer!")]
        assert len(retried) == 1
        assert faulted.makespan >= clean.makespan
        (wasted,) = metrics.series("resilience.transfer.wasted_bytes")
        assert wasted.value > 0

    def test_retries_exhausted_raises(self, executor):
        _, ex, assignment = executor
        plan = FaultPlan([FaultSpec("hybrid.transfer", probability=1.0)])
        with use_fault_plan(plan):
            with pytest.raises(FaultInjected):
                ex.run(assignment)


# ------------------------------------------------------------------- watchdogs
class TestWatchdog:
    def test_nan_scan_names_field_and_step(self, mesh3):
        model = _model(mesh3)
        model.run(steps=1)
        watchdog = Watchdog(mesh3, model.b_cell, GRAVITY)
        state, diag = model.state, model.diagnostics
        assert watchdog.check(2, state, diag, model.config.dt) is None
        state.h[5] = np.nan
        report = watchdog.check(3, state, diag, model.config.dt)
        assert report is not None
        assert (report.guard, report.field, report.step) == ("finite", "h", 3)
        assert "'h'" in report.message() and "step 3" in report.message()

    def test_inf_in_velocity_detected(self, mesh3):
        model = _model(mesh3)
        model.run(steps=1)
        watchdog = Watchdog(mesh3, model.b_cell, GRAVITY)
        model.state.u[0] = np.inf
        report = watchdog.check(1, model.state, model.diagnostics, 1.0)
        assert report.guard == "finite" and report.field == "u"

    def test_cfl_number_tracks_suggested_dt(self, mesh3):
        model = _model(mesh3)  # dt from suggested_dt(cfl=0.5)
        cfl = cfl_number(
            mesh3, model.state, model.diagnostics, model.b_cell, GRAVITY,
            model.config.dt,
        )
        # Initial state: the running CFL must sit near the requested 0.5
        # (tangential velocity adds a little over the cell-centre estimate).
        assert 0.3 < cfl < 0.8

    def test_mass_drift_guard(self, mesh3):
        model = _model(mesh3)
        watchdog = Watchdog(mesh3, model.b_cell, GRAVITY, mass_drift=1e-6)
        state, diag = model.state, model.diagnostics
        assert watchdog.check(1, state, diag, 1.0) is None  # sets reference
        state.h *= 1.01
        report = watchdog.check(2, state, diag, 1.0)
        assert report.guard == "mass_drift" and report.value > 1e-6

    def test_unstable_run_halts_with_diagnostic(self, mesh3):
        model = _model(mesh3, dt=40.0 * _stable_dt(mesh3), guard_interval=1)
        with pytest.raises(NumericalBlowup) as exc:
            with np.errstate(all="ignore"):
                model.run(steps=10)
        report = exc.value.report
        assert report.guard in ("finite", "instability")
        assert "step" in str(exc.value)

    def test_cfl_guard_halts_before_blowup(self, mesh3):
        stable_dt = _stable_dt(mesh3)
        model = _model(
            mesh3, dt=4.0 * stable_dt, guard_interval=1, guard_cfl_max=1.0
        )
        with pytest.raises(NumericalBlowup) as exc:
            model.run(steps=10)
        assert exc.value.report.guard == "cfl"
        assert exc.value.report.step == 1

    def test_rollback_policy_halves_dt_and_completes(self, mesh3):
        stable_dt = _stable_dt(mesh3)
        model = _model(
            mesh3,
            dt=1.6 * stable_dt,
            guard_interval=1,
            guard_cfl_max=0.7,
            guard_policy="rollback",
            checkpoint_interval=2,
        )
        metrics = MetricsRegistry()
        with use_registry(metrics):
            result = model.run(steps=6)
        assert result.steps == 6
        assert model.config.dt == pytest.approx(0.8 * stable_dt)
        assert np.isfinite(model.state.h).all()
        (rollback,) = metrics.series("resilience.checkpoint.rollback")
        assert rollback.value == 1
        # The surviving trajectory's clock, not the abandoned one's.
        assert result.elapsed_seconds == pytest.approx(6 * model.config.dt)

    def test_rollbacks_exhausted_halts(self, mesh3):
        stable_dt = _stable_dt(mesh3)
        model = _model(
            mesh3,
            dt=1.6 * stable_dt,
            guard_interval=1,
            guard_cfl_max=0.7,
            guard_policy="rollback",
            checkpoint_interval=2,
            max_rollbacks=0,
        )
        with pytest.raises(NumericalBlowup):
            model.run(steps=6)

    def test_rollback_without_checkpoints_halts(self, mesh3):
        stable_dt = _stable_dt(mesh3)
        model = _model(
            mesh3,
            dt=4.0 * stable_dt,
            guard_interval=1,
            guard_cfl_max=1.0,
            guard_policy="rollback",  # but checkpoint_interval == 0
        )
        with pytest.raises(NumericalBlowup):
            model.run(steps=4)

    def test_guard_config_validation(self):
        with pytest.raises(ValueError, match="guard_policy"):
            SWConfig(dt=1.0, guard_policy="panic")
        with pytest.raises(ValueError, match="guard_cfl_max"):
            SWConfig(dt=1.0, guard_cfl_max=-0.1)
        with pytest.raises(ValueError, match="halo_retries"):
            SWConfig(dt=1.0, halo_retries=-1)


# ------------------------------------------------------------- checkpointing
class TestAutoCheckpointer:
    def test_interval_cadence_and_pruning(self, mesh3, tmp_path):
        model = _model(mesh3, checkpoint_interval=2)
        model.run(steps=6, checkpoint_dir=tmp_path)
        # Saved at 0, 2, 4, 6; keep=2 retains the newest two.
        files = sorted(p.name for p in tmp_path.glob("auto-*.npz"))
        assert files == ["auto-00000004.npz", "auto-00000006.npz"]

    def test_rollback_restores_bitwise(self, mesh3):
        ref = _model(mesh3)
        ref.run(steps=4)

        model = _model(mesh3)
        ckpt = AutoCheckpointer(model, interval=2)
        model.run(steps=2)
        ckpt.save(2)
        model.run(steps=2)  # wander off...
        assert ckpt.rollback() == 2  # ...and rewind
        model.run(steps=2)  # replay: must land exactly where ref did
        assert np.array_equal(model.state.h, ref.state.h)
        assert np.array_equal(model.state.u, ref.state.u)

    def test_rollback_without_saves_raises(self, mesh3):
        model = _model(mesh3)
        ckpt = AutoCheckpointer(model, interval=1)
        with pytest.raises(RuntimeError, match="no auto-checkpoint"):
            ckpt.rollback()

    def test_validation(self, mesh3):
        model = _model(mesh3)
        with pytest.raises(ValueError):
            AutoCheckpointer(model, interval=0)
        with pytest.raises(ValueError):
            AutoCheckpointer(model, interval=1, keep=0)

    def test_torn_write_never_corrupts_published_file(
        self, mesh3, tmp_path, monkeypatch
    ):
        """A crash mid-write leaves the previous checkpoint byte-intact.

        Regression for the pre-atomic ``save_checkpoint`` that wrote the
        archive in place: dying mid-``savez`` left a torn npz under the
        published name.  Now the write lands on a ``*.tmp`` sibling and is
        published with ``os.replace``, so an aborted write must leave the
        old bytes untouched and loadable.
        """
        model = _model(mesh3)
        path = tmp_path / "restart.npz"
        model.save_checkpoint(path)
        good = path.read_bytes()

        def torn_savez(fh, **arrays):
            fh.write(good[: len(good) // 2])  # half an archive, then die
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(np, "savez_compressed", torn_savez)
        model.run(steps=1)
        with pytest.raises(OSError, match="mid-write"):
            model.save_checkpoint(path)
        monkeypatch.undo()

        assert path.read_bytes() == good
        resumed = ShallowWaterModel.from_checkpoint(mesh3, path)
        assert np.array_equal(resumed.state.h, np.load(path)["h"])

    def test_discovers_prior_checkpoints(self, mesh3, tmp_path):
        """A new checkpointer at an existing directory resumes its ledger."""
        ref = _model(mesh3)
        ref.run(steps=4)

        model = _model(mesh3)
        first = AutoCheckpointer(model, interval=2, directory=tmp_path)
        model.run(steps=2)
        first.save(2)

        # A fresh process constructing over the same directory sees the
        # prior save — and a *.tmp orphan or a .crc sidecar is not a
        # checkpoint.
        (tmp_path / "auto-00000009.npz.tmp").write_bytes(b"torn")
        (tmp_path / "auto-00000002.npz.crc").write_text("crc32 1 00000000\n")
        model2 = _model(mesh3)
        ckpt = AutoCheckpointer(model2, interval=2, directory=tmp_path)
        assert ckpt.last_step == 2
        assert ckpt.last_path == tmp_path / "auto-00000002.npz"
        assert ckpt.rollback() == 2
        model2.run(steps=2)
        assert np.array_equal(model2.state.h, ref.state.h)
        assert np.array_equal(model2.state.u, ref.state.u)

    def test_discard_after_drops_future_saves(self, mesh3, tmp_path):
        model = _model(mesh3)
        ckpt = AutoCheckpointer(model, interval=1, keep=10, directory=tmp_path)
        for step in (1, 2, 3):
            model.run(steps=1)
            ckpt.save(step)
        ckpt.discard_after(1)
        assert ckpt.last_step == 1
        assert sorted(p.name for p in tmp_path.glob("auto-*.npz")) == [
            "auto-00000001.npz"
        ]


# ------------------------------------------- checkpoint round-trip (satellite)
class TestCheckpointRoundTripBackends:
    @pytest.mark.parametrize("backend", ["numpy", "codegen"])
    def test_bitwise_continuation(self, mesh3, tmp_path, backend):
        """save/restore mid-run continues bitwise under both real backends."""
        full = _model(mesh3, backend=backend)
        full.run(steps=6)

        half = _model(mesh3, backend=backend)
        half.run(steps=3)
        path = tmp_path / f"restart-{backend}.npz"
        half.save_checkpoint(path)

        resumed = ShallowWaterModel.from_checkpoint(mesh3, path)
        assert resumed.config.backend == backend
        resumed.run(steps=3)
        assert np.array_equal(resumed.state.h, full.state.h)
        assert np.array_equal(resumed.state.u, full.state.u)


# ------------------------------------------------------------ policy plumbing
class TestRecoveryPolicy:
    def test_defaults_installed(self):
        policy = active_recovery_policy()
        assert policy.backend_retries >= 0 and policy.backend_fallback

    def test_context_restores(self):
        before = active_recovery_policy()
        with use_recovery_policy(RecoveryPolicy(halo_retries=9)) as p:
            assert active_recovery_policy() is p
        assert active_recovery_policy() is before

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(backend_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(halo_backoff_s=-0.5)

    def test_config_builds_policy(self):
        cfg = SWConfig(dt=1.0, backend_retries=3, halo_backoff_s=0.25)
        policy = cfg.recovery_policy()
        assert policy.backend_retries == 3
        assert policy.halo_backoff_s == 0.25


# ------------------------------------------------------------------------ CLI
class TestCLI:
    def test_selftest_subprocess(self):
        src = Path(__file__).parent.parent / "src"
        result = subprocess.run(
            [sys.executable, "-m", "repro.resilience", "--selftest"],
            capture_output=True,
            text=True,
            timeout=600,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr[-2000:]
        assert "bitwise" in result.stdout
