"""Unit tests of the benchmark-harness rendering utilities."""

from __future__ import annotations

from repro.bench import (
    FIG6_PAPER,
    FIG7_PAPER,
    TABLE_III_PAPER,
    fmt_speedup,
    fmt_time,
    render_series,
    render_table,
)


class TestFormatting:
    def test_fmt_time_scales(self):
        assert fmt_time(2.5) == "2.500 s"
        assert fmt_time(0.002) == "2.00 ms"
        assert fmt_time(5e-6) == "5.0 us"

    def test_fmt_speedup(self):
        assert fmt_speedup(8.349) == "8.35x"


class TestRenderTable:
    def test_contains_cells(self):
        out = render_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        assert "T" in out and "333" in out and "bb" in out

    def test_column_alignment(self):
        out = render_table("T", ["col"], [["x"], ["longer"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_render_series(self):
        out = render_series(
            "S", "n", [1, 2], {"cpu": [1.0, 2.0], "mic": [0.5, 0.25]}
        )
        assert "cpu" in out and "mic" in out and "500.00 ms" in out


class TestPaperData:
    def test_fig7_consistency(self):
        # The quoted headline speedups are recoverable from the bars.
        serial, kernel, pattern = FIG7_PAPER[2621442]
        assert abs(serial / kernel - 6.05) < 0.05
        assert abs(serial / pattern - 8.35) < 0.05

    def test_fig6_monotone(self):
        values = list(FIG6_PAPER.values())
        assert values == sorted(values)

    def test_table3_matches_formula(self):
        for cells in TABLE_III_PAPER.values():
            # Every mesh is icosahedral: 10 * 4^k + 2.
            k = 0
            while 10 * 4**k + 2 < cells:
                k += 1
            assert 10 * 4**k + 2 == cells
