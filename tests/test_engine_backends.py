"""Backend equivalence: numpy / scatter / codegen / sparse agree on every operator.

The refactor's correctness contract: selecting a backend changes *how* a
pattern executes, never *what* it computes.  Gather vs scatter reassociates
the reductions, so those agree to round-off; the compiled codegen kernels
that the seed suite already proves bitwise-equal must stay bitwise-equal
through the registry.  The full-model check integrates the Galewsky jet
under each backend and requires <= 1e-12 relative agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.engine import BACKENDS, dispatch
from repro.geometry import lloyd_relax, normalize
from repro.mesh import Mesh

# Reassociation tolerance for gather-vs-scatter reductions (matches the
# operator seed tests comparing repro.swm.reference to repro.swm.operators).
RTOL = 1e-11

# (op, input point types) for every registered stencil operator.
_OPS = [
    ("flux_divergence", ("edge", "edge")),
    ("kinetic_energy", ("edge",)),
    ("cell_divergence", ("edge",)),
    ("velocity_reconstruction", ("edge",)),
    ("coriolis_edge_term", ("edge", "edge", "edge")),
    ("tangential_velocity", ("edge",)),
    ("d2fdx2", ("cell",)),
    ("cell_to_edge_mean", ("cell",)),
    ("vertex_from_cells_kite", ("cell",)),
    ("cell_from_vertices_kite", ("vertex",)),
    ("vertex_to_edge_mean", ("vertex",)),
    ("vertex_curl", ("edge",)),
    ("edge_gradient_of_cell", ("cell",)),
    ("edge_gradient_of_vertex", ("vertex",)),
]

# Ops whose codegen kernels the seed suite proves bitwise-equal to the
# hand-written operators (test_codegen.py uses np.array_equal for these).
_CODEGEN_BITWISE = {
    "cell_divergence",
    "kinetic_energy",
    "vertex_curl",
    "tangential_velocity",
    "vertex_from_cells_kite",
}


def _fields(mesh, kinds, rng):
    n = {"cell": mesh.nCells, "edge": mesh.nEdges, "vertex": mesh.nVertices}
    return tuple(rng.standard_normal(n[kind]) for kind in kinds)


def _as_arrays(result):
    """Normalize tuple-valued ops (d2fdx2) to a tuple of arrays."""
    return result if isinstance(result, tuple) else (result,)


@pytest.fixture(scope="module", params=[3, 41])
def scvt_mesh(request):
    """Random (non-icosahedral) SCVT — backend agreement must not rely on
    icosahedral symmetry."""
    rng = np.random.default_rng(request.param)
    pts = lloyd_relax(normalize(rng.standard_normal((150, 3))), iterations=60).points
    return Mesh.from_points(pts, name=f"random150-{request.param}")


class TestOperatorEquivalence:
    @pytest.mark.parametrize("op,kinds", _OPS, ids=[o for o, _ in _OPS])
    def test_backends_agree_on_mesh3(self, mesh3, rng, op, kinds):
        fields = _fields(mesh3, kinds, rng)
        results = {
            b: _as_arrays(dispatch(op, mesh3, *fields, backend=b)) for b in BACKENDS
        }
        for backend in ("scatter", "codegen", "sparse"):
            for got, want in zip(results[backend], results["numpy"]):
                np.testing.assert_allclose(got, want, rtol=RTOL, atol=1e-14, err_msg=f"{op} under {backend}")

    @pytest.mark.parametrize("op,kinds", _OPS, ids=[o for o, _ in _OPS])
    def test_backends_agree_on_random_scvt(self, scvt_mesh, rng, op, kinds):
        fields = _fields(scvt_mesh, kinds, rng)
        results = {
            b: _as_arrays(dispatch(op, scvt_mesh, *fields, backend=b))
            for b in BACKENDS
        }
        for backend in ("scatter", "codegen", "sparse"):
            for got, want in zip(results[backend], results["numpy"]):
                np.testing.assert_allclose(got, want, rtol=RTOL, atol=1e-14, err_msg=f"{op} under {backend}")

    @pytest.mark.parametrize("op", sorted(_CODEGEN_BITWISE))
    def test_codegen_bitwise_where_seed_claims(self, mesh3, rng, op):
        kinds = dict(_OPS)[op]
        fields = _fields(mesh3, kinds, rng)
        got = dispatch(op, mesh3, *fields, backend="codegen")
        want = dispatch(op, mesh3, *fields, backend="numpy")
        assert np.array_equal(got, want)


class TestFullModelEquivalence:
    """The acceptance run: a Galewsky RK-4 integration under each backend
    selected purely through ``SWConfig.backend`` agrees to <= 1e-12."""

    @pytest.fixture(scope="class")
    def run_states(self):
        from repro.mesh import cached_mesh
        from repro.swm.config import SWConfig
        from repro.swm.galewsky import galewsky_jet
        from repro.swm.model import ShallowWaterModel, suggested_dt

        mesh = cached_mesh(2)
        case = galewsky_jet()
        states = {}
        for backend in BACKENDS:
            config = SWConfig(
                dt=suggested_dt(mesh, case, GRAVITY),
                thickness_adv_order=3,
                backend=backend,
            )
            model = ShallowWaterModel(mesh, config)
            model.initialize(case)
            result = model.run(steps=5)
            states[backend] = (result.state.h, result.state.u)
        return states

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "numpy"])
    def test_galewsky_run_agrees(self, run_states, backend):
        h_ref, u_ref = run_states["numpy"]
        h, u = run_states[backend]
        rel_h = np.max(np.abs(h - h_ref)) / np.max(np.abs(h_ref))
        rel_u = np.max(np.abs(u - u_ref)) / np.max(np.abs(u_ref))
        assert rel_h <= 1e-12
        assert rel_u <= 1e-12

    def test_invalid_backend_rejected(self):
        from repro.swm.config import SWConfig

        with pytest.raises(ValueError, match="backend"):
            SWConfig(dt=60.0, backend="fortran")


def test_profiled_integrator_buckets_by_backend():
    """KernelProfile keeps its old API and additionally buckets per backend."""
    from repro.mesh import cached_mesh
    from repro.swm.config import SWConfig
    from repro.swm.galewsky import galewsky_jet
    from repro.swm.model import suggested_dt
    from repro.swm.profiling import ProfiledIntegrator
    from repro.swm.testcases import initialize

    mesh = cached_mesh(2)
    case = galewsky_jet()
    config = SWConfig(
        dt=suggested_dt(mesh, case, GRAVITY), backend="codegen"
    )
    state, b_cell = initialize(mesh, case)
    integ = ProfiledIntegrator(
        mesh, config, b_cell, config.coriolis(mesh.metrics.latVertex)
    )
    diag = integ.diagnostics_for(state)
    integ.step(state, diag)

    profile = integ.profile
    assert profile.steps == 1
    assert set(profile.by_backend) == {"codegen"}
    # The per-backend bucket partitions the classic accumulator exactly.
    assert profile.by_backend["codegen"] == profile.seconds
    from repro.patterns.catalog import KERNELS

    assert profile.dominant() in KERNELS
