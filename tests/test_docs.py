"""The documentation's code blocks are doctests; run them in tier 1.

The same files also run under ``pytest --doctest-glob='*.md' docs/``; this
module exists so the default ``pytest tests/`` invocation covers them too.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"
OPTIONFLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE

DOCTESTED = [
    "api.md",
    "observability.md",
    "architecture.md",
    "backends.md",
    "resilience.md",
    "plans.md",
    "parallel.md",
    "ensemble.md",
    "cases.md",
]


@pytest.mark.parametrize("name", DOCTESTED)
def test_doc_examples(name):
    results = doctest.testfile(
        str(DOCS / name),
        module_relative=False,
        optionflags=OPTIONFLAGS,
        verbose=False,
    )
    assert results.attempted > 0, f"{name} has no doctests"
    assert results.failed == 0


def test_all_docs_accounted_for():
    """New docs must either carry doctests or be consciously excluded."""
    known_plain = {"numerics.md", "performance_model.md"}
    on_disk = {p.name for p in DOCS.glob("*.md")}
    assert on_disk == known_plain | set(DOCTESTED)
