"""Shared fixtures: cached session meshes and deterministic random fields."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def mesh3():
    """642-cell SCVT mesh (icosahedral level 3, Lloyd-relaxed)."""
    from repro.mesh import cached_mesh

    return cached_mesh(3)


@pytest.fixture(scope="session")
def mesh4():
    """2,562-cell SCVT mesh (icosahedral level 4, Lloyd-relaxed)."""
    from repro.mesh import cached_mesh

    return cached_mesh(4)


@pytest.fixture()
def rng():
    return np.random.default_rng(20150815)  # ICPP 2015


@pytest.fixture()
def edge_field(mesh3, rng):
    return rng.standard_normal(mesh3.nEdges)


@pytest.fixture()
def cell_field(mesh3, rng):
    return rng.standard_normal(mesh3.nCells)


@pytest.fixture()
def vertex_field(mesh3, rng):
    return rng.standard_normal(mesh3.nVertices)
