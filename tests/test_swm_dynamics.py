"""Unit tests of diagnostics, tendencies, boundary and time stepping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY, OMEGA
from repro.swm import (
    RK_ACCUMULATE_WEIGHTS,
    RK_SUBSTEP_WEIGHTS,
    RK4Integrator,
    SWConfig,
    State,
    boundary_edge_mask,
    compute_solve_diagnostics,
    compute_tend,
    enforce_boundary_edge,
    initialize,
    steady_zonal_flow,
    suggested_dt,
)


@pytest.fixture(scope="module")
def tc2_setup(mesh3):
    case = steady_zonal_flow()
    state, b = initialize(mesh3, case)
    cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY))
    f_vertex = cfg.coriolis(mesh3.metrics.latVertex)
    return case, state, b, cfg, f_vertex


class TestDiagnostics:
    def test_shapes(self, mesh3, tc2_setup):
        _, state, _, cfg, fv = tc2_setup
        diag = compute_solve_diagnostics(mesh3, state, fv, cfg)
        assert diag.h_edge.shape == (mesh3.nEdges,)
        assert diag.ke.shape == (mesh3.nCells,)
        assert diag.vorticity.shape == (mesh3.nVertices,)
        assert diag.pv_edge.shape == (mesh3.nEdges,)

    def test_h_vertex_positive(self, mesh3, tc2_setup):
        _, state, _, cfg, fv = tc2_setup
        diag = compute_solve_diagnostics(mesh3, state, fv, cfg)
        assert np.all(diag.h_vertex > 0)

    def test_nonpositive_h_raises(self, mesh3, tc2_setup):
        _, state, _, cfg, fv = tc2_setup
        bad = State(h=-np.abs(state.h), u=state.u)
        with pytest.raises(FloatingPointError):
            compute_solve_diagnostics(mesh3, bad, fv, cfg)

    def test_tc2_vorticity_matches_analytic(self, mesh4):
        """TC2 relative vorticity: curl of u0*cos(lat)*east = 2 u0 sin(lat)/R."""
        case = steady_zonal_flow()
        state, _ = initialize(mesh4, case)
        cfg = SWConfig(dt=100.0)
        fv = cfg.coriolis(mesh4.metrics.latVertex)
        diag = compute_solve_diagnostics(mesh4, state, fv, cfg)
        u0 = 2.0 * np.pi * mesh4.radius / (12.0 * 86400.0)
        analytic = 2.0 * u0 * np.sin(mesh4.metrics.latVertex) / mesh4.radius
        err = np.abs(diag.vorticity - analytic).max() / np.abs(analytic).max()
        assert err < 0.05

    def test_tc2_pv_matches_analytic(self, mesh4):
        case = steady_zonal_flow()
        state, _ = initialize(mesh4, case)
        cfg = SWConfig(dt=100.0)
        fv = cfg.coriolis(mesh4.metrics.latVertex)
        diag = compute_solve_diagnostics(mesh4, state, fv, cfg)
        u0 = 2.0 * np.pi * mesh4.radius / (12.0 * 86400.0)
        lat = mesh4.metrics.latVertex
        h = case.thickness(mesh4.metrics.xVertex)
        analytic = (2.0 * OMEGA * np.sin(lat) + 2.0 * u0 * np.sin(lat) / mesh4.radius) / h
        err = np.abs(diag.pv_vertex - analytic).max() / np.abs(analytic).max()
        assert err < 0.05

    def test_apvm_off_gives_plain_average(self, mesh3, tc2_setup):
        _, state, _, _, fv = tc2_setup
        cfg0 = SWConfig(dt=100.0, apvm_upwinding=0.0)
        diag0 = compute_solve_diagnostics(mesh3, state, fv, cfg0)
        v = mesh3.connectivity.verticesOnEdge
        expected = 0.5 * (diag0.pv_vertex[v[:, 0]] + diag0.pv_vertex[v[:, 1]])
        np.testing.assert_allclose(diag0.pv_edge, expected, rtol=1e-13)

    def test_apvm_changes_pv_edge(self, mesh3, tc2_setup):
        _, state, _, _, fv = tc2_setup
        d_on = compute_solve_diagnostics(mesh3, state, fv, SWConfig(dt=1000.0))
        d_off = compute_solve_diagnostics(
            mesh3, state, fv, SWConfig(dt=1000.0, apvm_upwinding=0.0)
        )
        # The upwinding correction is a small but strictly nonzero shift.
        diff = np.abs(d_on.pv_edge - d_off.pv_edge).max()
        assert diff > 0.0
        assert diff < 0.1 * np.abs(d_off.pv_edge).max()


class TestTendencies:
    def test_steady_state_small_tendencies(self, mesh4):
        """TC2 is steady: discrete tendencies are pure truncation error."""
        case = steady_zonal_flow()
        state, b = initialize(mesh4, case)
        cfg = SWConfig(dt=100.0)
        fv = cfg.coriolis(mesh4.metrics.latVertex)
        diag = compute_solve_diagnostics(mesh4, state, fv, cfg)
        tend_h, tend_u = compute_tend(mesh4, state, diag, b, cfg)
        # Scale: the advective time scale u0 ~ 38 m/s, h ~ 3000 m: raw
        # nonlinear terms are O(u*h/dx) ~ 1e-1; the steady state cancels
        # them to O(truncation).
        assert np.abs(tend_h).max() < 2e-3 * np.abs(state.h).max() / 1e3
        assert np.abs(tend_u).max() < 1e-4 * np.abs(state.u).max()

    def test_rest_state_stays_at_rest(self, mesh3):
        """Flat surface at rest: all tendencies vanish identically."""
        cfg = SWConfig(dt=100.0)
        fv = cfg.coriolis(mesh3.metrics.latVertex)
        state = State(h=np.full(mesh3.nCells, 1000.0), u=np.zeros(mesh3.nEdges))
        b = np.zeros(mesh3.nCells)
        diag = compute_solve_diagnostics(mesh3, state, fv, cfg)
        tend_h, tend_u = compute_tend(mesh3, state, diag, b, cfg)
        assert np.abs(tend_h).max() == 0.0
        assert np.abs(tend_u).max() < 1e-16

    def test_lake_at_rest_with_topography(self, mesh3):
        """h + b = const at rest: the pressure gradient must cancel b."""
        cfg = SWConfig(dt=100.0)
        fv = cfg.coriolis(mesh3.metrics.latVertex)
        b = 500.0 * (1.0 + mesh3.metrics.xCell[:, 2])
        state = State(h=3000.0 - b, u=np.zeros(mesh3.nEdges))
        diag = compute_solve_diagnostics(mesh3, state, fv, cfg)
        tend_h, tend_u = compute_tend(mesh3, state, diag, b, cfg)
        assert np.abs(tend_h).max() == 0.0
        assert np.abs(tend_u).max() < 1e-10

    def test_viscosity_adds_dissipation(self, mesh3, tc2_setup):
        _, state, b, _, fv = tc2_setup
        cfg0 = SWConfig(dt=100.0, viscosity=0.0)
        cfg1 = SWConfig(dt=100.0, viscosity=1e5)
        diag = compute_solve_diagnostics(mesh3, state, fv, cfg0)
        _, tu0 = compute_tend(mesh3, state, diag, b, cfg0)
        _, tu1 = compute_tend(mesh3, state, diag, b, cfg1)
        assert not np.allclose(tu0, tu1)

    def test_mass_tendency_integral_zero(self, mesh3, tc2_setup, rng):
        _, state, b, cfg, fv = tc2_setup
        noisy = State(h=state.h, u=state.u + rng.standard_normal(mesh3.nEdges))
        diag = compute_solve_diagnostics(mesh3, noisy, fv, cfg)
        tend_h, _ = compute_tend(mesh3, noisy, diag, b, cfg)
        total = np.sum(tend_h * mesh3.areaCell)
        scale = np.sum(np.abs(tend_h) * mesh3.areaCell)
        assert abs(total) < 1e-12 * max(scale, 1e-30)


class TestBoundary:
    def test_sphere_has_no_boundary(self, mesh3):
        assert not boundary_edge_mask(mesh3).any()

    def test_masked_edges_zeroed(self, mesh3, edge_field):
        cell_mask = mesh3.metrics.latCell > 0.3
        mask = boundary_edge_mask(mesh3, cell_mask)
        assert mask.any()
        tend = edge_field.copy()
        enforce_boundary_edge(tend, mask)
        assert np.all(tend[mask] == 0.0)
        assert np.array_equal(tend[~mask], edge_field[~mask])

    def test_noop_without_mask(self, mesh3, edge_field):
        tend = edge_field.copy()
        enforce_boundary_edge(tend, np.zeros(mesh3.nEdges, dtype=bool))
        assert np.array_equal(tend, edge_field)


class TestRK4:
    def test_weights(self):
        assert sum(RK_ACCUMULATE_WEIGHTS) == pytest.approx(1.0)
        assert RK_SUBSTEP_WEIGHTS == (0.5, 0.5, 1.0)

    def test_step_conserves_mass_exactly(self, mesh3, tc2_setup):
        _, state, b, cfg, fv = tc2_setup
        integ = RK4Integrator(mesh3, cfg, b, fv)
        diag = integ.diagnostics_for(state)
        result = integ.step(state, diag)
        m0 = np.sum(state.h * mesh3.areaCell)
        m1 = np.sum(result.state.h * mesh3.areaCell)
        assert abs(m1 - m0) / m0 < 1e-14

    def test_step_returns_fresh_state(self, mesh3, tc2_setup):
        _, state, b, cfg, fv = tc2_setup
        integ = RK4Integrator(mesh3, cfg, b, fv)
        diag = integ.diagnostics_for(state)
        before = state.h.copy()
        result = integ.step(state, diag)
        assert np.array_equal(state.h, before)  # input untouched
        assert result.state.h is not state.h

    def test_convergence_in_dt(self, mesh3):
        """RK-4: halving dt leaves the 1-step-vs-2-half-steps gap ~ dt^5."""
        case = steady_zonal_flow()
        state, b = initialize(mesh3, case)

        def advance(dt, n):
            cfg = SWConfig(dt=dt, apvm_upwinding=0.0)
            fv = cfg.coriolis(mesh3.metrics.latVertex)
            integ = RK4Integrator(mesh3, cfg, b, fv)
            s, d = state, integ.diagnostics_for(state)
            for _ in range(n):
                r = integ.step(s, d)
                s, d = r.state, r.diagnostics
            return s

        dt = 400.0
        coarse = advance(dt, 1)
        fine = advance(dt / 2, 2)
        finer = advance(dt / 4, 4)
        e1 = np.abs(coarse.u - fine.u).max()
        e2 = np.abs(fine.u - finer.u).max()
        # Order-4 method: error ratio ~ 2^4 = 16 (allow slack for round-off).
        assert e1 / max(e2, 1e-30) > 8.0

    def test_bad_shapes_rejected(self, mesh3, tc2_setup):
        _, state, b, cfg, fv = tc2_setup
        with pytest.raises(ValueError):
            RK4Integrator(mesh3, cfg, b[:-1], fv)
        with pytest.raises(ValueError):
            RK4Integrator(mesh3, cfg, b, fv[:-1])

    def test_boundary_mask_applied(self, mesh3, tc2_setup):
        _, state, b, cfg, fv = tc2_setup
        mask = np.zeros(mesh3.nEdges, dtype=bool)
        mask[:50] = True
        integ = RK4Integrator(mesh3, cfg, b, fv, boundary_mask=mask)
        diag = integ.diagnostics_for(state)
        result = integ.step(state, diag)
        np.testing.assert_array_equal(result.state.u[:50], state.u[:50])
