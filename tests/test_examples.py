"""Smoke tests: every example script runs end-to-end at small scale."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py", "2")
    assert "Error vs the exact steady solution" in out
    assert "mass drift" in out


def test_quickstart_codegen_backend():
    out = _run("quickstart.py", "2", "codegen")
    assert "backend = codegen" in out
    assert "Error vs the exact steady solution" in out


def test_mountain_wave():
    out = _run("mountain_wave.py", "1", "2")
    assert "Total height h + b" in out
    assert "max relative" in out


def test_hybrid_scheduling():
    out = _run("hybrid_scheduling.py", "40962")
    assert "Table I" in out
    assert "pattern-driven" in out
    assert "makespan" in out


@pytest.mark.slow
def test_scaling_study():
    out = _run("scaling_study.py")
    assert "strong scaling" in out
    assert "bitwise identical to serial: True" in out


def test_rossby_wave():
    out = _run("rossby_wave.py", "4", "3")
    assert "phase speed" in out
    assert "ratio" in out
