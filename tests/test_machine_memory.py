"""Unit tests of the device memory-footprint model (Section IV-A sizing)."""

from __future__ import annotations

import pytest

from repro.machine import MemoryFootprint, XEON_PHI_5110P, model_footprint
from repro.machine.counts import TABLE_III_MESHES, MeshCounts
from repro.swm import SWConfig


class TestFootprint:
    def test_paper_sizing_claim(self):
        """Paper: the 15-km offload data is 'about 5.3GB', within the Phi's
        memory.  Our array inventory prices to 5.2 GB — within 2%."""
        fp = model_footprint(
            TABLE_III_MESHES["15-km"], SWConfig(dt=1.0, thickness_adv_order=4)
        )
        assert fp.total_gb == pytest.approx(5.3, rel=0.05)
        assert fp.fits(XEON_PHI_5110P.memory_gb)

    def test_scales_linearly_with_cells(self):
        a = model_footprint(MeshCounts(nCells=100_000))
        b = model_footprint(MeshCounts(nCells=200_000))
        assert b.total_bytes == pytest.approx(2.0 * a.total_bytes, rel=0.01)

    def test_mesh_data_dominates(self):
        """The static mesh is the bulk — which is exactly why keeping it
        resident (Section IV-A) pays off."""
        fp = model_footprint(TABLE_III_MESHES["30-km"], SWConfig(dt=1.0))
        assert fp.mesh_bytes > fp.state_bytes + fp.diagnostic_bytes + fp.work_bytes

    def test_high_order_costs_more(self):
        counts = TABLE_III_MESHES["30-km"]
        lo = model_footprint(counts, SWConfig(dt=1.0, thickness_adv_order=2))
        hi = model_footprint(counts, SWConfig(dt=1.0, thickness_adv_order=4))
        assert hi.total_bytes > lo.total_bytes

    def test_categories_positive(self):
        fp = model_footprint(MeshCounts(nCells=1000))
        assert fp.mesh_bytes > 0
        assert fp.state_bytes > 0
        assert fp.diagnostic_bytes > 0
        assert fp.work_bytes > 0
        assert fp.total_bytes == pytest.approx(
            fp.mesh_bytes + fp.state_bytes + fp.diagnostic_bytes + fp.work_bytes
        )

    def test_does_not_fit_tiny_device(self):
        fp = model_footprint(TABLE_III_MESHES["15-km"])
        assert not fp.fits(1.0)


class TestScalingPointGain:
    def test_hybrid_gain(self):
        from repro.hybrid.stepmodel import LocalProblem
        from repro.parallel import ScalingPoint

        pt = ScalingPoint(
            n_procs=1,
            total_cells=100,
            local=LocalProblem(owned_cells=100, halo_cells=0),
            cpu_time=1.0,
            hybrid_time=0.125,
        )
        assert pt.hybrid_gain == pytest.approx(8.0)
