"""Property-based tests (hypothesis) on core invariants.

Strategies are kept small and deterministic-ish (bounded examples) so the
suite stays fast; each property encodes an invariant that must hold for *all*
inputs, not just the fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import (
    arc_length,
    normalize,
    polygon_centroid,
    rotate,
    spherical_triangle_area,
)

unit_vectors = hnp.arrays(
    np.float64,
    (3,),
    elements=st.floats(-1.0, 1.0, allow_nan=False),
).map(lambda v: normalize(v + np.array([0.05, 0.02, 0.01])))


finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestSphereProperties:
    @settings(max_examples=40, deadline=None)
    @given(a=unit_vectors, b=unit_vectors)
    def test_arc_length_symmetric_and_bounded(self, a, b):
        d = arc_length(a, b)
        assert 0.0 <= d <= np.pi + 1e-12
        assert np.isclose(d, arc_length(b, a))

    @settings(max_examples=40, deadline=None)
    @given(a=unit_vectors, b=unit_vectors, c=unit_vectors)
    def test_triangle_inequality(self, a, b, c):
        assert arc_length(a, c) <= arc_length(a, b) + arc_length(b, c) + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(a=unit_vectors, b=unit_vectors, c=unit_vectors)
    def test_triangle_area_antisymmetry(self, a, b, c):
        assert np.isclose(
            spherical_triangle_area(a, b, c),
            -spherical_triangle_area(a, c, b),
            atol=1e-12,
        )

    @settings(max_examples=40, deadline=None)
    @given(a=unit_vectors, b=unit_vectors, c=unit_vectors, angle=st.floats(-3.0, 3.0))
    def test_area_rotation_invariant(self, a, b, c, angle):
        axis = np.array([0.3, -0.2, 0.9])
        before = spherical_triangle_area(a, b, c)
        after = spherical_triangle_area(
            rotate(a, axis, angle), rotate(b, axis, angle), rotate(c, axis, angle)
        )
        assert np.isclose(before, after, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(a=unit_vectors, b=unit_vectors, c=unit_vectors)
    def test_centroid_inside_hull_direction(self, a, b, c):
        area = spherical_triangle_area(a, b, c)
        if abs(area) < 1e-3:  # skip degenerate triangles
            return
        cen = polygon_centroid(np.stack([a, b, c]))
        # The centroid direction has positive projection on the vertex mean.
        mean = a + b + c
        assert cen @ mean > 0


class TestReductionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        n_cells=st.integers(3, 30),
    )
    def test_all_forms_agree_on_random_graphs(self, data, n_cells):
        """Algorithms 2/3/4 agree for ANY cell/edge incidence structure."""
        from repro.reduction import (
            build_label_matrix,
            gather_label_matrix,
            irregular_reduction_loop,
            refactored_reduction_loop,
            scatter_add_signed,
        )

        n_edges = data.draw(st.integers(1, 60))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        # Random incidence: every edge picks two distinct cells.
        cells_on_edge = np.stack(
            [rng.integers(0, n_cells, n_edges), rng.integers(0, n_cells, n_edges)],
            axis=1,
        )
        bad = cells_on_edge[:, 0] == cells_on_edge[:, 1]
        cells_on_edge[bad, 1] = (cells_on_edge[bad, 0] + 1) % n_cells
        x = rng.standard_normal(n_edges)

        # Derive edgesOnCell from the incidence.
        rows: list[list[int]] = [[] for _ in range(n_cells)]
        for e, (c0, c1) in enumerate(cells_on_edge):
            rows[c0].append(e)
            rows[c1].append(e)
        max_deg = max(1, max(len(r) for r in rows))
        edges_on_cell = np.full((n_cells, max_deg), -1, dtype=np.int64)
        for c, r in enumerate(rows):
            edges_on_cell[c, : len(r)] = r
        n_edges_on_cell = np.array([len(r) for r in rows])

        a = irregular_reduction_loop(n_cells, cells_on_edge, x)
        b = scatter_add_signed(n_cells, cells_on_edge, x)
        c = refactored_reduction_loop(
            n_cells, cells_on_edge, edges_on_cell, n_edges_on_cell, x
        )
        label, eoc = build_label_matrix(cells_on_edge, edges_on_cell)
        d = gather_label_matrix(label, eoc, x)
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(a, c, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(c, d, rtol=1e-12, atol=1e-12)


class TestOperatorProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_divergence_linear(self, seed, mesh3):
        from repro.swm.operators import cell_divergence

        rng = np.random.default_rng(seed)
        u = rng.standard_normal(mesh3.nEdges)
        v = rng.standard_normal(mesh3.nEdges)
        alpha = float(rng.uniform(-3, 3))
        lhs = cell_divergence(mesh3, u + alpha * v)
        rhs = cell_divergence(mesh3, u) + alpha * cell_divergence(mesh3, v)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_global_divergence_theorem(self, seed, mesh3):
        from repro.swm.operators import cell_divergence

        rng = np.random.default_rng(seed)
        u = rng.standard_normal(mesh3.nEdges)
        total = np.sum(cell_divergence(mesh3, u) * mesh3.areaCell)
        scale = np.sum(np.abs(u) * mesh3.dvEdge)
        assert abs(total) <= 1e-11 * scale

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_coriolis_energy_neutral_any_u(self, seed, mesh3):
        """The TRiSK PV term never injects kinetic energy — for ANY velocity,
        thickness and PV fields — because the symmetric edge-PV average
        multiplies the antisymmetric weight matrix.  The energy weight of an
        edge is h_edge * dc * dv (KE density is h*K)."""
        from repro.swm.operators import coriolis_edge_term

        rng = np.random.default_rng(seed)
        u = rng.standard_normal(mesh3.nEdges)
        h_edge = rng.uniform(0.5, 2.0, mesh3.nEdges)
        q = rng.standard_normal(mesh3.nEdges)  # arbitrary PV field
        term = coriolis_edge_term(mesh3, u, h_edge, q)
        work = np.sum(u * h_edge * term * mesh3.dcEdge * mesh3.dvEdge)
        scale = np.sum(np.abs(u * h_edge) ** 2 * mesh3.dcEdge * mesh3.dvEdge)
        assert abs(work) <= 1e-10 * max(scale, 1e-30)


class TestCostModelProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n1=st.integers(1, 10**7),
        n2=st.integers(1, 10**7),
        threads=st.sampled_from([1, 10, 59, 236]),
        vectorized=st.booleans(),
        refactored=st.booleans(),
    )
    def test_time_monotone_in_points(self, n1, n2, threads, vectorized, refactored):
        from repro.machine import CostModel, ExecutionProfile, XEON_PHI_5110P
        from repro.patterns import build_catalog

        inst = build_catalog()[0]
        model = CostModel(
            XEON_PHI_5110P,
            ExecutionProfile(threads=threads, vectorized=vectorized, refactored=refactored),
        )
        lo, hi = min(n1, n2), max(n1, n2)
        assert model.instance_time(inst, lo) <= model.instance_time(inst, hi) + 1e-15

    @settings(max_examples=20, deadline=None)
    @given(n_bytes=st.floats(0, 1e10), n_bytes2=st.floats(0, 1e10))
    def test_transfer_monotone(self, n_bytes, n_bytes2):
        from repro.machine import TransferModel

        link = TransferModel(6.0, 10.0)
        lo, hi = min(n_bytes, n_bytes2), max(n_bytes, n_bytes2)
        assert link.time(lo) <= link.time(hi)


class TestStateProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), w=st.floats(1e-3, 1e3))
    def test_accumulate_then_subtract_roundtrip(self, seed, w, mesh3):
        from repro.swm import State
        from repro.swm.timestep import accumulative_update

        rng = np.random.default_rng(seed)
        h = rng.standard_normal(mesh3.nCells)
        u = rng.standard_normal(mesh3.nEdges)
        th = rng.standard_normal(mesh3.nCells)
        tu = rng.standard_normal(mesh3.nEdges)
        acc = State(h=h.copy(), u=u.copy())
        accumulative_update(acc, th, tu, w)
        accumulative_update(acc, th, tu, -w)
        np.testing.assert_allclose(acc.h, h, rtol=1e-9, atol=1e-9 * w)
        np.testing.assert_allclose(acc.u, u, rtol=1e-9, atol=1e-9 * w)
