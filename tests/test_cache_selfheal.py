"""Corrupted on-disk cache entries are quarantined and rebuilt, never fatal.

The self-healing contract of :mod:`repro.resilience.integrity`: truncating
or bit-flipping any cached ``.npz`` (mesh archive, compiled sparse
operator, composed plan matrix) must never crash a future run — the entry
is moved to ``quarantine/``, counted as ``resilience.cache.quarantined``
(tagged by cache kind), and rebuilt with correct results.  Before this
layer a truncated archive raised ``zipfile.BadZipFile`` out of ``np.load``
on every run that touched it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.resilience.integrity import (
    QUARANTINE_DIRNAME,
    checked_load,
    quarantine,
    seal,
    verify,
)


@pytest.fixture()
def cache_sandbox(tmp_path, monkeypatch):
    """Redirect every disk cache into tmp and clear the memory layers."""
    from repro.engine.plan import clear_plan_memory_cache
    from repro.engine.sparse import clear_operator_memory_cache
    from repro.mesh.cache import clear_memory_cache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_memory_cache()
    clear_plan_memory_cache()
    clear_operator_memory_cache()
    yield tmp_path
    clear_memory_cache()
    clear_plan_memory_cache()
    clear_operator_memory_cache()


def _quarantined(registry: MetricsRegistry, kind: str) -> float:
    total = 0.0
    for s in registry.series("resilience.cache.quarantined"):
        if s.tags.get("kind") == kind:
            total += s.value
    return total


def _bitflip(path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def _truncate(path) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 3])


# ------------------------------------------------------------- unit layer
class TestIntegrityPrimitives:
    def test_seal_verify_roundtrip(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"payload bytes")
        assert verify(path) is None  # legacy: no sidecar yet
        sidecar = seal(path)
        assert sidecar.name == "entry.npz.crc"
        assert verify(path) is True

    def test_verify_detects_damage(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"payload bytes")
        seal(path)
        _bitflip(path)
        assert verify(path) is False

    def test_verify_detects_truncation_same_crc_impossible(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"x" * 100)
        seal(path)
        path.write_bytes(b"x" * 50)  # length check catches it
        assert verify(path) is False

    def test_unparseable_sidecar_is_suspect(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"payload")
        seal(path)
        path.with_name("entry.npz.crc").write_text("not a sidecar")
        assert verify(path) is False

    def test_quarantine_moves_file_sidecar_and_counts(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"payload")
        seal(path)
        registry = MetricsRegistry()
        with use_registry(registry):
            dest = quarantine(path, kind="operator")
        qdir = tmp_path / QUARANTINE_DIRNAME
        assert dest == qdir / "entry.npz"
        assert not path.exists()
        assert dest.exists()
        assert (qdir / "entry.npz.crc").exists()
        assert _quarantined(registry, "operator") == 1.0

    def test_quarantine_collision_gets_numeric_suffix(self, tmp_path):
        for expect in ("entry.npz", "entry.npz.1"):
            path = tmp_path / "entry.npz"
            path.write_bytes(b"payload")
            with use_registry(MetricsRegistry()):
                dest = quarantine(path, kind="mesh")
            assert dest.name == expect

    def test_checked_load_policies(self, tmp_path):
        class Stale(Exception):
            pass

        path = tmp_path / "entry.npz"
        path.write_bytes(b"payload")
        seal(path)
        # Missing file: None, nothing counted.
        registry = MetricsRegistry()
        with use_registry(registry):
            assert checked_load(tmp_path / "nope.npz", lambda p: 1, "k") is None
            # Healthy file: loader result passes through.
            assert checked_load(path, lambda p: "ok", "k") == "ok"
            # Stale (loader None or a declared stale error): rebuild in
            # place, no quarantine.
            assert checked_load(path, lambda p: None, "k") is None
            assert path.exists()

            def raise_stale(p):
                raise Stale()

            assert checked_load(path, raise_stale, "k", stale=(Stale,)) is None
            assert path.exists()
        assert _quarantined(registry, "k") == 0.0
        # Unreadable despite a good sidecar: quarantined.
        with use_registry(registry):

            def boom(p):
                raise ValueError("unreadable")

            assert checked_load(path, boom, "k") is None
        assert not path.exists()
        assert _quarantined(registry, "k") == 1.0


# ------------------------------------------------------ operator archives
class TestOperatorSelfHeal:
    @pytest.mark.parametrize("damage", [_bitflip, _truncate])
    def test_corrupt_operator_rebuilds(self, cache_sandbox, damage):
        from repro.engine.sparse import (
            clear_operator_memory_cache,
            operator_cache_path,
            sparse_operator,
        )
        from repro.mesh.cache import cached_mesh

        mesh = cached_mesh(2, lloyd_iterations=0)
        good = sparse_operator(mesh, "cell_divergence", use_disk=True)
        path = operator_cache_path(mesh, "cell_divergence")
        assert path.with_name(path.name + ".crc").exists()
        damage(path)
        clear_operator_memory_cache()
        registry = MetricsRegistry()
        with use_registry(registry):
            rebuilt = sparse_operator(mesh, "cell_divergence", use_disk=True)
        assert (good != rebuilt).nnz == 0
        assert _quarantined(registry, "operator") == 1.0
        assert list((path.parent / QUARANTINE_DIRNAME).glob("*.npz"))
        # The rebuilt archive is sealed and loads cleanly again.
        clear_operator_memory_cache()
        with use_registry(MetricsRegistry()) as reg2:
            sparse_operator(mesh, "cell_divergence", use_disk=True)
        assert _quarantined(reg2, "operator") == 0.0

    def test_legacy_unsealed_archive_still_loads(self, cache_sandbox):
        from repro.engine.sparse import (
            clear_operator_memory_cache,
            operator_cache_path,
            sparse_operator,
        )
        from repro.mesh.cache import cached_mesh

        mesh = cached_mesh(2, lloyd_iterations=0)
        good = sparse_operator(mesh, "vertex_curl", use_disk=True)
        path = operator_cache_path(mesh, "vertex_curl")
        path.with_name(path.name + ".crc").unlink()  # pre-integrity entry
        clear_operator_memory_cache()
        loaded = sparse_operator(mesh, "vertex_curl", use_disk=True)
        assert (good != loaded).nnz == 0


# ---------------------------------------------------------- plan archives
class TestPlanSelfHeal:
    def test_corrupt_composed_matrix_rebuilds(self, cache_sandbox):
        from repro.engine.plan import (
            clear_plan_memory_cache,
            compiled_plan,
            plan_cache_path,
        )
        from repro.engine.sparse import clear_operator_memory_cache
        from repro.mesh.cache import cached_mesh
        from repro.swm.config import SWConfig

        mesh = cached_mesh(2, lloyd_iterations=0)
        cfg = SWConfig(
            dt=60.0, backend="sparse", plan=True, plan_fuse="algebraic",
            thickness_adv_order=4,
        )
        compiled_plan(mesh, cfg)
        path = plan_cache_path(mesh, "h_edge_order4")
        assert path.exists()
        _truncate(path)
        clear_plan_memory_cache()
        clear_operator_memory_cache()
        registry = MetricsRegistry()
        with use_registry(registry):
            plan = compiled_plan(mesh, cfg)
        assert "h_edge_order4" in plan.composed
        assert _quarantined(registry, "plan") == 1.0


# ---------------------------------------------------------- mesh archives
class TestMeshSelfHeal:
    @pytest.mark.parametrize("damage", [_truncate, _bitflip])
    def test_corrupt_mesh_archive_rebuilds(self, cache_sandbox, damage):
        """Regression: a truncated mesh npz used to raise BadZipFile."""
        from repro.mesh.cache import (
            cached_mesh,
            clear_memory_cache,
            mesh_cache_path,
        )

        mesh = cached_mesh(2, lloyd_iterations=0)
        path = mesh_cache_path(2, lloyd_iterations=0)
        assert path.with_name(path.name + ".crc").exists()
        damage(path)
        clear_memory_cache()
        registry = MetricsRegistry()
        with use_registry(registry):
            rebuilt = cached_mesh(2, lloyd_iterations=0)
        assert rebuilt.nCells == mesh.nCells
        assert np.array_equal(rebuilt.xCell, mesh.xCell)
        assert _quarantined(registry, "mesh") == 1.0
        assert list((path.parent / QUARANTINE_DIRNAME).glob("*.npz"))
