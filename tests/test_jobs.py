"""The job-oriented API surface: RunRequest, submit/status/result, dedup.

Three layers of guarantees:

* **RunRequest** — validation rejects unrunnable combinations with
  actionable messages; ``normalize()`` is idempotent and resolves every
  token; ``key()`` identifies identical work (and only identical work).
* **In-process jobs** — submission never integrates; duplicate requests
  share one handle and one execution; results are lazy and cached.
* **Durable jobs** — submission creates the manifest on disk, any process
  can drive/inspect the job from the run directory alone, and a completed
  job whose in-memory record is gone (restart) reconstructs its result
  from the final checkpoint, bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.jobs as jobs
from repro.api import (
    RunRequest,
    SWConfig,
    resolve_case,
    result,
    run,
    status,
    submit,
    suggested_dt,
)
from repro.constants import GRAVITY
from repro.jobs import JobError, JobHandle
from repro.resilience.durable import DurableRun, ManifestError

STEPS = 4


@pytest.fixture(scope="module")
def dt(mesh3):
    return suggested_dt(mesh3, resolve_case("tc2"), GRAVITY, cfl=0.6)


@pytest.fixture(autouse=True)
def fresh_queue():
    jobs.reset()
    yield
    jobs.reset()


# ----------------------------------------------------------------- requests
class TestRunRequestValidation:
    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({}, "case is required"),
            ({"case": "tc2"}, "exactly one of steps/days"),
            ({"case": "tc2", "steps": 2, "days": 1.0}, "exactly one of steps/days"),
            ({"case": "tc2", "steps": 0}, "steps must be >= 1"),
            ({"case": "tc2", "days": 0.0}, "days must be > 0"),
            ({"case": "tc2", "steps": 2, "invariant_interval": -1},
             "invariant_interval must be >= 0"),
        ],
    )
    def test_rejections_are_actionable(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RunRequest(**kwargs).validate()

    def test_durable_request_needs_a_case_token(self, tmp_path):
        req = RunRequest(
            case=resolve_case("tc2"), steps=2, run_dir=tmp_path / "d"
        )
        with pytest.raises(ManifestError, match="name or Williamson number"):
            req.validate()

    def test_config_validation_is_invoked(self):
        cfg = SWConfig(dt=600.0)
        cfg.dt = -1.0
        with pytest.raises(ValueError, match="dt must be positive"):
            RunRequest(case="tc2", steps=2, config=cfg).validate()


class TestRunRequestNormalize:
    def test_resolves_every_default(self, mesh3, dt):
        req = RunRequest(case="tc2", mesh=mesh3, steps=3).normalize()
        assert req.mesh is mesh3
        assert req.config is not None and req.config.dt > 0
        assert req.steps == 3 and req.days is None
        assert req.case_token == "tc2"

    def test_days_collapse_into_steps(self, mesh3, dt):
        cfg = SWConfig(dt=dt)
        req = RunRequest(case="tc2", mesh=mesh3, config=cfg, days=0.25).normalize()
        assert req.steps == int(round(0.25 * 86400.0 / dt))

    def test_idempotent(self, mesh3):
        one = RunRequest(case="tc2", mesh=mesh3, steps=3).normalize()
        two = one.normalize()
        assert two.steps == one.steps
        assert two.mesh is one.mesh
        assert two.config is one.config

    def test_original_is_untouched(self, mesh3):
        raw = RunRequest(case="tc2", mesh=mesh3, steps=3)
        raw.normalize()
        assert raw.config is None

    def test_frozen(self, mesh3):
        req = RunRequest(case="tc2", mesh=mesh3, steps=3)
        with pytest.raises(AttributeError):
            req.steps = 99


class TestRunRequestKey:
    def test_same_work_same_key(self, mesh3, dt):
        a = RunRequest(case="tc2", mesh=mesh3, config=SWConfig(dt=dt), steps=3)
        b = RunRequest(case="tc2", mesh=mesh3, config=SWConfig(dt=dt), steps=3)
        assert a.key() == b.key()

    def test_alias_tokens_share_one_key(self, mesh3, dt):
        cfg = SWConfig(dt=dt)
        t = RunRequest(case=2, mesh=mesh3, config=cfg, steps=3).key()
        s = RunRequest(case="tc2", mesh=mesh3, config=cfg, steps=3).key()
        a = RunRequest(
            case="steady_zonal_flow", mesh=mesh3, config=cfg, steps=3
        ).key()
        assert t == s == a

    def test_different_work_different_key(self, mesh3, dt):
        cfg = SWConfig(dt=dt)
        base = RunRequest(case="tc2", mesh=mesh3, config=cfg, steps=3)
        assert base.key() != RunRequest(
            case="tc2", mesh=mesh3, config=cfg, steps=4
        ).key()
        assert base.key() != RunRequest(
            case="tc5", mesh=mesh3, config=cfg, steps=3
        ).key()
        assert base.key() != RunRequest(
            case="tc2", mesh=mesh3, config=SWConfig(dt=dt / 2.0), steps=3
        ).key()


# ----------------------------------------------------------- in-process jobs
class TestInProcessJobs:
    def test_submit_is_lazy_and_dedups(self, mesh3, dt):
        cfg = SWConfig(dt=dt)
        h1 = submit(RunRequest(case="tc2", mesh=mesh3, config=cfg, steps=STEPS))
        h2 = submit(case="tc2", mesh=mesh3, config=cfg, steps=STEPS)
        assert isinstance(h1, JobHandle)
        assert h1.id == h2.id, "identical requests must share one job"
        assert status(h1) == "pending"

    def test_result_runs_once_and_caches(self, mesh3, dt):
        cfg = SWConfig(dt=dt)
        h = submit(case="tc2", mesh=mesh3, config=cfg, steps=STEPS)
        res = result(h)
        assert status(h) == "completed"
        assert result(h) is res
        direct = run("tc2", mesh=mesh3, config=SWConfig(dt=dt), steps=STEPS)
        assert np.array_equal(res.state.h, direct.state.h)

    def test_ensemble_request_yields_ensemble_result(self, mesh3):
        case = resolve_case("galewsky")
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5),
            backend="sparse", ensemble=2, ensemble_seed=1,
        )
        h = submit(case="galewsky", mesh=mesh3, config=cfg, steps=2)
        res = result(h)
        assert res.n_members == 2
        assert [v.status for v in res.verdicts] == ["ok", "ok"]

    def test_unknown_job_is_an_error(self):
        with pytest.raises(JobError, match="unknown job"):
            status(JobHandle(id="job-9999", request=None))
        with pytest.raises(JobError, match="expected a JobHandle"):
            status(42)

    def test_submit_rejects_mixed_arguments(self, mesh3, dt):
        req = RunRequest(case="tc2", mesh=mesh3, config=SWConfig(dt=dt), steps=2)
        with pytest.raises(JobError, match="not both"):
            submit(req, steps=3)
        with pytest.raises(JobError, match="RunRequest"):
            submit("tc2")


# -------------------------------------------------------------- durable jobs
class TestDurableJobs:
    def _request(self, mesh, dt, run_dir, steps=STEPS):
        return RunRequest(
            case="tc2", mesh=mesh,
            config=SWConfig(dt=dt, checkpoint_interval=2),
            steps=steps, run_dir=run_dir,
        )

    def test_submit_creates_manifest_without_running(self, mesh3, dt, tmp_path):
        d = tmp_path / "job"
        h = submit(self._request(mesh3, dt, d))
        assert (d / "manifest.json").exists()
        assert status(h) == "pending"
        manifest = DurableRun.open(d).manifest
        assert manifest["completed"] is False
        assert manifest["checkpoints"] == []
        assert manifest["steps"] == STEPS

    def test_result_drives_then_any_process_reads_completed(
        self, mesh3, dt, tmp_path
    ):
        d = tmp_path / "job"
        h = submit(self._request(mesh3, dt, d))
        res = result(h)
        assert res.steps == STEPS
        # Another process never saw the handle; the directory is enough.
        assert status(d) == "completed"
        assert status(str(d)) == "completed"

    def test_fresh_process_drives_job_from_disk_alone(self, mesh3, dt, tmp_path):
        d = tmp_path / "job"
        submit(self._request(mesh3, dt, d))
        jobs.reset()  # the submitting "process" is gone
        res = result(d)
        direct = run(
            "tc2", mesh=mesh3,
            config=SWConfig(dt=dt, checkpoint_interval=2), steps=STEPS,
        )
        assert np.array_equal(res.state.h, direct.state.h)
        assert np.array_equal(res.state.u, direct.state.u)

    def test_evicted_completed_job_reconstructs_bitwise(self, mesh3, dt, tmp_path):
        d = tmp_path / "job"
        h = submit(self._request(mesh3, dt, d))
        res = result(h)
        jobs.reset()  # eviction: in-memory record gone, directory remains
        rec = result(d)
        assert np.array_equal(rec.state.h, res.state.h)
        assert np.array_equal(rec.state.u, res.state.u)
        assert np.array_equal(
            rec.reconstruction.uReconstructZonal,
            res.reconstruction.uReconstructZonal,
        )
        assert rec.steps == res.steps

    def test_evicted_completed_job_answers_drift_questions(
        self, mesh3, dt, tmp_path
    ):
        """Regression: reconstructed results used to carry an empty
        invariant history, so ``mass_drift()``/``energy_drift()`` crashed
        with ``IndexError``.  The reconstruction now recomputes the
        endpoint invariants (IC re-discretized from the manifest's case
        token, final state off the checkpoint), so a fresh process gets
        the *same* drift numbers the original driver saw — bitwise."""
        d = tmp_path / "job"
        h = submit(self._request(mesh3, dt, d))
        res = result(h)
        jobs.reset()  # eviction: in-memory record gone, directory remains
        rec = result(d)
        assert len(rec.invariant_history) == 2
        assert rec.mass_drift() == res.mass_drift()
        assert rec.energy_drift() == res.energy_drift()

    def test_resubmit_attaches_and_mismatch_rejected(self, mesh3, dt, tmp_path):
        d = tmp_path / "job"
        submit(self._request(mesh3, dt, d))
        jobs.reset()
        h2 = submit(self._request(mesh3, dt, d))  # re-attach, same work
        assert status(h2) == "pending"
        jobs.reset()
        with pytest.raises(ManifestError, match="horizon"):
            submit(self._request(mesh3, dt, d, steps=STEPS + 1))

    def test_partial_run_resumes_from_checkpoint(self, mesh3, dt, tmp_path):
        """A driver that died mid-run left committed checkpoints; result()
        rolls forward from the newest one, bitwise."""
        from repro.resilience.durable import _execute_serial

        d = tmp_path / "job"
        submit(self._request(mesh3, dt, d))
        jobs.reset()
        # Simulate the dead driver: integrate only half the horizon under
        # the job's manifest, leaving its checkpoints committed.
        drun = DurableRun.open(d)
        cfg = SWConfig(**drun.manifest["config"])
        half = STEPS // 2
        drun.manifest["steps"] = half
        _execute_serial(drun, mesh3, resolve_case("tc2"), cfg, 0, half, None)
        drun.manifest["steps"] = STEPS
        drun.manifest["completed"] = False
        drun.save()
        assert status(d) == "running"
        res = result(d)
        direct = run(
            "tc2", mesh=mesh3,
            config=SWConfig(dt=dt, checkpoint_interval=2), steps=STEPS,
        )
        assert np.array_equal(res.state.h, direct.state.h)
        assert status(d) == "completed"

    def test_durable_ensemble_rejected(self, mesh3, tmp_path):
        case = resolve_case("galewsky")
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5),
            backend="sparse", ensemble=2,
        )
        with pytest.raises(JobError, match="durable ensemble"):
            submit(RunRequest(
                case="galewsky", mesh=mesh3, config=cfg, steps=2,
                run_dir=tmp_path / "e",
            ))
