"""Tests of the extension features: TC1 advection, the analytic performance
model, the CLI, and the halo-depth requirement demonstration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.swm import (
    ShallowWaterModel,
    SWConfig,
    TEST_CASES,
    cosine_bell,
    steady_zonal_flow,
    suggested_dt,
)


class TestCosineBell:
    def test_registered(self):
        assert TEST_CASES[1]().name == "cosine_bell"

    def test_positive_everywhere(self, mesh3):
        case = cosine_bell()
        h = case.thickness(mesh3.metrics.xCell)
        assert np.all(h >= 1000.0)
        assert h.max() > 1800.0  # bell peak ~ base + 1000

    def test_bell_centre(self, mesh4):
        case = cosine_bell()
        h = case.thickness(mesh4.metrics.xCell)
        c = int(np.argmax(h))
        assert abs(mesh4.metrics.lonCell[c] - 1.5 * np.pi) < 0.15
        assert abs(mesh4.metrics.latCell[c]) < 0.15

    def test_velocity_frozen_under_advection_only(self, mesh3):
        case = cosine_bell()
        dt = 0.4 * mesh3.dcEdge.min() / 40.0
        model = ShallowWaterModel(
            mesh3, SWConfig(dt=dt, advection_only=True, apvm_upwinding=0.0)
        )
        state = model.initialize(case)
        u0 = state.u.copy()
        res = model.run(steps=10)
        assert np.array_equal(res.state.u, u0)

    def test_one_revolution_returns_bell(self, mesh3):
        case = cosine_bell()
        dt = 0.4 * mesh3.dcEdge.min() / 40.0
        model = ShallowWaterModel(
            mesh3, SWConfig(dt=dt, advection_only=True, apvm_upwinding=0.0)
        )
        model.initialize(case)
        res = model.run(days=12.0)
        err = model.exact_error()
        # Second-order advection of a marginally-resolved bell on a coarse
        # 642-cell mesh: O(10%) l2 error, exact mass conservation.
        assert err.l2 < 0.15
        assert res.mass_drift() < 1e-14

    def test_advection_only_skips_momentum_terms(self, mesh3, rng):
        """tend_u is exactly zero whatever the state."""
        from repro.swm.diagnostics import compute_solve_diagnostics
        from repro.swm.state import State
        from repro.swm.tendencies import compute_tend

        cfg = SWConfig(dt=100.0, advection_only=True)
        fv = cfg.coriolis(mesh3.metrics.latVertex)
        state = State(
            h=np.abs(rng.standard_normal(mesh3.nCells)) + 100.0,
            u=rng.standard_normal(mesh3.nEdges),
        )
        diag = compute_solve_diagnostics(mesh3, state, fv, cfg)
        _, tend_u = compute_tend(mesh3, state, diag, np.zeros(mesh3.nCells), cfg)
        assert np.all(tend_u == 0.0)


class TestPerformancePredictor:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.dataflow import build_step_graph
        from repro.hybrid.schedule import node_times
        from repro.hybrid.stepmodel import (
            _cpu_parallel_model,
            _mic_model,
            _perf_config,
        )
        from repro.machine.counts import MeshCounts

        counts = MeshCounts(nCells=655362)
        dfg = build_step_graph(_perf_config())
        times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
        return dfg, times, counts

    def test_cpu_exact(self, setup):
        from repro.hybrid import hybrid_step_time, predict_makespan

        dfg, times, counts = setup
        assert predict_makespan(dfg, times, "cpu") == pytest.approx(
            hybrid_step_time(counts, mode="cpu"), rel=1e-9
        )

    def test_kernel_within_ten_percent(self, setup):
        from repro.hybrid import hybrid_step_time, predict_makespan

        dfg, times, counts = setup
        pred = predict_makespan(dfg, times, "kernel")
        actual = hybrid_step_time(counts, mode="kernel")
        assert pred == pytest.approx(actual, rel=0.10)

    def test_pattern_optimistic_bound(self, setup):
        from repro.hybrid import hybrid_step_time, predict_makespan

        dfg, times, counts = setup
        pred = predict_makespan(dfg, times, "pattern")
        actual = hybrid_step_time(counts, mode="pattern")
        assert 0.7 * actual < pred <= actual * 1.02

    def test_unknown_mode(self, setup):
        from repro.hybrid import predict_makespan

        dfg, times, _ = setup
        with pytest.raises(ValueError):
            predict_makespan(dfg, times, "quantum")


class TestHaloDepthRequirement:
    """Why halo_layers_required says 3: depth 2 breaks bit-reproducibility
    for the APVM/high-order configuration, depth 3 restores it."""

    def _run_pair(self, mesh, halo_layers):
        from repro.parallel import DecomposedShallowWater

        case = steady_zonal_flow()
        cfg = SWConfig(
            dt=suggested_dt(mesh, case, GRAVITY, cfl=0.5), thickness_adv_order=4
        )
        serial = ShallowWaterModel(mesh, cfg)
        serial.initialize(case)
        res = serial.run(steps=3)
        dec = DecomposedShallowWater(mesh, 4, case, cfg, halo_layers=halo_layers)
        dec.run(3)
        return res.state, dec.gather_state()

    def test_depth_two_insufficient_for_order4(self, mesh3):
        s, d = self._run_pair(mesh3, halo_layers=2)
        assert not np.array_equal(s.h, d.h)  # stale halo corrupts owned cells

    def test_depth_three_sufficient(self, mesh3):
        s, d = self._run_pair(mesh3, halo_layers=3)
        assert np.array_equal(s.h, d.h)
        assert np.array_equal(s.u, d.u)


class TestCLI:
    def test_parser_commands(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        for argv in (
            ["mesh", "--level", "2"],
            ["run", "--case", "2"],
            ["schedule", "--cells", "1000"],
            ["ladder"],
            ["scaling"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_schedule_command_output(self, capsys):
        from repro.__main__ import main

        main(["schedule", "--cells", "40962"])
        out = capsys.readouterr().out
        assert "pattern-driven" in out and "x)" in out

    def test_mesh_command_output(self, capsys):
        from repro.__main__ import main

        main(["mesh", "--level", "2", "--lloyd", "1"])
        out = capsys.readouterr().out
        assert "pent=12" in out

    def test_run_rejects_unknown_case(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "--case", "99"])


class TestConfigValidation:
    def test_dt_positive(self):
        with pytest.raises(ValueError):
            SWConfig(dt=0.0)

    def test_order_validated(self):
        with pytest.raises(ValueError):
            SWConfig(dt=1.0, thickness_adv_order=5)

    def test_viscosity_nonnegative(self):
        with pytest.raises(ValueError):
            SWConfig(dt=1.0, viscosity=-1.0)

    def test_coriolis_profile(self):
        cfg = SWConfig(dt=1.0)
        lat = np.array([0.0, np.pi / 2, -np.pi / 2])
        f = cfg.coriolis(lat)
        assert f[0] == 0.0
        assert f[1] == pytest.approx(2.0 * cfg.omega)
        assert f[2] == pytest.approx(-2.0 * cfg.omega)


class TestStateContainers:
    def test_state_copy_independent(self, mesh3, rng):
        from repro.swm import State

        s = State(h=rng.standard_normal(mesh3.nCells), u=rng.standard_normal(mesh3.nEdges))
        c = s.copy()
        c.h += 1.0
        assert not np.array_equal(s.h, c.h)

    def test_state_shape_validation(self, mesh3):
        from repro.swm import State

        s = State(h=np.zeros(3), u=np.zeros(mesh3.nEdges))
        with pytest.raises(ValueError):
            s.validate_shapes(mesh3.nCells, mesh3.nEdges)

    def test_diagnostics_allocate_and_copy(self, mesh3):
        from repro.swm import Diagnostics

        d = Diagnostics.allocate(mesh3.nCells, mesh3.nEdges, mesh3.nVertices)
        d2 = d.copy()
        d2.ke += 1.0
        assert d.ke.max() == 0.0


class TestCLIRun:
    def test_run_command_tc2(self, capsys):
        from repro.__main__ import main

        main(["run", "--case", "2", "--days", "0.05", "--level", "2"])
        out = capsys.readouterr().out
        assert "mass drift" in out
        assert "l1/l2/linf" in out

    def test_ladder_command(self, capsys):
        from repro.__main__ import main

        main(["ladder", "--cells", "40962"])
        out = capsys.readouterr().out
        assert "Refactoring" in out and "x" in out
