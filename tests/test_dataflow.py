"""Unit tests of the data-flow diagram construction and analysis."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.dataflow import (
    build_stage_graph,
    build_step_graph,
    concurrency_profile,
    critical_path,
    independent_sets,
    stage_kernels,
    topological_levels,
    total_work,
)
from repro.dataflow.graph import DataFlowGraph
from repro.patterns import build_catalog
from repro.swm import SWConfig


def _cfg():
    return SWConfig(dt=1.0, thickness_adv_order=4)


class TestStageKernels:
    def test_early_stages(self):
        for s in (1, 2, 3):
            ks = stage_kernels(s)
            assert "compute_next_substep_state" in ks
            assert "mpas_reconstruct" not in ks

    def test_final_stage(self):
        ks = stage_kernels(4)
        assert "mpas_reconstruct" in ks
        assert "compute_next_substep_state" not in ks
        # Algorithm 1: accumulate before the final diagnostics.
        assert ks.index("accumulative_update") < ks.index("compute_solve_diagnostics")

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            stage_kernels(0)


class TestStageGraph:
    def test_acyclic(self):
        g = build_stage_graph(_cfg(), stage=1)
        assert nx.is_directed_acyclic_graph(g.graph)

    def test_all_catalog_instances_present(self):
        g = build_stage_graph(_cfg(), stage=2)
        labels = {n.split(":")[1] for n in g.compute_nodes()}
        expected = {
            i.label
            for i in build_catalog(_cfg())
            if i.kernel != "mpas_reconstruct"
        }
        assert labels == expected

    def test_halo_nodes_present(self):
        g = build_stage_graph(_cfg(), stage=1, with_halo=True)
        assert len(g.halo_nodes()) == 2

    def test_halo_optional(self):
        g = build_stage_graph(_cfg(), stage=1, with_halo=False)
        assert g.halo_nodes() == []

    def test_to_dot_deterministic(self):
        # The committed benchmark artifact (fig4_stage1.dot) must be stable
        # across runs: emission sorts clusters, nodes and edges.
        dots = {build_stage_graph(_cfg(), stage=1).to_dot() for _ in range(3)}
        assert len(dots) == 1
        dot = dots.pop()
        body = [ln for ln in dot.splitlines() if " -> " in ln]
        assert body == sorted(body)

    def test_b1_depends_on_diag_sources(self):
        g = build_stage_graph(_cfg(), stage=1)
        preds = set(g.graph.predecessors("s1:B1"))
        # Stage 1 reads last step's diagnostics through the sources/halo.
        assert any("pv_edge" == g.graph.edges[p, "s1:B1"]["variable"] for p in preds)

    def test_accumulate_independent_of_diagnostics(self):
        g = build_stage_graph(_cfg(), stage=1)
        assert independent_sets(g, ["s1:X4", "s1:G1"])
        assert independent_sets(g, ["s1:X5", "s1:E1"])

    def test_dependent_pair_detected(self):
        g = build_stage_graph(_cfg(), stage=1)
        assert not independent_sets(g, ["s1:H1", "s1:E1"])  # vorticity -> pv


class TestStepGraph:
    def test_chained_stages(self):
        g = build_step_graph(_cfg())
        assert len(g.compute_nodes()) == 68
        # Stage 2's tend must depend on stage 1's provisional state.
        assert nx.has_path(g.graph, "s1:X2", "s2:A1")
        assert nx.has_path(g.graph, "s1:X3", "s2:B1")

    def test_stage4_reads_accumulator(self):
        g = build_step_graph(_cfg())
        # Final diagnostics read h_acc/u_acc produced by s4 accumulation.
        assert nx.has_path(g.graph, "s4:X4", "s4:G1")
        assert nx.has_path(g.graph, "s4:X5", "s4:A4")

    def test_accumulator_not_aliased_to_state(self):
        g = build_step_graph(_cfg())
        # Stage 2's next-substep state reads the *original* h, not stage 1's
        # accumulator: no path from s1:X4 into s2:X2.
        assert not nx.has_path(g.graph, "s1:X4", "s2:X2")

    def test_duplicate_occurrence_rejected(self):
        g = DataFlowGraph()
        inst = build_catalog(_cfg())[0]
        g.add_instance("x", inst)
        with pytest.raises(ValueError):
            g.add_instance("x", inst)


class TestAnalysis:
    def test_levels_start_at_zero(self):
        g = build_stage_graph(_cfg(), stage=1, with_halo=False)
        levels = topological_levels(g)
        compute_levels = [levels[n] for n in g.compute_nodes()]
        assert min(compute_levels) == 0

    def test_profile_partitions_nodes(self):
        g = build_step_graph(_cfg())
        prof = concurrency_profile(g)
        assert sum(len(v) for v in prof.values()) == len(g.compute_nodes())

    def test_critical_path_unit_costs(self):
        g = build_stage_graph(_cfg(), stage=1, with_halo=False)
        length, path = critical_path(g)
        assert length == len(path)
        # The pv chain is the deepest: ... H1 -> E1 -> F1 -> G1.
        tail = [p.split(":")[1] for p in path[-3:]]
        assert tail == ["E1", "F1", "G1"]

    def test_critical_path_weighted(self):
        g = build_stage_graph(_cfg(), stage=1, with_halo=False)
        heavy = {n: (1000.0 if n.endswith("B1") else 1.0) for n in g.compute_nodes()}
        length, path = critical_path(g, heavy)
        assert any(p.endswith("B1") for p in path)
        assert length > 1000.0

    def test_total_work(self):
        g = build_stage_graph(_cfg(), stage=1, with_halo=False)
        cost = {n: 2.0 for n in g.compute_nodes()}
        assert total_work(g, cost) == 2.0 * len(g.compute_nodes())

    def test_cycle_detection(self):
        g = DataFlowGraph()
        g.graph.add_edge("a", "b")
        g.graph.add_edge("b", "a")
        with pytest.raises(ValueError, match="cycle"):
            g.validate()
