"""Integration tests of the ShallowWaterModel driver (three-phase run)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.swm import (
    ShallowWaterModel,
    SWConfig,
    isolated_mountain,
    steady_zonal_flow,
    suggested_dt,
)


def _tc2_model(mesh, **cfg_kwargs):
    case = steady_zonal_flow()
    dt = suggested_dt(mesh, case, GRAVITY, cfl=0.6)
    model = ShallowWaterModel(mesh, SWConfig(dt=dt, **cfg_kwargs))
    model.initialize(case)
    return model


class TestDriver:
    def test_run_requires_initialize(self, mesh3):
        model = ShallowWaterModel(mesh3, SWConfig(dt=100.0))
        with pytest.raises(RuntimeError):
            model.run(steps=1)

    def test_steps_days_exclusive(self, mesh3):
        model = _tc2_model(mesh3)
        with pytest.raises(ValueError):
            model.run(steps=1, days=1.0)
        with pytest.raises(ValueError):
            model.run()

    def test_days_converted_to_steps(self, mesh3):
        model = _tc2_model(mesh3)
        res = model.run(days=0.5)
        assert res.steps == round(0.5 * 86400.0 / model.config.dt)
        assert res.elapsed_seconds == pytest.approx(res.steps * model.config.dt)

    def test_callback_invoked(self, mesh3):
        model = _tc2_model(mesh3)
        seen = []
        model.run(steps=3, callback=lambda step, result: seen.append(step))
        assert seen == [1, 2, 3]

    def test_invariant_history(self, mesh3):
        model = _tc2_model(mesh3)
        res = model.run(steps=4, invariant_interval=2)
        assert len(res.invariant_history) == 3  # start, step2, step4

    def test_suggested_dt_scales_with_resolution(self, mesh3, mesh4):
        case = steady_zonal_flow()
        dt3 = suggested_dt(mesh3, case, GRAVITY)
        dt4 = suggested_dt(mesh4, case, GRAVITY)
        assert dt4 < dt3
        assert 1.5 < dt3 / dt4 < 3.0  # ~2x per refinement level


class TestTC2Accuracy:
    def test_one_day_error_small(self, mesh3):
        model = _tc2_model(mesh3)
        model.run(days=1.0)
        err = model.exact_error()
        assert err.l2 < 2e-3
        assert err.linf < 5e-3

    def test_error_converges_with_resolution(self, mesh3, mesh4):
        errs = {}
        for mesh in (mesh3, mesh4):
            model = _tc2_model(mesh)
            model.run(days=1.0)
            errs[mesh.nCells] = model.exact_error().l2
        assert errs[2562] < 0.7 * errs[642]

    def test_mass_energy_conservation(self, mesh3):
        model = _tc2_model(mesh3)
        res = model.run(days=2.0, invariant_interval=10)
        assert res.mass_drift() < 1e-13
        assert res.energy_drift() < 1e-6

    def test_exact_error_requires_exact_solution(self, mesh3):
        case = isolated_mountain()
        dt = suggested_dt(mesh3, case, GRAVITY, cfl=0.6)
        model = ShallowWaterModel(mesh3, SWConfig(dt=dt))
        model.initialize(case)
        model.run(steps=1)
        with pytest.raises(ValueError):
            model.exact_error()


class TestTC5Run:
    def test_two_days_stable(self, mesh3):
        case = isolated_mountain()
        dt = suggested_dt(mesh3, case, GRAVITY, cfl=0.6)
        model = ShallowWaterModel(mesh3, SWConfig(dt=dt))
        model.initialize(case)
        res = model.run(days=2.0, invariant_interval=20)
        assert np.all(res.state.h > 0)
        assert res.mass_drift() < 1e-13
        total = model.total_height()
        # The free surface stays within a sane range of its initial span.
        assert 5000.0 < total.max() < 6500.0

    def test_reconstruction_available_after_run(self, mesh3):
        case = isolated_mountain()
        dt = suggested_dt(mesh3, case, GRAVITY, cfl=0.6)
        model = ShallowWaterModel(mesh3, SWConfig(dt=dt))
        model.initialize(case)
        res = model.run(steps=2)
        assert res.reconstruction is not None
        # Zonal wind stays within the same order as the 20 m/s background.
        assert np.abs(res.reconstruction.uReconstructZonal).max() < 100.0


class TestConfigVariants:
    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_thickness_orders_run(self, mesh3, order):
        model = _tc2_model(mesh3, thickness_adv_order=order)
        res = model.run(steps=3)
        assert np.all(np.isfinite(res.state.h))

    def test_apvm_off_runs(self, mesh3):
        model = _tc2_model(mesh3, apvm_upwinding=0.0)
        res = model.run(steps=3)
        assert np.all(np.isfinite(res.state.u))

    def test_viscosity_damps_noise(self, mesh3, rng):
        """del2 dissipation reduces the growth of grid-scale noise."""
        noise = rng.standard_normal(mesh3.nEdges)
        results = {}
        for nu in (0.0, 5e4):
            case = steady_zonal_flow()
            dt = suggested_dt(mesh3, case, GRAVITY, cfl=0.5)
            model = ShallowWaterModel(mesh3, SWConfig(dt=dt, viscosity=nu))
            state = model.initialize(case)
            state.u += 0.5 * noise  # same noise realization for both
            model.diagnostics = model.integrator.diagnostics_for(state)
            model.run(steps=8)
            results[nu] = model.exact_error().l2
        assert results[5e4] < results[0.0]
