"""Unit tests of the spherical geometry primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    arc_length,
    arc_midpoint,
    chord_length,
    is_ccw,
    lonlat_to_xyz,
    normalize,
    polygon_centroid,
    rotate,
    rotation_matrix,
    spherical_polygon_area,
    spherical_triangle_area,
    tangent_basis,
    tangent_plane_coords,
    xyz_to_lonlat,
)

X = np.array([1.0, 0.0, 0.0])
Y = np.array([0.0, 1.0, 0.0])
Z = np.array([0.0, 0.0, 1.0])


class TestNormalize:
    def test_unit_result(self):
        v = normalize(np.array([3.0, 4.0, 0.0]))
        assert np.allclose(np.linalg.norm(v), 1.0)
        assert np.allclose(v, [0.6, 0.8, 0.0])

    def test_batch(self):
        v = normalize(np.array([[2.0, 0.0, 0.0], [0.0, 0.0, -5.0]]))
        assert np.allclose(v, [[1, 0, 0], [0, 0, -1]])

    def test_zero_raises(self):
        with pytest.raises(ValueError, match="zero-length"):
            normalize(np.zeros(3))


class TestArcLength:
    def test_quarter_circle(self):
        assert np.isclose(arc_length(X, Y), np.pi / 2)

    def test_antipodal(self):
        assert np.isclose(arc_length(X, -X), np.pi)

    def test_coincident(self):
        assert arc_length(X, X) == 0.0

    def test_small_angle_accuracy(self):
        eps = 1e-9
        b = normalize(np.array([1.0, eps, 0.0]))
        assert np.isclose(arc_length(X, b), eps, rtol=1e-6)

    def test_symmetric(self):
        a = normalize(np.array([0.2, -0.5, 0.7]))
        b = normalize(np.array([-0.1, 0.9, 0.3]))
        assert arc_length(a, b) == arc_length(b, a)

    def test_chord_vs_arc(self):
        a = normalize(np.array([1.0, 0.2, 0.0]))
        assert chord_length(X, a) < arc_length(X, a)


class TestLonLat:
    def test_roundtrip(self):
        lon = np.array([0.1, 2.0, 5.5])
        lat = np.array([-1.2, 0.0, 1.1])
        p = lonlat_to_xyz(lon, lat)
        lon2, lat2 = xyz_to_lonlat(p)
        assert np.allclose(lon, lon2)
        assert np.allclose(lat, lat2)

    def test_poles(self):
        _, lat = xyz_to_lonlat(Z)
        assert np.isclose(lat, np.pi / 2)

    def test_lon_wrapped_nonnegative(self):
        lon, _ = xyz_to_lonlat(np.array([0.0, -1.0, 0.0]))
        assert np.isclose(lon, 1.5 * np.pi)


class TestTriangleArea:
    def test_octant(self):
        # One octant of the sphere has area 4*pi/8 = pi/2.
        assert np.isclose(spherical_triangle_area(X, Y, Z), np.pi / 2)

    def test_orientation_sign(self):
        assert spherical_triangle_area(X, Y, Z) > 0
        assert np.isclose(
            spherical_triangle_area(X, Z, Y), -spherical_triangle_area(X, Y, Z)
        )

    def test_degenerate_zero(self):
        assert np.isclose(spherical_triangle_area(X, X, Y), 0.0)

    def test_cyclic_invariance(self):
        a = normalize(np.array([1.0, 0.1, 0.2]))
        b = normalize(np.array([0.1, 1.0, 0.1]))
        c = normalize(np.array([0.2, 0.3, 1.0]))
        a1 = spherical_triangle_area(a, b, c)
        a2 = spherical_triangle_area(b, c, a)
        assert np.isclose(a1, a2)

    def test_is_ccw(self):
        assert is_ccw(X, Y, Z)
        assert not is_ccw(Y, X, Z)


class TestPolygonArea:
    def test_octant_square(self):
        # A lune of width pi/2: quarter of the sphere.
        p = np.stack([X, Y, -X])
        with pytest.raises(ValueError):
            spherical_polygon_area(p[:2])

    def test_collinear_vertex_no_extra_area(self):
        # Inserting a vertex on the arc X-Y leaves the area unchanged.
        m = normalize(X + Y)
        quad = np.stack([X, m, Y, Z])
        tri = np.stack([X, Y, Z])
        assert np.isclose(
            spherical_polygon_area(quad), spherical_polygon_area(tri)
        )

    def test_orientation_sign(self):
        ring = np.stack([X, Y, Z])
        assert spherical_polygon_area(ring) > 0
        assert spherical_polygon_area(ring[::-1]) < 0

    def test_matches_triangle(self):
        ring = np.stack([X, Y, Z])
        assert np.isclose(
            spherical_polygon_area(ring), spherical_triangle_area(X, Y, Z)
        )


class TestCentroid:
    def test_symmetric_triangle(self):
        c = polygon_centroid(np.stack([X, Y, Z]))
        assert np.allclose(c, normalize(np.ones(3)), atol=1e-12)

    def test_orientation_independent(self):
        ring = np.stack([X, Y, Z])
        assert np.allclose(polygon_centroid(ring), polygon_centroid(ring[::-1]))

    def test_on_sphere(self):
        ring = np.stack([X, normalize([1, 1, 0.2]), normalize([0.8, -0.1, 0.5])])
        assert np.isclose(np.linalg.norm(polygon_centroid(ring)), 1.0)


class TestMidpointAndBasis:
    def test_midpoint(self):
        m = arc_midpoint(X, Y)
        assert np.allclose(m, normalize([1, 1, 0]))

    def test_tangent_basis_orthonormal(self):
        p = normalize(np.array([0.3, -0.5, 0.8]))
        e, n = tangent_basis(p)
        assert np.isclose(e @ n, 0.0, atol=1e-14)
        assert np.isclose(e @ p, 0.0, atol=1e-14)
        assert np.isclose(n @ p, 0.0, atol=1e-14)
        assert np.isclose(np.linalg.norm(e), 1.0)

    def test_tangent_basis_pole(self):
        e, n = tangent_basis(Z)
        assert np.allclose(e, X)
        assert np.allclose(n, np.cross(Z, X))

    def test_east_points_east(self):
        p = lonlat_to_xyz(np.array(0.3), np.array(0.4))
        e, _ = tangent_basis(p)
        # Moving along east increases longitude.
        lon0, _ = xyz_to_lonlat(p)
        lon1, _ = xyz_to_lonlat(normalize(p + 1e-6 * e))
        assert lon1 > lon0

    def test_north_points_north(self):
        p = lonlat_to_xyz(np.array(0.3), np.array(0.4))
        _, n = tangent_basis(p)
        _, lat0 = xyz_to_lonlat(p)
        _, lat1 = xyz_to_lonlat(normalize(p + 1e-6 * n))
        assert lat1 > lat0


class TestRotation:
    def test_rotation_matrix_orthogonal(self):
        m = rotation_matrix(np.array([1.0, 2.0, 3.0]), 0.7)
        assert np.allclose(m @ m.T, np.eye(3), atol=1e-14)
        assert np.isclose(np.linalg.det(m), 1.0)

    def test_rotate_z_quarter(self):
        out = rotate(X, Z, np.pi / 2)
        assert np.allclose(out, Y, atol=1e-14)

    def test_axis_fixed(self):
        axis = normalize(np.array([0.1, 0.4, 0.9]))
        assert np.allclose(rotate(axis, axis, 1.234), axis, atol=1e-14)


class TestTangentPlane:
    def test_origin_maps_to_zero(self):
        p = normalize(np.array([0.2, 0.3, 0.9]))
        xy = tangent_plane_coords(p, p)
        assert np.allclose(xy, 0.0, atol=1e-12)

    def test_distance_preserved_radially(self):
        p = Z
        q = lonlat_to_xyz(np.array(0.0), np.array(np.pi / 2 - 0.2))
        xy = tangent_plane_coords(p, q)
        assert np.isclose(np.linalg.norm(xy), arc_length(p, q), rtol=1e-10)

    def test_batch_shape(self):
        p = Z
        pts = normalize(np.random.default_rng(0).standard_normal((10, 3)))
        assert tangent_plane_coords(p, pts).shape == (10, 2)
