"""Tests of the execution engine: registry, split execution, layer consistency.

The engine is the one dispatch point for every stencil operator; these tests
pin its contracts — registration semantics, numpy fallback, the three-layer
consistency between the data-flow builder / Table I catalog / registry, and
the bitwise identity of split execution across two logical devices.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    BACKENDS,
    KernelRegistry,
    default_registry,
    dispatch,
    use_placements,
)
from repro.hybrid.executor import Placement
from repro.obs.metrics import MetricsRegistry, use_registry


class TestRegistry:
    def test_all_backends_registered(self):
        reg = default_registry()
        assert reg.backends() == sorted(BACKENDS)

    def test_no_silent_fallbacks(self):
        """Registry-completeness lint: every op implements every backend,
        or the gap is declared in INTENTIONAL_FALLBACKS.

        A new operator registered for ``numpy`` only would silently run the
        fallback under ``--backend sparse`` (or any other backend); this
        test makes that a visible decision — implement it or whitelist it.
        """
        from repro.engine.backends import INTENTIONAL_FALLBACKS

        reg = default_registry()
        assert set(INTENTIONAL_FALLBACKS) == set(BACKENDS)
        for backend in BACKENDS:
            whitelisted = INTENTIONAL_FALLBACKS[backend]
            missing = {
                op for op in reg.ops() if backend not in reg.op(op).impls
            }
            assert missing == set(whitelisted), (
                f"backend {backend!r}: ops falling back to numpy without "
                f"being whitelisted in INTENTIONAL_FALLBACKS: "
                f"{sorted(missing - whitelisted)}; stale whitelist entries: "
                f"{sorted(whitelisted - missing)}"
            )
        # The whitelist names real operators only (guards against typos).
        for backend, ops in INTENTIONAL_FALLBACKS.items():
            assert ops <= set(reg.ops()), (backend, ops)

    def test_duplicate_registration_rejected(self):
        reg = KernelRegistry()
        reg.register("foo", "numpy", lambda mesh, x: x, pattern="A1")
        with pytest.raises(ValueError, match="already has"):
            reg.register("foo", "numpy", lambda mesh, x: x)

    def test_duplicate_kernel_rejected(self):
        reg = KernelRegistry()
        reg.register_kernel("compute_tend", lambda *a: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register_kernel("compute_tend", lambda *a: None)

    def test_unknown_op_and_kernel_raise(self):
        reg = default_registry()
        with pytest.raises(KeyError, match="unknown operator"):
            reg.op("no_such_op")
        with pytest.raises(KeyError, match="unknown kernel"):
            reg.kernel("no_such_kernel")

    def test_op_for_label_resolves_fused(self):
        reg = default_registry()
        assert reg.op_for_label("A1").op == "flux_divergence"
        # Both members of the fused C1,C2 sweep resolve to the same operator.
        assert reg.op_for_label("C1").op == "d2fdx2"
        assert reg.op_for_label("C2").op == "d2fdx2"

    def test_fallback_to_numpy_is_counted(self, mesh3, cell_field):
        # cell_from_vertices_kite has no codegen registration: the dispatch
        # must fall back to numpy and count the fallback.
        reg = default_registry()
        assert "codegen" not in reg.op("cell_from_vertices_kite").impls
        metrics = MetricsRegistry()
        vertex = np.linspace(0.0, 1.0, mesh3.nVertices)
        with use_registry(metrics):
            got = dispatch("cell_from_vertices_kite", mesh3, vertex, backend="codegen")
        want = dispatch("cell_from_vertices_kite", mesh3, vertex, backend="numpy")
        assert np.array_equal(got, want)
        (fallback,) = metrics.series("engine.fallback")
        assert fallback.tags == {"op": "cell_from_vertices_kite", "backend": "codegen"}
        assert fallback.value == 1.0
        (timer,) = metrics.series("engine.op")
        assert timer.tags["backend"] == "numpy"  # timed under the resolved backend

    def test_dispatch_times_every_call(self, mesh3, edge_field):
        metrics = MetricsRegistry()
        with use_registry(metrics):
            dispatch("cell_divergence", mesh3, edge_field, backend="numpy")
            dispatch("cell_divergence", mesh3, edge_field, backend="codegen")
        tags = {(s.tags["op"], s.tags["pattern"], s.tags["backend"])
                for s in metrics.series("engine.op")}
        assert tags == {
            ("cell_divergence", "A3", "numpy"),
            ("cell_divergence", "A3", "codegen"),
        }


class TestLayerConsistency:
    """dataflow/build <-> patterns/catalog <-> engine registry, one lint."""

    def test_kernel_names_mutually_exhaustive(self):
        from repro.dataflow.build import stage_kernels
        from repro.patterns.catalog import KERNELS

        reg = default_registry()
        staged = {k for stage in (1, 2, 3, 4) for k in stage_kernels(stage)}
        assert staged == set(KERNELS)
        assert set(reg.kernels()) == set(KERNELS)

    def test_stencil_labels_mutually_exhaustive(self):
        from repro.patterns.catalog import build_catalog

        reg = default_registry()
        catalog_stencils = {
            inst.label for inst in build_catalog(None) if not inst.is_local
        }
        assert reg.labels() == catalog_stencils

    def test_registry_kernel_attribution_matches_catalog(self):
        from repro.patterns.catalog import build_catalog

        reg = default_registry()
        owner = {inst.label: inst.kernel for inst in build_catalog(None)}
        for name in reg.ops():
            entry = reg.op(name)
            if entry.pattern is None:
                continue
            for label in entry.pattern.split(","):
                assert entry.kernel == owner[label], (name, label)

    def test_every_backend_covers_every_pattern_or_falls_back(self):
        """Each Table I stencil label executes under each backend name."""
        reg = default_registry()
        for label in sorted(reg.labels()):
            entry = reg.op_for_label(label)
            for backend in BACKENDS:
                fn, resolved = entry.resolve(backend)
                assert callable(fn)
                assert resolved in BACKENDS


# Ops exercised by the split executor: (op, field point types).
_SPLIT_OPS = [
    ("flux_divergence", ("edge", "edge")),
    ("kinetic_energy", ("edge",)),
    ("cell_divergence", ("edge",)),
    ("velocity_reconstruction", ("edge",)),
    ("coriolis_edge_term", ("edge", "edge", "edge")),
    ("tangential_velocity", ("edge",)),
    ("cell_to_edge_mean", ("cell",)),
    ("vertex_from_cells_kite", ("cell",)),
    ("cell_from_vertices_kite", ("vertex",)),
    ("vertex_to_edge_mean", ("vertex",)),
    ("vertex_curl", ("edge",)),
    ("edge_gradient_of_cell", ("cell",)),
    ("edge_gradient_of_vertex", ("vertex",)),
]


def _fields(mesh, kinds, rng):
    n = {"cell": mesh.nCells, "edge": mesh.nEdges, "vertex": mesh.nVertices}
    return tuple(rng.standard_normal(n[kind]) for kind in kinds)


class TestSplitExecution:
    @pytest.mark.parametrize("op,kinds", _SPLIT_OPS, ids=[o for o, _ in _SPLIT_OPS])
    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.8])
    def test_bitwise_identical_to_unsplit(self, mesh3, rng, op, kinds, fraction):
        fields = _fields(mesh3, kinds, rng)
        label = default_registry().op(op).pattern or op
        base = dispatch(op, mesh3, *fields)
        with use_placements({label: Placement("split", fraction)}):
            split = dispatch(op, mesh3, *fields)
        assert np.array_equal(base, split)

    def test_split_honours_backend(self, mesh3, rng):
        u, h = _fields(mesh3, ("edge", "edge"), rng)
        base = dispatch("flux_divergence", mesh3, u, h, backend="codegen")
        with use_placements({"A1": Placement("split", 0.4)}):
            split = dispatch("flux_divergence", mesh3, u, h, backend="codegen")
        assert np.array_equal(base, split)

    def test_band_points_counted(self, mesh3, rng):
        (u,) = _fields(mesh3, ("edge",), rng)
        metrics = MetricsRegistry()
        with use_registry(metrics), use_placements({"A3": Placement("split", 0.5)}):
            dispatch("cell_divergence", mesh3, u)
        bands = metrics.series("engine.split.band_points")
        assert {s.tags["device"] for s in bands} == {"cpu", "mic"}
        # The cut crosses the mesh, so both devices need a nonempty band.
        assert all(s.value > 0 for s in bands)
        (gauge,) = metrics.series("engine.split.cpu_fraction")
        assert gauge.value == 0.5

    def test_no_split_operator_refuses(self, mesh3, rng):
        h = rng.standard_normal(mesh3.nCells)
        with use_placements({"C1": Placement("split", 0.5)}):
            with pytest.raises(ValueError, match="does not support split"):
                dispatch("d2fdx2", mesh3, h)

    def test_single_device_placements_are_ignored(self, mesh3, rng):
        (u,) = _fields(mesh3, ("edge",), rng)
        base = dispatch("cell_divergence", mesh3, u)
        with use_placements({"A3": Placement("cpu")}):
            got = dispatch("cell_divergence", mesh3, u)
        assert np.array_equal(base, got)

    def test_placements_restored_after_context(self):
        from repro.engine import active_placements

        assert active_placements() == {}
        with use_placements({"A1": Placement("split", 0.5)}):
            assert "A1" in active_placements()
        assert active_placements() == {}

    def test_compute_tend_split_bitwise(self, mesh3):
        """The acceptance check: compute_tend split across two logical
        devices is bitwise identical to unsplit execution."""
        from repro.constants import GRAVITY
        from repro.swm.config import SWConfig
        from repro.swm.galewsky import galewsky_jet
        from repro.swm.model import suggested_dt
        from repro.swm.testcases import initialize
        from repro.swm.timestep import RK4Integrator

        case = galewsky_jet()
        config = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY), thickness_adv_order=4
        )
        state, b_cell = initialize(mesh3, case)
        integ = RK4Integrator(
            mesh3, config, b_cell, config.coriolis(mesh3.metrics.latVertex)
        )
        diag = integ.diagnostics_for(state)
        compute_tend = default_registry().kernel("compute_tend")

        tend_h, tend_u = compute_tend(mesh3, state, diag, b_cell, config)
        placements = {
            "A1": Placement("split", 0.37),
            "B1": Placement("split", 0.37),
        }
        with use_placements(placements):
            split_h, split_u = compute_tend(mesh3, state, diag, b_cell, config)
        assert np.array_equal(tend_h, split_h)
        assert np.array_equal(tend_u, split_u)

    def test_full_step_under_split_diagnostics(self, mesh3):
        """A whole RK-4 step with every splittable diagnostic pattern split
        stays bitwise identical to the unsplit step."""
        from repro.constants import GRAVITY
        from repro.swm.config import SWConfig
        from repro.swm.galewsky import galewsky_jet
        from repro.swm.model import suggested_dt
        from repro.swm.testcases import initialize
        from repro.swm.timestep import RK4Integrator

        case = galewsky_jet()
        config = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY), thickness_adv_order=2
        )
        state, b_cell = initialize(mesh3, case)
        integ = RK4Integrator(
            mesh3, config, b_cell, config.coriolis(mesh3.metrics.latVertex)
        )
        diag = integ.diagnostics_for(state)
        base = integ.step(state, diag)
        placements = {
            label: Placement("split", 0.61)
            for label in ("A1", "A2", "A3", "A4", "B1", "B2", "D1", "E1", "F1", "G1", "H1")
        }
        with use_placements(placements):
            split = integ.step(state, diag)
        assert np.array_equal(base.state.h, split.state.h)
        assert np.array_equal(base.state.u, split.state.u)


class TestCLI:
    def test_selftest_subprocess(self):
        src = Path(__file__).parent.parent / "src"
        result = subprocess.run(
            [sys.executable, "-m", "repro.engine", "--selftest"],
            capture_output=True,
            text=True,
            timeout=600,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr[-2000:]
        assert "engine selftest OK" in result.stdout
