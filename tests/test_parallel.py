"""Unit + integration tests of the distributed substrate (Figs. 8, 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.parallel import (
    DecomposedShallowWater,
    build_local_mesh,
    halo_layers_required,
    parallel_efficiency,
    partition_cells,
    partition_quality,
    strong_scaling,
    weak_scaling,
)
from repro.swm import (
    ShallowWaterModel,
    SWConfig,
    isolated_mountain,
    steady_zonal_flow,
    suggested_dt,
)


class TestPartition:
    def test_single_part(self, mesh3):
        owner = partition_cells(mesh3, 1)
        assert np.all(owner == 0)

    @pytest.mark.parametrize("n_parts", [2, 4, 7])
    def test_kmeans_covers_and_balances(self, mesh3, n_parts):
        owner = partition_cells(mesh3, n_parts)
        q = partition_quality(mesh3, owner)
        assert q.n_parts == n_parts
        assert q.min_size > 0
        assert q.imbalance < 1.5
        assert q.cut_fraction < 0.5

    def test_contiguous_exact_balance(self, mesh3):
        owner = partition_cells(mesh3, 4, method="contiguous")
        sizes = np.bincount(owner)
        assert sizes.max() - sizes.min() <= 1

    def test_invalid_args(self, mesh3):
        with pytest.raises(ValueError):
            partition_cells(mesh3, 0)
        with pytest.raises(ValueError):
            partition_cells(mesh3, mesh3.nCells + 1)
        with pytest.raises(ValueError):
            partition_cells(mesh3, 2, method="magic")

    def test_deterministic(self, mesh3):
        a = partition_cells(mesh3, 4)
        b = partition_cells(mesh3, 4)
        assert np.array_equal(a, b)


class TestLocalMesh:
    def test_halo_layers_required(self):
        assert halo_layers_required(2, apvm=False) == 2
        assert halo_layers_required(2, apvm=True) == 3
        assert halo_layers_required(4, apvm=False) == 3

    def test_structure(self, mesh3):
        owner = partition_cells(mesh3, 4)
        lm = build_local_mesh(mesh3, owner, rank=0, halo_layers=3)
        assert lm.n_owned_cells == np.count_nonzero(owner == 0)
        assert lm.nCells > lm.n_owned_cells
        assert lm.maxEdges == mesh3.maxEdges
        # Owned points come first and are sorted by global id.
        owned = lm.cells_global[: lm.n_owned_cells]
        assert np.array_equal(owned, np.sort(owned))

    def test_owned_metric_slices_bitwise(self, mesh3):
        owner = partition_cells(mesh3, 4)
        lm = build_local_mesh(mesh3, owner, rank=1, halo_layers=3)
        g = lm.cells_global
        assert np.array_equal(lm.metrics.areaCell, mesh3.metrics.areaCell[g])
        ge = lm.edges_global
        assert np.array_equal(lm.metrics.dvEdge, mesh3.metrics.dvEdge[ge])
        assert np.array_equal(lm.trisk.weightsOnEdge, mesh3.trisk.weightsOnEdge[ge])

    def test_owned_connectivity_consistent(self, mesh3):
        """Owned cells' local rows map back to the global rows exactly."""
        owner = partition_cells(mesh3, 4)
        lm = build_local_mesh(mesh3, owner, rank=2, halo_layers=3)
        conn, gconn = lm.connectivity, mesh3.connectivity
        for lc in range(0, lm.n_owned_cells, 7):
            gc = lm.cells_global[lc]
            n = int(conn.nEdgesOnCell[lc])
            assert n == int(gconn.nEdgesOnCell[gc])
            for j in range(n):
                assert lm.edges_global[conn.edgesOnCell[lc, j]] == gconn.edgesOnCell[gc, j]
                assert (
                    lm.vertices_global[conn.verticesOnCell[lc, j]]
                    == gconn.verticesOnCell[gc, j]
                )

    def test_every_rank_covers_mesh_once(self, mesh3):
        owner = partition_cells(mesh3, 4)
        seen = np.zeros(mesh3.nCells, dtype=int)
        seen_e = np.zeros(mesh3.nEdges, dtype=int)
        for r in range(4):
            lm = build_local_mesh(mesh3, owner, r, halo_layers=2)
            seen[lm.cells_global[: lm.n_owned_cells]] += 1
            seen_e[lm.edges_global[: lm.n_owned_edges]] += 1
        assert np.all(seen == 1)
        assert np.all(seen_e == 1)

    def test_empty_rank_rejected(self, mesh3):
        owner = np.zeros(mesh3.nCells, dtype=np.int64)
        with pytest.raises(ValueError):
            build_local_mesh(mesh3, owner, rank=1)


class TestDecomposedRuns:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4])
    def test_bitwise_equal_tc2(self, mesh3, n_ranks):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        serial = ShallowWaterModel(mesh3, cfg)
        serial.initialize(case)
        res = serial.run(steps=5)

        dec = DecomposedShallowWater(mesh3, n_ranks, case, cfg)
        dec.run(5)
        gathered = dec.gather_state()
        assert np.array_equal(gathered.h, res.state.h)
        assert np.array_equal(gathered.u, res.state.u)

    def test_bitwise_equal_tc5_high_order(self, mesh3):
        case = isolated_mountain()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5), thickness_adv_order=4
        )
        serial = ShallowWaterModel(mesh3, cfg)
        serial.initialize(case)
        res = serial.run(steps=4)

        dec = DecomposedShallowWater(mesh3, 4, case, cfg)
        dec.run(4)
        gathered = dec.gather_state()
        assert np.array_equal(gathered.h, res.state.h)
        assert np.array_equal(gathered.u, res.state.u)

    def test_exchange_count(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        dec = DecomposedShallowWater(mesh3, 2, case, cfg)
        dec.step()
        # Two exchanges per substage (Figure 2): pre-tend + post-update.
        assert dec.exchange_count == 8

    def test_contiguous_partition_also_bitwise(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        serial = ShallowWaterModel(mesh3, cfg)
        serial.initialize(case)
        res = serial.run(steps=3)
        dec = DecomposedShallowWater(
            mesh3, 4, case, cfg, partition_method="contiguous"
        )
        dec.run(3)
        gathered = dec.gather_state()
        assert np.array_equal(gathered.h, res.state.h)


class TestScalingModels:
    def test_strong_scaling_series(self):
        series = strong_scaling(655362, (1, 4, 16, 64))
        assert [pt.n_procs for pt in series] == [1, 4, 16, 64]
        times = [pt.hybrid_time for pt in series]
        assert times == sorted(times, reverse=True)  # more procs, less time

    def test_hybrid_beats_cpu_at_every_scale(self):
        for pt in strong_scaling(2621442, (1, 8, 64)):
            assert pt.hybrid_time < pt.cpu_time

    def test_small_mesh_efficiency_collapse(self):
        series = strong_scaling(655362, (1, 16, 64))
        eff = parallel_efficiency(series, "hybrid")
        assert eff[0] == pytest.approx(1.0)
        assert eff[-1] < eff[1]

    def test_large_mesh_scales_better(self):
        small = parallel_efficiency(strong_scaling(655362, (1, 64)), "hybrid")[-1]
        large = parallel_efficiency(strong_scaling(2621442, (1, 64)), "hybrid")[-1]
        assert large > small

    def test_weak_scaling_flat(self):
        series = weak_scaling(40962, (1, 4, 16, 64))
        times = [pt.hybrid_time for pt in series]
        assert max(times) / min(times) < 1.15
        cpu_times = [pt.cpu_time for pt in series]
        assert max(cpu_times) / min(cpu_times) < 1.15
