"""Tests of the history writer and the split-fraction autotuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.swm import (
    HistoryWriter,
    ShallowWaterModel,
    SWConfig,
    load_history,
    steady_zonal_flow,
    suggested_dt,
)


@pytest.fixture()
def model(mesh3):
    case = steady_zonal_flow()
    m = ShallowWaterModel(mesh3, SWConfig(dt=suggested_dt(mesh3, case, GRAVITY)))
    m.initialize(case)
    return m


class TestHistoryWriter:
    def test_records_at_interval(self, mesh3, model):
        writer = HistoryWriter(mesh3, model.config, fields=("h", "ke"), interval=2)
        model.run(steps=5, callback=writer)
        hist = writer.history()
        assert hist.n_snapshots == 2  # steps 2 and 4
        assert hist.fields["h"].shape == (2, mesh3.nCells)
        assert np.allclose(hist.times, [2, 4] * np.array(model.config.dt))

    def test_snapshots_are_copies(self, mesh3, model):
        writer = HistoryWriter(mesh3, model.config, fields=("h",), interval=1)
        model.run(steps=2, callback=writer)
        hist = writer.history()
        assert not np.array_equal(hist.fields["h"][0], hist.fields["h"][1])

    def test_reconstruction_fields(self, mesh3, model):
        writer = HistoryWriter(
            mesh3, model.config, fields=("uReconstructZonal",), interval=1
        )
        model.run(steps=1, callback=writer)
        hist = writer.history()
        # TC2: ~zonal jet, peak near the 38.6 m/s analytic maximum.
        assert 30.0 < np.abs(hist.fields["uReconstructZonal"]).max() < 45.0

    def test_save_load_roundtrip(self, mesh3, model, tmp_path):
        writer = HistoryWriter(mesh3, model.config, fields=("h", "u"), interval=1)
        model.run(steps=3, callback=writer)
        path = tmp_path / "history.npz"
        writer.save(path)
        loaded = load_history(path)
        assert loaded.n_snapshots == 3
        np.testing.assert_array_equal(loaded.fields["u"], writer.history().fields["u"])

    def test_series_access(self, mesh3, model):
        writer = HistoryWriter(mesh3, model.config, fields=("h",), interval=1)
        model.run(steps=4, callback=writer)
        series = writer.history().series("h", 10)
        assert series.shape == (4,)

    def test_unknown_field_rejected(self, mesh3, model):
        with pytest.raises(ValueError):
            HistoryWriter(mesh3, model.config, fields=("entropy",))

    def test_bad_interval_rejected(self, mesh3, model):
        with pytest.raises(ValueError):
            HistoryWriter(mesh3, model.config, interval=0)


class TestAutotune:
    @pytest.fixture(scope="class")
    def tuning_setup(self):
        from repro.dataflow import build_step_graph
        from repro.hybrid import HybridExecutor
        from repro.hybrid.schedule import node_times
        from repro.hybrid.stepmodel import (
            _cpu_parallel_model,
            _mic_model,
            _perf_config,
        )
        from repro.machine import TransferModel
        from repro.machine.counts import MeshCounts
        from repro.machine.spec import PAPER_NODE

        counts = MeshCounts(nCells=163842)
        dfg = build_step_graph(_perf_config())
        times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
        executor = HybridExecutor(
            dfg, times, counts,
            TransferModel(PAPER_NODE.pcie_bw_gbs, PAPER_NODE.pcie_latency_us),
        )
        return dfg, times, executor

    def test_finds_near_balanced_optimum(self, tuning_setup):
        from repro.hybrid import tune_split_fraction
        from repro.hybrid.schedule import balanced_fraction

        dfg, times, executor = tuning_setup
        result = tune_split_fraction(dfg, times, executor)
        f_star = balanced_fraction(dfg, times)
        # The tuned fraction sits near the analytic work balance.
        assert abs(result.fraction - f_star) < 0.2
        # And it is the argmin of its own history.
        assert result.makespan == min(m for _, m in result.history)

    def test_tuned_beats_extremes(self, tuning_setup):
        from repro.hybrid import tune_split_fraction

        dfg, times, executor = tuning_setup
        result = tune_split_fraction(dfg, times, executor)
        extremes = {f: m for f, m in result.history if f in (0.05, 0.95)}
        for m in extremes.values():
            assert result.makespan <= m

    def test_history_complete(self, tuning_setup):
        from repro.hybrid import tune_split_fraction

        dfg, times, executor = tuning_setup
        result = tune_split_fraction(dfg, times, executor, candidates=5)
        assert result.evaluations == 6  # 5 grid points + balanced seed
