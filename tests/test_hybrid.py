"""Unit tests of the hybrid executor and schedulers (Figs. 2, 4b, 7)."""

from __future__ import annotations

import pytest

from repro.dataflow import build_step_graph
from repro.hybrid import (
    HybridExecutor,
    Placement,
    cpu_only_assignment,
    hybrid_step_time,
    kernel_level_assignment,
    model_step_times,
    node_times,
    pattern_level_assignment,
)
from repro.hybrid.schedule import balanced_fraction, static_split_assignment
from repro.hybrid.stepmodel import (
    LocalProblem,
    _cpu_parallel_model,
    _mic_model,
    _perf_config,
    decompose,
    serial_step_time,
)
from repro.machine import TransferModel
from repro.machine.counts import MeshCounts
from repro.machine.spec import PAPER_NODE


@pytest.fixture(scope="module")
def setup():
    dfg = build_step_graph(_perf_config())
    counts = MeshCounts(nCells=40962, name="120-km")
    times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
    transfer = TransferModel(PAPER_NODE.pcie_bw_gbs, PAPER_NODE.pcie_latency_us)
    executor = HybridExecutor(dfg, times, counts, transfer)
    return dfg, counts, times, executor


class TestPlacement:
    def test_valid_devices(self):
        Placement("cpu")
        Placement("mic")
        Placement("split", cpu_fraction=0.4)

    def test_invalid_device(self):
        with pytest.raises(ValueError):
            Placement("gpu")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            Placement("split", cpu_fraction=0.0)


class TestExecutor:
    def test_cpu_only_no_transfers(self, setup):
        dfg, _, _, executor = setup
        tl = executor.run(cpu_only_assignment(dfg))
        tl.validate_no_overlap()
        assert tl.transfer_time() == 0.0
        assert tl.busy("mic") == 0.0

    def test_cpu_only_equals_sum_of_times(self, setup):
        dfg, _, times, executor = setup
        tl = executor.run(cpu_only_assignment(dfg))
        assert tl.makespan == pytest.approx(
            sum(times[n]["cpu"] for n in dfg.compute_nodes()), rel=1e-9
        )

    def test_kernel_level_uses_both_devices(self, setup):
        dfg, _, times, executor = setup
        tl = executor.run(kernel_level_assignment(dfg, times))
        tl.validate_no_overlap()
        assert tl.busy("cpu") > 0.0
        assert tl.busy("mic") > 0.0
        assert tl.transfer_time() > 0.0  # kernels alternate devices

    def test_pattern_level_beats_kernel_level(self, setup):
        dfg, _, times, executor = setup
        t_kernel = executor.run(kernel_level_assignment(dfg, times)).makespan
        t_pattern = executor.run(
            pattern_level_assignment(dfg, times, min_split_gain=0.0)
        ).makespan
        assert t_pattern < t_kernel

    def test_schedules_beat_single_device(self, setup):
        dfg, _, times, executor = setup
        t_cpu = executor.run(cpu_only_assignment(dfg)).makespan
        t_pattern = executor.run(
            pattern_level_assignment(dfg, times, min_split_gain=0.0)
        ).makespan
        assert t_pattern < t_cpu

    def test_makespan_bounded_by_critical_path(self, setup):
        from repro.dataflow import critical_path

        dfg, _, times, executor = setup
        best_times = {n: min(times[n].values()) for n in dfg.compute_nodes()}
        lower, _ = critical_path(dfg, best_times)
        for assignment in (
            cpu_only_assignment(dfg),
            kernel_level_assignment(dfg, times),
            pattern_level_assignment(dfg, times, min_split_gain=0.0),
        ):
            tl = executor.run(assignment)
            assert tl.makespan >= 0.5 * lower  # splits may halve node times

    def test_dependencies_respected(self, setup):
        dfg, _, times, executor = setup
        tl = executor.run(kernel_level_assignment(dfg, times))
        tl.validate_dependencies(dfg)

    def test_split_runs_on_both(self, setup):
        dfg, _, times, executor = setup
        tl = executor.run(static_split_assignment(dfg, times, fraction=0.5))
        tl.validate_no_overlap()
        names = {t.name for t in tl.tasks if t.kind == "compute"}
        assert any("[cpu]" in n for n in names)
        assert any("[mic]" in n for n in names)

    def test_halo_forces_host_residency(self, setup):
        dfg, counts, times, _ = setup
        transfer = TransferModel(PAPER_NODE.pcie_bw_gbs, PAPER_NODE.pcie_latency_us)
        executor = HybridExecutor(dfg, times, counts, transfer, halo_time=1e-4)
        # Everything on MIC: provis fields must ship to the host for every
        # halo exchange and back.
        all_mic = {n: Placement("mic") for n in dfg.compute_nodes()}
        tl = executor.run(all_mic)
        assert tl.busy("net") == pytest.approx(1e-4 * len(dfg.halo_nodes()))
        assert tl.transfer_time() > 0.0

    def test_gantt_renders(self, setup):
        dfg, _, times, executor = setup
        tl = executor.run(kernel_level_assignment(dfg, times))
        text = tl.gantt()
        assert "cpu" in text and "makespan" in text


class TestSchedulers:
    def test_balanced_fraction_range(self, setup):
        dfg, _, times, _ = setup
        f = balanced_fraction(dfg, times)
        assert 0.05 <= f <= 0.95

    def test_static_split_assignment_uniform(self, setup):
        dfg, _, times, _ = setup
        asg = static_split_assignment(dfg, times)
        fractions = {p.cpu_fraction for p in asg.values()}
        assert len(fractions) == 1
        assert all(p.device == "split" for p in asg.values())

    def test_kernel_level_fig2_placement(self, setup):
        dfg, _, _, _ = setup
        asg = kernel_level_assignment(dfg)
        for node, placement in asg.items():
            kernel = dfg.instance(node).kernel
            expected = (
                "mic"
                if kernel in ("compute_tend", "compute_solve_diagnostics")
                else "cpu"
            )
            assert placement.device == expected

    def test_greedy_kernel_level_runs(self, setup):
        dfg, _, times, executor = setup
        asg = kernel_level_assignment(dfg, times, greedy=True)
        tl = executor.run(asg)
        tl.validate_no_overlap()

    def test_greedy_requires_times(self, setup):
        dfg, _, _, _ = setup
        with pytest.raises(ValueError):
            kernel_level_assignment(dfg, greedy=True)

    def test_only_splittable_split(self, setup):
        dfg, _, times, _ = setup
        asg = pattern_level_assignment(dfg, times, min_split_gain=0.0)
        for node, placement in asg.items():
            if placement.device == "split":
                assert dfg.instance(node).splittable


class TestStepModel:
    def test_figure7_shape(self):
        st = model_step_times(MeshCounts(nCells=655362, name="30-km"))
        assert st.pattern_speedup > st.kernel_speedup > 4.0
        assert st.pattern_speedup < 11.0

    def test_modes(self):
        counts = MeshCounts(nCells=40962)
        t_cpu = hybrid_step_time(counts, mode="cpu")
        t_kernel = hybrid_step_time(counts, mode="kernel")
        t_pattern = hybrid_step_time(counts, mode="pattern")
        t_split_all = hybrid_step_time(counts, mode="split-all")
        assert t_pattern < t_kernel < t_cpu
        assert t_split_all < t_kernel

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            hybrid_step_time(MeshCounts(nCells=1000), mode="magic")

    def test_serial_slower_than_hybrid(self):
        counts = MeshCounts(nCells=40962)
        assert serial_step_time(counts) > hybrid_step_time(counts)

    def test_decompose_halo(self):
        local = decompose(40962, 4)
        assert local.owned_cells == 10241
        assert local.halo_cells > 0
        assert local.nCells == local.owned_cells + local.halo_cells

    def test_decompose_single_process_closed(self):
        local = decompose(40962, 1)
        assert local.halo_cells == 0
        assert local.nEdges == 3 * 40962 - 6

    def test_local_problem_counts(self):
        lp = LocalProblem(owned_cells=100, halo_cells=20)
        assert lp.nCells == 120
        assert lp.nEdges == 360
