"""Tests of the model-level extensions: rotated TC2, del4, checkpoints, DOT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.swm import (
    ShallowWaterModel,
    SWConfig,
    isolated_mountain,
    steady_zonal_flow,
    suggested_dt,
)


class TestRotatedTC2:
    @pytest.mark.parametrize("alpha", [np.pi / 4, np.pi / 2])
    def test_steady_at_any_orientation(self, mesh3, alpha):
        """The rotated flow (over the poles at alpha = pi/2) stays steady —
        SCVT meshes have no pole singularity."""
        case = steady_zonal_flow(alpha=alpha)
        model = ShallowWaterModel(
            mesh3, SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        )
        model.initialize(case)
        res = model.run(days=1.0)
        assert model.exact_error().l2 < 2e-3
        assert res.mass_drift() < 1e-13

    def test_rotated_coriolis_field(self, mesh3):
        case = steady_zonal_flow(alpha=np.pi / 2)
        f = case.coriolis(mesh3.metrics.xVertex)
        # f follows the rotated axis (-1, 0, 0): extreme on the equator at
        # lon = pi, zero at the geographic poles.
        assert abs(f[np.argmax(np.abs(mesh3.metrics.xVertex[:, 0]))]) > abs(
            f[np.argmax(mesh3.metrics.xVertex[:, 2])]
        )

    def test_alpha_zero_uses_standard_f(self):
        assert steady_zonal_flow(alpha=0.0).coriolis is None

    def test_case_name_distinguishes_alpha(self):
        assert steady_zonal_flow(alpha=0.5).name != steady_zonal_flow().name


class TestHyperviscosity:
    def test_validated(self):
        with pytest.raises(ValueError):
            SWConfig(dt=1.0, hyperviscosity=-1.0)

    def test_scale_selective_damping(self, mesh3, rng):
        """del4 damps grid-scale noise while barely touching the resolved
        flow — the property del2 lacks."""
        case = steady_zonal_flow()
        dt = suggested_dt(mesh3, case, GRAVITY, cfl=0.4)
        noise = 0.5 * rng.standard_normal(mesh3.nEdges)
        dx4 = float(np.mean(mesh3.dcEdge)) ** 4

        def run(nu4):
            model = ShallowWaterModel(
                mesh3, SWConfig(dt=dt, hyperviscosity=nu4)
            )
            state = model.initialize(case)
            state.u += noise
            model.diagnostics = model.integrator.diagnostics_for(state)
            model.run(steps=8)
            return model

        plain = run(0.0)
        damped = run(0.002 * dx4 / dt)
        # The noisy run with del4 ends closer to the exact steady state.
        assert damped.exact_error().l2 < plain.exact_error().l2

    def test_no_effect_on_smooth_steady_state(self, mesh3):
        case = steady_zonal_flow()
        dt = suggested_dt(mesh3, case, GRAVITY, cfl=0.4)
        dx4 = float(np.mean(mesh3.dcEdge)) ** 4
        errs = {}
        for nu4 in (0.0, 0.001 * dx4 / dt):
            model = ShallowWaterModel(mesh3, SWConfig(dt=dt, hyperviscosity=nu4))
            model.initialize(case)
            model.run(steps=8)
            errs[nu4] = model.exact_error().l2
        vals = list(errs.values())
        assert vals[1] < 1.5 * vals[0]  # resolved flow barely affected


class TestCheckpointRestart:
    def test_bitwise_continuation(self, mesh3, tmp_path):
        case = isolated_mountain()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        full = ShallowWaterModel(mesh3, cfg)
        full.initialize(case)
        full.run(steps=8)

        half = ShallowWaterModel(mesh3, cfg)
        half.initialize(case)
        half.run(steps=4)
        path = tmp_path / "restart.npz"
        half.save_checkpoint(path)

        resumed = ShallowWaterModel.from_checkpoint(mesh3, path)
        resumed.run(steps=4)
        assert np.array_equal(resumed.state.h, full.state.h)
        assert np.array_equal(resumed.state.u, full.state.u)

    def test_config_roundtrip(self, mesh3, tmp_path):
        case = steady_zonal_flow()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY),
            thickness_adv_order=4,
            apvm_upwinding=0.25,
            viscosity=100.0,
        )
        model = ShallowWaterModel(mesh3, cfg)
        model.initialize(case)
        path = tmp_path / "restart.npz"
        model.save_checkpoint(path)
        restored = ShallowWaterModel.from_checkpoint(mesh3, path)
        assert restored.config == cfg

    def test_checkpoint_requires_state(self, mesh3, tmp_path):
        model = ShallowWaterModel(mesh3, SWConfig(dt=100.0))
        with pytest.raises(RuntimeError):
            model.save_checkpoint(tmp_path / "x.npz")


class TestDotExport:
    def test_valid_dot_structure(self):
        from repro.dataflow import build_stage_graph

        dfg = build_stage_graph(SWConfig(dt=1.0, thickness_adv_order=4), stage=1)
        dot = dfg.to_dot()
        assert dot.startswith("digraph dataflow {")
        assert dot.rstrip().endswith("}")
        assert dot.count("subgraph cluster_") == 5  # 5 kernels in stage 1
        assert '"s1:B1"' in dot
        assert "Exchange halo" in dot
        assert "->" in dot

    def test_edges_carry_variables(self):
        from repro.dataflow import build_stage_graph

        dfg = build_stage_graph(SWConfig(dt=1.0), stage=1, with_halo=False)
        dot = dfg.to_dot()
        assert 'label="tend_h"' in dot

    def test_sources_optional(self):
        from repro.dataflow import build_stage_graph

        dfg = build_stage_graph(SWConfig(dt=1.0), stage=1, with_halo=False)
        with_src = dfg.to_dot(include_sources=True)
        without = dfg.to_dot(include_sources=False)
        assert len(with_src) > len(without)
        assert "shape=plaintext" in with_src
