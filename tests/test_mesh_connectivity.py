"""Unit tests of Voronoi extraction and C-grid connectivity construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import icosahedral_points, lloyd_relax
from repro.geometry.sphere import spherical_polygon_area
from repro.mesh import build_connectivity, extract_voronoi


@pytest.fixture(scope="module")
def raw():
    pts = lloyd_relax(icosahedral_points(2), iterations=3).points
    return extract_voronoi(pts)


@pytest.fixture(scope="module")
def conn(raw):
    return build_connectivity(raw)


class TestExtractVoronoi:
    def test_counts(self, raw):
        assert raw.n_cells == 162
        assert raw.n_vertices == 2 * 162 - 4

    def test_regions_ccw(self, raw):
        for ring in raw.regions:
            assert spherical_polygon_area(raw.vertices[ring]) > 0

    def test_region_sizes(self, raw):
        sizes = sorted(len(r) for r in raw.regions)
        assert sizes[0] == 5 and sizes[-1] == 6
        assert sizes.count(5) == 12

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            extract_voronoi(np.eye(3))


class TestEulerAndCounts:
    def test_euler(self, conn):
        assert conn.n_vertices - conn.n_edges + conn.n_cells == 2

    def test_edge_count(self, conn):
        assert conn.n_edges == 3 * conn.n_cells - 6

    def test_max_edges(self, conn):
        assert conn.max_edges == 6


class TestEdgeTables:
    def test_cells_on_edge_distinct(self, conn):
        assert np.all(conn.cellsOnEdge[:, 0] != conn.cellsOnEdge[:, 1])

    def test_vertices_on_edge_distinct(self, conn):
        assert np.all(conn.verticesOnEdge[:, 0] != conn.verticesOnEdge[:, 1])

    def test_every_edge_in_both_cells(self, conn):
        for e in range(conn.n_edges):
            for c in conn.cellsOnEdge[e]:
                row = conn.edgesOnCell[c, : conn.nEdgesOnCell[c]]
                assert e in row

    def test_edge_vertices_are_cell_corners(self, conn):
        for e in range(0, conn.n_edges, 7):
            c0 = conn.cellsOnEdge[e, 0]
            corners = set(conn.verticesOnCell[c0, : conn.nEdgesOnCell[c0]])
            assert set(conn.verticesOnEdge[e]) <= corners


class TestCellRings:
    def test_ring_alignment(self, conn):
        # edgesOnCell[c][j] joins verticesOnCell[c][j] and [j+1].
        for c in range(0, conn.n_cells, 11):
            n = int(conn.nEdgesOnCell[c])
            for j in range(n):
                e = conn.edgesOnCell[c, j]
                v_pair = {
                    conn.verticesOnCell[c, j],
                    conn.verticesOnCell[c, (j + 1) % n],
                }
                assert set(conn.verticesOnEdge[e]) == v_pair

    def test_cells_on_cell_matches_edges(self, conn):
        for c in range(0, conn.n_cells, 11):
            for j in range(int(conn.nEdgesOnCell[c])):
                e = conn.edgesOnCell[c, j]
                nb = conn.cellsOnCell[c, j]
                assert set(conn.cellsOnEdge[e]) == {c, nb}

    def test_padding(self, conn):
        pentagons = np.flatnonzero(conn.nEdgesOnCell == 5)
        assert np.all(conn.edgesOnCell[pentagons, 5] == -1)
        assert np.all(conn.verticesOnCell[pentagons, 5] == -1)
        assert np.all(conn.edgeSignOnCell[pentagons, 5] == 0.0)


class TestVertexTables:
    def test_trivalent(self, conn):
        assert conn.cellsOnVertex.shape == (conn.n_vertices, 3)
        assert np.all(conn.cellsOnVertex >= 0)
        assert np.all(conn.edgesOnVertex >= 0)

    def test_edges_between_consecutive_cells(self, conn):
        # edgesOnVertex[v][j] separates cellsOnVertex[v][j] and [j+1].
        for v in range(0, conn.n_vertices, 13):
            for j in range(3):
                e = conn.edgesOnVertex[v, j]
                pair = {
                    conn.cellsOnVertex[v, j],
                    conn.cellsOnVertex[v, (j + 1) % 3],
                }
                assert set(conn.cellsOnEdge[e]) == pair

    def test_vertex_edges_touch_vertex(self, conn):
        for v in range(0, conn.n_vertices, 13):
            for e in conn.edgesOnVertex[v]:
                assert v in conn.verticesOnEdge[e]


class TestSigns:
    def test_edge_sign_on_cell_convention(self, conn):
        for c in range(0, conn.n_cells, 17):
            for j in range(int(conn.nEdgesOnCell[c])):
                e = conn.edgesOnCell[c, j]
                expected = 1.0 if conn.cellsOnEdge[e, 0] == c else -1.0
                assert conn.edgeSignOnCell[c, j] == expected

    def test_edge_sign_on_cell_antisymmetric_across_edge(self, conn):
        # The two cells of an edge see opposite outward signs.
        sign_of = {}
        for c in range(conn.n_cells):
            for j in range(int(conn.nEdgesOnCell[c])):
                e = conn.edgesOnCell[c, j]
                sign_of.setdefault(e, []).append(conn.edgeSignOnCell[c, j])
        for e, signs in sign_of.items():
            assert sorted(signs) == [-1.0, 1.0]

    def test_edge_sign_on_vertex_convention(self, conn):
        for v in range(0, conn.n_vertices, 13):
            for j in range(3):
                e = conn.edgesOnVertex[v, j]
                expected = 1.0 if conn.verticesOnEdge[e, 1] == v else -1.0
                assert conn.edgeSignOnVertex[v, j] == expected

    def test_edge_sign_on_vertex_antisymmetric(self, conn):
        sign_of = {}
        for v in range(conn.n_vertices):
            for j in range(3):
                e = conn.edgesOnVertex[v, j]
                sign_of.setdefault(e, []).append(conn.edgeSignOnVertex[v, j])
        for e, signs in sign_of.items():
            assert sorted(signs) == [-1.0, 1.0]
