"""Unit tests of the Mesh container: build, validate, save/load, cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh import (
    CACHE_FORMAT_VERSION,
    MESH_FAMILY,
    Mesh,
    MeshFormatError,
    assess_quality,
    cached_mesh,
    clear_memory_cache,
    mesh_cache_path,
    mesh_family_counts,
)


class TestBuild:
    def test_build_level2(self):
        mesh = Mesh.build(2, lloyd_iterations=2)
        mesh.validate()
        assert mesh.nCells == 162

    def test_build_without_lloyd(self):
        mesh = Mesh.build(2, lloyd_iterations=0)
        mesh.validate()
        assert mesh.info["lloyd_iterations"] == 0

    def test_info_populated(self):
        mesh = Mesh.build(2, lloyd_iterations=1)
        assert mesh.info["level"] == 2
        assert mesh.info["nominal_resolution_km"] > 0

    def test_from_points_custom(self, rng):
        from repro.geometry import lloyd_relax, normalize

        # Raw random points are too distorted for a C-grid (inverted kites);
        # a few Lloyd sweeps produce a usable SCVT, which is the documented
        # requirement of from_points.
        pts = lloyd_relax(
            normalize(rng.standard_normal((80, 3))), iterations=30
        ).points
        mesh = Mesh.from_points(pts, name="random80")
        mesh.validate()
        assert mesh.nCells == 80
        assert mesh.name == "random80"

    def test_from_points_rejects_distorted(self, rng):
        from repro.geometry import normalize

        pts = normalize(rng.standard_normal((80, 3)))
        with pytest.raises(ValueError):
            Mesh.from_points(pts)

    def test_nominal_resolution(self, mesh3):
        # 642 cells on Earth: sqrt(4*pi*R^2/642) ~ 890 km.
        assert 800 < mesh3.nominal_resolution_km < 1000


class TestValidate:
    def test_validate_passes(self, mesh3):
        mesh3.validate()

    def test_validate_catches_broken_area(self, mesh3):
        import dataclasses

        bad_metrics = dataclasses.replace(
            mesh3.metrics, areaCell=mesh3.metrics.areaCell * 1.5
        )
        bad = Mesh(
            connectivity=mesh3.connectivity,
            metrics=bad_metrics,
            trisk=mesh3.trisk,
        )
        with pytest.raises(ValueError, match="areaCell"):
            bad.validate()


class TestSaveLoad:
    def test_roundtrip(self, mesh3, tmp_path):
        path = tmp_path / "mesh.npz"
        mesh3.save(path)
        loaded = Mesh.load(path)
        loaded.validate()
        assert loaded.nCells == mesh3.nCells
        assert np.array_equal(loaded.connectivity.edgesOnCell, mesh3.connectivity.edgesOnCell)
        assert np.array_equal(loaded.trisk.weightsOnEdge, mesh3.trisk.weightsOnEdge)
        assert np.array_equal(loaded.metrics.areaCell, mesh3.metrics.areaCell)

    def test_loaded_mesh_runs_model(self, mesh3, tmp_path):
        from repro.swm import ShallowWaterModel, SWConfig, steady_zonal_flow, suggested_dt

        path = tmp_path / "mesh.npz"
        mesh3.save(path)
        loaded = Mesh.load(path)
        case = steady_zonal_flow()
        dt = suggested_dt(loaded, case, 9.80616)
        model = ShallowWaterModel(loaded, SWConfig(dt=dt))
        model.initialize(case)
        model.run(steps=2)


class TestCache:
    def test_memory_cache_identity(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        a = cached_mesh(2, lloyd_iterations=1)
        b = cached_mesh(2, lloyd_iterations=1)
        assert a is b
        clear_memory_cache()

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        a = cached_mesh(2, lloyd_iterations=1)
        clear_memory_cache()
        b = cached_mesh(2, lloyd_iterations=1)  # from disk this time
        assert a is not b
        assert np.array_equal(a.metrics.areaCell, b.metrics.areaCell)
        clear_memory_cache()

    def test_radius_collision_regression(self, tmp_path, monkeypatch):
        """Radii differing by less than 0.5 m must not share a cache file.

        The filename used to key the radius on ``f"{radius:.0f}"``, so two
        sub-metre-distinct radii collided onto one archive and the second
        ``cached_mesh`` call silently returned the first radius's mesh.
        """
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        r1 = 6_371_220.0
        r2 = r1 + 0.25  # would format to the same "6371220" under :.0f
        assert mesh_cache_path(2, 0, r1) != mesh_cache_path(2, 0, r2)
        a = cached_mesh(2, lloyd_iterations=0, radius=r1)
        b = cached_mesh(2, lloyd_iterations=0, radius=r2)
        assert a.radius == r1 and b.radius == r2
        clear_memory_cache()
        # Reload both from disk: each must come back with its own radius.
        assert cached_mesh(2, lloyd_iterations=0, radius=r1).radius == r1
        assert cached_mesh(2, lloyd_iterations=0, radius=r2).radius == r2
        clear_memory_cache()

    def test_version_stamp_regression(self, tmp_path, monkeypatch):
        """Unstamped or wrongly-stamped archives are rebuilt, never loaded.

        Pre-versioning cache files carried no ``format_version``; a layout
        refactor then loaded them blindly (crash on a missing field at
        best, silently wrong numerics at worst).
        """
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        good = cached_mesh(2, lloyd_iterations=0)
        path = mesh_cache_path(2, 0)
        assert path.exists()
        with np.load(path) as d:
            assert int(d["format_version"]) == CACHE_FORMAT_VERSION
            fields = dict(d)

        # An unstamped (pre-versioning) archive: Mesh.load must refuse it...
        del fields["format_version"]
        np.savez_compressed(path, **fields)
        with pytest.raises(MeshFormatError, match="no mesh format-version"):
            Mesh.load(path)
        # ...and cached_mesh must rebuild + restamp instead of loading.
        clear_memory_cache()
        rebuilt = cached_mesh(2, lloyd_iterations=0)
        assert np.array_equal(rebuilt.metrics.areaCell, good.metrics.areaCell)
        with np.load(path) as d:
            assert int(d["format_version"]) == CACHE_FORMAT_VERSION

        # A future/foreign stamp is refused just the same.
        fields["format_version"] = np.array(CACHE_FORMAT_VERSION + 1)
        np.savez_compressed(path, **fields)
        with pytest.raises(MeshFormatError, match="format version"):
            Mesh.load(path)
        clear_memory_cache()
        cached_mesh(2, lloyd_iterations=0)
        with np.load(path) as d:
            assert int(d["format_version"]) == CACHE_FORMAT_VERSION
        clear_memory_cache()

    def test_use_disk_false_never_shares_disk_meshes(self, tmp_path, monkeypatch):
        """``use_disk=False`` must bypass the disk cache *and* its memoizations.

        The memory cache used to be keyed without ``use_disk``, so a
        disk-loaded mesh could be handed to a caller that explicitly asked
        to bypass the disk cache.
        """
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        disk = cached_mesh(2, lloyd_iterations=0, use_disk=True)
        nodisk = cached_mesh(2, lloyd_iterations=0, use_disk=False)
        assert disk is not nodisk
        assert disk.info.get("disk_cached") is True
        assert "disk_cached" not in nodisk.info
        # Each flavour memoizes under its own key.
        assert cached_mesh(2, lloyd_iterations=0, use_disk=True) is disk
        assert cached_mesh(2, lloyd_iterations=0, use_disk=False) is nodisk
        # A pure use_disk=False session writes nothing to disk.
        clear_memory_cache()
        path = mesh_cache_path(2, 0)
        path.unlink()
        cached_mesh(2, lloyd_iterations=0, use_disk=False)
        assert not path.exists()
        clear_memory_cache()


class TestFamily:
    def test_table3_counts(self):
        counts = mesh_family_counts()
        assert counts["120km"] == 40962
        assert counts["60km"] == 163842
        assert counts["30km"] == 655362
        assert counts["15km"] == 2621442

    def test_family_levels(self):
        assert MESH_FAMILY["120km"] == 6
        assert MESH_FAMILY["15km"] == 9


class TestQuality:
    def test_quality_fields(self, mesh3):
        q = assess_quality(mesh3)
        assert q.n_cells == 642
        assert q.n_pentagons == 12
        assert q.n_hexagons == 630
        assert q.n_other == 0
        assert 1.0 <= q.area_ratio < 2.0
        assert q.centroidality < 1e-2
        assert "pent=12" in q.summary()

    def test_quality_skip_centroidality(self, mesh3):
        q = assess_quality(mesh3, compute_centroidality=False)
        assert np.isnan(q.centroidality)
