"""Unit tests of the Mesh container: build, validate, save/load, cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh import (
    MESH_FAMILY,
    Mesh,
    assess_quality,
    cached_mesh,
    clear_memory_cache,
    mesh_family_counts,
)


class TestBuild:
    def test_build_level2(self):
        mesh = Mesh.build(2, lloyd_iterations=2)
        mesh.validate()
        assert mesh.nCells == 162

    def test_build_without_lloyd(self):
        mesh = Mesh.build(2, lloyd_iterations=0)
        mesh.validate()
        assert mesh.info["lloyd_iterations"] == 0

    def test_info_populated(self):
        mesh = Mesh.build(2, lloyd_iterations=1)
        assert mesh.info["level"] == 2
        assert mesh.info["nominal_resolution_km"] > 0

    def test_from_points_custom(self, rng):
        from repro.geometry import lloyd_relax, normalize

        # Raw random points are too distorted for a C-grid (inverted kites);
        # a few Lloyd sweeps produce a usable SCVT, which is the documented
        # requirement of from_points.
        pts = lloyd_relax(
            normalize(rng.standard_normal((80, 3))), iterations=30
        ).points
        mesh = Mesh.from_points(pts, name="random80")
        mesh.validate()
        assert mesh.nCells == 80
        assert mesh.name == "random80"

    def test_from_points_rejects_distorted(self, rng):
        from repro.geometry import normalize

        pts = normalize(rng.standard_normal((80, 3)))
        with pytest.raises(ValueError):
            Mesh.from_points(pts)

    def test_nominal_resolution(self, mesh3):
        # 642 cells on Earth: sqrt(4*pi*R^2/642) ~ 890 km.
        assert 800 < mesh3.nominal_resolution_km < 1000


class TestValidate:
    def test_validate_passes(self, mesh3):
        mesh3.validate()

    def test_validate_catches_broken_area(self, mesh3):
        import dataclasses

        bad_metrics = dataclasses.replace(
            mesh3.metrics, areaCell=mesh3.metrics.areaCell * 1.5
        )
        bad = Mesh(
            connectivity=mesh3.connectivity,
            metrics=bad_metrics,
            trisk=mesh3.trisk,
        )
        with pytest.raises(ValueError, match="areaCell"):
            bad.validate()


class TestSaveLoad:
    def test_roundtrip(self, mesh3, tmp_path):
        path = tmp_path / "mesh.npz"
        mesh3.save(path)
        loaded = Mesh.load(path)
        loaded.validate()
        assert loaded.nCells == mesh3.nCells
        assert np.array_equal(loaded.connectivity.edgesOnCell, mesh3.connectivity.edgesOnCell)
        assert np.array_equal(loaded.trisk.weightsOnEdge, mesh3.trisk.weightsOnEdge)
        assert np.array_equal(loaded.metrics.areaCell, mesh3.metrics.areaCell)

    def test_loaded_mesh_runs_model(self, mesh3, tmp_path):
        from repro.swm import ShallowWaterModel, SWConfig, steady_zonal_flow, suggested_dt

        path = tmp_path / "mesh.npz"
        mesh3.save(path)
        loaded = Mesh.load(path)
        case = steady_zonal_flow()
        dt = suggested_dt(loaded, case, 9.80616)
        model = ShallowWaterModel(loaded, SWConfig(dt=dt))
        model.initialize(case)
        model.run(steps=2)


class TestCache:
    def test_memory_cache_identity(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        a = cached_mesh(2, lloyd_iterations=1)
        b = cached_mesh(2, lloyd_iterations=1)
        assert a is b
        clear_memory_cache()

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        a = cached_mesh(2, lloyd_iterations=1)
        clear_memory_cache()
        b = cached_mesh(2, lloyd_iterations=1)  # from disk this time
        assert a is not b
        assert np.array_equal(a.metrics.areaCell, b.metrics.areaCell)
        clear_memory_cache()


class TestFamily:
    def test_table3_counts(self):
        counts = mesh_family_counts()
        assert counts["120km"] == 40962
        assert counts["60km"] == 163842
        assert counts["30km"] == 655362
        assert counts["15km"] == 2621442

    def test_family_levels(self):
        assert MESH_FAMILY["120km"] == 6
        assert MESH_FAMILY["15km"] == 9


class TestQuality:
    def test_quality_fields(self, mesh3):
        q = assess_quality(mesh3)
        assert q.n_cells == 642
        assert q.n_pentagons == 12
        assert q.n_hexagons == 630
        assert q.n_other == 0
        assert 1.0 <= q.area_ratio < 2.0
        assert q.centroidality < 1e-2
        assert "pent=12" in q.summary()

    def test_quality_skip_centroidality(self, mesh3):
        q = assess_quality(mesh3, compute_centroidality=False)
        assert np.isnan(q.centroidality)
