"""Unit tests of the spherical Lloyd / SCVT relaxation."""

from __future__ import annotations

import numpy as np

from repro.geometry import (
    centroidality_residual,
    icosahedral_points,
    lloyd_relax,
)


class TestLloyd:
    def test_reduces_centroidality(self):
        pts = icosahedral_points(2)
        before = centroidality_residual(pts)
        result = lloyd_relax(pts, iterations=5)
        after = centroidality_residual(result.points)
        assert after < before

    def test_displacement_monotone_decreasing(self):
        pts = icosahedral_points(2)
        result = lloyd_relax(pts, iterations=6)
        hist = result.displacement_history
        assert len(hist) == result.iterations
        # Near a fixed point the sweep is a contraction.
        assert hist[-1] < hist[0]

    def test_points_stay_on_sphere(self):
        result = lloyd_relax(icosahedral_points(2), iterations=3)
        assert np.allclose(np.linalg.norm(result.points, axis=1), 1.0)

    def test_point_count_preserved(self):
        pts = icosahedral_points(1)
        result = lloyd_relax(pts, iterations=2)
        assert result.points.shape == pts.shape

    def test_zero_iterations(self):
        pts = icosahedral_points(1)
        result = lloyd_relax(pts, iterations=0)
        assert result.iterations == 0
        assert np.allclose(result.points, pts)

    def test_converged_flag(self):
        # A very loose tolerance converges immediately.
        result = lloyd_relax(icosahedral_points(1), iterations=5, tol=1.0)
        assert result.converged
        assert result.iterations == 1

    def test_deterministic(self):
        a = lloyd_relax(icosahedral_points(2), iterations=3).points
        b = lloyd_relax(icosahedral_points(2), iterations=3).points
        assert np.array_equal(a, b)

    def test_pentagons_nearly_fixed(self):
        # The 12 pentagon generators are fixed points of the exact Lloyd map
        # by icosahedral symmetry; the fan-decomposition centroid
        # approximation breaks the symmetry only at O(h^2).
        pts = icosahedral_points(2)
        result = lloyd_relax(pts, iterations=4)
        drift = np.linalg.norm(result.points[:12] - pts[:12], axis=1)
        assert drift.max() < 5e-3
