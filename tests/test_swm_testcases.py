"""Unit tests of the Williamson test cases and error norms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY, OMEGA
from repro.swm import (
    TEST_CASES,
    error_norms,
    initialize,
    isolated_mountain,
    rossby_haurwitz,
    steady_zonal_flow,
)


class TestRegistry:
    def test_numbers(self):
        assert set(TEST_CASES) == {1, 2, 5, 6}
        for number, factory in TEST_CASES.items():
            assert factory().number == number


class TestTC2:
    def test_exact_solution_is_initial(self, mesh3):
        case = steady_zonal_flow()
        pts = mesh3.metrics.xCell
        np.testing.assert_array_equal(case.thickness(pts), case.exact_thickness(pts))

    def test_geostrophic_balance_pointwise(self, mesh3):
        """gh = gh0 - (R*Omega*u0 + u0^2/2) sin^2(lat)."""
        case = steady_zonal_flow()
        pts = mesh3.metrics.xCell
        h = case.thickness(pts)
        lat = mesh3.metrics.latCell
        u0 = 2.0 * np.pi * mesh3.radius / (12.0 * 86400.0)
        expected = (2.94e4 - (mesh3.radius * OMEGA * u0 + 0.5 * u0**2) * np.sin(lat) ** 2) / GRAVITY
        np.testing.assert_allclose(h, expected, rtol=1e-12)

    def test_velocity_zonal(self, mesh3):
        case = steady_zonal_flow()
        vel = case.velocity(mesh3.metrics.xEdge)
        assert np.allclose(vel[:, 2], 0.0)  # no vertical/meridional-z part
        speed = np.linalg.norm(vel, axis=1)
        u0 = 2.0 * np.pi * mesh3.radius / (12.0 * 86400.0)
        np.testing.assert_allclose(
            speed, u0 * np.cos(mesh3.metrics.latEdge), rtol=1e-10
        )

    def test_no_topography(self, mesh3):
        assert np.all(steady_zonal_flow().topography(mesh3.metrics.xCell) == 0.0)


class TestTC5:
    def test_mountain_height_and_extent(self, mesh4):
        case = isolated_mountain()
        b = case.topography(mesh4.metrics.xCell)
        assert 1800.0 < b.max() <= 2000.0  # 2000 m peak (mesh sampling)
        assert b.min() == 0.0
        # The mountain covers a small fraction of the sphere.
        covered = np.sum(mesh4.areaCell[b > 0]) / mesh4.sphere_area
        assert 0.005 < covered < 0.1

    def test_mountain_centre(self, mesh4):
        case = isolated_mountain()
        b = case.topography(mesh4.metrics.xCell)
        c = np.argmax(b)
        lon, lat = mesh4.metrics.lonCell[c], mesh4.metrics.latCell[c]
        assert abs(lon - 1.5 * np.pi) < 0.1
        assert abs(lat - np.pi / 6.0) < 0.1

    def test_total_surface_smooth(self, mesh4):
        """h + b is the smooth geostrophic surface (no mountain imprint)."""
        case = isolated_mountain()
        pts = mesh4.metrics.xCell
        surface = case.thickness(pts) + case.topography(pts)
        lat = mesh4.metrics.latCell
        u0 = 20.0
        expected = (
            GRAVITY * 5960.0 - (mesh4.radius * OMEGA * u0 + 0.5 * u0**2) * np.sin(lat) ** 2
        ) / GRAVITY
        np.testing.assert_allclose(surface, expected, rtol=1e-12)

    def test_no_exact_solution(self):
        assert isolated_mountain().exact_thickness is None


class TestTC6:
    def test_wavenumber_four(self, mesh4):
        """The thickness field has zonal wavenumber 4 structure."""
        case = rossby_haurwitz()
        h = case.thickness(mesh4.metrics.xCell)
        lat = mesh4.metrics.latCell
        lon = mesh4.metrics.lonCell
        band = np.abs(lat) < 0.2
        # Correlate the equatorial-band anomaly with cos(4*lon).
        anom = h[band] - np.mean(h[band])
        corr = np.corrcoef(anom, np.cos(4.0 * lon[band]))[0, 1]
        # The band also carries the cos(8*lon) C-term, so the correlation
        # with the pure wavenumber-4 signal is high but not 1.
        assert corr > 0.85

    def test_thickness_positive(self, mesh3):
        case = rossby_haurwitz()
        assert np.all(case.thickness(mesh3.metrics.xCell) > 0)

    def test_velocity_tangent(self, mesh3):
        case = rossby_haurwitz()
        pts = mesh3.metrics.xEdge
        vel = case.velocity(pts)
        radial = np.abs(np.sum(vel * pts, axis=1))
        assert radial.max() < 1e-9 * np.linalg.norm(vel, axis=1).max()


class TestInitialize:
    @pytest.mark.parametrize("number", [2, 5, 6])
    def test_shapes(self, mesh3, number):
        state, b = initialize(mesh3, TEST_CASES[number]())
        assert state.h.shape == (mesh3.nCells,)
        assert state.u.shape == (mesh3.nEdges,)
        assert b.shape == (mesh3.nCells,)
        assert np.all(state.h > 0)


class TestErrorNorms:
    def test_zero_error(self, mesh3, cell_field):
        ref = np.abs(cell_field) + 1.0
        norms = error_norms(mesh3, ref, ref)
        assert norms.l1 == norms.l2 == norms.linf == 0.0

    def test_scaling(self, mesh3):
        ref = np.full(mesh3.nCells, 10.0)
        norms = error_norms(mesh3, ref + 1.0, ref)
        assert norms.l1 == pytest.approx(0.1)
        assert norms.l2 == pytest.approx(0.1)
        assert norms.linf == pytest.approx(0.1)

    def test_linf_dominates(self, mesh3, rng):
        ref = np.full(mesh3.nCells, 5.0)
        field = ref + rng.standard_normal(mesh3.nCells) * 0.01
        norms = error_norms(mesh3, field, ref)
        assert norms.linf >= norms.l2 >= norms.l1 > 0
