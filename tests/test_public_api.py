"""The public API surface (repro.api / repro) — stability and behaviour.

Two kinds of guarantees:

* **Surface**: ``repro.api.__all__`` and ``repro.__all__`` are snapshotted
  here.  Adding names requires updating the snapshot (deliberate);
  removing or renaming breaks these tests (the point).  Every exported
  name must be importable and documented.
* **Behaviour**: ``run()`` dispatches on ``SWConfig.parallel`` and all
  three executors produce bitwise-identical prognostic state — checked
  here on the Galewsky jet at 4 ranks for both the numpy and codegen
  backends, per the reproduction's headline contract.
* **Validation**: ``SWConfig.validate()`` rejects inconsistent
  configurations at construction with actionable messages.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import api

# ----------------------------------------------------------------- surface
API_SURFACE = {
    "SWConfig",
    "ExecutionPlan",
    "compiled_plan",
    "TestCase",
    "RunResult",
    "State",
    "Mesh",
    "Invariants",
    "ErrorNorms",
    "error_norms",
    "suggested_dt",
    "build_mesh",
    "resolve_case",
    "run",
    # The job-oriented surface (PR 9): requests, ensembles, the job queue.
    "RunRequest",
    "run_ensemble",
    "EnsembleResult",
    "JobHandle",
    "submit",
    "status",
    "result",
}

PACKAGE_SURFACE = {
    "RunResult",
    "SWConfig",
    "TestCase",
    "build_mesh",
    "resolve_case",
    "run",
    "suggested_dt",
    "__version__",
}


class TestSurface:
    def test_api_all_snapshot(self):
        assert set(api.__all__) == API_SURFACE

    def test_package_all_snapshot(self):
        assert set(repro.__all__) == PACKAGE_SURFACE

    @pytest.mark.parametrize("name", sorted(API_SURFACE))
    def test_api_names_importable_and_documented(self, name):
        obj = getattr(api, name)
        assert obj is not None
        if callable(obj):
            assert obj.__doc__, f"api.{name} has no docstring"

    def test_package_reexports_are_the_api_objects(self):
        for name in PACKAGE_SURFACE - {"__version__"}:
            assert getattr(repro, name) is getattr(api, name)


class TestResolveCase:
    def test_names_and_numbers_agree(self):
        assert api.resolve_case("tc2").number == api.resolve_case(2).number == 2
        assert api.resolve_case("steady_zonal_flow").name == "steady_zonal_flow"
        assert api.resolve_case("TC5").number == 5

    def test_galewsky_variants(self):
        assert api.resolve_case("galewsky").name == "galewsky_jet"
        assert api.resolve_case("galewsky_balanced").name == "galewsky_jet_balanced"

    def test_case_passes_through(self):
        case = api.resolve_case("tc6")
        assert api.resolve_case(case) is case

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="known names"):
            api.resolve_case("tc99")
        with pytest.raises(ValueError, match="known numbers"):
            api.resolve_case(99)


class TestRunDispatch:
    def test_requires_exactly_one_of_steps_days(self, mesh3):
        cfg = api.SWConfig(dt=600.0)
        with pytest.raises(ValueError, match="steps/days"):
            api.run("tc2", mesh=mesh3, config=cfg)
        with pytest.raises(ValueError, match="steps/days"):
            api.run("tc2", mesh=mesh3, config=cfg, steps=1, days=1.0)

    def test_serial_extras_rejected_in_decomposed_modes(self, mesh3):
        cfg = api.SWConfig(dt=600.0, parallel="lockstep", ranks=2)
        with pytest.raises(ValueError, match="parallel='serial'"):
            api.run("tc2", mesh=mesh3, config=cfg, steps=1, invariant_interval=5)

    @pytest.mark.parametrize("backend", ["numpy", "codegen", "sparse"])
    def test_galewsky_pool_bitwise_equals_serial(self, mesh3, backend):
        """The headline contract: 10 steps, 4 ranks, owned state bitwise."""
        case = api.resolve_case("galewsky")
        dt = api.suggested_dt(mesh3, case, 9.80616, cfl=0.5)
        serial = api.run(
            case, mesh=mesh3, config=api.SWConfig(dt=dt, backend=backend), steps=10
        )
        pooled = api.run(
            case,
            mesh=mesh3,
            config=api.SWConfig(dt=dt, backend=backend, parallel="pool", ranks=4),
            steps=10,
        )
        assert np.array_equal(pooled.state.h, serial.state.h)
        assert np.array_equal(pooled.state.u, serial.state.u)

    def test_lockstep_mode_dispatches_and_matches(self, mesh3):
        case = api.resolve_case("tc2")
        dt = api.suggested_dt(mesh3, case, 9.80616, cfl=0.6)
        serial = api.run(case, mesh=mesh3, config=api.SWConfig(dt=dt), steps=3)
        lock = api.run(
            case,
            mesh=mesh3,
            config=api.SWConfig(dt=dt, parallel="lockstep", ranks=3),
            steps=3,
        )
        assert np.array_equal(lock.state.h, serial.state.h)
        assert isinstance(lock, api.RunResult)


class TestConfigValidation:
    def test_valid_config_constructs(self):
        api.SWConfig(dt=600.0, parallel="pool", ranks=4)

    def test_rejects_non_positive_dt(self):
        with pytest.raises(ValueError, match="dt must be positive"):
            api.SWConfig(dt=0.0)
        with pytest.raises(ValueError, match="dt must be positive"):
            api.SWConfig(dt=-60.0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            api.SWConfig(dt=600.0, backend="cuda")

    def test_rejects_unknown_parallel_mode(self):
        with pytest.raises(ValueError, match="parallel must be one of"):
            api.SWConfig(dt=600.0, parallel="mpi")

    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError, match="ranks must be a positive integer"):
            api.SWConfig(dt=600.0, parallel="pool", ranks=0)
        with pytest.raises(ValueError, match="ranks must be a positive integer"):
            api.SWConfig(dt=600.0, parallel="pool", ranks=2.5)

    def test_rejects_serial_with_many_ranks(self):
        with pytest.raises(ValueError, match="parallel='pool'"):
            api.SWConfig(dt=600.0, ranks=4)

    @pytest.mark.parametrize(
        "field", ["backend_retries", "halo_retries", "transfer_retries"]
    )
    def test_rejects_negative_retry_knobs(self, field):
        with pytest.raises(ValueError, match=f"{field} must be >= 0"):
            api.SWConfig(dt=600.0, **{field: -1})

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError, match="halo_backoff_s must be >= 0"):
            api.SWConfig(dt=600.0, halo_backoff_s=-0.5)

    def test_rejects_bad_advection_order(self):
        with pytest.raises(ValueError, match="thickness_adv_order"):
            api.SWConfig(dt=600.0, thickness_adv_order=5)

    def test_validate_recallable_after_mutation(self):
        cfg = api.SWConfig(dt=600.0)
        cfg.dt = -1.0
        with pytest.raises(ValueError, match="dt must be positive"):
            cfg.validate()
