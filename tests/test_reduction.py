"""Unit tests of the Algorithm 2/3/4 irregular-reduction forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reduction import (
    branch_free_reduction_loop,
    build_label_matrix,
    divergence_branchfree_loop,
    divergence_gather_loop,
    divergence_gather_vectorized,
    divergence_scatter_loop,
    divergence_scatter_vectorized,
    gather_label_matrix,
    irregular_reduction_loop,
    refactored_reduction_loop,
    scatter_add_signed,
)
from repro.swm.operators import cell_divergence


class TestAbstractForms:
    """All four algorithm forms agree on the raw +/- accumulation."""

    def test_loop_vs_scatter(self, mesh3, edge_field):
        conn = mesh3.connectivity
        a = irregular_reduction_loop(mesh3.nCells, conn.cellsOnEdge, edge_field)
        b = scatter_add_signed(mesh3.nCells, conn.cellsOnEdge, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-13, atol=1e-16)

    def test_loop_vs_refactored(self, mesh3, edge_field):
        conn = mesh3.connectivity
        a = irregular_reduction_loop(mesh3.nCells, conn.cellsOnEdge, edge_field)
        b = refactored_reduction_loop(
            mesh3.nCells, conn.cellsOnEdge, conn.edgesOnCell,
            conn.nEdgesOnCell, edge_field,
        )
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-15)

    def test_refactored_vs_branchfree_bitwise(self, mesh3, edge_field):
        """Algorithm 4 only replaces the branch; the summation order is the
        same as Algorithm 3, so results are bitwise identical."""
        conn = mesh3.connectivity
        a = refactored_reduction_loop(
            mesh3.nCells, conn.cellsOnEdge, conn.edgesOnCell,
            conn.nEdgesOnCell, edge_field,
        )
        label, eoc_safe = build_label_matrix(conn.cellsOnEdge, conn.edgesOnCell)
        b = branch_free_reduction_loop(label, eoc_safe, conn.nEdgesOnCell, edge_field)
        assert np.array_equal(a, b)

    def test_branchfree_loop_vs_vectorized_bitwise(self, mesh3, edge_field):
        conn = mesh3.connectivity
        label, eoc_safe = build_label_matrix(conn.cellsOnEdge, conn.edgesOnCell)
        a = branch_free_reduction_loop(label, eoc_safe, conn.nEdgesOnCell, edge_field)
        b = gather_label_matrix(label, eoc_safe, edge_field)
        # Same order, same padded zero terms -> pairwise-summation may differ
        # at most at round-off for 6-term rows; in practice it is bitwise.
        np.testing.assert_allclose(a, b, rtol=1e-15, atol=1e-18)


class TestLabelMatrix:
    def test_values(self, mesh3):
        conn = mesh3.connectivity
        label, eoc_safe = build_label_matrix(conn.cellsOnEdge, conn.edgesOnCell)
        assert set(np.unique(label)) <= {-1.0, 0.0, 1.0}
        # Padding lanes carry zero weight and a safe index.
        pent = np.flatnonzero(conn.nEdgesOnCell == 5)
        assert np.all(label[pent, 5] == 0.0)
        assert np.all(eoc_safe >= 0)

    def test_label_matches_paper_definition(self, mesh3):
        conn = mesh3.connectivity
        label, _ = build_label_matrix(conn.cellsOnEdge, conn.edgesOnCell)
        for c in range(0, mesh3.nCells, 41):
            for j in range(int(conn.nEdgesOnCell[c])):
                e = conn.edgesOnCell[c, j]
                expected = 1.0 if conn.cellsOnEdge[e, 0] == c else -1.0
                assert label[c, j] == expected

    def test_label_equals_edge_sign(self, mesh3):
        """The label matrix IS edgeSignOnCell — the production kernels fold
        it into their metric-weighted gather tables."""
        conn = mesh3.connectivity
        label, _ = build_label_matrix(conn.cellsOnEdge, conn.edgesOnCell)
        assert np.array_equal(label, conn.edgeSignOnCell)


class TestDivergenceForms:
    @pytest.mark.parametrize(
        "impl",
        [
            divergence_scatter_loop,
            divergence_scatter_vectorized,
            divergence_gather_loop,
            divergence_branchfree_loop,
            divergence_gather_vectorized,
        ],
    )
    def test_matches_production_kernel(self, mesh3, edge_field, impl):
        got = impl(mesh3, edge_field)
        want = cell_divergence(mesh3, edge_field)
        np.testing.assert_allclose(got, want, rtol=1e-11, atol=1e-18)

    def test_gather_forms_bitwise_equal(self, mesh3, edge_field):
        a = divergence_gather_loop(mesh3, edge_field)
        b = divergence_branchfree_loop(mesh3, edge_field)
        assert np.array_equal(a, b)

    def test_scatter_and_gather_differ_in_roundoff_only(self, mesh3, edge_field):
        a = divergence_scatter_vectorized(mesh3, edge_field)
        b = divergence_gather_vectorized(mesh3, edge_field)
        diff = np.abs(a - b).max()
        assert diff < 1e-11 * np.abs(a).max()
