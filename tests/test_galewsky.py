"""Tests of the Galewsky et al. (2004) barotropic-instability case."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY, OMEGA
from repro.swm import (
    ShallowWaterModel,
    SWConfig,
    error_norms,
    galewsky_jet,
    suggested_dt,
)
from repro.swm.galewsky import PHI0, PHI1, U_MAX, _balanced_depth_table, _jet_profile


class TestJetProfile:
    def test_confined_to_band(self):
        lat = np.linspace(-np.pi / 2, np.pi / 2, 1001)
        u = _jet_profile(lat)
        assert np.all(u[lat <= PHI0] == 0.0)
        assert np.all(u[lat >= PHI1] == 0.0)
        assert np.all(u >= 0.0)

    def test_peak_at_jet_centre(self):
        lat = np.linspace(PHI0, PHI1, 2001)[1:-1]
        u = _jet_profile(lat)
        peak_lat = lat[np.argmax(u)]
        assert abs(peak_lat - 0.5 * (PHI0 + PHI1)) < 0.01
        assert np.max(u) == pytest.approx(U_MAX, rel=1e-6)

    def test_smooth_at_edges(self):
        # The exponential profile vanishes with all derivatives at the band
        # edges: values just inside are tiny.
        eps = 1e-4
        assert _jet_profile(np.array([PHI0 + eps]))[0] < 1e-100
        assert _jet_profile(np.array([PHI1 - eps]))[0] < 1e-100


class TestBalancedDepth:
    def test_global_mean_is_ten_km(self):
        lat, h = _balanced_depth_table(6.371e6, OMEGA, GRAVITY)
        mean = np.sum(h * np.cos(lat)) / np.sum(np.cos(lat))
        assert mean == pytest.approx(10_000.0, rel=1e-10)

    def test_depth_drops_across_jet(self):
        """Geostrophy: eastward NH jet => h decreases northward across it."""
        lat, h = _balanced_depth_table(6.371e6, OMEGA, GRAVITY)
        south = h[np.searchsorted(lat, PHI0 - 0.05)]
        north = h[np.searchsorted(lat, PHI1 + 0.05)]
        assert north < south - 500.0

    def test_flat_outside_jet(self):
        lat, h = _balanced_depth_table(6.371e6, OMEGA, GRAVITY)
        southern = h[lat < -0.5]
        assert southern.max() - southern.min() < 1e-6


class TestDynamics:
    def test_balanced_jet_steady(self, mesh4):
        case = galewsky_jet(perturbed=False)
        dt = suggested_dt(mesh4, case, GRAVITY, cfl=0.5)
        model = ShallowWaterModel(mesh4, SWConfig(dt=dt))
        model.initialize(case)
        res = model.run(days=2.0, invariant_interval=20)
        # The sharp jet is marginally resolved at 480 km; the balanced state
        # still holds to ~0.2% over 2 days, with exact mass conservation.
        assert model.exact_error().l2 < 5e-3
        assert res.mass_drift() < 1e-13

    def test_perturbation_grows(self, mesh4):
        case_p = galewsky_jet(perturbed=True)
        case_b = galewsky_jet(perturbed=False)
        dt = suggested_dt(mesh4, case_p, GRAVITY, cfl=0.5)
        p = ShallowWaterModel(mesh4, SWConfig(dt=dt))
        p.initialize(case_p)
        b = ShallowWaterModel(mesh4, SWConfig(dt=dt))
        b.initialize(case_b)
        d0 = error_norms(mesh4, p.state.h, b.state.h).l2
        assert d0 > 0.0  # the bump is present
        p.run(days=4.0)
        b.run(days=4.0)
        d4 = error_norms(mesh4, p.state.h, b.state.h).l2
        # Barotropic instability: the perturbation amplifies.
        assert d4 > 1.2 * d0

    def test_perturbation_localized(self, mesh4):
        hp = galewsky_jet(True).thickness(mesh4.metrics.xCell)
        hb = galewsky_jet(False).thickness(mesh4.metrics.xCell)
        bump = hp - hb
        assert bump.max() > 50.0
        # Centre near (lon=0, lat=pi/4).
        c = int(np.argmax(bump))
        lon = mesh4.metrics.lonCell[c]
        lon = lon - 2 * np.pi if lon > np.pi else lon
        assert abs(lon) < 0.2
        assert abs(mesh4.metrics.latCell[c] - np.pi / 4) < 0.15
        # Far field unperturbed.
        far = np.abs(mesh4.metrics.lonCell - np.pi) < 0.5
        assert np.abs(bump[far]).max() < 1.0

    def test_exactness_flags(self):
        assert galewsky_jet(True).exact_thickness is None
        assert galewsky_jet(False).exact_thickness is not None
