"""Unit tests of the mpas_reconstruct velocity reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import normalize, tangent_basis
from repro.swm import mpas_reconstruct, reconstruction_matrices


def _edge_normals_of(mesh, velocity_at_edges):
    return np.sum(velocity_at_edges * mesh.metrics.edgeNormal, axis=1)


class TestReconstruct:
    def test_matrices_cached(self, mesh3):
        assert reconstruction_matrices(mesh3) is reconstruction_matrices(mesh3)

    def test_zero_field(self, mesh3):
        rec = mpas_reconstruct(mesh3, np.zeros(mesh3.nEdges))
        assert np.abs(rec.uReconstructX).max() == 0.0
        assert np.abs(rec.uReconstructZonal).max() == 0.0

    @pytest.mark.parametrize("axis", [(0, 0, 1), (0.5, -0.3, 0.8)])
    def test_solid_body_rotation(self, mesh4, axis):
        w = normalize(np.asarray(axis, dtype=float))
        vel_edge = np.cross(w, mesh4.metrics.xEdge)
        u = _edge_normals_of(mesh4, vel_edge)
        rec = mpas_reconstruct(mesh4, u)
        vel_cell = np.cross(w, mesh4.metrics.xCell)
        U = np.stack([rec.uReconstructX, rec.uReconstructY, rec.uReconstructZ], axis=1)
        err = np.linalg.norm(U - vel_cell, axis=1).max()
        assert err < 0.02 * np.linalg.norm(vel_cell, axis=1).max()

    def test_result_tangent_to_sphere(self, mesh3, edge_field):
        rec = mpas_reconstruct(mesh3, edge_field)
        U = np.stack([rec.uReconstructX, rec.uReconstructY, rec.uReconstructZ], axis=1)
        radial = np.abs(np.sum(U * mesh3.metrics.xCell, axis=1))
        assert radial.max() < 1e-10 * max(np.linalg.norm(U, axis=1).max(), 1e-30)

    def test_zonal_meridional_decomposition(self, mesh3, edge_field):
        rec = mpas_reconstruct(mesh3, edge_field)
        east, north = tangent_basis(mesh3.metrics.xCell)
        U = np.stack([rec.uReconstructX, rec.uReconstructY, rec.uReconstructZ], axis=1)
        np.testing.assert_allclose(
            rec.uReconstructZonal, np.sum(U * east, axis=1), rtol=1e-12, atol=1e-15
        )
        np.testing.assert_allclose(
            rec.uReconstructMeridional, np.sum(U * north, axis=1), rtol=1e-12, atol=1e-15
        )

    def test_zonal_flow_has_no_meridional_component(self, mesh4):
        vel_edge = np.cross([0.0, 0.0, 1.0], mesh4.metrics.xEdge)
        u = _edge_normals_of(mesh4, vel_edge)
        rec = mpas_reconstruct(mesh4, u)
        assert (
            np.abs(rec.uReconstructMeridional).max()
            < 0.02 * np.abs(rec.uReconstructZonal).max()
        )

    def test_least_squares_optimality(self, mesh3, rng):
        """The reconstruction minimizes the normal-component misfit: its
        residual never exceeds the misfit of a random tangent vector."""
        u = rng.standard_normal(mesh3.nEdges)
        rec = mpas_reconstruct(mesh3, u)
        U = np.stack([rec.uReconstructX, rec.uReconstructY, rec.uReconstructZ], axis=1)
        conn, met = mesh3.connectivity, mesh3.metrics
        for c in (3, 77, 345):
            edges = conn.edgesOnCell[c, : conn.nEdgesOnCell[c]]
            N = met.edgeNormal[edges]
            res_opt = np.sum((N @ U[c] - u[edges]) ** 2)
            east, north = tangent_basis(met.xCell[c])
            for trial in range(5):
                V = U[c] + 0.1 * (rng.standard_normal() * east + rng.standard_normal() * north)
                res_trial = np.sum((N @ V - u[edges]) ** 2)
                assert res_opt <= res_trial + 1e-12
