"""The shared-memory process-pool executor (repro.parallel.pool / .shm).

The contract under test is the one the lockstep runner already honours:
the pool's gathered prognostic state is **bitwise identical** to the
serial run — now with ranks stepping concurrently in worker processes,
halo exchanges through a shared-memory segment, and worker death healed
by bounded respawn without perturbing a single bit.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, use_tracer
from repro.parallel import (
    DecomposedShallowWater,
    PoolShallowWater,
    SharedState,
    WorkerPoolError,
    build_local_mesh,
    partition_cells,
)
from repro.parallel.shm import SyncBoard
from repro.swm import (
    ShallowWaterModel,
    State,
    SWConfig,
    galewsky_jet,
    isolated_mountain,
    steady_zonal_flow,
    suggested_dt,
)

# Generous for loaded CI machines, tiny against the 120 s default: these
# runs take well under a second per barrier cycle.
TIMEOUT = 30.0


def _serial(mesh, case, cfg, steps):
    model = ShallowWaterModel(mesh, cfg)
    model.initialize(case)
    return model.run(steps=steps)


class TestSharedState:
    def test_round_trip_and_slices(self, mesh3, rng):
        h = rng.standard_normal(mesh3.nCells)
        u = rng.standard_normal(mesh3.nEdges)
        shared = SharedState.create(mesh3.nCells, mesh3.nEdges)
        try:
            shared.write_global(h, u)
            rh, ru = shared.read_global()
            assert np.array_equal(rh, h) and np.array_equal(ru, u)

            owner = partition_cells(mesh3, 2)
            lm = build_local_mesh(mesh3, owner, 0)
            local = shared.read_local(lm)
            assert np.array_equal(local.h, h[lm.cells_global])

            # publish modified owned values, then refresh a halo from them
            local.h[: lm.n_owned_cells] += 1.0
            shared.publish_owned(lm, local)
            assert np.array_equal(
                shared.h[lm.cells_global[: lm.n_owned_cells]],
                local.h[: lm.n_owned_cells],
            )
            other = build_local_mesh(mesh3, owner, 1)
            peer = shared.read_local(other)
            halo = State(h=peer.h.copy(), u=peer.u.copy())
            halo.h[other.n_owned_cells :] = 0.0
            shared.refresh_halo(other, halo)
            assert np.array_equal(
                halo.h[other.n_owned_cells :],
                shared.h[other.cells_global[other.n_owned_cells :]],
            )
        finally:
            shared.close()
            shared.unlink()

    def test_pickle_reattaches_by_name(self, mesh3):
        import pickle

        shared = SharedState.create(8, 4)
        try:
            shared.h[:] = np.arange(8.0)
            clone = pickle.loads(pickle.dumps(shared))
            assert clone.name == shared.name
            assert np.array_equal(clone.h, shared.h)
            clone.close()
        finally:
            shared.close()
            shared.unlink()


class TestPoolRuns:
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_bitwise_equal_tc2(self, mesh3, n_ranks):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        res = _serial(mesh3, case, cfg, steps=5)
        with PoolShallowWater(
            mesh3, n_ranks, case, cfg, barrier_timeout=TIMEOUT
        ) as pool:
            pres = pool.run(5)
        assert np.array_equal(pres.state.h, res.state.h)
        assert np.array_equal(pres.state.u, res.state.u)

    def test_bitwise_equal_tc5_high_order(self, mesh3):
        case = isolated_mountain()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5), thickness_adv_order=4
        )
        res = _serial(mesh3, case, cfg, steps=4)
        with PoolShallowWater(mesh3, 4, case, cfg, barrier_timeout=TIMEOUT) as pool:
            pres = pool.run(4)
        assert np.array_equal(pres.state.h, res.state.h)
        assert np.array_equal(pres.state.u, res.state.u)

    def test_matches_lockstep_and_counts_exchanges(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        dec = DecomposedShallowWater(mesh3, 2, case, cfg)
        dres = dec.run(3)
        with PoolShallowWater(mesh3, 2, case, cfg, barrier_timeout=TIMEOUT) as pool:
            pres = pool.run(3)
            # Figure 2: two exchanges per substage, four substages per step.
            assert pool.exchange_count == 8 * 3
        assert np.array_equal(pres.state.h, dres.state.h)
        assert np.array_equal(pres.state.u, dres.state.u)

    def test_run_result_contract(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        res = _serial(mesh3, case, cfg, steps=3)
        dec = DecomposedShallowWater(mesh3, 2, case, cfg)
        dres = dec.run(3)
        with PoolShallowWater(mesh3, 2, case, cfg, barrier_timeout=TIMEOUT) as pool:
            pres = pool.run(3)
        for r in (dres, pres):
            assert r.steps == 3
            assert r.elapsed_seconds == pytest.approx(3 * cfg.dt)
            assert len(r.invariant_history) == 2
            assert r.reconstruction is not None
            # identical states => identical drifts (diagnostics are pure)
            assert r.mass_drift() == pytest.approx(res.mass_drift(), abs=1e-15)
            assert r.energy_drift() == pytest.approx(res.energy_drift(), rel=1e-6)

    def test_step_batches_compose(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        res = _serial(mesh3, case, cfg, steps=4)
        with PoolShallowWater(mesh3, 2, case, cfg, barrier_timeout=TIMEOUT) as pool:
            pool.step()
            pool.run(2)
            pool.step()
            gathered = pool.gather_state()
        assert np.array_equal(gathered.h, res.state.h)
        assert np.array_equal(gathered.u, res.state.u)


class TestPoolRecovery:
    def test_worker_death_is_bitwise_invisible(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        res = _serial(mesh3, case, cfg, steps=4)
        with use_registry(MetricsRegistry()) as registry:
            with PoolShallowWater(
                mesh3, 2, case, cfg, barrier_timeout=5.0, kill_at={1: 2}
            ) as pool:
                pres = pool.run(4)
            respawns = sum(
                rec["value"]
                for rec in registry.snapshot()
                if rec["metric"] == "resilience.pool.respawn"
            )
        assert respawns >= 1
        assert np.array_equal(pres.state.h, res.state.h)
        assert np.array_equal(pres.state.u, res.state.u)

    def test_respawn_budget_exhausted_raises(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6), halo_retries=0
        )
        with pytest.raises(WorkerPoolError, match="respawn budget"):
            with PoolShallowWater(
                mesh3, 2, case, cfg, barrier_timeout=5.0, kill_at={0: 1}
            ) as pool:
                pool.run(2)

    def test_closed_pool_rejects_work(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        pool = PoolShallowWater(mesh3, 2, case, cfg, barrier_timeout=TIMEOUT)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(WorkerPoolError, match="closed"):
            pool.run(1)


class TestPoolObservability:
    def test_worker_metrics_and_spans_merge_with_rank_tags(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6))
        with use_registry(MetricsRegistry()) as registry:
            with use_tracer(Tracer(enabled=True)) as tracer:
                with PoolShallowWater(
                    mesh3, 2, case, cfg, barrier_timeout=TIMEOUT
                ) as pool:
                    pool.run(2)
                span_ranks = {
                    s.tags.get("rank")
                    for s in tracer.finished()
                    if "rank" in s.tags
                }
        snap = registry.snapshot()
        exchanges = {
            rec["tags"]["rank"]: rec["value"]
            for rec in snap
            if rec["metric"] == "halo.exchanges" and "rank" in rec["tags"]
        }
        # every rank contributed its 8-per-step exchange count
        assert exchanges == {0: 16.0, 1: 16.0}
        assert span_ranks == {0, 1}


class TestSharedStateBuffers:
    def test_double_buffer_parity_and_global_write(self, rng):
        shared = SharedState.create(8, 4, n_buffers=2)
        try:
            h = rng.standard_normal(8)
            u = rng.standard_normal(4)
            shared.write_global(h, u)  # seeds *every* buffer
            for seq in range(4):
                rh, ru = shared.read_global(seq)
                assert np.array_equal(rh, h) and np.array_equal(ru, u)

            # buffers at even/odd parity are distinct storage
            h0, _ = shared.buffer(0)
            h1, _ = shared.buffer(1)
            h1[:] = -1.0
            assert np.array_equal(h0, h)
            assert np.array_equal(shared.buffer(3)[0], h1)
            assert np.array_equal(shared.buffer(2)[0], h0)
        finally:
            shared.close()
            shared.unlink()

    def test_pickle_preserves_buffer_count(self):
        import pickle

        shared = SharedState.create(6, 3, n_buffers=2)
        try:
            clone = pickle.loads(pickle.dumps(shared))
            assert clone.n_buffers == 2
            clone.close()
        finally:
            shared.close()
            shared.unlink()


class TestSyncBoard:
    @pytest.fixture()
    def board(self):
        b = SyncBoard.create(3, multiprocessing.get_context("fork"))
        yield b
        b.close()
        b.unlink()

    def test_publish_ack_progress(self, board):
        ranks = np.array([1, 2], dtype=np.int64)
        # nothing published yet: sequence 0 and empty rank sets never block
        board.await_published(np.empty(0, np.int64), 5, timeout=0.1)
        board.await_acked(ranks, 0, timeout=0.1)

        board.mark_published(1, 1)
        board.mark_published(2, 1)
        board.await_published(ranks, 1, timeout=0.5)
        board.mark_acked(1, 1)
        board.mark_acked(2, 1)
        board.await_acked(ranks, 1, timeout=0.5)

    def test_timeout_raises_broken_barrier(self, board):
        with pytest.raises(threading.BrokenBarrierError, match="timed out"):
            board.await_published(np.array([2], np.int64), 1, timeout=0.05)

    def test_unblocks_cross_process(self, board):
        ctx = multiprocessing.get_context("fork")

        def peer(b):
            time.sleep(0.1)
            b.mark_published(2, 7)

        p = ctx.Process(target=peer, args=(board,))
        p.start()
        try:
            board.await_published(np.array([2], np.int64), 7, timeout=5.0)
        finally:
            p.join()
        assert board.pub[2] == 7

    def test_reset_clears_progress_but_keeps_observations(self, board):
        board.mark_published(0, 3)
        board.mark_acked(1, 2)
        board.observe(0, 0.5)
        board.observe(2, 1.5)
        board.reset()
        assert np.all(board.pub == 0) and np.all(board.ack == 0)
        # observed step times survive: the adaptive timeout must not
        # forget how slow this machine is just because a worker died
        assert board.max_observed() == pytest.approx(1.5)
        board.observe(2, 0.2)  # max-tracked, never shrinks
        assert board.max_observed() == pytest.approx(1.5)


class TestPoolDataflow:
    """The ISSUE acceptance gate: pool under the dataflow halo schedule is
    bitwise identical to serial on every backend while exchanging half the
    sync points."""

    @pytest.mark.parametrize(
        "backend_kw",
        [
            dict(),
            dict(backend="sparse"),
            dict(backend="sparse", plan=True),
        ],
        ids=["numpy", "sparse", "plan"],
    )
    def test_galewsky_bitwise_equal_10_steps_4_ranks(self, mesh3, backend_kw):
        case = galewsky_jet()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5),
            thickness_adv_order=4,
            halo_schedule="dataflow",
            **backend_kw,
        )
        res = _serial(mesh3, case, cfg, steps=10)
        with PoolShallowWater(mesh3, 4, case, cfg, barrier_timeout=TIMEOUT) as pool:
            pres = pool.run(10)
            assert pool.schedule.mode == "dataflow"
            assert pool.exchange_count == pool.schedule.exchanges_per_step * 10
            assert pool.exchange_count == 4 * 10  # static would be 8 * 10
        assert np.array_equal(pres.state.h, res.state.h)
        assert np.array_equal(pres.state.u, res.state.u)

    def test_worker_death_recovers_bitwise_under_dataflow(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6),
            backend="sparse",
            plan=True,
            halo_schedule="dataflow",
        )
        res = _serial(mesh3, case, cfg, steps=4)
        with use_registry(MetricsRegistry()) as registry:
            with PoolShallowWater(
                mesh3, 2, case, cfg, barrier_timeout=5.0, kill_at={1: 2}
            ) as pool:
                pres = pool.run(4)
            respawns = sum(
                rec["value"]
                for rec in registry.snapshot()
                if rec["metric"] == "resilience.pool.respawn"
            )
        assert respawns >= 1
        assert np.array_equal(pres.state.h, res.state.h)
        assert np.array_equal(pres.state.u, res.state.u)

    def test_halo_metrics_report_thinner_exchanges(self, mesh3):
        case = steady_zonal_flow()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6),
            halo_schedule="dataflow",
        )
        with use_registry(MetricsRegistry()) as registry:
            with PoolShallowWater(
                mesh3, 2, case, cfg, barrier_timeout=TIMEOUT
            ) as pool:
                pool.run(2)
        snap = registry.snapshot()
        exchanges = {
            rec["tags"]["rank"]: rec["value"]
            for rec in snap
            if rec["metric"] == "halo.exchanges" and "rank" in rec["tags"]
        }
        assert exchanges == {0: 8.0, 1: 8.0}  # 4 per step, not 8
        gauges = {
            rec["metric"]: rec["value"]
            for rec in snap
            if rec["metric"].startswith("halo.") and "rank" not in rec["tags"]
        }
        assert gauges["halo.exchanges_per_step"] == 4.0
        assert gauges["halo.bytes_per_step"] > 0.0


class TestAdaptiveTimeout:
    def test_slow_overlap_window_does_not_trigger_recovery(
        self, mesh3, monkeypatch
    ):
        """Regression: a fixed barrier timeout false-triggered worker
        recovery when one rank's compute window ran long.  The dataflow
        sync scales its timeout by the slowest observed step across ranks,
        so a deliberately skewed-slow rank must ride through a timeout that
        is shorter than its own stage time — zero respawns, bitwise state.
        """
        import repro.parallel.pool as pool_mod

        real = pool_mod.compute_solve_diagnostics

        def skewed(lm, state, f_vertex, config):
            time.sleep(0.25 * getattr(lm, "rank", 0))
            return real(lm, state, f_vertex, config)

        case = steady_zonal_flow()
        cfg = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.6),
            halo_schedule="dataflow",
        )
        res = _serial(mesh3, case, cfg, steps=2)
        # workers fork after the patch, so they inherit the skewed kernel
        monkeypatch.setattr(pool_mod, "compute_solve_diagnostics", skewed)
        with use_registry(MetricsRegistry()) as registry:
            with PoolShallowWater(
                mesh3, 3, case, cfg, barrier_timeout=0.2
            ) as pool:
                pres = pool.run(2)
            respawns = sum(
                rec["value"]
                for rec in registry.snapshot()
                if rec["metric"] == "resilience.pool.respawn"
            )
        assert respawns == 0
        assert np.array_equal(pres.state.h, res.state.h)
        assert np.array_equal(pres.state.u, res.state.u)
