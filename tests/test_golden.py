"""Golden-run regression matrix: pinned invariant trajectories.

``tests/golden/<case>-l3-<backend>.json`` pins the mass / total-energy /
potential-enstrophy trajectory of a 10-step run of every golden-flagged
scenario (``repro.swm.scenarios``) on the level-3 mesh, stored as
``float.hex()`` strings so the comparison is *bitwise*, not approximate.
The matrix covers three axes:

* **case** — every scenario with ``golden=True`` in the registry
  (mountain, Rossby–Haurwitz, Galewsky, dam break, ridge);
* **backend** — numpy / sparse / plan (the fused executor);
* **mode** — serial, lockstep and pool executors.  Decomposed runs only
  record endpoint invariants, so mode cells assert the start/end entries
  of the *same* golden file the serial cell pinned — the
  bitwise-identical execution contract, enforced per case.

Any change to the numerics — intended or not — trips these tests; an
intended change regenerates the registry with::

    REPRO_GOLDEN_REGEN=1 python -m pytest tests/test_golden.py

(or ``python -m repro golden regen``).  The resumed-run check closes the
durability loop: a run interrupted mid-trajectory and resumed must
reproduce the golden invariants exactly from its restart point onward.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.api import resolve_case, run, suggested_dt
from repro.constants import GRAVITY
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    use_fault_plan,
)
from repro.swm.config import SWConfig
from repro.swm.scenarios import SCENARIOS, scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
STEPS = 10
LEVEL = 3
REGEN = bool(os.environ.get("REPRO_GOLDEN_REGEN"))

CASES = tuple(sc.name for sc in SCENARIOS if sc.golden)

BACKENDS = {
    "numpy": {"backend": "numpy"},
    "sparse": {"backend": "sparse"},
    "plan": {"backend": "sparse", "plan": True},
}

MODES = {
    "serial": {},
    "lockstep": {"parallel": "lockstep", "ranks": 2},
    "pool": {"parallel": "pool", "ranks": 2},
}

KEYS = ("mass", "total_energy", "potential_enstrophy")


def skip_reason(case: str, backend: str, mode: str) -> str | None:
    """Why a matrix cell does not run, or ``None`` if it does.

    Pool cells spawn worker processes (the expensive executor), so they
    run one backend per case — sparse, the production numerics — rather
    than all three; lockstep and serial cover the full backend axis.
    """
    if mode == "pool" and backend != "sparse":
        return "pool cells run the sparse backend only (process spawn cost)"
    return None


def expected_golden_files() -> set[str]:
    """Every file the matrix (plus the ensemble pin) reads or writes.

    ``test_repo_hygiene`` asserts ``tests/golden/`` holds exactly these,
    so a renamed case cannot leave an orphaned, never-checked golden
    behind.
    """
    files = {
        f"{case}-l{LEVEL}-{backend}.json"
        for case in CASES
        for backend in BACKENDS
    }
    files.add(f"galewsky_jet-l{LEVEL}-ensemble.json")
    return files


def _config(case: str, mesh, backend: str, **extra) -> SWConfig:
    sc = scenario(case)
    dt = suggested_dt(mesh, resolve_case(case), GRAVITY, cfl=sc.suggested_cfl)
    return SWConfig(dt=dt, thickness_adv_order=4, **BACKENDS[backend], **extra)


def _trajectory(result) -> dict[str, list[str]]:
    hist = result.invariant_history
    return {
        "mass": [float.hex(i.mass) for i in hist],
        "total_energy": [float.hex(i.total_energy) for i in hist],
        "potential_enstrophy": [
            float.hex(i.potential_enstrophy) for i in hist
        ],
    }


def _golden_path(case: str, backend: str) -> Path:
    return GOLDEN_DIR / f"{case}-l{LEVEL}-{backend}.json"


def _load_golden(case: str, backend: str) -> dict:
    path = _golden_path(case, backend)
    if not path.exists():
        pytest.fail(
            f"missing golden file {path}; regenerate the registry with "
            f"REPRO_GOLDEN_REGEN=1 python -m pytest tests/test_golden.py"
        )
    return json.loads(path.read_text())


def _mismatches(payload: dict, golden: dict) -> list[str]:
    """Keys on which ``payload`` deviates from ``golden`` (hex-exact)."""
    bad = [] if payload["dt"] == golden["dt"] else ["dt"]
    bad.extend(k for k in KEYS if payload[k] != golden[k])
    return bad


class TestGoldenMatrix:
    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_serial_matches_golden(self, mesh3, case, backend):
        config = _config(case, mesh3, backend)
        result = run(
            case, mesh=mesh3, config=config, steps=STEPS,
            invariant_interval=1,
        )
        payload = {
            "case": case,
            "level": LEVEL,
            "steps": STEPS,
            "cfl": scenario(case).suggested_cfl,
            "dt": float.hex(config.dt),
            **_trajectory(result),
        }
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            _golden_path(case, backend).write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            return
        golden = _load_golden(case, backend)
        bad = _mismatches(payload, golden)
        assert not bad, (
            f"{bad} deviate from tests/golden for case {case!r} backend "
            f"{backend!r}; if the numerics change is intended, regenerate "
            f"with REPRO_GOLDEN_REGEN=1"
        )

    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("mode", [m for m in MODES if m != "serial"])
    def test_decomposed_matches_golden_endpoints(
        self, mesh3, case, backend, mode
    ):
        """Lockstep/pool rejoin the serial golden at both endpoints.

        Decomposed executors record ``[start, end]`` invariants only, and
        the execution contract says owned state is bitwise-identical to
        serial — so both entries must equal the serial golden's first and
        last entries to the bit.
        """
        reason = skip_reason(case, backend, mode)
        if reason:
            pytest.skip(reason)
        if REGEN:
            pytest.skip("regenerating (serial cells write the files)")
        golden = _load_golden(case, backend)
        config = _config(case, mesh3, backend, **MODES[mode])
        result = run(case, mesh=mesh3, config=config, steps=STEPS)
        got = _trajectory(result)
        assert float.hex(config.dt) == golden["dt"], "time step drifted"
        for key in KEYS:
            assert len(got[key]) == 2
            assert got[key][0] == golden[key][0], (
                f"{mode} initial {key} deviates from serial for {case!r}"
            )
            assert got[key][-1] == golden[key][-1], (
                f"{mode} final {key} deviates from serial for {case!r}"
            )

    @pytest.mark.parametrize("case", CASES)
    def test_backends_share_one_trajectory(self, case):
        """The pinned files agree: plan == sparse bitwise, numpy to ~1e-13.

        The plan executor fuses the *same* CSR operators the sparse
        backend applies, so their trajectories must be identical to the
        bit; the numpy backend sums fluxes in a different association
        order and is allowed round-off-level divergence only.
        """
        if REGEN:
            pytest.skip("regenerating")
        goldens = {b: _load_golden(case, b) for b in BACKENDS}
        assert goldens["numpy"]["dt"] == goldens["sparse"]["dt"]
        for key in ("dt", *KEYS):
            assert goldens["plan"][key] == goldens["sparse"][key], key
        for key in KEYS:
            ref = [float.fromhex(x) for x in goldens["numpy"][key]]
            got = [float.fromhex(x) for x in goldens["sparse"][key]]
            for a, b in zip(ref, got):
                assert abs(a - b) <= 1e-13 * abs(a), key

    def test_matrix_trips_on_one_ulp(self):
        """A single-ulp perturbation anywhere in a trajectory is caught.

        This is the property the whole registry rests on: ``float.hex``
        round-trips doubles exactly, so the weakest possible numerical
        drift — one unit in the last place of one invariant at one step —
        already shows up as a mismatch.
        """
        if REGEN:
            pytest.skip("regenerating")
        golden = _load_golden(CASES[0], "sparse")
        payload = json.loads(json.dumps(golden))  # deep copy
        assert _mismatches(payload, golden) == []
        val = float.fromhex(payload["total_energy"][-1])
        payload["total_energy"][-1] = float.hex(np.nextafter(val, np.inf))
        assert _mismatches(payload, golden) == ["total_energy"]


class TestGoldenEnsembleAndResume:
    def test_ensemble_mean_matches_golden(self, mesh3):
        """``galewsky_jet-l3-ensemble.json`` pins the 4-member ensemble-
        *mean* invariant trajectory (fixed seed, lockstep batch).  This
        guards the whole batched stack — member ICs, the ``(n, N)`` matvec
        path, the fused batch plan — with one file."""
        from repro.api import run_ensemble

        n_members = 4
        config = _config(
            "galewsky_jet", mesh3, "sparse", ensemble=n_members,
            ensemble_seed=2015, ensemble_amplitude=1e-6,
        )
        ens = run_ensemble(
            "galewsky_jet", mesh=mesh3, config=config, steps=STEPS,
            invariant_interval=1,
        )
        assert [v.status for v in ens.verdicts] == ["ok"] * n_members
        payload = {
            "case": "galewsky_jet",
            "level": LEVEL,
            "steps": STEPS,
            "ensemble": n_members,
            "seed": 2015,
            "dt": float.hex(config.dt),
            "mass": [float.hex(i.mass) for i in ens.mean_invariants()],
            "total_energy": [
                float.hex(i.total_energy) for i in ens.mean_invariants()
            ],
            "potential_enstrophy": [
                float.hex(i.potential_enstrophy)
                for i in ens.mean_invariants()
            ],
        }
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            _golden_path("galewsky_jet", "ensemble").write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            return
        golden = _load_golden("galewsky_jet", "ensemble")
        bad = _mismatches(payload, golden)
        assert not bad, (
            f"ensemble-mean {bad} deviate from tests/golden; if the "
            f"numerics change is intended, regenerate with "
            f"REPRO_GOLDEN_REGEN=1"
        )

    def test_resumed_run_matches_golden(self, mesh3, tmp_path):
        """Interrupt at step 6, resume: invariants rejoin the golden tail."""
        if REGEN:
            pytest.skip("regenerating")
        config = _config(
            "galewsky_jet", mesh3, "numpy", checkpoint_interval=2
        )
        d = tmp_path / "run"
        with use_fault_plan(FaultPlan([
            FaultSpec("process.crash", at=(1,), match={"step": 6})
        ])):
            with pytest.raises(FaultInjected):
                run(
                    "galewsky_jet", mesh=mesh3, config=config, steps=STEPS,
                    run_dir=d, invariant_interval=1,
                )
        resumed = run(resume=d, mesh=mesh3, invariant_interval=1)
        tail = _trajectory(resumed)
        golden = _load_golden("galewsky_jet", "numpy")
        # The resumed history covers steps 4..10 (restart point onward).
        start = STEPS + 1 - len(tail["mass"])
        assert start == 4
        for key in KEYS:
            assert tail[key] == golden[key][start:], key
