"""Golden-run registry: pinned Galewsky invariant trajectories per backend.

``tests/golden/galewsky-l3-<backend>.json`` pins the mass / total-energy /
potential-enstrophy trajectory of a 10-step Galewsky run on the level-3
mesh, stored as ``float.hex()`` strings so the comparison is *bitwise*,
not approximate.  Any change to the numerics — intended or not — trips
these tests; an intended change regenerates the registry with::

    REPRO_GOLDEN_REGEN=1 python -m pytest tests/test_golden.py

The resumed-run check closes the durability loop: a run interrupted
mid-trajectory and resumed must reproduce the golden invariants exactly
from its restart point onward.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import resolve_case, run, suggested_dt
from repro.constants import GRAVITY
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    use_fault_plan,
)
from repro.swm.config import SWConfig

GOLDEN_DIR = Path(__file__).parent / "golden"
STEPS = 10
LEVEL = 3
CFL = 0.5
REGEN = bool(os.environ.get("REPRO_GOLDEN_REGEN"))

BACKENDS = {
    "numpy": {"backend": "numpy"},
    "sparse": {"backend": "sparse"},
    "plan": {"backend": "sparse", "plan": True},
}


def _config(mesh, name: str, **extra) -> SWConfig:
    dt = suggested_dt(mesh, resolve_case("galewsky"), GRAVITY, cfl=CFL)
    return SWConfig(dt=dt, **BACKENDS[name], **extra)


def _trajectory(result) -> dict[str, list[str]]:
    hist = result.invariant_history
    return {
        "mass": [float.hex(i.mass) for i in hist],
        "total_energy": [float.hex(i.total_energy) for i in hist],
        "potential_enstrophy": [
            float.hex(i.potential_enstrophy) for i in hist
        ],
    }


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"galewsky-l{LEVEL}-{name}.json"


def _load_golden(name: str) -> dict:
    path = _golden_path(name)
    if not path.exists():
        pytest.fail(
            f"missing golden file {path}; regenerate the registry with "
            f"REPRO_GOLDEN_REGEN=1 python -m pytest tests/test_golden.py"
        )
    return json.loads(path.read_text())


class TestGoldenRegistry:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_backend_matches_golden(self, mesh3, name):
        config = _config(mesh3, name)
        result = run(
            "galewsky", mesh=mesh3, config=config, steps=STEPS,
            invariant_interval=1,
        )
        payload = {
            "case": "galewsky",
            "level": LEVEL,
            "steps": STEPS,
            "cfl": CFL,
            "dt": float.hex(config.dt),
            **_trajectory(result),
        }
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            _golden_path(name).write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            return
        golden = _load_golden(name)
        assert payload["dt"] == golden["dt"], "time step drifted"
        for key in ("mass", "total_energy", "potential_enstrophy"):
            assert payload[key] == golden[key], (
                f"{key} trajectory deviates from tests/golden for "
                f"backend {name!r}; if the numerics change is intended, "
                f"regenerate with REPRO_GOLDEN_REGEN=1"
            )

    def test_backends_share_one_trajectory(self):
        """The pinned files agree: plan == sparse bitwise, numpy to ~1 ulp.

        The plan executor fuses the *same* CSR operators the sparse
        backend applies, so their trajectories must be identical to the
        bit; the numpy backend sums fluxes in a different association
        order and is allowed round-off-level divergence only.
        """
        if REGEN:
            pytest.skip("regenerating")
        goldens = {name: _load_golden(name) for name in BACKENDS}
        keys = ("mass", "total_energy", "potential_enstrophy")
        assert goldens["numpy"]["dt"] == goldens["sparse"]["dt"]
        for key in ("dt", *keys):
            assert goldens["plan"][key] == goldens["sparse"][key], key
        for key in keys:
            ref = [float.fromhex(x) for x in goldens["numpy"][key]]
            got = [float.fromhex(x) for x in goldens["sparse"][key]]
            for a, b in zip(ref, got):
                assert abs(a - b) <= 1e-13 * abs(a), key

    def test_ensemble_mean_matches_golden(self, mesh3):
        """``galewsky-l3-ensemble.json`` pins the 4-member ensemble-*mean*
        invariant trajectory (fixed seed, lockstep batch).  This guards the
        whole batched stack — member ICs, the ``(n, N)`` matvec path, the
        fused batch plan — with one file."""
        from repro.api import run_ensemble

        n_members = 4
        config = _config(
            mesh3, "sparse", ensemble=n_members, ensemble_seed=2015,
            ensemble_amplitude=1e-6,
        )
        ens = run_ensemble(
            "galewsky", mesh=mesh3, config=config, steps=STEPS,
            invariant_interval=1,
        )
        assert [v.status for v in ens.verdicts] == ["ok"] * n_members
        payload = {
            "case": "galewsky",
            "level": LEVEL,
            "steps": STEPS,
            "cfl": CFL,
            "ensemble": n_members,
            "seed": 2015,
            "dt": float.hex(config.dt),
            "mass": [float.hex(i.mass) for i in ens.mean_invariants()],
            "total_energy": [
                float.hex(i.total_energy) for i in ens.mean_invariants()
            ],
            "potential_enstrophy": [
                float.hex(i.potential_enstrophy)
                for i in ens.mean_invariants()
            ],
        }
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            _golden_path("ensemble").write_text(
                json.dumps(payload, indent=2) + "\n"
            )
            return
        golden = _load_golden("ensemble")
        assert payload["dt"] == golden["dt"], "time step drifted"
        for key in ("mass", "total_energy", "potential_enstrophy"):
            assert payload[key] == golden[key], (
                f"ensemble-mean {key} trajectory deviates from tests/golden; "
                f"if the numerics change is intended, regenerate with "
                f"REPRO_GOLDEN_REGEN=1"
            )

    def test_resumed_run_matches_golden(self, mesh3, tmp_path):
        """Interrupt at step 6, resume: invariants rejoin the golden tail."""
        if REGEN:
            pytest.skip("regenerating")
        config = _config(mesh3, "numpy", checkpoint_interval=2)
        d = tmp_path / "run"
        with use_fault_plan(FaultPlan([
            FaultSpec("process.crash", at=(1,), match={"step": 6})
        ])):
            with pytest.raises(FaultInjected):
                run(
                    "galewsky", mesh=mesh3, config=config, steps=STEPS,
                    run_dir=d, invariant_interval=1,
                )
        resumed = run(resume=d, mesh=mesh3, invariant_interval=1)
        tail = _trajectory(resumed)
        golden = _load_golden("numpy")
        # The resumed history covers steps 4..10 (restart point onward).
        start = STEPS + 1 - len(tail["mass"])
        assert start == 4
        for key in ("mass", "total_energy", "potential_enstrophy"):
            assert tail[key] == golden[key][start:], key
