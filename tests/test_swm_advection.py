"""Unit tests of the high-order thickness advection (d2fdx2 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.swm.advection import (
    advection_coefficients,
    d2fdx2_on_edges,
    h_edge_high_order,
)
from repro.swm.operators import cell_to_edge_mean


class TestCoefficients:
    def test_cached(self, mesh3):
        assert advection_coefficients(mesh3) is advection_coefficients(mesh3)

    def test_shapes(self, mesh3):
        coeffs = advection_coefficients(mesh3)
        assert coeffs.cells.shape == coeffs.weights.shape
        assert coeffs.cells.shape[0] == mesh3.nEdges
        assert coeffs.cells.shape[1] == 2

    def test_constant_field_zero_second_derivative(self, mesh3):
        d2_1, d2_2 = d2fdx2_on_edges(mesh3, np.full(mesh3.nCells, 3.25))
        assert np.abs(d2_1).max() < 1e-18
        assert np.abs(d2_2).max() < 1e-18

    def test_linear_field_small_second_derivative(self, mesh4):
        # h linear in the tangent coordinates ~ a linear function of z on
        # the sphere; its second derivative is O(curvature), small compared
        # to the quadratic response.
        h = mesh4.metrics.xCell[:, 2] * 1000.0
        d2_1, _ = d2fdx2_on_edges(mesh4, h)
        # A genuinely quadratic field of the same scale for comparison:
        hq = (mesh4.metrics.xCell[:, 2] * mesh4.radius) ** 2 / mesh4.radius * 1e-3
        d2q_1, _ = d2fdx2_on_edges(mesh4, hq)
        assert np.median(np.abs(d2_1)) < 0.3 * np.median(np.abs(d2q_1))

    def test_quadratic_field_recovered_exactly(self, mesh3):
        """The fit is exact for a field quadratic in a cell's own tangent
        coordinates: d2fdx2 = 2 * (n . e1)^2 for h = (xy . e1)^2."""
        from repro.geometry import tangent_basis, tangent_plane_coords

        met = mesh3.metrics
        conn = mesh3.connectivity
        for c in (0, 100, 400):
            # Global field defined in cell c's frame, in metres.
            xy = tangent_plane_coords(met.xCell[c], met.xCell) * mesh3.radius
            h = xy[:, 0] ** 2  # e1 = local east direction of the frame
            d2_1, d2_2 = d2fdx2_on_edges(mesh3, h)
            east, north = tangent_basis(met.xCell[c])
            for j in range(int(conn.nEdgesOnCell[c])):
                e = int(conn.edgesOnCell[c, j])
                side = 0 if conn.cellsOnEdge[e, 0] == c else 1
                n3 = met.edgeNormal[e]
                nx, ny = float(n3 @ east), float(n3 @ north)
                nrm = np.hypot(nx, ny)
                expected = 2.0 * (nx / nrm) ** 2
                got = (d2_1 if side == 0 else d2_2)[e]
                assert got == pytest.approx(expected, rel=1e-6)


class TestHEdgeOrders:
    def test_order2_is_mean(self, mesh3, cell_field, edge_field):
        he = h_edge_high_order(mesh3, cell_field, edge_field, order=2)
        np.testing.assert_array_equal(he, cell_to_edge_mean(mesh3, cell_field))

    def test_order4_equals_mean_for_constant(self, mesh3, edge_field):
        h = np.full(mesh3.nCells, 5.5)
        he = h_edge_high_order(mesh3, h, edge_field, order=4)
        np.testing.assert_allclose(he, 5.5, rtol=1e-12)

    def test_order3_upwind_direction(self, mesh3, cell_field):
        h = np.abs(cell_field) + 10.0
        up = h_edge_high_order(mesh3, h, np.ones(mesh3.nEdges), order=3)
        down = h_edge_high_order(mesh3, h, -np.ones(mesh3.nEdges), order=3)
        center = h_edge_high_order(mesh3, h, np.ones(mesh3.nEdges), order=4)
        # Up/down differ and straddle the centered value.
        assert not np.allclose(up, down)
        np.testing.assert_allclose(0.5 * (up + down), center, rtol=1e-12)

    def test_invalid_order(self, mesh3, cell_field, edge_field):
        with pytest.raises(ValueError):
            h_edge_high_order(mesh3, cell_field, edge_field, order=5)

    def test_order4_more_accurate_on_smooth_field(self, mesh4):
        """4th order beats 2nd order against a globally smooth field."""
        met = mesh4.metrics

        def smooth(p):  # smooth on the sphere (Cartesian polynomial)
            return p[:, 0] * p[:, 1] + 0.7 * p[:, 2] ** 3 - 0.3 * p[:, 0] ** 2

        h_exact_edge = smooth(met.xEdge)
        h_cell = smooth(met.xCell)
        u = np.zeros(mesh4.nEdges)
        err2 = h_edge_high_order(mesh4, h_cell, u, order=2) - h_exact_edge
        err4 = h_edge_high_order(mesh4, h_cell, u, order=4) - h_exact_edge
        assert np.sqrt(np.mean(err4**2)) < 0.6 * np.sqrt(np.mean(err2**2))
