"""Surgical tests of the executor's variable-residency semantics.

Uses tiny hand-built data-flow graphs (not the full model) so every
transfer decision is individually observable: when PCIe traffic must appear,
when the split boundary bands are enough, when halos invalidate device
copies, and when cached bands are reused.
"""

from __future__ import annotations

import pytest

from repro.dataflow.graph import DataFlowGraph
from repro.hybrid.executor import HybridExecutor, Placement
from repro.machine.counts import MeshCounts
from repro.machine.interconnect import TransferModel
from repro.patterns import PatternKind, PointType
from repro.patterns.catalog import PatternInstance

COUNTS = MeshCounts(nCells=100_000)
LINK = TransferModel(bandwidth_gbs=6.0, latency_us=10.0)


def _inst(label, inputs, outputs, point=PointType.CELL, kind=PatternKind.A):
    return PatternInstance(
        label=label,
        kernel="compute_tend",
        kind=kind,
        output_point=point,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        flops_per_point=10,
        f64_per_point=10,
        i32_per_point=2,
    )


def _chain_graph():
    """in:h -> P -> x -> Q -> y (two stencil nodes in a chain)."""
    dfg = DataFlowGraph()
    dfg.add_source("h")
    dfg.add_instance("P", _inst("P", ["h"], ["ke"]))
    dfg.add_instance("Q", _inst("Q", ["ke"], ["divergence"]))
    dfg.validate()
    return dfg


def _times(dfg, cpu=1.0, mic=0.5):
    return {n: {"cpu": cpu, "mic": mic} for n in dfg.compute_nodes()}


def _transfers(timeline):
    return [t for t in timeline.tasks if t.kind == "transfer"]


class TestFullResidency:
    def test_same_device_chain_no_transfers(self):
        dfg = _chain_graph()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK)
        tl = ex.run({"P": Placement("mic"), "Q": Placement("mic")})
        assert _transfers(tl) == []
        assert tl.makespan == pytest.approx(1.0)  # two mic nodes, 0.5 each

    def test_cross_device_chain_one_transfer(self):
        dfg = _chain_graph()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK)
        tl = ex.run({"P": Placement("mic"), "Q": Placement("cpu")})
        xfers = _transfers(tl)
        assert len(xfers) == 1
        assert xfers[0].resource == "pcie_down"  # mic -> cpu
        # Q starts only after the transfer lands.
        q = next(t for t in tl.tasks if t.name == "Q")
        assert q.start >= xfers[0].end - 1e-12

    def test_transfer_volume_matches_field_size(self):
        dfg = _chain_graph()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK)
        tl = ex.run({"P": Placement("cpu"), "Q": Placement("mic")})
        (xfer,) = _transfers(tl)
        expected = LINK.time(8.0 * COUNTS.nCells)
        assert xfer.duration == pytest.approx(expected)

    def test_second_consumer_reuses_copy(self):
        dfg = DataFlowGraph()
        dfg.add_source("h")
        dfg.add_instance("P", _inst("P", ["h"], ["ke"]))
        dfg.add_instance("Q", _inst("Q", ["ke"], ["divergence"]))
        dfg.add_instance("R", _inst("R", ["ke"], ["pv_cell"]))
        dfg.validate()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK)
        tl = ex.run(
            {"P": Placement("mic"), "Q": Placement("cpu"), "R": Placement("cpu")}
        )
        # ke crosses once; R reuses the host copy.
        assert len(_transfers(tl)) == 1


class TestSplitResidency:
    def test_split_chain_moves_bands_only(self):
        dfg = _chain_graph()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK)
        tl = ex.run(
            {
                "P": Placement("split", cpu_fraction=0.5),
                "Q": Placement("split", cpu_fraction=0.5),
            }
        )
        xfers = _transfers(tl)
        assert xfers, "split chains exchange boundary bands"
        full_field = LINK.time(8.0 * COUNTS.nCells)
        for t in xfers:
            assert t.duration < 0.25 * full_field  # bands, not whole fields

    def test_split_then_full_consumer_fetches_complement(self):
        dfg = _chain_graph()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK)
        tl = ex.run(
            {
                "P": Placement("split", cpu_fraction=0.25),
                "Q": Placement("cpu"),
            }
        )
        # Q on the host must receive mic's 75% share of ke.
        xfers = [t for t in _transfers(tl) if t.resource == "pcie_down"]
        assert len(xfers) == 1
        expected = LINK.time(8.0 * COUNTS.nCells * 0.75)
        assert xfers[0].duration == pytest.approx(expected)

    def test_split_balances_finish_times(self):
        dfg = DataFlowGraph()
        dfg.add_source("h")
        dfg.add_instance("P", _inst("P", ["h"], ["ke"]))
        dfg.validate()
        times = {"P": {"cpu": 2.0, "mic": 1.0}}
        ex = HybridExecutor(dfg, times, COUNTS, LINK)
        f = 1.0 / 3.0  # f*2 == (1-f)*1 -> both finish at 2/3
        tl = ex.run({"P": Placement("split", cpu_fraction=f)})
        parts = {t.name: t for t in tl.tasks if t.kind == "compute"}
        assert parts["P[cpu]"].end == pytest.approx(parts["P[mic]"].end, rel=1e-9)


class TestHaloResidency:
    def test_halo_invalidates_device_copy(self):
        dfg = DataFlowGraph()
        dfg.add_source("h")
        dfg.add_instance("P", _inst("P", ["h"], ["ke"]))
        dfg.add_halo_exchange("mid", ("ke",))
        dfg.add_instance("Q", _inst("Q", ["ke"], ["divergence"]))
        dfg.validate()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK, halo_time=1e-3)
        tl = ex.run({"P": Placement("mic"), "Q": Placement("mic")})
        xfers = _transfers(tl)
        # ke: mic -> cpu for the exchange, then cpu -> mic for Q.
        directions = sorted(t.resource for t in xfers)
        assert directions == ["pcie_down", "pcie_up"]
        halo = next(t for t in tl.tasks if t.kind == "halo")
        assert halo.duration == pytest.approx(1e-3)

    def test_halo_free_ride_for_host_consumers(self):
        dfg = DataFlowGraph()
        dfg.add_source("h")
        dfg.add_instance("P", _inst("P", ["h"], ["ke"]))
        dfg.add_halo_exchange("mid", ("ke",))
        dfg.add_instance("Q", _inst("Q", ["ke"], ["divergence"]))
        dfg.validate()
        ex = HybridExecutor(dfg, _times(dfg), COUNTS, LINK, halo_time=1e-3)
        tl = ex.run({"P": Placement("cpu"), "Q": Placement("cpu")})
        assert _transfers(tl) == []  # everything already host-resident
