"""Repository hygiene: no build artifacts may ever be tracked again.

PR 2 accidentally committed 47 ``__pycache__/*.pyc`` files; this module is
the regression guard.  It asks git itself (``git ls-files``), so it catches
tracked artifacts regardless of what happens to be on disk.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Path fragments that must never appear in the tracked file list.
FORBIDDEN = ("__pycache__", ".pyc", ".pytest_cache", ".hypothesis", ".benchmarks")

#: Patterns the .gitignore must carry so the artifacts cannot return.
REQUIRED_IGNORES = (
    "__pycache__/",
    "*.pyc",
    ".pytest_cache/",
    ".hypothesis/",
    ".benchmarks/",
)


def _tracked_files() -> list[str]:
    if shutil.which("git") is None or not (REPO / ".git").exists():
        pytest.skip("not a git checkout")
    result = subprocess.run(
        ["git", "ls-files"], cwd=REPO, capture_output=True, text=True, timeout=60
    )
    if result.returncode != 0:
        pytest.skip(f"git ls-files failed: {result.stderr.strip()}")
    return result.stdout.splitlines()


def test_no_tracked_build_artifacts():
    offenders = [
        path
        for path in _tracked_files()
        for fragment in FORBIDDEN
        if fragment in path
    ]
    assert not offenders, (
        f"{len(offenders)} build artifacts are tracked by git "
        f"(e.g. {offenders[:3]}); `git rm --cached` them"
    )


def test_gitignore_covers_artifacts():
    gitignore = (REPO / ".gitignore").read_text().splitlines()
    missing = [pat for pat in REQUIRED_IGNORES if pat not in gitignore]
    assert not missing, f".gitignore lacks {missing}"


def test_every_golden_file_is_consumed():
    """``tests/golden/`` holds exactly the files the golden matrix reads.

    A stale golden — left behind by a renamed case or a dropped backend —
    passes every test while looking like coverage; conversely a cell whose
    file was never generated fails only when that cell runs.  Comparing
    the directory listing against the matrix's own
    ``expected_golden_files()`` catches both directions.
    """
    import sys

    sys.path.insert(0, str(REPO / "tests"))
    try:
        from test_golden import GOLDEN_DIR, expected_golden_files
    finally:
        sys.path.pop(0)

    on_disk = {p.name for p in GOLDEN_DIR.glob("*.json")}
    expected = expected_golden_files()
    stale = sorted(on_disk - expected)
    missing = sorted(expected - on_disk)
    assert not stale, (
        f"orphaned golden files no test reads: {stale}; delete them or "
        f"add their cells to tests/test_golden.py"
    )
    assert not missing, (
        f"golden files the matrix expects are missing: {missing}; "
        f"regenerate with REPRO_GOLDEN_REGEN=1 pytest tests/test_golden.py"
    )


def test_every_source_package_has_an_init():
    """Every directory under src/repro that ships tracked .py files must be
    a real package — a missing ``__init__.py`` makes the modules silently
    unimportable by ``pip install`` consumers while still passing the
    path-based test suite."""
    tracked = _tracked_files()
    package_dirs = {
        str(Path(path).parent)
        for path in tracked
        if path.startswith("src/repro/") and path.endswith(".py")
    }
    missing = sorted(
        d for d in package_dirs if f"{d}/__init__.py" not in tracked
    )
    assert not missing, (
        f"source directories without a tracked __init__.py: {missing}"
    )
