"""Tests of the observability layer: tracer, metrics, exporters, report.

The round-trip tests exercise the real instrumentation: a traced 2-step
shallow-water run on the session mesh, exported through both formats and
read back with span nesting and tag integrity intact.
"""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    get_tracer,
    pattern_span,
    use_registry,
    use_tracer,
)
from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import (
    kernel_profile_rows,
    measured_pattern_costs,
    measured_vs_modeled,
    occurrences_per_step,
    pattern_self_times,
    render_cost_report,
)
from repro.swm import SWConfig, isolated_mountain, suggested_dt
from repro.swm.testcases import initialize
from repro.swm.timestep import RK4Integrator


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def traced_run(mesh3):
    """A 2-step traced TC5 integration: (tracer, registry, mesh, config)."""
    case = isolated_mountain()
    config = SWConfig(
        dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5), thickness_adv_order=4
    )
    state, b_cell = initialize(mesh3, case)
    f_vertex = config.coriolis(mesh3.metrics.latVertex)
    integ = RK4Integrator(mesh3, config, b_cell, f_vertex)
    diag = integ.diagnostics_for(state)
    integ.step(state, diag)  # warm-up pays one-time per-mesh setup

    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        for _ in range(2):
            result = integ.step(state, diag)
            state, diag = result.state, result.diagnostics
    registry.counter("swm.steps", case="tc5").inc(2)
    assert np.all(np.isfinite(state.h))
    return tracer, registry, mesh3, config


# --------------------------------------------------------------------- tracer
class TestTracer:
    def test_nesting(self):
        tr = Tracer()
        with tr.span("outer", category="kernel"):
            with tr.span("inner", category="pattern", pattern="A1"):
                pass
            with tr.span("inner2", category="pattern", pattern="B1"):
                pass
        names = [s.name for s in tr.spans]
        assert names == ["outer", "inner", "inner2"]
        outer, inner, inner2 = tr.spans
        assert outer.parent is None and outer.depth == 0
        assert inner.parent == outer.index and inner.depth == 1
        assert inner2.parent == outer.index and inner2.depth == 1
        assert outer.start <= inner.start <= inner.end <= inner2.end <= outer.end
        assert tr.children(outer) == [inner, inner2]

    def test_disabled_is_noop(self):
        tr = Tracer(enabled=False)
        cm = tr.span("x")
        assert cm is NULL_SPAN
        with cm:
            pass
        assert len(tr) == 0

    def test_global_default_disabled(self):
        assert not get_tracer().enabled
        assert pattern_span("A1") is NULL_SPAN

    def test_exception_unwinds_stack(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        assert all(s.end is not None for s in tr.spans)
        with tr.span("after"):
            pass
        assert tr.spans[-1].depth == 0

    def test_add_span_rejects_negative_duration(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.add_span("bad", start=1.0, end=0.5)

    def test_aggregate(self):
        tr = Tracer()
        tr.add_span("a", 0.0, 1.0, category="sim", resource="cpu")
        tr.add_span("b", 1.0, 3.0, category="sim", resource="cpu")
        tr.add_span("c", 0.0, 5.0, category="sim", resource="mic")
        agg = tr.aggregate("resource", category="sim")
        assert agg == {"cpu": pytest.approx(3.0), "mic": pytest.approx(5.0)}


# -------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_gauge_timer(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc(2.0)
        reg.counter("c", k="v").inc()
        assert reg.counter("c", k="v").value == 3.0
        reg.gauge("g").set(0.25)
        assert reg.gauge("g").value == 0.25
        t = reg.timer("t")
        t.observe(1.0)
        t.observe(3.0)
        assert t.count == 2 and t.mean == 2.0 and t.min == 1.0 and t.max == 3.0

    def test_tags_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("halo.bytes", ranks=2).inc(10)
        reg.counter("halo.bytes", ranks=4).inc(20)
        assert reg.counter("halo.bytes", ranks=2).value == 10
        assert len(reg.series("halo.bytes")) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a", side="up").inc(5)
        reg.timer("b").observe(0.5)
        snap = reg.snapshot()
        assert {r["metric"] for r in snap} == {"a", "b"}
        by_name = {r["metric"]: r for r in snap}
        assert by_name["a"]["kind"] == "counter"
        assert by_name["a"]["tags"] == {"side": "up"}
        assert by_name["b"]["count"] == 1


# ---------------------------------------------------------- traced run content
class TestInstrumentation:
    def test_kernel_spans_cover_algorithm1(self, traced_run):
        tracer, _, _, _ = traced_run
        kernels = tracer.aggregate_names(category="kernel")
        assert set(kernels) == {
            "compute_tend",
            "enforce_boundary_edge",
            "compute_next_substep_state",
            "compute_solve_diagnostics",
            "accumulative_update",
            "mpas_reconstruct",
        }

    def test_pattern_spans_nest_inside_kernels(self, traced_run):
        tracer, _, _, _ = traced_run
        by_index = {s.index: s for s in tracer.spans}
        patterns = [s for s in tracer.finished() if s.category == "pattern"]
        assert patterns
        for s in patterns:
            ancestor = s
            while ancestor.parent is not None:
                ancestor = by_index[ancestor.parent]
            assert ancestor.category == "kernel"
            assert s.start >= ancestor.start - 1e-9
            assert s.end <= ancestor.end + 1e-9

    def test_pattern_tags(self, traced_run):
        tracer, _, mesh, _ = traced_run
        spans = [s for s in tracer.finished() if s.tags.get("pattern") == "A1"]
        assert spans
        for s in spans:
            assert s.tags["kind"] == "A"
            assert s.tags["kernel"] == "compute_tend"
            assert s.tags["point"] == "cell"
            assert s.tags["n_points"] == mesh.nCells
            # A1 moves 20 doubles + 6 ints per cell (Table I catalog).
            assert s.tags["bytes_est"] == pytest.approx(
                (8.0 * 20 + 4.0 * 6) * mesh.nCells
            )

    def test_every_catalog_pattern_measured(self, traced_run):
        from repro.patterns.catalog import build_catalog

        tracer, _, _, config = traced_run
        measured = measured_pattern_costs(tracer)
        for inst in build_catalog(config):
            assert measured.get(inst.label, 0.0) > 0.0, inst.label

    def test_fused_c_sweep_split(self, traced_run):
        tracer, _, _, _ = traced_run
        measured = measured_pattern_costs(tracer)
        # C1/C2 come from one fused sweep, split evenly (equal byte counts).
        assert measured["C1"] == pytest.approx(measured["C2"])

    def test_self_time_subtracts_children(self, traced_run):
        tracer, _, _, _ = traced_run
        measured = measured_pattern_costs(tracer)
        d1_spans = [s for s in tracer.finished() if s.tags.get("pattern") == "D1"]
        d1_total = sum(s.duration for s in d1_spans)
        # D1's self time excludes the nested C1,C2 sweep.
        assert measured["D1"] < d1_total
        assert measured["D1"] + measured["C1"] + measured["C2"] == pytest.approx(
            d1_total, rel=1e-6
        )


# ------------------------------------------------------------------ exporters
class TestExporters:
    def test_jsonl_roundtrip(self, traced_run):
        tracer, registry, _, _ = traced_run
        buf = io.StringIO()
        n = write_jsonl(tracer, buf, registry)
        assert n == len(tracer.finished()) + len(registry.snapshot())
        buf.seek(0)
        spans, metrics = read_jsonl(buf)
        assert len(spans) == len(tracer.finished())
        for original, restored in zip(tracer.finished(), spans):
            assert restored.name == original.name
            assert restored.parent == original.parent
            assert restored.depth == original.depth
            assert restored.tags == {
                k: v for k, v in original.tags.items()
            }
        # Aggregations computed from the round-tripped spans are identical.
        assert pattern_self_times(spans) == pattern_self_times(tracer.spans)
        assert len(metrics) == len(registry.snapshot())

    def test_chrome_trace_valid(self, traced_run, tmp_path):
        tracer, registry, _, _ = traced_run
        path = tmp_path / "trace.json"
        n = write_chrome_trace(tracer, path, registry)
        assert validate_chrome_trace(path) == n
        doc = json.loads(path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tracer.finished())
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        # Tags ride along in args.
        a1 = [e for e in xs if e["args"].get("pattern") == "A1"]
        assert a1 and a1[0]["cat"] == "pattern"

    def test_chrome_validation_rejects_overlap(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 0, "tid": 1},
                {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 0, "tid": 1},
            ]
        }
        with pytest.raises(ValueError, match="overlap"):
            validate_chrome_trace(doc)

    def test_chrome_validation_rejects_negative_dur(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0.0, "dur": -1.0, "pid": 0, "tid": 0}
            ]
        }
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(doc)

    def test_chrome_counter_events(self, traced_run):
        tracer, registry, _, _ = traced_run
        events = chrome_trace_events(tracer, registry)
        assert any(e["ph"] == "C" for e in events)


# --------------------------------------------------------------------- report
class TestReport:
    def test_measured_vs_modeled(self, traced_run):
        tracer, _, mesh, config = traced_run
        rows = measured_vs_modeled(tracer, mesh, config)
        assert rows[0].measured_s == max(r.measured_s for r in rows)
        assert sum(r.measured_share for r in rows) == pytest.approx(1.0)
        assert sum(r.modeled_share for r in rows) == pytest.approx(1.0)
        assert all(math.isfinite(r.drift_pp) for r in rows)
        # B1 is the most expensive instance in both views.
        b1 = next(r for r in rows if r.label == "B1")
        assert b1.modeled_share == max(r.modeled_share for r in rows)
        text = render_cost_report(rows, "test")
        assert "drift pp" in text and "B1" in text

    def test_occurrences_per_step(self):
        occ = occurrences_per_step(None)
        # Algorithm 1: 4 RK stages; 3 provisional states; 1 reconstruction.
        assert occ["A1"] == 4 and occ["B1"] == 4
        assert occ["X2"] == 3 and occ["X3"] == 3
        assert occ["A4"] == 1 and occ["X6"] == 1

    def test_kernel_profile_rows(self, traced_run):
        tracer, _, _, _ = traced_run
        rows = kernel_profile_rows(tracer)
        assert rows[0][0] in ("compute_tend", "compute_solve_diagnostics")
        shares = [float(r[2].rstrip("%")) for r in rows]
        assert sum(shares) == pytest.approx(100.0, abs=0.5)


# ----------------------------------------------------------------------- shim
class TestProfiledIntegratorShim:
    def test_shim_matches_tracer(self, mesh3):
        from repro.swm.profiling import ProfiledIntegrator

        case = isolated_mountain()
        config = SWConfig(
            dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5), thickness_adv_order=4
        )
        state, b_cell = initialize(mesh3, case)
        f_vertex = config.coriolis(mesh3.metrics.latVertex)
        integ = ProfiledIntegrator(mesh3, config, b_cell, f_vertex)
        diag = integ.diagnostics_for(state)
        integ.step(state, diag)
        integ.profile.reset()
        mark = len(integ.tracer.spans)

        s, d = state, diag
        for _ in range(2):
            r = integ.step(s, d)
            s, d = r.state, r.diagnostics

        # The shim's KernelProfile is exactly the kernel spans, re-summed.
        from_tracer: dict[str, float] = {}
        for span in integ.tracer.spans[mark:]:
            if span.category == "kernel":
                from_tracer[span.name] = from_tracer.get(span.name, 0.0) + (
                    span.duration
                )
        assert set(integ.profile.seconds) == set(from_tracer)
        for kernel, secs in integ.profile.seconds.items():
            assert secs == pytest.approx(from_tracer[kernel], rel=1e-9)
        assert integ.profile.steps == 2
        # Same physical conclusion as the paper's Section II-C profile.
        fractions = integ.profile.fractions()
        heavy = fractions["compute_tend"] + fractions["compute_solve_diagnostics"]
        assert heavy > 0.6

    def test_shim_isolated_from_global_tracer(self, mesh3):
        from repro.swm.profiling import ProfiledIntegrator

        case = isolated_mountain()
        config = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5))
        state, b_cell = initialize(mesh3, case)
        integ = ProfiledIntegrator(
            mesh3, config, b_cell, config.coriolis(mesh3.metrics.latVertex)
        )
        diag = integ.diagnostics_for(state)
        before = len(get_tracer().spans)
        integ.step(state, diag)
        assert len(get_tracer().spans) == before  # nothing leaked globally
        assert len(integ.tracer.spans) > 0


# ------------------------------------------------------------- executor + tune
class TestSimulatedSpans:
    @pytest.fixture(scope="class")
    def hybrid_setup(self):
        from repro.dataflow import build_step_graph
        from repro.hybrid import HybridExecutor, node_times
        from repro.hybrid.stepmodel import _cpu_parallel_model, _mic_model, _perf_config
        from repro.machine import TransferModel
        from repro.machine.counts import MeshCounts
        from repro.machine.spec import PAPER_NODE

        dfg = build_step_graph(_perf_config())
        counts = MeshCounts(nCells=40962)
        times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
        transfer = TransferModel(PAPER_NODE.pcie_bw_gbs, PAPER_NODE.pcie_latency_us)
        return dfg, counts, times, transfer

    def test_executor_emits_sim_spans(self, hybrid_setup):
        from repro.hybrid import HybridExecutor, pattern_level_assignment

        dfg, counts, times, transfer = hybrid_setup
        tracer = Tracer()
        registry = MetricsRegistry()
        ex = HybridExecutor(
            dfg, times, counts, transfer, tracer=tracer, registry=registry
        )
        assignment = pattern_level_assignment(dfg, times, min_split_gain=0.0)
        tl = ex.run(assignment)
        sim = [s for s in tracer.finished() if s.category == "sim"]
        assert len(sim) == len(tl.tasks)
        compute = [s for s in sim if s.tags["task"] == "compute"]
        assert compute and all("pattern" in s.tags for s in compute)
        resources = {s.tags["resource"] for s in sim}
        assert "cpu" in resources and "mic" in resources
        # Split placements are exported as gauges.
        n_split = sum(1 for p in assignment.values() if p.device == "split")
        assert n_split > 0
        gauges = registry.series("hybrid.split.cpu_fraction")
        assert len(gauges) == n_split
        assert all(0.0 < g.value < 1.0 for g in gauges)
        assert registry.counter("hybrid.pcie.bytes", channel="pcie_up").value > 0

    def test_sim_spans_make_valid_chrome_trace(self, hybrid_setup, tmp_path):
        from repro.hybrid import HybridExecutor, kernel_level_assignment

        dfg, counts, times, transfer = hybrid_setup
        tracer = Tracer()
        ex = HybridExecutor(dfg, times, counts, transfer, tracer=tracer)
        ex.run(kernel_level_assignment(dfg))
        ex.run(kernel_level_assignment(dfg))  # second run offsets, no overlap
        path = tmp_path / "sim.json"
        write_chrome_trace(tracer, path)
        validate_chrome_trace(path)

    def test_autotune_records_trajectory(self, hybrid_setup):
        from repro.hybrid import HybridExecutor, tune_split_fraction

        dfg, counts, times, transfer = hybrid_setup
        registry = MetricsRegistry()
        with use_registry(registry):
            ex = HybridExecutor(dfg, times, counts, transfer)
            result = tune_split_fraction(dfg, times, ex)
        trials = registry.series("hybrid.autotune.makespan")
        assert len(trials) == result.evaluations
        assert registry.counter("hybrid.autotune.evaluations").value == (
            result.evaluations
        )
        assert registry.gauge("hybrid.autotune.best_fraction").value == (
            pytest.approx(result.fraction)
        )
        # The trajectory in the registry replays the TuneResult history.
        recorded = {
            (float(g.tags["fraction"]), g.value) for g in trials
        }
        expected = {(round(f, 4), m) for f, m in result.history}
        assert recorded == expected


class TestHaloCounters:
    def test_decomposed_run_counts_halo_traffic(self, mesh3):
        from repro.parallel.runner import DecomposedShallowWater

        registry = MetricsRegistry()
        tracer = Tracer()
        case = isolated_mountain()
        config = SWConfig(dt=suggested_dt(mesh3, case, GRAVITY, cfl=0.5))
        with use_registry(registry), use_tracer(tracer):
            dec = DecomposedShallowWater(mesh3, 2, case, config)
            dec.run(1)
        exchanges = registry.counter("halo.exchanges", ranks=2).value
        assert exchanges == dec.exchange_count == 8  # 2 per RK stage
        per_exchange = registry.gauge("halo.bytes_per_exchange", ranks=2).value
        assert per_exchange > 0
        assert registry.counter("halo.bytes", ranks=2).value == pytest.approx(
            exchanges * per_exchange
        )
        halo_spans = [s for s in tracer.finished() if s.category == "halo"]
        assert len(halo_spans) == 8
        assert all(s.tags["bytes_est"] == per_exchange for s in halo_spans)


# ------------------------------------------------------------------ CLI smoke
class TestCLI:
    def test_selftest_smoke(self, capsys):
        from repro.obs.report import main

        assert main(["--selftest"]) == 0
        out = capsys.readouterr().out
        assert "obs selftest OK" in out
        assert "measured vs modeled" in out
