"""Generality battery: the full stack on random (non-icosahedral) SCVTs.

Everything in the repository is built and tested on icosahedral meshes;
these tests guard against accidental reliance on their symmetry by running
the invariants and the model on SCVTs generated from *random* seed points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.geometry import lloyd_relax, normalize
from repro.mesh import Mesh


@pytest.fixture(scope="module", params=[11, 23, 57])
def random_mesh(request):
    rng = np.random.default_rng(request.param)
    pts = lloyd_relax(
        normalize(rng.standard_normal((120, 3))), iterations=60
    ).points
    return Mesh.from_points(pts, name=f"random120-{request.param}")


class TestStructure:
    def test_validates(self, random_mesh):
        random_mesh.validate()

    def test_euler(self, random_mesh):
        m = random_mesh
        assert m.nVertices - m.nEdges + m.nCells == 2

    def test_polygon_census(self, random_mesh):
        """Euler again, by degrees: average cell degree < 6, and the
        pentagon-equivalent deficit sums to 12."""
        degrees = random_mesh.nEdgesOnCell
        assert np.sum(6 - degrees) == 12


class TestOperators:
    def test_trisk_antisymmetry(self, random_mesh):
        m = random_mesh
        table = {}
        for e in range(m.nEdges):
            for j in range(int(m.nEdgesOnEdge[e])):
                ep = int(m.edgesOnEdge[e, j])
                w = m.weightsOnEdge[e, j] * m.dcEdge[e] / m.dvEdge[ep]
                table[(e, ep)] = table.get((e, ep), 0.0) + w
        worst = max(abs(w + table.get((ep, e), 0.0)) for (e, ep), w in table.items())
        assert worst < 1e-12

    def test_divergence_theorem(self, random_mesh, rng):
        from repro.swm.operators import cell_divergence

        u = rng.standard_normal(random_mesh.nEdges)
        total = np.sum(cell_divergence(random_mesh, u) * random_mesh.areaCell)
        assert abs(total) < 1e-11 * np.sum(np.abs(u) * random_mesh.dvEdge)

    def test_curl_of_gradient(self, random_mesh, rng):
        from repro.swm.operators import edge_gradient_of_cell, vertex_curl

        phi = rng.standard_normal(random_mesh.nCells)
        curl = vertex_curl(random_mesh, edge_gradient_of_cell(random_mesh, phi))
        scale = np.abs(phi).max() / random_mesh.dcEdge.min()
        assert np.abs(curl).max() < 1e-10 * scale


class TestModel:
    def test_tc2_runs_and_conserves(self, random_mesh):
        from repro.swm import (
            ShallowWaterModel,
            SWConfig,
            steady_zonal_flow,
            suggested_dt,
        )

        case = steady_zonal_flow()
        dt = suggested_dt(random_mesh, case, GRAVITY, cfl=0.4)
        model = ShallowWaterModel(random_mesh, SWConfig(dt=dt))
        model.initialize(case)
        res = model.run(steps=20, invariant_interval=10)
        assert res.mass_drift() < 1e-13
        assert np.all(np.isfinite(res.state.u))
        # Coarse random meshes are rougher than icosahedral ones; the
        # steady state still holds to ~percent level.
        assert model.exact_error().l2 < 0.05

    def test_decomposition_bitwise(self, random_mesh):
        from repro.parallel import DecomposedShallowWater
        from repro.swm import (
            ShallowWaterModel,
            SWConfig,
            steady_zonal_flow,
            suggested_dt,
        )

        case = steady_zonal_flow()
        cfg = SWConfig(dt=suggested_dt(random_mesh, case, GRAVITY, cfl=0.4))
        serial = ShallowWaterModel(random_mesh, cfg)
        serial.initialize(case)
        res = serial.run(steps=3)
        dec = DecomposedShallowWater(random_mesh, 2, case, cfg)
        dec.run(3)
        gathered = dec.gather_state()
        assert np.array_equal(gathered.h, res.state.h)
        assert np.array_equal(gathered.u, res.state.u)
