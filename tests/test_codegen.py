"""Tests of the automatic kernel generation (the paper's stated future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.patterns import PatternKind
from repro.patterns.codegen import (
    BUILTIN_SPECS,
    StencilSpec,
    compile_kernel,
    generate_source,
)
from repro.swm.operators import (
    cell_divergence,
    cell_kinetic_energy,
    cell_to_edge_mean,
    tangential_velocity,
    vertex_curl,
    vertex_from_cells_kite,
    vertex_to_edge_mean,
)


class TestGeneration:
    def test_source_is_valid_python(self):
        for spec in BUILTIN_SPECS.values():
            src = generate_source(spec)
            compile(src, "<test>", "exec")  # must not raise

    def test_source_attached(self):
        kernel = compile_kernel(BUILTIN_SPECS["divergence"])
        assert "def divergence" in kernel.__source__
        assert kernel.__spec__ is BUILTIN_SPECS["divergence"]

    def test_all_eight_kinds_covered(self):
        kinds = {spec.kind for spec in BUILTIN_SPECS.values()}
        assert kinds == set(PatternKind)


class TestEquivalenceWithHandWritten:
    """Generated kernels must match the production operators bitwise."""

    def test_divergence(self, mesh3, edge_field):
        kernel = compile_kernel(BUILTIN_SPECS["divergence"])
        assert np.array_equal(kernel(mesh3, edge_field), cell_divergence(mesh3, edge_field))

    def test_kinetic_energy(self, mesh3, edge_field):
        kernel = compile_kernel(BUILTIN_SPECS["kinetic_energy"])
        assert np.array_equal(
            kernel(mesh3, edge_field), cell_kinetic_energy(mesh3, edge_field)
        )

    def test_vorticity(self, mesh3, edge_field):
        kernel = compile_kernel(BUILTIN_SPECS["vorticity"])
        assert np.array_equal(kernel(mesh3, edge_field), vertex_curl(mesh3, edge_field))

    def test_tangential_velocity(self, mesh3, edge_field):
        kernel = compile_kernel(BUILTIN_SPECS["tangential_velocity"])
        assert np.array_equal(
            kernel(mesh3, edge_field), tangential_velocity(mesh3, edge_field)
        )

    def test_h_vertex(self, mesh3, cell_field):
        kernel = compile_kernel(BUILTIN_SPECS["h_vertex"])
        assert np.array_equal(
            kernel(mesh3, cell_field), vertex_from_cells_kite(mesh3, cell_field)
        )

    def test_edge_mean_of_cells(self, mesh3, cell_field):
        kernel = compile_kernel(BUILTIN_SPECS["edge_mean_of_cells"])
        np.testing.assert_allclose(
            kernel(mesh3, cell_field), cell_to_edge_mean(mesh3, cell_field), rtol=1e-15
        )

    def test_edge_mean_of_vertices(self, mesh3, vertex_field):
        kernel = compile_kernel(BUILTIN_SPECS["edge_mean_of_vertices"])
        np.testing.assert_allclose(
            kernel(mesh3, vertex_field),
            vertex_to_edge_mean(mesh3, vertex_field),
            rtol=1e-15,
        )


class TestGeneratedSemantics:
    def test_cell_neighbor_sum(self, mesh3, cell_field):
        kernel = compile_kernel(BUILTIN_SPECS["cell_neighbor_sum"])
        got = kernel(mesh3, cell_field)
        conn = mesh3.connectivity
        c = 17
        neigh = conn.cellsOnCell[c, : conn.nEdgesOnCell[c]]
        assert got[c] == pytest.approx(cell_field[neigh].sum())

    def test_cell_average_of_vertices_partition(self, mesh3):
        kernel = compile_kernel(BUILTIN_SPECS["cell_average_of_vertices"])
        ones = np.ones(mesh3.nVertices)
        np.testing.assert_allclose(kernel(mesh3, ones), 1.0, rtol=1e-12)

    def test_custom_spec(self, mesh3, edge_field):
        """A new kernel never written by hand: max-magnitude-weighted sum."""
        spec = StencilSpec(
            name="abs_flux",
            kind=PatternKind.A,
            weights="met.dvEdge[gather]",
            element="np.abs(x)",
            post="1.0 / met.areaCell",
        )
        kernel = compile_kernel(spec)
        got = kernel(mesh3, edge_field)
        assert np.all(got >= 0)
        # Manual check for one cell.
        conn, met = mesh3.connectivity, mesh3.metrics
        c = 5
        edges = conn.edgesOnCell[c, : conn.nEdgesOnCell[c]]
        expected = np.sum(met.dvEdge[edges] * np.abs(edge_field[edges])) / met.areaCell[c]
        assert got[c] == pytest.approx(expected)

    def test_generated_kernel_works_on_local_mesh(self, mesh3, edge_field):
        """Generated kernels run unchanged on rank-local meshes."""
        from repro.parallel import build_local_mesh, partition_cells

        owner = partition_cells(mesh3, 2)
        lm = build_local_mesh(mesh3, owner, 0, halo_layers=2)
        kernel = compile_kernel(BUILTIN_SPECS["divergence"])
        local_u = edge_field[lm.edges_global]
        got = kernel(lm, local_u)
        want = cell_divergence(mesh3, edge_field)
        # Owned outputs agree with the global kernel.
        np.testing.assert_array_equal(
            got[: lm.n_owned_cells], want[lm.cells_global[: lm.n_owned_cells]]
        )
