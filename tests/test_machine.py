"""Unit tests of the simulated hardware substrate and cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import (
    PAPER_CLUSTER,
    PAPER_NODE,
    SCATTER_PRONE_KINDS,
    TABLE_III_MESHES,
    XEON_E5_2680V2,
    XEON_PHI_5110P,
    CostModel,
    ExecutionProfile,
    HaloExchangeModel,
    MeshCounts,
    TransferModel,
    cpu_profiles,
    ladder_speedups,
    mic_optimization_ladder,
)
from repro.patterns import PatternKind, build_catalog


class TestSpecs:
    def test_published_peaks(self):
        assert XEON_E5_2680V2.peak_gflops == pytest.approx(224.0)
        assert XEON_PHI_5110P.peak_gflops == pytest.approx(1056.0, rel=0.05)

    def test_table_rows(self):
        row = XEON_PHI_5110P.table_row()
        assert row["Cores/Threads"] == "60 / 240"
        assert "8 double" in row["SIMD width"]
        assert row["L1/L2/L3 cache"].endswith("-")  # no L3 on KNC

    def test_cluster_capacity(self):
        assert PAPER_CLUSTER.max_processes == 64

    def test_node_grouping(self):
        assert PAPER_NODE.cpu.cores == 10
        assert PAPER_NODE.accelerator.cores == 60


class TestMeshCounts:
    def test_euler_consistency(self):
        c = MeshCounts(nCells=40962)
        assert c.nVertices - c.nEdges + c.nCells == 2

    def test_table_iii(self):
        assert TABLE_III_MESHES["15-km"].nCells == 2621442
        assert TABLE_III_MESHES["120-km"].nCells == 40962


class TestCostModel:
    @pytest.fixture()
    def catalog(self):
        return build_catalog()

    def test_time_scales_linearly(self, catalog):
        model = CostModel(XEON_E5_2680V2, ExecutionProfile())
        inst = catalog[0]
        t1 = model.instance_time(inst, 10_000)
        t2 = model.instance_time(inst, 20_000)
        assert t2 == pytest.approx(2.0 * t1, rel=1e-6)

    def test_zero_points_zero_time(self, catalog):
        model = CostModel(XEON_E5_2680V2, ExecutionProfile())
        assert model.instance_time(catalog[0], 0) == 0.0

    def test_more_threads_never_slower_when_refactored(self, catalog):
        inst = catalog[1]  # B1
        t1 = CostModel(
            XEON_PHI_5110P, ExecutionProfile(threads=1, refactored=True)
        ).instance_time(inst, 10**6)
        t2 = CostModel(
            XEON_PHI_5110P, ExecutionProfile(threads=236, refactored=True)
        ).instance_time(inst, 10**6)
        assert t2 < t1

    def test_scatter_penalty_only_when_not_refactored(self, catalog):
        scatter_inst = next(i for i in catalog if i.kind in SCATTER_PRONE_KINDS)
        n = 10**6
        fast = CostModel(
            XEON_PHI_5110P, ExecutionProfile(threads=236, refactored=True)
        ).instance_time(scatter_inst, n)
        slow = CostModel(
            XEON_PHI_5110P, ExecutionProfile(threads=236, refactored=False)
        ).instance_time(scatter_inst, n)
        assert slow > 3.0 * fast

    def test_no_scatter_penalty_for_gather_patterns(self, catalog):
        inst = next(i for i in catalog if i.kind is PatternKind.D)
        n = 10**6
        a = CostModel(
            XEON_PHI_5110P, ExecutionProfile(threads=236, refactored=True)
        ).instance_time(inst, n)
        b = CostModel(
            XEON_PHI_5110P, ExecutionProfile(threads=236, refactored=False)
        ).instance_time(inst, n)
        assert a == pytest.approx(b)

    def test_serial_has_no_region_overhead(self):
        model = CostModel(XEON_PHI_5110P, ExecutionProfile(threads=1))
        assert model.region_overhead_s() == 0.0

    def test_tuned_reduces_region_overhead(self):
        base = CostModel(XEON_PHI_5110P, ExecutionProfile(threads=236))
        tuned = CostModel(XEON_PHI_5110P, ExecutionProfile(threads=236, tuned=True))
        assert tuned.region_overhead_s() < base.region_overhead_s()

    def test_memory_bound_regime(self, catalog):
        """All stencil patterns are bandwidth-limited on both devices."""
        for device in (XEON_E5_2680V2, XEON_PHI_5110P):
            model = CostModel(device, ExecutionProfile(threads=device.max_threads, vectorized=True))
            for inst in catalog:
                flop_time = inst.flops_per_point / (model.effective_gflops() * 1e9)
                byte_time = (8 * inst.f64_per_point + 4 * inst.i32_per_point) / (
                    model.effective_bandwidth() * 1e9
                )
                assert byte_time > flop_time


class TestLadder:
    def test_monotone_and_shaped(self):
        catalog = build_catalog()
        ladder = ladder_speedups(catalog, TABLE_III_MESHES["30-km"])
        speedups = [s for _, _, s in ladder]
        assert speedups == sorted(speedups)
        names = [n for n, _, _ in ladder]
        assert names == ["Baseline", "OpenMP", "Refactoring", "SIMD", "Streaming", "Others"]

    def test_offload_core_reserved(self):
        rungs = mic_optimization_ladder()
        assert rungs[-1].profile.threads == 59 * 4

    def test_cpu_profiles(self):
        profs = cpu_profiles()
        assert profs["serial"].threads == 1
        assert profs["openmp"].threads == 10
        assert profs["serial"].refactored  # serial code has no races


class TestInterconnect:
    def test_transfer_latency_floor(self):
        link = TransferModel(bandwidth_gbs=6.0, latency_us=10.0)
        assert link.time(0) == 0.0
        assert link.time(1) == pytest.approx(10e-6, rel=0.01)

    def test_transfer_bandwidth_regime(self):
        link = TransferModel(bandwidth_gbs=6.0, latency_us=10.0)
        one_gb = link.time(1e9)
        assert one_gb == pytest.approx(1.0 / 6.0, rel=0.01)

    def test_field_bytes(self):
        link = TransferModel(6.0, 10.0)
        assert link.field_bytes(1000) == 8000.0

    def test_halo_time_monotone_in_size(self):
        net = HaloExchangeModel(bandwidth_gbs=5.5, latency_us=3.0)
        assert net.time(0, 2) == 0.0
        assert net.time(10_000, 2) > net.time(1_000, 2) > 0.0

    def test_halo_latency_floor(self):
        net = HaloExchangeModel(bandwidth_gbs=5.5, latency_us=3.0)
        assert net.time(1, 1) >= 6e-6
