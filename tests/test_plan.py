"""Fused execution plans: scheduling, bitwise equivalence, caching, lint.

Contracts pinned here:

* the substep scheduler — program order is a verified topological order,
  halo exchanges segment the fused program, and the single-consumer
  analysis (the fusion-legality oracle) never offers a protected kernel
  output as a fusion seam;
* plan-vs-unfused **bitwise** equivalence — every fused kernel (tend,
  diagnostics, reconstruct) reproduces the unfused sparse backend bit for
  bit, per kernel on icosahedral and random SCVT meshes across the
  physics options, and end-to-end over 10 Galewsky RK steps in serial,
  split and 4-rank pool execution;
* the plan cache — per-mesh memoization keyed by the structure-affecting
  config fields (a dt change recompiles), composed matrices round-trip
  through the versioned disk archive and a version-stamp mismatch
  recompiles instead of loading;
* the registry lint — every Algorithm-1 operator is either plannable or an
  intentional planned fallback, and every scheduled Table I label has an
  emitter or a whitelist entry;
* the algebraic mode — composition happens exactly where the legality
  oracle allows it, and stays within 1e-12 of the exact plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow.schedule import (
    schedule_substep,
    single_consumer_vars,
    topological_order,
)
from repro.engine import default_registry, use_placements
from repro.engine.plan import (
    PLAN_CACHE_VERSION,
    PLAN_FALLBACK_OPS,
    PLAN_LOCAL_LABELS,
    PLANNED_OPS,
    clear_plan_memory_cache,
    compile_plan,
    compiled_plan,
    plan_cache_path,
    plan_key,
    unplanned_labels,
)
from repro.engine.sparse import clear_operator_memory_cache
from repro.hybrid.executor import Placement
from repro.swm.config import SWConfig
from repro.swm.diagnostics import compute_solve_diagnostics
from repro.swm.model import initialize
from repro.swm.reconstruct import mpas_reconstruct
from repro.swm.state import State
from repro.swm.tendencies import compute_tend

DIAG_FIELDS = (
    "h_edge", "ke", "vorticity", "divergence", "v",
    "h_vertex", "pv_vertex", "pv_cell", "pv_edge",
)
RECON_FIELDS = (
    "uReconstructX", "uReconstructY", "uReconstructZ",
    "uReconstructZonal", "uReconstructMeridional",
)

# The physics options a plan bakes in, exercised per kernel.
CONFIGS = {
    "default": dict(),
    "order3_apvm": dict(thickness_adv_order=3, apvm_upwinding=0.5),
    "order4": dict(thickness_adv_order=4),
    "viscous": dict(viscosity=1.0e4),
    "hyperviscous": dict(thickness_adv_order=4, hyperviscosity=1.0e13),
}


def _cfg(plan=False, **kw):
    kw.setdefault("dt", 60.0)
    return SWConfig(backend="sparse", plan=plan, **kw)


def _galewsky_inputs(mesh):
    from repro.swm.galewsky import galewsky_jet

    cfg = _cfg()
    state, b_cell = initialize(mesh, galewsky_jet())
    return state, b_cell, cfg.coriolis(mesh.metrics.latVertex)


@pytest.fixture()
def plan_cache(tmp_path, monkeypatch):
    """Redirect the disk cache and clear plan/operator memory around a test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_plan_memory_cache()
    clear_operator_memory_cache()
    yield tmp_path
    clear_plan_memory_cache()
    clear_operator_memory_cache()


# -------------------------------------------------------------- scheduling
class TestSchedule:
    def test_program_order_is_topological(self):
        sched = schedule_substep(_cfg(thickness_adv_order=4), stage=1)
        assert topological_order(sched.graph) == list(sched.graph.order)

    def test_halo_exchanges_segment_the_substep(self):
        sched = schedule_substep(_cfg(thickness_adv_order=4), stage=1)
        assert len(sched.segments) == 2
        pre, post = sched.segments
        # Tendencies + local updates depend only on the pre-exchange...
        assert len(pre.barriers) == 1
        assert set(sched.graph.instance(n).label for n in pre.nodes) >= {"A1", "B1"}
        # ... and the diagnostics wait for both exchanges.
        assert len(post.barriers) == 2
        assert "D1" in [sched.graph.instance(n).label for n in post.nodes]

    def test_stage4_schedules_reconstruction(self):
        sched = schedule_substep(_cfg(), stage=4)
        assert sched.nodes_for_kernel("mpas_reconstruct")

    def test_single_consumer_respects_protection(self):
        sched = schedule_substep(_cfg(thickness_adv_order=4), stage=1)
        free = single_consumer_vars(sched.graph)
        # pv_cell is read in-graph only by the APVM correction, so without
        # protection it *looks* like a seam — but the caller observes it.
        protected = single_consumer_vars(
            sched.graph, protected=frozenset({"pv_cell"})
        )
        assert "pv_cell" not in protected
        assert protected <= free


# -------------------------------------------------------------------- lint
class TestRegistryLint:
    def test_every_op_planned_or_whitelisted(self):
        assert PLANNED_OPS | PLAN_FALLBACK_OPS == set(default_registry().ops())
        assert not PLANNED_OPS & PLAN_FALLBACK_OPS

    def test_every_scheduled_label_plannable(self):
        for name, kw in CONFIGS.items():
            assert unplanned_labels(_cfg(**kw)) == set(), name

    def test_local_labels_are_really_local(self):
        sched = schedule_substep(_cfg(), stage=4)
        for node in sched.nodes():
            inst = sched.graph.instance(node)
            if inst.label in PLAN_LOCAL_LABELS:
                assert inst.is_local, inst.label


# ------------------------------------------------------------- validation
class TestConfigValidation:
    def test_plan_requires_sparse_backend(self):
        with pytest.raises(ValueError, match="backend='sparse'"):
            SWConfig(dt=60.0, backend="numpy", plan=True)

    def test_bad_fuse_mode_rejected(self):
        with pytest.raises(ValueError, match="plan_fuse"):
            SWConfig(dt=60.0, backend="sparse", plan=True, plan_fuse="magic")

    def test_compile_rejects_non_sparse(self, mesh3):
        with pytest.raises(ValueError, match="sparse"):
            compile_plan(mesh3, SWConfig(dt=60.0, backend="numpy"))


# ------------------------------------------------- per-kernel bitwise laws
def _assert_kernels_bitwise(mesh, kw):
    state, b_cell, f_vertex = _galewsky_inputs(mesh)
    ref_cfg = _cfg(**kw)
    plan_cfg = _cfg(plan=True, **kw)
    diag = compute_solve_diagnostics(mesh, state, f_vertex, ref_cfg)
    pd = compute_solve_diagnostics(mesh, state, f_vertex, plan_cfg)
    for f in DIAG_FIELDS:
        assert np.array_equal(getattr(diag, f), getattr(pd, f)), f
    th, tu = compute_tend(mesh, state, diag, b_cell, ref_cfg)
    pth, ptu = compute_tend(mesh, state, pd, b_cell, plan_cfg)
    assert np.array_equal(th, pth)
    assert np.array_equal(tu, ptu)
    r = mpas_reconstruct(mesh, state.u, backend="sparse")
    pr = compiled_plan(mesh, plan_cfg).reconstruct(state.u)
    for f in RECON_FIELDS:
        assert np.array_equal(getattr(r, f), getattr(pr, f)), f


class TestKernelBitwise:
    @pytest.mark.parametrize("name", list(CONFIGS))
    def test_icosahedral(self, mesh3, name):
        _assert_kernels_bitwise(mesh3, CONFIGS[name])

    @pytest.mark.parametrize("seed", [11, 23])
    def test_random_scvt(self, seed):
        from repro.geometry import lloyd_relax, normalize
        from repro.mesh import Mesh

        rng = np.random.default_rng(seed)
        pts = lloyd_relax(
            normalize(rng.standard_normal((120, 3))), iterations=60
        ).points
        mesh = Mesh.from_points(pts, name=f"plan-random120-{seed}")
        _assert_kernels_bitwise(mesh, CONFIGS["order3_apvm"])

    def test_advection_only_freezes_velocity(self, mesh3):
        state, b_cell, f_vertex = _galewsky_inputs(mesh3)
        cfg = _cfg(plan=True, advection_only=True)
        diag = compute_solve_diagnostics(mesh3, state, f_vertex, cfg)
        th, tu = compute_tend(mesh3, state, diag, b_cell, cfg)
        ref = compute_tend(
            mesh3, state, diag, b_cell, _cfg(advection_only=True)
        )
        assert np.array_equal(th, ref[0])
        assert not tu.any()

    def test_instability_raises_like_unfused(self, mesh3):
        state, b_cell, f_vertex = _galewsky_inputs(mesh3)
        bad = State(h=np.full_like(state.h, -1.0), u=state.u)
        with pytest.raises(FloatingPointError, match="unstable"):
            compute_solve_diagnostics(mesh3, bad, f_vertex, _cfg(plan=True))


# ---------------------------------------------------- end-to-end 10 steps
class TestAcceptanceRun:
    """10 Galewsky RK steps: plan bitwise == unfused sparse in all modes."""

    @pytest.fixture(scope="class")
    def galewsky_states(self, mesh3):
        from repro import api

        case = api.resolve_case("galewsky")
        dt = api.suggested_dt(mesh3, case, 9.80616, cfl=0.5)
        ref = api.run(
            case, mesh=mesh3, config=api.SWConfig(dt=dt, backend="sparse"),
            steps=10,
        )
        return {"dt": dt, "h": ref.state.h, "u": ref.state.u}

    def _run(self, mesh3, dt, **kw):
        from repro import api

        case = api.resolve_case("galewsky")
        return api.run(
            case, mesh=mesh3,
            config=api.SWConfig(dt=dt, backend="sparse", plan=True, **kw),
            steps=10,
        )

    def test_serial_bitwise(self, mesh3, galewsky_states):
        result = self._run(mesh3, galewsky_states["dt"])
        assert np.array_equal(result.state.h, galewsky_states["h"])
        assert np.array_equal(result.state.u, galewsky_states["u"])

    def test_split_bitwise(self, mesh3, galewsky_states):
        labels = ("A1", "A2", "A3", "A4", "B2", "D1", "E1", "F1", "G1", "H1")
        placements = {
            lab: Placement(device="split", cpu_fraction=0.43) for lab in labels
        }
        with use_placements(placements):
            result = self._run(mesh3, galewsky_states["dt"])
        assert np.array_equal(result.state.h, galewsky_states["h"])
        assert np.array_equal(result.state.u, galewsky_states["u"])

    def test_pool_bitwise(self, mesh3, galewsky_states):
        result = self._run(
            mesh3, galewsky_states["dt"], parallel="pool", ranks=4
        )
        assert np.array_equal(result.state.h, galewsky_states["h"])
        assert np.array_equal(result.state.u, galewsky_states["u"])


# ------------------------------------------------------------- plan cache
class TestPlanCache:
    def test_memoized_per_config_key(self, mesh3, plan_cache):
        a = compiled_plan(mesh3, _cfg(plan=True))
        b = compiled_plan(mesh3, _cfg(plan=True))
        assert a is b
        # The rollback handler halves dt in place: a different key, plan.
        c = compiled_plan(mesh3, _cfg(plan=True, dt=30.0))
        assert c is not a
        assert plan_key(_cfg(dt=30.0)) != plan_key(_cfg())

    def test_composed_matrix_disk_roundtrip(self, plan_cache):
        from repro.mesh import cached_mesh, clear_memory_cache

        clear_memory_cache()
        mesh = cached_mesh(2, lloyd_iterations=0, use_disk=True)
        cfg = _cfg(
            plan=True, plan_fuse="algebraic", thickness_adv_order=4,
            hyperviscosity=1.0e13,
        )
        a = compiled_plan(mesh, cfg)
        assert set(a.composed) == {"del4", "h_edge_order4"}
        for name in a.composed:
            assert plan_cache_path(mesh, name).exists()
        clear_plan_memory_cache()
        b = compiled_plan(mesh, cfg)  # reloaded from the archives
        assert b is not a
        state, b_cell, f_vertex = _galewsky_inputs(mesh)
        ra = a.diagnostics(State(h=state.h, u=state.u), f_vertex)
        rb = b.diagnostics(State(h=state.h, u=state.u), f_vertex)
        assert np.array_equal(ra.h_edge, rb.h_edge)
        clear_memory_cache()

    def test_version_bump_recompiles(self, plan_cache):
        from repro.mesh import cached_mesh, clear_memory_cache

        clear_memory_cache()
        mesh = cached_mesh(2, lloyd_iterations=0, use_disk=True)
        cfg = _cfg(
            plan=True, plan_fuse="algebraic", thickness_adv_order=4,
        )
        compiled_plan(mesh, cfg)
        path = plan_cache_path(mesh, "h_edge_order4")
        stale = dict(np.load(path))
        stale["plan_version"] = np.array(PLAN_CACHE_VERSION + 1)
        stale["data"] = np.zeros_like(stale["data"])  # poison the payload
        np.savez_compressed(path, **stale)
        clear_plan_memory_cache()
        plan = compiled_plan(mesh, cfg)
        state, b_cell, f_vertex = _galewsky_inputs(mesh)
        d = plan.diagnostics(state, f_vertex)
        ref = compute_solve_diagnostics(
            mesh, state, f_vertex, _cfg(thickness_adv_order=4)
        )
        # Recompiled, not the zeroed load: matches the unfused h_edge.
        scale = np.max(np.abs(ref.h_edge))
        assert np.max(np.abs(d.h_edge - ref.h_edge)) <= 1e-12 * scale
        with np.load(path) as f:
            assert int(f["plan_version"]) == PLAN_CACHE_VERSION
        clear_memory_cache()

    def test_memory_only_for_undisk_meshes(self, mesh3, plan_cache):
        cfg = _cfg(plan=True, plan_fuse="algebraic", thickness_adv_order=4)
        plan = compiled_plan(mesh3, cfg)
        # mesh3 is the session fixture: its archives live in the *real*
        # cache dir; under the redirected dir nothing may appear unless the
        # mesh identity says disk-cached there.  Composition still works.
        assert "h_edge_order4" in plan.composed


# ---------------------------------------------------------- algebraic mode
class TestAlgebraicFusion:
    def test_nothing_to_compose_on_default_config(self, mesh3):
        plan = compiled_plan(mesh3, _cfg(plan=True, plan_fuse="algebraic"))
        assert plan.composed == ()

    def test_order3_never_composes(self, mesh3):
        # sign(u)-dependent coefficients: composition is illegal.
        plan = compiled_plan(
            mesh3, _cfg(plan=True, plan_fuse="algebraic", thickness_adv_order=3)
        )
        assert "h_edge_order4" not in plan.composed

    @pytest.mark.parametrize(
        "kw", [dict(thickness_adv_order=4),
               dict(thickness_adv_order=4, hyperviscosity=1.0e13)],
        ids=["order4", "order4+del4"],
    )
    def test_composed_within_1e12_of_exact(self, mesh3, kw):
        state, b_cell, f_vertex = _galewsky_inputs(mesh3)
        exact_cfg = _cfg(plan=True, **kw)
        alg_cfg = _cfg(plan=True, plan_fuse="algebraic", **kw)
        d_exact = compute_solve_diagnostics(mesh3, state, f_vertex, exact_cfg)
        d_alg = compute_solve_diagnostics(mesh3, state, f_vertex, alg_cfg)
        for f in DIAG_FIELDS:
            a, b = getattr(d_exact, f), getattr(d_alg, f)
            scale = max(np.max(np.abs(a)), 1.0)
            assert np.max(np.abs(a - b)) <= 1e-12 * scale, f
        t_exact = compute_tend(mesh3, state, d_exact, b_cell, exact_cfg)
        t_alg = compute_tend(mesh3, state, d_exact, b_cell, alg_cfg)
        for a, b in zip(t_exact, t_alg):
            scale = max(np.max(np.abs(a)), 1.0)
            assert np.max(np.abs(a - b)) <= 1e-12 * scale


# ----------------------------------------------------------- observability
class TestObservability:
    def test_plan_stage_spans(self, mesh3):
        from repro.obs.trace import Tracer, use_tracer

        state, b_cell, f_vertex = _galewsky_inputs(mesh3)
        cfg = _cfg(plan=True)
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            compute_solve_diagnostics(mesh3, state, f_vertex, cfg)
        spans = [s for s in tracer.spans if s.category == "plan"]
        assert {s.name for s in spans} >= {
            "cell_to_edge_mean", "kinetic_energy", "pv_vertex", "pv_edge"
        }

    def test_plan_timer_per_segment(self, mesh3):
        from repro.obs.metrics import MetricsRegistry, use_registry

        state, b_cell, f_vertex = _galewsky_inputs(mesh3)
        cfg = _cfg(plan=True)
        compiled_plan(mesh3, cfg)  # compile outside the measured window
        with use_registry(MetricsRegistry()) as metrics:
            diag = compute_solve_diagnostics(mesh3, state, f_vertex, cfg)
            compute_tend(mesh3, state, diag, b_cell, cfg)
        segments = {
            s.tags["segment"] for s in metrics.series("engine.plan")
        }
        assert segments == {"diagnostics", "tend"}


# ------------------------------------------------------ interior/boundary
class TestOverlapSplit:
    """The interior/boundary diagnostics split (compute/comm overlap).

    Contract: ``interior`` on a stale-halo state, then an in-place halo
    refresh, then ``boundary``, is bitwise identical — every Diagnostics
    field, every local point — to the full fused plan on the fresh state.
    """

    def _split_inputs(self, mesh, cfg):
        from repro.parallel import (
            build_local_mesh,
            halo_layers_required,
            partition_cells,
        )
        from repro.parallel.halo import ring_halo_indices
        from repro.swm.galewsky import galewsky_jet
        from repro.swm.model import ShallowWaterModel

        model = ShallowWaterModel(mesh, cfg)
        model.initialize(galewsky_jet())
        s0 = State(h=model.state.h.copy(), u=model.state.u.copy())
        model.run(steps=1)
        s1 = model.state

        rings = halo_layers_required(
            cfg.thickness_adv_order, cfg.apvm_upwinding != 0.0
        )
        owner = partition_cells(mesh, 2)
        lm = build_local_mesh(mesh, owner, 0, halo_layers=rings)
        cell_idx, edge_idx = ring_halo_indices(lm, rings)

        fresh = State(h=s1.h[lm.cells_global].copy(), u=s1.u[lm.edges_global].copy())
        stale = State(h=fresh.h.copy(), u=fresh.u.copy())
        # the halo still holds the *previous* step's values, exactly the
        # state a rank sees between publishing and acquiring an exchange
        stale.h[cell_idx] = s0.h[lm.cells_global[cell_idx]]
        stale.u[edge_idx] = s0.u[lm.edges_global[edge_idx]]
        f_vertex = cfg.coriolis(lm.metrics.latVertex)
        return lm, rings, (cell_idx, edge_idx), fresh, stale, f_vertex

    @pytest.mark.parametrize(
        "kw", [dict(), dict(thickness_adv_order=4, viscosity=1.0e4)],
        ids=["default", "order4_viscous"],
    )
    def test_split_bitwise_equals_full_plan(self, mesh3, plan_cache, kw):
        from repro.engine.plan import compiled_overlap

        cfg = _cfg(plan=True, **kw)
        lm, rings, (cell_idx, edge_idx), fresh, stale, f_vertex = (
            self._split_inputs(mesh3, cfg)
        )
        reference = compute_solve_diagnostics(lm, fresh, f_vertex, cfg)

        overlap = compiled_overlap(lm, cfg, rings)
        diag, ctx = overlap.interior(stale, f_vertex)
        stale.h[cell_idx] = fresh.h[cell_idx]  # the acquire, in place
        stale.u[edge_idx] = fresh.u[edge_idx]
        overlap.boundary(ctx)

        for field in DIAG_FIELDS:
            assert np.array_equal(
                getattr(diag, field), getattr(reference, field)
            ), f"overlap split diverged on {field}"

    def test_interior_alone_is_wrong_on_the_halo_cone(self, mesh3, plan_cache):
        """Sanity: the split is load-bearing — skipping ``boundary`` must
        leave stale-tainted rows behind (otherwise the overlap tests prove
        nothing)."""
        from repro.engine.plan import compiled_overlap

        cfg = _cfg(plan=True)
        lm, rings, (cell_idx, edge_idx), fresh, stale, f_vertex = (
            self._split_inputs(mesh3, cfg)
        )
        reference = compute_solve_diagnostics(lm, fresh, f_vertex, cfg)
        overlap = compiled_overlap(lm, cfg, rings)
        diag, _ctx = overlap.interior(stale, f_vertex)
        assert not all(
            np.array_equal(getattr(diag, f), getattr(reference, f))
            for f in DIAG_FIELDS
        )

    def test_overlap_is_memoized_per_mesh_and_rings(self, mesh3, plan_cache):
        from repro.engine.plan import compiled_overlap

        cfg = _cfg(plan=True)
        lm, rings, _, _, _, _ = self._split_inputs(mesh3, cfg)
        assert compiled_overlap(lm, cfg, rings) is compiled_overlap(lm, cfg, rings)
        assert compiled_overlap(lm, cfg, rings) is not compiled_overlap(
            lm, cfg, rings - 1
        )

    def test_rejects_non_sparse_backend(self, mesh3):
        from repro.engine.plan import compile_overlap
        from repro.parallel import build_local_mesh, partition_cells

        owner = partition_cells(mesh3, 2)
        lm = build_local_mesh(mesh3, owner, 0)
        cfg = SWConfig(dt=60.0, backend="numpy")
        with pytest.raises(ValueError, match="sparse"):
            compile_overlap(lm, cfg, 3)
