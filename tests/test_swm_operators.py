"""Unit tests of the discrete TRiSK operators.

Covers (a) equivalence of the vectorized gather kernels with the literal
loop references (the Algorithm 2/3 correspondence), and (b) the discrete
vector-calculus identities of the C-grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.swm import reference as ref
from repro.swm.operators import (
    cell_divergence,
    cell_from_vertices_kite,
    cell_kinetic_energy,
    cell_to_edge_mean,
    coriolis_edge_term,
    edge_gradient_of_cell,
    edge_gradient_of_vertex,
    flux_divergence,
    plan_for,
    tangential_velocity,
    vertex_curl,
    vertex_from_cells_kite,
    vertex_to_edge_mean,
)


class TestLoopEquivalence:
    """Vectorized gathers == literal loops (same summation order, bitwise)."""

    def test_divergence(self, mesh3, edge_field):
        a = cell_divergence(mesh3, edge_field)
        b = ref.cell_divergence_loop(mesh3, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-14)

    def test_divergence_scatter_roundoff(self, mesh3, edge_field):
        a = cell_divergence(mesh3, edge_field)
        b = ref.cell_divergence_scatter(mesh3, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-11, atol=1e-18)

    def test_curl(self, mesh3, edge_field):
        a = vertex_curl(mesh3, edge_field)
        b = ref.vertex_curl_loop(mesh3, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-13)

    def test_kinetic_energy(self, mesh3, edge_field):
        a = cell_kinetic_energy(mesh3, edge_field)
        b = ref.cell_kinetic_energy_loop(mesh3, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-13)

    def test_tangential(self, mesh3, edge_field):
        a = tangential_velocity(mesh3, edge_field)
        b = ref.tangential_velocity_loop(mesh3, edge_field)
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-15)

    def test_vertex_kite(self, mesh3, cell_field):
        a = vertex_from_cells_kite(mesh3, cell_field)
        b = ref.vertex_from_cells_kite_loop(mesh3, cell_field)
        np.testing.assert_allclose(a, b, rtol=1e-13)

    def test_cell_kite(self, mesh3, vertex_field):
        a = cell_from_vertices_kite(mesh3, vertex_field)
        b = ref.cell_from_vertices_kite_loop(mesh3, vertex_field)
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-15)


class TestDiscreteIdentities:
    def test_curl_of_gradient_vanishes(self, mesh3, cell_field):
        """The discrete curl of a discrete cell gradient telescopes to 0."""
        grad = edge_gradient_of_cell(mesh3, cell_field)
        # The circulation sums (phi(c1)-phi(c0)) * dc / dc ... around each
        # vertex, which cancels exactly only in the *flux* form; use the
        # unnormalized gradient (differences) with dc folded back in.
        curl = vertex_curl(mesh3, grad)
        scale = np.abs(grad).max() / mesh3.dcEdge.min()
        assert np.abs(curl).max() < 1e-10 * scale

    def test_divergence_of_constant_thickness_flux(self, mesh3):
        """A constant field has zero divergence only for closed u; instead:
        div of u computed from any stream function is zero."""
        rng = np.random.default_rng(5)
        psi = rng.standard_normal(mesh3.nVertices)
        # u from a stream function at vertices: u_e = (psi(v1)-psi(v0))/dv
        # is non-divergent on the C-grid by exact telescoping.
        u = edge_gradient_of_vertex(mesh3, psi) * mesh3.dvEdge  # differences
        div_sum = cell_divergence(mesh3, u / mesh3.dvEdge * mesh3.dvEdge)
        # Proper form: flux through cell boundary = sum(sign * (psi diff)).
        flux = np.sum(
            plan_for(mesh3).sign_dv
            * (u / mesh3.dvEdge)[plan_for(mesh3).eoc_safe],
            axis=1,
        )
        assert np.abs(flux).max() < 1e-9 * np.abs(psi).max()
        assert div_sum.shape == (mesh3.nCells,)

    def test_global_divergence_integral_zero(self, mesh3, edge_field):
        div = cell_divergence(mesh3, edge_field)
        total = np.sum(div * mesh3.areaCell)
        scale = np.sum(np.abs(edge_field) * mesh3.dvEdge)
        assert abs(total) < 1e-12 * scale

    def test_global_curl_integral_zero(self, mesh3, edge_field):
        curl = vertex_curl(mesh3, edge_field)
        total = np.sum(curl * mesh3.areaTriangle)
        scale = np.sum(np.abs(edge_field) * mesh3.dcEdge)
        assert abs(total) < 1e-12 * scale

    def test_div_grad_adjointness(self, mesh3, rng):
        """<phi, div F>_cells = -<grad phi, F>_edges with the C-grid weights."""
        phi = rng.standard_normal(mesh3.nCells)
        F = rng.standard_normal(mesh3.nEdges)
        lhs = np.sum(phi * cell_divergence(mesh3, F) * mesh3.areaCell)
        grad = edge_gradient_of_cell(mesh3, phi)
        rhs = -np.sum(grad * F * mesh3.dcEdge * mesh3.dvEdge)
        assert np.isclose(lhs, rhs, rtol=1e-10)

    def test_coriolis_energy_neutral(self, mesh3, rng):
        """The TRiSK PV term does no work: with the energy weight
        h_edge * dc * dv per edge, sum_e u h (q F)perp = 0 for any q, h, u
        (antisymmetric weights x symmetric edge-PV average)."""
        u = rng.standard_normal(mesh3.nEdges)
        h_edge = rng.uniform(0.5, 2.0, mesh3.nEdges)
        pv = rng.standard_normal(mesh3.nEdges)
        qperp = coriolis_edge_term(mesh3, u, h_edge, pv)
        work = np.sum(u * h_edge * qperp * mesh3.dcEdge * mesh3.dvEdge)
        scale = np.sum((u * h_edge) ** 2 * mesh3.dcEdge * mesh3.dvEdge)
        assert abs(work) < 1e-10 * scale

    def test_kite_interpolation_partition_of_unity(self, mesh3):
        ones = np.ones(mesh3.nCells)
        hv = vertex_from_cells_kite(mesh3, ones)
        np.testing.assert_allclose(hv, 1.0, rtol=1e-12)
        pv = cell_from_vertices_kite(mesh3, np.ones(mesh3.nVertices))
        np.testing.assert_allclose(pv, 1.0, rtol=1e-12)

    def test_ke_positive_definite(self, mesh3, edge_field):
        ke = cell_kinetic_energy(mesh3, edge_field)
        assert np.all(ke >= 0)
        assert cell_kinetic_energy(mesh3, np.zeros(mesh3.nEdges)).max() == 0.0

    def test_ke_global_consistency(self, mesh3):
        """For u_n = 1 on every edge, the ke integral is the diamond-tiling
        sum sum_e dc*dv/2 ~ the sphere area; for a physical unit-speed flow
        the integral is ~half that (<u_n^2> = 1/2)."""
        u = np.ones(mesh3.nEdges)
        total = np.sum(cell_kinetic_energy(mesh3, u) * mesh3.areaCell)
        assert np.isclose(total, mesh3.sphere_area, rtol=0.05)

        vel = np.cross([0.0, 0.0, 1.0], mesh3.metrics.xEdge)
        vel /= np.linalg.norm(vel, axis=1, keepdims=True)
        u_phys = np.sum(vel * mesh3.metrics.edgeNormal, axis=1)
        total_phys = np.sum(cell_kinetic_energy(mesh3, u_phys) * mesh3.areaCell)
        assert np.isclose(total_phys, mesh3.sphere_area / 2.0, rtol=0.05)


class TestSimpleMaps:
    def test_cell_to_edge_mean(self, mesh3, cell_field):
        he = cell_to_edge_mean(mesh3, cell_field)
        c = mesh3.connectivity.cellsOnEdge
        np.testing.assert_allclose(
            he, 0.5 * (cell_field[c[:, 0]] + cell_field[c[:, 1]])
        )

    def test_vertex_to_edge_mean(self, mesh3, vertex_field):
        pe = vertex_to_edge_mean(mesh3, vertex_field)
        v = mesh3.connectivity.verticesOnEdge
        np.testing.assert_allclose(
            pe, 0.5 * (vertex_field[v[:, 0]] + vertex_field[v[:, 1]])
        )

    def test_gradient_of_constant_zero(self, mesh3):
        grad = edge_gradient_of_cell(mesh3, np.full(mesh3.nCells, 7.5))
        assert np.abs(grad).max() < 1e-18

    def test_gradient_sign(self, mesh3):
        """Gradient points from c0 to c1: phi increasing along n gives +."""
        phi = mesh3.metrics.xCell[:, 2]  # increases northward
        grad = edge_gradient_of_cell(mesh3, phi)
        n_z = mesh3.metrics.edgeNormal[:, 2]
        # Correlation between grad and the z-component of the normal.
        corr = np.corrcoef(grad, n_z)[0, 1]
        assert corr > 0.9

    def test_flux_divergence_matches_manual(self, mesh3, edge_field, cell_field):
        h_edge = cell_to_edge_mean(mesh3, np.abs(cell_field) + 2.0)
        a = flux_divergence(mesh3, edge_field, h_edge)
        b = cell_divergence(mesh3, edge_field * h_edge)
        np.testing.assert_allclose(a, b, rtol=1e-13)

    def test_plan_cached(self, mesh3):
        assert plan_for(mesh3) is plan_for(mesh3)
