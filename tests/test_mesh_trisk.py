"""Unit tests of the TRiSK tangential-reconstruction weights."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="module")
def gathered(mesh3):
    """0-safe gather view of edgesOnEdge used by several tests."""
    eoe = mesh3.edgesOnEdge.copy()
    mask = eoe >= 0
    eoe[~mask] = 0
    return eoe, mask


class TestStructure:
    def test_counts(self, mesh3):
        conn, tri = mesh3.connectivity, mesh3.trisk
        n0 = conn.nEdgesOnCell[conn.cellsOnEdge[:, 0]]
        n1 = conn.nEdgesOnCell[conn.cellsOnEdge[:, 1]]
        assert np.array_equal(tri.nEdgesOnEdge, n0 + n1 - 2)

    def test_no_self_reference(self, mesh3):
        tri = mesh3.trisk
        for e in range(0, mesh3.nEdges, 29):
            row = tri.edgesOnEdge[e, : tri.nEdgesOnEdge[e]]
            assert e not in row

    def test_participants_belong_to_adjacent_cells(self, mesh3):
        conn, tri = mesh3.connectivity, mesh3.trisk
        for e in range(0, mesh3.nEdges, 29):
            allowed = set()
            for c in conn.cellsOnEdge[e]:
                allowed |= set(conn.edgesOnCell[c, : conn.nEdgesOnCell[c]])
            row = set(tri.edgesOnEdge[e, : tri.nEdgesOnEdge[e]].tolist())
            assert row <= allowed

    def test_padding_zero_weights(self, mesh3):
        tri = mesh3.trisk
        for e in range(0, mesh3.nEdges, 29):
            n = int(tri.nEdgesOnEdge[e])
            assert np.all(tri.weightsOnEdge[e, n:] == 0.0)
            assert np.all(tri.edgesOnEdge[e, n:] == -1)

    def test_weights_bounded(self, mesh3):
        # |dimensionless part| <= 1/2, and dv/dc is O(1) on quasi-uniform
        # meshes, so weights stay below ~1.
        assert np.all(np.abs(mesh3.weightsOnEdge) < 1.0)


class TestThuburnProperties:
    def test_antisymmetry(self, mesh3):
        """w~(e,e') = -w~(e',e) (the energy-neutrality structure)."""
        tri, met = mesh3.trisk, mesh3.metrics
        table: dict[tuple[int, int], float] = {}
        for e in range(mesh3.nEdges):
            for j in range(int(tri.nEdgesOnEdge[e])):
                ep = int(tri.edgesOnEdge[e, j])
                w = tri.weightsOnEdge[e, j] * met.dcEdge[e] / met.dvEdge[ep]
                table[(e, ep)] = table.get((e, ep), 0.0) + w
        worst = max(abs(w + table.get((ep, e), 0.0)) for (e, ep), w in table.items())
        assert worst < 1e-12

    @pytest.mark.parametrize("axis", [(0, 0, 1), (1, 0, 0), (0.3, -0.5, 0.8)])
    def test_uniform_flow_reconstruction(self, mesh4, axis):
        """Solid-body flow: reconstructed v_e ~ analytic tangential component."""
        from repro.geometry import normalize

        met = mesh4.metrics
        w = normalize(np.asarray(axis, dtype=float))
        vel = np.cross(w, met.xEdge)
        u = np.sum(vel * met.edgeNormal, axis=1)
        v_true = np.sum(vel * met.edgeTangent, axis=1)

        tri = mesh4.trisk
        eoe = np.where(tri.edgesOnEdge >= 0, tri.edgesOnEdge, 0)
        v_rec = np.sum(tri.weightsOnEdge * u[eoe], axis=1)
        scale = np.abs(v_true).max()
        assert np.abs(v_rec - v_true).max() / scale < 0.05
        assert np.sqrt(np.mean((v_rec - v_true) ** 2)) / scale < 0.01

    def test_perpendicular_divergence_consistency(self, mesh3, rng):
        """Thuburn's defining constraint: the dual-mesh divergence of the
        reconstructed perpendicular flux equals the kite-area-weighted
        average of the primal divergences, for arbitrary u."""
        conn, met, tri = mesh3.connectivity, mesh3.metrics, mesh3.trisk
        u = rng.standard_normal(mesh3.nEdges)

        # G_e = v_e * dc_e: flux across the dual edge, along +t_e.
        eoe = np.where(tri.edgesOnEdge >= 0, tri.edgesOnEdge, 0)
        v = np.sum(tri.weightsOnEdge * u[eoe], axis=1)
        G = v * met.dcEdge

        # Primal cell outflux: sum(sign * u * dv).
        eoc = np.where(conn.edgesOnCell >= 0, conn.edgesOnCell, 0)
        outflux = np.sum(
            conn.edgeSignOnCell * u[eoc] * met.dvEdge[eoc], axis=1
        )

        # Dual-cell outflux around each vertex: t_e points from v0 to v1, so
        # outward from the triangle around v0 means +G, around v1 means -G.
        lhs = np.zeros(mesh3.nVertices)
        np.add.at(lhs, conn.verticesOnEdge[:, 0], G)
        np.subtract.at(lhs, conn.verticesOnEdge[:, 1], G)

        rhs = np.sum(
            met.kiteAreasOnVertex
            * (outflux / met.areaCell)[conn.cellsOnVertex],
            axis=1,
        )
        scale = np.abs(rhs).max()
        assert np.abs(lhs - rhs).max() / scale < 1e-10
