#!/usr/bin/env python3
"""Strong and weak scaling of the hybrid design (Figures 8 and 9).

Also demonstrates the *functional* distributed substrate: a real 4-rank
domain-decomposed integration whose owned values are bitwise identical to
the serial run.

Usage:  python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import fmt_time, render_table
from repro.constants import GRAVITY
from repro.mesh import cached_mesh
from repro.parallel import (
    DecomposedShallowWater,
    parallel_efficiency,
    partition_cells,
    partition_quality,
    strong_scaling,
    weak_scaling,
)
from repro.swm import ShallowWaterModel, SWConfig, isolated_mountain, suggested_dt

PROCS = (1, 2, 4, 8, 16, 32, 64)


def scaling_tables() -> None:
    for cells, label in ((655362, "30-km"), (2621442, "15-km")):
        series = strong_scaling(cells, PROCS)
        eff = parallel_efficiency(series, "hybrid")
        rows = [
            [pt.n_procs, fmt_time(pt.cpu_time), fmt_time(pt.hybrid_time), f"{e*100:.0f}%"]
            for pt, e in zip(series, eff)
        ]
        print(render_table(
            f"Figure 8 - strong scaling, {label} mesh ({cells:,} cells)",
            ["procs", "CPU t/step", "hybrid t/step", "hybrid efficiency"],
            rows,
        ))
        print()

    series = weak_scaling(40962, (1, 4, 16, 64))
    rows = [
        [pt.n_procs, f"{pt.total_cells:,}", fmt_time(pt.cpu_time), fmt_time(pt.hybrid_time)]
        for pt in series
    ]
    print(render_table(
        "Figure 9 - weak scaling (~40,962 cells per process)",
        ["procs", "total cells", "CPU t/step", "hybrid t/step"],
        rows,
    ))


def functional_decomposition_demo() -> None:
    mesh = cached_mesh(3)
    case = isolated_mountain()
    cfg = SWConfig(dt=suggested_dt(mesh, case, GRAVITY, cfl=0.6))

    owner = partition_cells(mesh, 4)
    print("\nFunctional 4-rank decomposition on the real mesh:")
    print(f"  partition: {partition_quality(mesh, owner).summary()}")

    serial = ShallowWaterModel(mesh, cfg)
    serial.initialize(case)
    res = serial.run(steps=20)

    dec = DecomposedShallowWater(mesh, 4, case, cfg)
    dec.run(20)
    gathered = dec.gather_state()
    identical = np.array_equal(gathered.h, res.state.h) and np.array_equal(
        gathered.u, res.state.u
    )
    print(f"  20 steps, {dec.exchange_count} halo exchanges")
    print(f"  owned state bitwise identical to serial: {identical}")
    if not identical:
        raise SystemExit("decomposition broke bit-reproducibility!")


if __name__ == "__main__":
    scaling_tables()
    functional_decomposition_demo()
