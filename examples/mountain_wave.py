#!/usr/bin/env python3
"""The Figure 5 workload: zonal flow over an isolated mountain (TC5).

Integrates Williamson test case 5 and renders the day-N total height field
``h + b`` as an ASCII lon-lat map (the paper plots the same field at day 15),
then verifies that a summation-order-perturbed run — the stand-in for the
paper's refactored hybrid implementation — agrees to machine precision.

Usage:  python examples/mountain_wave.py [days=5] [level=3]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.constants import GRAVITY
from repro.mesh import cached_mesh, rotate_cell_rings
from repro.swm import ShallowWaterModel, SWConfig, isolated_mountain, suggested_dt


def ascii_map(mesh, field, rows: int = 18, cols: int = 64) -> str:
    """Render a cell field as a coarse lon-lat ASCII contour map."""
    lon, lat = mesh.metrics.lonCell, mesh.metrics.latCell
    grid = np.full((rows, cols), np.nan)
    count = np.zeros((rows, cols))
    i = ((np.pi / 2 - lat) / np.pi * (rows - 1)).round().astype(int)
    j = (lon / (2 * np.pi) * (cols - 1)).round().astype(int)
    acc = np.zeros((rows, cols))
    for r, c, v in zip(i, j, field):
        acc[r, c] += v
        count[r, c] += 1
    with np.errstate(invalid="ignore"):
        grid = acc / count
    lo, hi = np.nanmin(grid), np.nanmax(grid)
    shades = " .:-=+*#%@"
    lines = []
    for r in range(rows):
        line = []
        for c in range(cols):
            v = grid[r, c]
            if np.isnan(v):
                line.append(" ")
            else:
                k = int((v - lo) / max(hi - lo, 1e-30) * (len(shades) - 1))
                line.append(shades[k])
        lines.append("".join(line))
    lines.append(f"[{lo:.0f} m = ' '  ..  {hi:.0f} m = '@']")
    return "\n".join(lines)


def run(mesh, case, cfg, days):
    model = ShallowWaterModel(mesh, cfg)
    model.initialize(case)
    result = model.run(days=days, invariant_interval=50)
    return model, result


def main(days: float = 5.0, level: int = 3) -> None:
    mesh = cached_mesh(level)
    case = isolated_mountain()
    dt = suggested_dt(mesh, case, GRAVITY, cfl=0.5)
    cfg = SWConfig(dt=dt)
    print(
        f"TC5 (flow over an isolated mountain), {mesh.nCells} cells, "
        f"dt = {dt:.0f} s, {days:g} days"
    )

    model, result = run(mesh, case, cfg, days)
    height = model.total_height()
    print(f"\nTotal height h + b at day {days:g}:")
    print(ascii_map(mesh, height))

    print("\nConservation:")
    print(f"  mass drift   = {result.mass_drift():.2e}")
    print(f"  energy drift = {result.energy_drift():.2e}")

    # The paper's Figure 5(c): original vs refactored differ only at
    # round-off.  Ring rotation perturbs every kernel's summation order.
    rotated_model, _ = run(rotate_cell_rings(mesh, 1), case, cfg, days)
    diff = np.abs(rotated_model.total_height() - height)
    print("\nRefactored (summation-order-perturbed) run vs original:")
    print(f"  max |difference| = {diff.max():.3e} m on fields of ~{height.max():.0f} m")
    print(f"  max relative     = {diff.max() / np.abs(height).max():.3e}")


if __name__ == "__main__":
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 5.0
    level = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(days, level)
