#!/usr/bin/env python3
"""The pattern-driven hybrid design, end to end (Sections III and IV).

Walks through the paper's method on the simulated CPU + Xeon Phi node:

1. identify the computation patterns (Table I),
2. compose the data-flow diagram and expose its concurrency (Figure 4),
3. schedule it kernel-level (Figure 2) vs pattern-level (Figure 4b),
4. print timelines and the resulting speedups (Figure 7's mechanics).

Usage:  python examples/hybrid_scheduling.py [cells=655362]
"""

from __future__ import annotations

import sys

from repro.bench import render_table
from repro.dataflow import build_step_graph, concurrency_profile, critical_path
from repro.hybrid import (
    HybridExecutor,
    kernel_level_assignment,
    node_times,
    pattern_level_assignment,
)
from repro.hybrid.stepmodel import (
    _cpu_parallel_model,
    _mic_model,
    _perf_config,
    serial_step_time,
)
from repro.machine import TransferModel
from repro.machine.counts import MeshCounts
from repro.machine.spec import PAPER_NODE
from repro.patterns import build_catalog, instances_by_kernel


def main(cells: int = 655362) -> None:
    counts = MeshCounts(nCells=cells)
    config = _perf_config()

    # ---------------------------------------------------------- 1. patterns
    catalog = build_catalog(config)
    print("Step 1 - pattern identification (Table I):")
    for kernel, instances in instances_by_kernel(catalog).items():
        labels = " ".join(i.label for i in instances)
        print(f"  {kernel:28s} {labels}")

    # ----------------------------------------------------------- 2. diagram
    dfg = build_step_graph(config)
    prof = concurrency_profile(dfg)
    widths = [len(v) for v in prof.values()]
    length, _ = critical_path(dfg)
    print("\nStep 2 - data-flow diagram of one RK-4 step (Figure 4):")
    print(f"  {len(dfg.compute_nodes())} pattern occurrences, "
          f"{len(dfg.halo_nodes())} halo exchanges")
    print(f"  {len(widths)} dependency levels, max concurrency {max(widths)}")
    print(f"  critical path depth {int(length)} patterns")

    # --------------------------------------------------------- 3. schedules
    times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
    transfer = TransferModel(PAPER_NODE.pcie_bw_gbs, PAPER_NODE.pcie_latency_us)
    executor = HybridExecutor(dfg, times, counts, transfer)

    serial = serial_step_time(counts)
    results = {}
    for name, assignment in [
        ("kernel-level (Fig. 2)", kernel_level_assignment(dfg, times)),
        ("pattern-driven (Fig. 4b)", pattern_level_assignment(dfg, times, min_split_gain=0.0)),
    ]:
        timeline = executor.run(assignment)
        timeline.validate_no_overlap()
        results[name] = timeline
        print(f"\nStep 3 - {name} schedule on {cells:,} cells:")
        print(timeline.gantt())

    # ----------------------------------------------------------- 4. speedup
    rows = [["original serial CPU", f"{serial:.3f} s", "1.00x"]]
    for name, timeline in results.items():
        rows.append(
            [name, f"{timeline.makespan:.3f} s", f"{serial / timeline.makespan:.2f}x"]
        )
    print()
    print(render_table("Step 4 - per-step times (Figure 7)", ["implementation", "t/step", "speedup"], rows))
    k, p = (results[n].makespan for n in results)
    print(f"\nPattern-driven gain over kernel-level: {(k / p - 1.0) * 100:.0f}% "
          "(the paper reports 38%)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 655362)
