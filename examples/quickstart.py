#!/usr/bin/env python3
"""Quickstart: build an SCVT mesh, run the shallow-water model, check errors.

Runs Williamson test case 2 (steady zonal geostrophic flow) for one simulated
day on a small quasi-uniform SCVT mesh and reports the discretization error
against the exact solution plus the conservation record — the minimal
end-to-end exercise of the public API (:mod:`repro.api`).

Usage:  python examples/quickstart.py [icosahedron_level=3] [backend=numpy]

``backend`` selects the engine execution backend
(numpy/scatter/codegen/sparse);
every stencil operator of the run dispatches through the kernel registry
under that name.
"""

from __future__ import annotations

import sys
import time

from repro.api import SWConfig, build_mesh, error_norms, resolve_case, run, suggested_dt
from repro.constants import GRAVITY
from repro.mesh import assess_quality


def main(level: int = 3, backend: str = "numpy") -> None:
    print(f"Building quasi-uniform SCVT mesh (icosahedral level {level}) ...")
    t0 = time.perf_counter()
    mesh = build_mesh(level)
    mesh.validate()
    quality = assess_quality(mesh)
    print(f"  {quality.summary()}")
    print(f"  built/loaded in {time.perf_counter() - t0:.2f} s")

    case = resolve_case("steady_zonal_flow")
    dt = suggested_dt(mesh, case, GRAVITY, cfl=0.6)
    print(
        f"\nRunning Williamson TC{case.number} ({case.name}), dt = {dt:.0f} s, "
        f"backend = {backend} ..."
    )
    t0 = time.perf_counter()
    result = run(
        case,
        mesh=mesh,
        config=SWConfig(dt=dt, backend=backend),
        days=1.0,
        invariant_interval=10,
    )
    wall = time.perf_counter() - t0
    print(
        f"  {result.steps} RK-4 steps in {wall:.2f} s "
        f"({wall / result.steps * 1e3:.1f} ms/step)"
    )

    href = case.exact_thickness(mesh.metrics.xCell)
    err = error_norms(mesh, result.state.h, href)
    print("\nError vs the exact steady solution after 1 day:")
    print(f"  l1   = {err.l1:.3e}")
    print(f"  l2   = {err.l2:.3e}")
    print(f"  linf = {err.linf:.3e}")
    print("\nConservation over the run:")
    print(f"  relative mass drift   = {result.mass_drift():.2e}")
    print(f"  relative energy drift = {result.energy_drift():.2e}")

    rec = result.reconstruction
    print("\nReconstructed winds at cell centres (mpas_reconstruct):")
    print(f"  max |zonal|      = {abs(rec.uReconstructZonal).max():.2f} m/s")
    print(f"  max |meridional| = {abs(rec.uReconstructMeridional).max():.2f} m/s")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 3,
        sys.argv[2] if len(sys.argv) > 2 else "numpy",
    )
