#!/usr/bin/env python3
"""Rossby-Haurwitz wave propagation (Williamson TC6) vs linear theory.

Integrates the wavenumber-4 Rossby-Haurwitz wave, tracks the longitude of
the equatorial wave pattern through the model's history stream, and compares
the measured eastward phase speed against the analytic non-divergent value

    nu = [R (3 + R) omega - 2 Omega] / [(1 + R) (2 + R)]

(~0.21 rad/day eastward for R = 4).  Demonstrates the HistoryWriter output
stream and a quantitative, physics-level validation of the dynamical core.

Usage:  python examples/rossby_wave.py [days=6] [level=3]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.api import SWConfig, build_mesh, resolve_case, run, suggested_dt
from repro.constants import GRAVITY, OMEGA, SECONDS_PER_DAY
from repro.swm import HistoryWriter

WAVENUMBER = 4.0
WAVE_OMEGA = 7.848e-6  # the TC6 angular parameters


def analytic_phase_speed() -> float:
    """Linear (non-divergent) Rossby-Haurwitz phase speed, rad/s eastward."""
    R = WAVENUMBER
    return (R * (3.0 + R) * WAVE_OMEGA - 2.0 * OMEGA) / ((1.0 + R) * (2.0 + R))


def measure_phase(hist, lon, band) -> np.ndarray:
    """Wave phase per snapshot from the equatorial-band projection."""
    phases = []
    for k in range(hist.n_snapshots):
        h = hist.fields["h"][k][band]
        anom = h - h.mean()
        a = np.sum(anom * np.cos(WAVENUMBER * lon))
        b = np.sum(anom * np.sin(WAVENUMBER * lon))
        phases.append(np.arctan2(b, a) / WAVENUMBER)
    return np.unwrap(np.asarray(phases) * WAVENUMBER) / WAVENUMBER


def main(days: float = 6.0, level: int = 3) -> None:
    mesh = build_mesh(level)
    case = resolve_case("rossby_haurwitz")
    dt = suggested_dt(mesh, case, GRAVITY, cfl=0.5)
    config = SWConfig(dt=dt)

    writer = HistoryWriter(mesh, config, fields=("h",), interval=10)
    print(f"TC6 on {mesh.nCells} cells, dt = {dt:.0f} s, {days:g} days ...")
    result = run(
        case, mesh=mesh, config=config, days=days,
        callback=writer, invariant_interval=50,
    )
    hist = writer.history()

    band = np.abs(mesh.metrics.latCell) < 0.35
    phases = measure_phase(hist, mesh.metrics.lonCell[band], band)
    measured = float(np.polyfit(hist.times, phases, 1)[0])
    nu = analytic_phase_speed()

    print(f"\nWave pattern drift ({hist.n_snapshots} snapshots):")
    print(f"  measured phase speed : {measured * SECONDS_PER_DAY:+.4f} rad/day")
    print(f"  linear theory        : {nu * SECONDS_PER_DAY:+.4f} rad/day")
    print(f"  ratio                : {measured / nu:.3f}")
    print("\nConservation:")
    print(f"  mass drift   = {result.mass_drift():.2e}")
    print(f"  energy drift = {result.energy_drift():.2e}")
    if not 0.8 < measured / nu < 1.1:
        raise SystemExit("phase speed off by more than expected")


if __name__ == "__main__":
    days = float(sys.argv[1]) if len(sys.argv) > 1 else 6.0
    level = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(days, level)
