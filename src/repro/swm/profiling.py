"""Per-kernel wall-time profiling of the real Python model.

Section II-C: "In the kernel-level design, one usually profiles the code to
identify the most time-consuming kernels."  This module performs that exact
step on the *real* NumPy implementation: a :class:`ProfiledIntegrator` wraps
:class:`~repro.swm.timestep.RK4Integrator` and accumulates wall time per
Algorithm 1 kernel, giving the measured cost breakdown that motivates the
Figure 2 placement (``compute_tend`` and ``compute_solve_diagnostics``
dominate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..mesh.mesh import Mesh
from .boundary import enforce_boundary_edge
from .config import SWConfig
from .diagnostics import compute_solve_diagnostics
from .reconstruct import mpas_reconstruct
from .state import Diagnostics, State
from .tendencies import compute_tend
from .timestep import (
    RK4Integrator,
    RK_ACCUMULATE_WEIGHTS,
    RK_SUBSTEP_WEIGHTS,
    StepResult,
    accumulative_update,
    compute_next_substep_state,
)

__all__ = ["KernelProfile", "ProfiledIntegrator"]


@dataclass
class KernelProfile:
    """Accumulated wall time per kernel, in seconds."""

    seconds: dict[str, float] = field(default_factory=dict)
    steps: int = 0

    def add(self, kernel: str, dt: float) -> None:
        self.seconds[kernel] = self.seconds.get(kernel, 0.0) + dt

    def reset(self) -> None:
        """Clear accumulated times (e.g. after a warm-up step that pays the
        one-time coefficient/matrix construction costs)."""
        self.seconds.clear()
        self.steps = 0

    def fractions(self) -> dict[str, float]:
        total = sum(self.seconds.values())
        if total == 0.0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / total for k, v in self.seconds.items()}

    def dominant(self) -> str:
        return max(self.seconds, key=lambda k: self.seconds[k])

    def table_rows(self) -> list[list[str]]:
        total = sum(self.seconds.values())
        rows = []
        for kernel, secs in sorted(self.seconds.items(), key=lambda kv: -kv[1]):
            rows.append(
                [kernel, f"{secs * 1e3:.2f} ms", f"{100 * secs / total:.1f}%"]
            )
        return rows


class ProfiledIntegrator(RK4Integrator):
    """RK-4 integrator that times every Algorithm 1 kernel call."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.profile = KernelProfile()

    def _timed(self, kernel: str, fn, *args, **kwargs):
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        self.profile.add(kernel, time.perf_counter() - t0)
        return out

    def step(self, state: State, diag: Diagnostics) -> StepResult:
        dt = self.config.dt
        provis = state.copy()
        provis_diag = diag
        acc = state.copy()

        new_diag: Diagnostics | None = None
        for stage in range(4):
            self.exchange_halo(provis)
            tend_h, tend_u = self._timed(
                "compute_tend",
                compute_tend,
                self.mesh, provis, provis_diag, self.b_cell, self.config,
            )
            self._timed(
                "enforce_boundary_edge",
                enforce_boundary_edge, tend_u, self.boundary_mask,
            )
            self._timed(
                "accumulative_update",
                accumulative_update,
                acc, tend_h, tend_u, RK_ACCUMULATE_WEIGHTS[stage] * dt,
            )
            if stage < 3:
                provis = self._timed(
                    "compute_next_substep_state",
                    compute_next_substep_state,
                    state, tend_h, tend_u, RK_SUBSTEP_WEIGHTS[stage] * dt,
                )
                self.exchange_halo(provis)
                provis_diag = self._timed(
                    "compute_solve_diagnostics",
                    compute_solve_diagnostics,
                    self.mesh, provis, self.f_vertex, self.config,
                )
            else:
                self.exchange_halo(acc)
                new_diag = self._timed(
                    "compute_solve_diagnostics",
                    compute_solve_diagnostics,
                    self.mesh, acc, self.f_vertex, self.config,
                )
        recon = self._timed("mpas_reconstruct", mpas_reconstruct, self.mesh, acc.u)
        self.profile.steps += 1
        assert new_diag is not None
        return StepResult(state=acc, diagnostics=new_diag, reconstruction=recon)
