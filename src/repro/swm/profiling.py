"""Per-kernel wall-time profiling — backward-compatible shim over the tracer.

Section II-C: "In the kernel-level design, one usually profiles the code to
identify the most time-consuming kernels."  Historically this module timed
the RK-4 loop by hand; kernel timing now lives in the unified observability
layer (:mod:`repro.obs`), which instruments :class:`RK4Integrator` itself
with nested kernel/pattern spans.  :class:`ProfiledIntegrator` is kept as a
thin compatibility wrapper: it runs the *plain* integrator under a private
:class:`~repro.obs.Tracer` and folds the kernel spans back into the familiar
:class:`KernelProfile` accumulator, so existing callers (and the
``kernel_profile`` benchmark) see identical semantics — while also getting
the tracer itself (``integ.tracer``) for span-level drill-down and export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.trace import Tracer, use_tracer
from .state import Diagnostics, State
from .timestep import RK4Integrator, StepResult

__all__ = ["KernelProfile", "ProfiledIntegrator"]


@dataclass
class KernelProfile:
    """Accumulated wall time per kernel, in seconds.

    ``by_backend`` additionally buckets the same times per execution backend
    (``"numpy"`` / ``"scatter"`` / ``"codegen"`` / ``"sparse"``) when the spans carry the
    engine's ``backend`` tag; callers that predate the engine see the exact
    ``seconds``/``steps`` accumulator they always did.
    """

    seconds: dict[str, float] = field(default_factory=dict)
    steps: int = 0
    by_backend: dict[str, dict[str, float]] = field(default_factory=dict)

    def add(self, kernel: str, dt: float, backend: str | None = None) -> None:
        self.seconds[kernel] = self.seconds.get(kernel, 0.0) + dt
        if backend is not None:
            bucket = self.by_backend.setdefault(backend, {})
            bucket[kernel] = bucket.get(kernel, 0.0) + dt

    def reset(self) -> None:
        """Clear accumulated times (e.g. after a warm-up step that pays the
        one-time coefficient/matrix construction costs)."""
        self.seconds.clear()
        self.steps = 0
        self.by_backend.clear()

    def fractions(self) -> dict[str, float]:
        total = sum(self.seconds.values())
        if total == 0.0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / total for k, v in self.seconds.items()}

    def dominant(self) -> str:
        return max(self.seconds, key=lambda k: self.seconds[k])

    def table_rows(self) -> list[list[str]]:
        total = sum(self.seconds.values())
        rows = []
        for kernel, secs in sorted(self.seconds.items(), key=lambda kv: -kv[1]):
            rows.append(
                [kernel, f"{secs * 1e3:.2f} ms", f"{100 * secs / total:.1f}%"]
            )
        return rows


class ProfiledIntegrator(RK4Integrator):
    """RK-4 integrator that accumulates per-kernel time via the obs tracer."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.profile = KernelProfile()
        self.tracer = Tracer()

    def step(self, state: State, diag: Diagnostics) -> StepResult:
        mark = len(self.tracer.spans)
        with use_tracer(self.tracer):
            result = super().step(state, diag)
        for span in self.tracer.spans[mark:]:
            if span.category == "kernel" and span.end is not None:
                backend = span.tags.get("backend")
                self.profile.add(
                    span.name,
                    span.duration,
                    backend=str(backend) if backend is not None else None,
                )
        self.profile.steps += 1
        return result
