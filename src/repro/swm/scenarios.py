"""The scenario library: one catalogue for every runnable case.

Before this module, case resolution was scattered: :mod:`repro.api` kept an
alias dict, :mod:`repro.obs.report` kept a private 3-entry copy, and
:data:`repro.swm.testcases.TEST_CASES` indexed by Williamson number — three
partial views that drifted apart (``python -m repro report --case tc6``
failed even though ``repro.api.resolve_case("tc6")`` worked).  This module
is the single source of truth they all route through.

A :class:`Scenario` is one catalogue entry: the canonical name, every
accepted alias, the :class:`~repro.swm.testcases.TestCase` factory, and the
per-case metadata the harnesses consume — suggested integration length and
CFL number, whether the case needs the advection-only configuration,
whether it carries bottom topography or a discontinuous initial condition,
whether ``tests/golden/`` pins its invariant trajectory, and loose
reference drift bounds for a short run.

Beyond the Williamson trio + Galewsky the catalogue adds the scenarios the
multi-GPU SWE literature validates on (Delmas & Soulaïmani): a
dam-break-on-sphere discontinuous-IC case, a flow-over-ridge
variable-topography case, the balanced Galewsky jet as a drift probe, and
a *parametric* family of seeded perturbed-IC cases
(``"perturbed:<base>:<member>:<seed>[:<amplitude>]"``) whose initial
conditions are bitwise identical to the corresponding
:mod:`repro.ensemble` member — so single-member reference runs and
ensemble batches resolve their ICs through one mechanism.

Resolution entry points::

    >>> from repro.swm.scenarios import resolve, scenario
    >>> resolve("mountain").name            # alias -> TestCase
    'isolated_mountain'
    >>> scenario("tc5").golden              # alias -> catalogue metadata
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .galewsky import galewsky_jet
from .testcases import (
    TEST_CASES,
    TestCase,
    cosine_bell,
    dam_break,
    flow_over_ridge,
    isolated_mountain,
    rossby_haurwitz,
    steady_zonal_flow,
)

__all__ = [
    "Scenario",
    "SCENARIOS",
    "PERTURBED_PREFIX",
    "catalogue",
    "scenario",
    "scenario_for",
    "known_names",
    "resolve",
    "canonical_name",
    "perturbed_case",
]

#: Default relative amplitude of the perturbed-IC family (matches
#: :attr:`repro.swm.config.SWConfig.ensemble_amplitude`).
DEFAULT_PERTURB_AMPLITUDE = 1e-6

#: Token prefix of the parametric perturbed-IC cases.
PERTURBED_PREFIX = "perturbed"


@dataclass(frozen=True)
class Scenario:
    """One catalogue entry: identity, factory, and harness metadata.

    Attributes
    ----------
    name : str
        Canonical registry name (also the ``TestCase.name`` the factory
        produces — the round-trip the registry tests assert).
    factory : callable () -> TestCase
        Builds the fully-specified initial-value problem.
    description : str
        One line for the catalogue table (``python -m repro cases``).
    aliases : tuple[str, ...]
        Additional accepted names (lowercase); ``"tc<N>"`` aliases double
        as the Williamson-number spelling.
    number : int | None
        Williamson catalogue number, when the case has one.
    suggested_days : float
        Standard integration length (mirrors the factory's TestCase).
    suggested_cfl : float
        CFL number the golden harness and CLI default to for this case.
    advection_only : bool
        The case must run under ``SWConfig(advection_only=True)`` (the
        TC1 frozen-wind configuration).
    topographic : bool
        Nonzero bottom topography (exercises the ``grad(h + b)`` terms).
    discontinuous : bool
        Discontinuous initial condition (shock-adjacent robustness).
    golden : bool
        ``tests/golden/`` pins this case's invariant trajectories across
        the backend x parallel-mode matrix.
    mass_drift_tol, energy_drift_tol : float
        Reference invariant-drift ceilings for a short (~10-step) level-3
        run; the golden harness asserts them as sanity bounds.
    reference : str
        Where the case comes from.
    """

    name: str
    factory: Callable[[], TestCase]
    description: str
    aliases: tuple[str, ...] = ()
    number: int | None = None
    suggested_days: float = 1.0
    suggested_cfl: float = 0.5
    advection_only: bool = False
    topographic: bool = False
    discontinuous: bool = False
    golden: bool = False
    mass_drift_tol: float = 1e-12
    energy_drift_tol: float = 1e-4
    reference: str = ""

    def build(self) -> TestCase:
        """The fully-specified initial-value problem this entry names."""
        return self.factory()

    @property
    def all_names(self) -> tuple[str, ...]:
        return (self.name, *self.aliases)


#: The catalogue, in presentation order.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="cosine_bell",
        factory=cosine_bell,
        description="TC1: cosine bell advected by solid-body rotation",
        aliases=("tc1", "advection"),
        number=1,
        suggested_days=12.0,
        advection_only=True,
        reference="Williamson et al. (1992), case 1",
    ),
    Scenario(
        name="steady_zonal_flow",
        factory=steady_zonal_flow,
        description="TC2: steady nonlinear zonal geostrophic flow (exact)",
        aliases=("tc2",),
        number=2,
        suggested_days=5.0,
        suggested_cfl=0.6,
        reference="Williamson et al. (1992), case 2",
    ),
    Scenario(
        name="isolated_mountain",
        factory=isolated_mountain,
        description="TC5: zonal flow over an isolated mountain (Figure 5)",
        aliases=("tc5", "mountain"),
        number=5,
        suggested_days=15.0,
        topographic=True,
        golden=True,
        reference="Williamson et al. (1992), case 5",
    ),
    Scenario(
        name="rossby_haurwitz",
        factory=rossby_haurwitz,
        description="TC6: Rossby-Haurwitz wave, zonal wavenumber 4",
        aliases=("tc6",),
        number=6,
        suggested_days=14.0,
        golden=True,
        reference="Williamson et al. (1992), case 6",
    ),
    Scenario(
        name="galewsky_jet",
        factory=galewsky_jet,
        description="barotropic instability of a perturbed zonal jet",
        aliases=("galewsky",),
        number=8,
        suggested_days=6.0,
        golden=True,
        reference="Galewsky, Scott & Polvani (2004)",
    ),
    Scenario(
        name="galewsky_jet_balanced",
        factory=lambda: galewsky_jet(perturbed=False),
        description="unperturbed balanced jet: a steady-state drift probe",
        aliases=("galewsky_balanced",),
        number=8,
        suggested_days=6.0,
        reference="Galewsky, Scott & Polvani (2004), unperturbed",
    ),
    Scenario(
        name="dam_break",
        factory=dam_break,
        description="dam break on the sphere: discontinuous cap released at rest",
        aliases=("dambreak",),
        number=9,
        suggested_days=0.25,
        discontinuous=True,
        golden=True,
        energy_drift_tol=1e-2,  # the collapsing jump converts PE fast
        reference="Delmas & Soulaimani (2022)-style validation battery",
    ),
    Scenario(
        name="flow_over_ridge",
        factory=flow_over_ridge,
        description="zonal flow over a mid-latitude cos^2 ridge (bathymetry)",
        aliases=("ridge",),
        number=10,
        suggested_days=10.0,
        topographic=True,
        golden=True,
        reference="Delmas & Soulaimani (2022)-style validation battery",
    ),
)

_BY_NAME: dict[str, Scenario] = {
    alias: sc for sc in SCENARIOS for alias in sc.all_names
}
# Only genuine Williamson numbers resolve numerically (8/9/10 are catalogue
# labels, not Williamson identities — matching the historic TEST_CASES
# behaviour resolve_case always had).
_BY_NUMBER: dict[int, Scenario] = {
    sc.number: sc
    for sc in SCENARIOS
    if sc.number is not None and sc.number in TEST_CASES
}


def catalogue() -> tuple[Scenario, ...]:
    """Every registered scenario, in presentation order."""
    return SCENARIOS


def known_names() -> list[str]:
    """Every accepted case name (canonical + aliases), sorted."""
    return sorted(_BY_NAME)


def scenario(token: str | int) -> Scenario:
    """The catalogue entry for a name, alias, or Williamson number."""
    if isinstance(token, str):
        name = token.strip().lower()
        if name in _BY_NAME:
            return _BY_NAME[name]
        raise ValueError(
            f"unknown test case {token!r}; known names: {known_names()} "
            f"(plus '{PERTURBED_PREFIX}:<base>:<member>:<seed>' tokens)"
        )
    if token in _BY_NUMBER:
        return _BY_NUMBER[token]
    raise ValueError(
        f"unknown Williamson test case number {token!r}; "
        f"known numbers: {sorted(_BY_NUMBER)}"
    )


def scenario_for(case: TestCase | str | int) -> Scenario | None:
    """Best-effort catalogue lookup: token, number, or built TestCase.

    A built case matches by ``TestCase.name`` (perturbed variants match
    their base scenario); returns ``None`` for cases the catalogue does
    not know, so callers can fall back rather than fail.
    """
    if isinstance(case, TestCase):
        name = case.name.split("+", 1)[0]
        return _BY_NAME.get(name)
    if isinstance(case, str):
        name = case.strip().lower()
        if name.startswith(f"{PERTURBED_PREFIX}:"):
            base = name.split(":")[1] if ":" in name else name
            return _BY_NAME.get(base)
        return _BY_NAME.get(name)
    return _BY_NUMBER.get(case)


# ------------------------------------------------------- perturbed-IC family
def perturbed_case(
    base: TestCase | str | int,
    member: int = 0,
    seed: int = 0,
    amplitude: float = DEFAULT_PERTURB_AMPLITUDE,
) -> TestCase:
    """Member ``member`` of a seeded perturbed-IC family over ``base``.

    The thickness field is ``h * (1 + amplitude * xi)`` with ``xi`` drawn
    from the member's rng stream (:func:`repro.ensemble.member_rng`), so
    initializing this case on a mesh is **bitwise identical** to
    :func:`repro.ensemble.member_initial_state` for the same
    ``(base, member, seed, amplitude)`` — single-member reference runs and
    ensemble batches share one IC mechanism.  The case name encodes every
    parameter (``galewsky_jet+m2s7a1e-06``), so
    :meth:`repro.api.RunRequest.key` never deduplicates distinct members.
    """
    from ..ensemble.members import member_rng, perturbed_thickness

    if int(member) != member or member < 0:
        raise ValueError(f"member must be a non-negative integer, got {member!r}")
    if int(seed) != seed or seed < 0:
        raise ValueError(f"seed must be a non-negative integer, got {seed!r}")
    if amplitude < 0.0:
        raise ValueError(f"amplitude must be >= 0, got {amplitude!r}")
    base_case = resolve(base)
    member, seed = int(member), int(seed)

    def thickness(points):
        h = base_case.thickness(points)
        if amplitude == 0.0:
            return h
        return perturbed_thickness(h, member_rng(seed, member), amplitude)

    import dataclasses

    return dataclasses.replace(
        base_case,
        name=f"{base_case.name}+m{member}s{seed}a{amplitude:g}",
        thickness=thickness,
        exact_thickness=None,  # the perturbation breaks any exact solution
    )


def _parse_perturbed(token: str) -> TestCase:
    parts = token.split(":")
    if len(parts) not in (4, 5):
        raise ValueError(
            f"malformed perturbed-case token {token!r}; expected "
            f"'{PERTURBED_PREFIX}:<base>:<member>:<seed>[:<amplitude>]'"
        )
    _, base, member, seed, *rest = parts
    try:
        member_i, seed_i = int(member), int(seed)
        amplitude = float(rest[0]) if rest else DEFAULT_PERTURB_AMPLITUDE
    except ValueError:
        raise ValueError(
            f"malformed perturbed-case token {token!r}: member/seed must be "
            f"integers and amplitude a float"
        ) from None
    return perturbed_case(base, member_i, seed_i, amplitude)


# ---------------------------------------------------------------- resolution
def resolve(case: TestCase | str | int) -> TestCase:
    """A :class:`TestCase` from a name, alias, number, token, or itself.

    The resolution surface of the whole repository — :func:`repro.api.
    resolve_case`, the CLI case arguments and the obs report all route
    here.  Accepts catalogue names and aliases (:func:`known_names`),
    Williamson numbers, parametric ``"perturbed:..."`` tokens, and built
    :class:`TestCase` objects (returned unchanged).
    """
    if isinstance(case, TestCase):
        return case
    if isinstance(case, str):
        name = case.strip().lower()
        if name.startswith(f"{PERTURBED_PREFIX}:"):
            return _parse_perturbed(name)
        return scenario(name).build()
    return scenario(case).build()


def canonical_name(case: TestCase | str | int) -> str:
    """The stable identity a case token resolves to (the job-dedup name).

    Catalogue aliases collapse to the canonical scenario name; perturbed
    tokens resolve to their parameter-encoding case name; built cases
    report their own name.
    """
    if isinstance(case, TestCase):
        return case.name
    if isinstance(case, str) and case.strip().lower().startswith(
        f"{PERTURBED_PREFIX}:"
    ):
        return _parse_perturbed(case.strip().lower()).name
    return scenario(case).name
