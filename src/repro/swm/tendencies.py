"""The ``compute_tend`` kernel (Algorithm 1, line 3).

Evaluates the right-hand side of the vector-invariant shallow-water system

.. math::

    \\partial h / \\partial t &= -\\nabla\\cdot(h u) \\\\
    \\partial u / \\partial t &= q (h u)^\\perp
        - \\nabla\\big(K + g (h + b)\\big) \\,[+ \\nu_2 \\nabla^2 u]

discretized with the TRiSK operators.  On the C-grid this is the pattern pair
(A1, B1) of Table I plus the local combination X1; the optional del2
dissipation adds the ``divergence``/``vorticity`` gradient stencils the table
lists as extra ``tend_u`` inputs.
"""

from __future__ import annotations

import numpy as np

from ..engine import dispatch
from ..mesh.mesh import Mesh
from ..obs.instrument import pattern_span
from .config import SWConfig
from .state import Diagnostics, State

__all__ = ["compute_tend"]


def compute_tend(
    mesh: Mesh,
    state: State,
    diag: Diagnostics,
    b_cell: np.ndarray,
    config: SWConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(tend_h, tend_u)`` for the given provisional state.

    Parameters
    ----------
    state : State
        Provisional state (``provis_h`` / ``provis_u`` of Table I).
    diag : Diagnostics
        Must be consistent with ``state`` (computed by
        ``compute_solve_diagnostics`` in the previous substep).
    b_cell : (nCells,) array
        Bottom topography.
    """
    if config.plan:
        # Fused path: one compiled stage program per (mesh, config), no
        # per-op dispatch.  Placed here (not in the integrator) so serial,
        # lockstep, pool and split callers all take it.
        from ..engine.plan import compiled_plan

        return compiled_plan(mesh, config).tend(state, diag, b_cell)
    backend = config.backend
    # Pattern A1: mass tendency, gather over the edges of each cell.
    with pattern_span("A1", mesh, backend=backend):
        tend_h = -dispatch("flux_divergence", mesh, state.u, diag.h_edge, backend=backend)

    if config.advection_only:
        # TC1-style passive advection: the wind is prescribed and frozen.
        return tend_h, np.zeros_like(state.u)

    with pattern_span("B1", mesh, backend=backend):
        # Pattern B1: nonlinear Coriolis term over the TRiSK edge
        # neighbourhood (the catalog prices the whole momentum RHS as B1,
        # including the Bernoulli gradient and optional del2 terms).
        q_term = dispatch(
            "coriolis_edge_term", mesh, state.u, diag.h_edge, diag.pv_edge,
            backend=backend,
        )

        # Pattern C-type: normal gradient of the Bernoulli function.
        bernoulli = diag.ke + config.gravity * (state.h + b_cell)
        grad_b = dispatch("edge_gradient_of_cell", mesh, bernoulli, backend=backend)

        # Combine the momentum contributions.
        tend_u = q_term - grad_b

        if config.viscosity != 0.0:
            # del2 dissipation in vector-invariant form:
            #   nu * (grad(div) - k x grad(vorticity))
            grad_div = dispatch(
                "edge_gradient_of_cell", mesh, diag.divergence, backend=backend
            )
            grad_vort = dispatch(
                "edge_gradient_of_vertex", mesh, diag.vorticity, backend=backend
            )
            tend_u = tend_u + config.viscosity * (grad_div - grad_vort)

    if config.hyperviscosity != 0.0:
        # del4 = del2(del2): apply the vector Laplacian twice.  Reuses the
        # already-computed divergence/vorticity for the first application,
        # then takes div/curl of the del2 field (one extra A+H pass — the
        # same pattern pair the Table I catalog prices for this option).
        del2_u = dispatch(
            "edge_gradient_of_cell", mesh, diag.divergence, backend=backend
        ) - dispatch("edge_gradient_of_vertex", mesh, diag.vorticity, backend=backend)
        div2 = dispatch("cell_divergence", mesh, del2_u, backend=backend)
        vort2 = dispatch("vertex_curl", mesh, del2_u, backend=backend)
        del4_u = dispatch(
            "edge_gradient_of_cell", mesh, div2, backend=backend
        ) - dispatch("edge_gradient_of_vertex", mesh, vort2, backend=backend)
        tend_u = tend_u - config.hyperviscosity * del4_u

    return tend_h, tend_u
