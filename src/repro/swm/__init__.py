"""TRiSK shallow-water dynamical core (the MPAS proxy model of the paper)."""

from .advection import (
    AdvectionCoefficients,
    advection_coefficients,
    d2fdx2_on_edges,
    h_edge_high_order,
)
from .boundary import boundary_edge_mask, enforce_boundary_edge
from .config import SWConfig
from .diagnostics import compute_solve_diagnostics
from .galewsky import galewsky_jet
from .error import ErrorNorms, Invariants, error_norms, invariants
from .model import RunResult, ShallowWaterModel, suggested_dt
from .output import History, HistoryWriter, load_history
from .reconstruct import mpas_reconstruct, reconstruction_matrices
from .state import Diagnostics, Reconstruction, State
from .tendencies import compute_tend
from .scenarios import (
    SCENARIOS,
    Scenario,
    perturbed_case,
)
from .testcases import (
    TEST_CASES,
    TestCase,
    cosine_bell,
    dam_break,
    flow_over_ridge,
    initialize,
    isolated_mountain,
    rossby_haurwitz,
    steady_zonal_flow,
)
from .timestep import (
    RK4Integrator,
    RK_ACCUMULATE_WEIGHTS,
    RK_SUBSTEP_WEIGHTS,
    StepResult,
)

__all__ = [
    "AdvectionCoefficients",
    "advection_coefficients",
    "d2fdx2_on_edges",
    "h_edge_high_order",
    "boundary_edge_mask",
    "enforce_boundary_edge",
    "SWConfig",
    "compute_solve_diagnostics",
    "galewsky_jet",
    "ErrorNorms",
    "Invariants",
    "error_norms",
    "invariants",
    "RunResult",
    "ShallowWaterModel",
    "suggested_dt",
    "History",
    "HistoryWriter",
    "load_history",
    "mpas_reconstruct",
    "reconstruction_matrices",
    "Diagnostics",
    "Reconstruction",
    "State",
    "compute_tend",
    "SCENARIOS",
    "Scenario",
    "perturbed_case",
    "TEST_CASES",
    "TestCase",
    "cosine_bell",
    "dam_break",
    "flow_over_ridge",
    "initialize",
    "isolated_mountain",
    "rossby_haurwitz",
    "steady_zonal_flow",
    "RK4Integrator",
    "RK_ACCUMULATE_WEIGHTS",
    "RK_SUBSTEP_WEIGHTS",
    "StepResult",
]
