"""Prognostic state and diagnostic field containers of the shallow-water core.

Variable names follow Table I of the paper (which follows the MPAS Fortran):
``h``/``u`` are the prognostic thickness and normal velocity; ``provis_*`` are
the provisional Runge-Kutta substep states; everything in
:class:`Diagnostics` is recomputed from the (provisional) state each substep
by ``compute_solve_diagnostics``.

Batched (ensemble) states carry an optional trailing *member* axis: ``h``
becomes ``(nCells, N)`` and ``u`` becomes ``(nEdges, N)``, one column per
ensemble member.  :meth:`State.stack` packs N serial states into one block,
:meth:`State.member` extracts member ``k`` as contiguous column copies, and
the same accessors exist on :class:`Diagnostics` and :class:`Reconstruction`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["State", "Diagnostics", "Reconstruction"]


@dataclass
class State:
    """Prognostic variables: thickness at cells, normal velocity at edges.

    With a trailing member axis (``(n, N)`` arrays) the instance is a
    *batched* ensemble state; :attr:`n_members` is then the batch width.
    """

    h: np.ndarray  # (nCells,) or (nCells, n_members)
    u: np.ndarray  # (nEdges,) or (nEdges, n_members)

    def copy(self) -> "State":
        return State(h=self.h.copy(), u=self.u.copy())

    @property
    def n_members(self) -> int | None:
        """Batch width of a batched state; ``None`` for a serial state."""
        return self.h.shape[1] if self.h.ndim == 2 else None

    @classmethod
    def stack(cls, states: "list[State]") -> "State":
        """Pack N serial states into one batched ``(n, N)`` state."""
        if not states:
            raise ValueError("cannot stack an empty list of states")
        return cls(
            h=np.stack([s.h for s in states], axis=1),
            u=np.stack([s.u for s in states], axis=1),
        )

    def member(self, k: int) -> "State":
        """Member ``k`` of a batched state, as contiguous column copies."""
        if self.h.ndim != 2:
            raise ValueError("member() requires a batched state (2-D h/u)")
        return State(
            h=np.ascontiguousarray(self.h[:, k]),
            u=np.ascontiguousarray(self.u[:, k]),
        )

    def validate_shapes(
        self, n_cells: int, n_edges: int, n_members: int | None = None
    ) -> None:
        want_h = (n_cells,) if n_members is None else (n_cells, n_members)
        want_u = (n_edges,) if n_members is None else (n_edges, n_members)
        if self.h.shape != want_h:
            raise ValueError(f"h has shape {self.h.shape}, expected {want_h}")
        if self.u.shape != want_u:
            raise ValueError(f"u has shape {self.u.shape}, expected {want_u}")


@dataclass
class Diagnostics:
    """Outputs of ``compute_solve_diagnostics`` (Table I variables).

    All arrays are allocated by the constructor helpers; ``None`` members mean
    the diagnostic pass has not run yet.
    """

    h_edge: np.ndarray  # (nEdges,)
    ke: np.ndarray  # (nCells,) kinetic energy
    vorticity: np.ndarray  # (nVertices,) relative vorticity
    divergence: np.ndarray  # (nCells,)
    v: np.ndarray  # (nEdges,) tangential velocity
    h_vertex: np.ndarray  # (nVertices,)
    pv_vertex: np.ndarray  # (nVertices,) potential vorticity
    pv_cell: np.ndarray  # (nCells,)
    pv_edge: np.ndarray  # (nEdges,)

    @classmethod
    def allocate(cls, n_cells: int, n_edges: int, n_vertices: int) -> "Diagnostics":
        return cls(
            h_edge=np.zeros(n_edges),
            ke=np.zeros(n_cells),
            vorticity=np.zeros(n_vertices),
            divergence=np.zeros(n_cells),
            v=np.zeros(n_edges),
            h_vertex=np.zeros(n_vertices),
            pv_vertex=np.zeros(n_vertices),
            pv_cell=np.zeros(n_cells),
            pv_edge=np.zeros(n_edges),
        )

    def copy(self) -> "Diagnostics":
        return Diagnostics(**{f.name: getattr(self, f.name).copy() for f in fields(self)})

    def member(self, k: int) -> "Diagnostics":
        """Member ``k`` of batched diagnostics, as contiguous column copies."""
        if self.h_edge.ndim != 2:
            raise ValueError("member() requires batched diagnostics (2-D fields)")
        return Diagnostics(
            **{
                f.name: np.ascontiguousarray(getattr(self, f.name)[:, k])
                for f in fields(self)
            }
        )


@dataclass
class Reconstruction:
    """Outputs of ``mpas_reconstruct``: cell-centre velocity vectors."""

    uReconstructX: np.ndarray  # (nCells,)
    uReconstructY: np.ndarray  # (nCells,)
    uReconstructZ: np.ndarray  # (nCells,)
    uReconstructZonal: np.ndarray  # (nCells,)
    uReconstructMeridional: np.ndarray  # (nCells,)

    def member(self, k: int) -> "Reconstruction":
        """Member ``k`` of a batched reconstruction, as contiguous columns."""
        if self.uReconstructX.ndim != 2:
            raise ValueError("member() requires a batched reconstruction")
        return Reconstruction(
            **{
                f.name: np.ascontiguousarray(getattr(self, f.name)[:, k])
                for f in fields(self)
            }
        )
