"""Prognostic state and diagnostic field containers of the shallow-water core.

Variable names follow Table I of the paper (which follows the MPAS Fortran):
``h``/``u`` are the prognostic thickness and normal velocity; ``provis_*`` are
the provisional Runge-Kutta substep states; everything in
:class:`Diagnostics` is recomputed from the (provisional) state each substep
by ``compute_solve_diagnostics``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["State", "Diagnostics", "Reconstruction"]


@dataclass
class State:
    """Prognostic variables: thickness at cells, normal velocity at edges."""

    h: np.ndarray  # (nCells,)
    u: np.ndarray  # (nEdges,)

    def copy(self) -> "State":
        return State(h=self.h.copy(), u=self.u.copy())

    def validate_shapes(self, n_cells: int, n_edges: int) -> None:
        if self.h.shape != (n_cells,):
            raise ValueError(f"h has shape {self.h.shape}, expected ({n_cells},)")
        if self.u.shape != (n_edges,):
            raise ValueError(f"u has shape {self.u.shape}, expected ({n_edges},)")


@dataclass
class Diagnostics:
    """Outputs of ``compute_solve_diagnostics`` (Table I variables).

    All arrays are allocated by the constructor helpers; ``None`` members mean
    the diagnostic pass has not run yet.
    """

    h_edge: np.ndarray  # (nEdges,)
    ke: np.ndarray  # (nCells,) kinetic energy
    vorticity: np.ndarray  # (nVertices,) relative vorticity
    divergence: np.ndarray  # (nCells,)
    v: np.ndarray  # (nEdges,) tangential velocity
    h_vertex: np.ndarray  # (nVertices,)
    pv_vertex: np.ndarray  # (nVertices,) potential vorticity
    pv_cell: np.ndarray  # (nCells,)
    pv_edge: np.ndarray  # (nEdges,)

    @classmethod
    def allocate(cls, n_cells: int, n_edges: int, n_vertices: int) -> "Diagnostics":
        return cls(
            h_edge=np.zeros(n_edges),
            ke=np.zeros(n_cells),
            vorticity=np.zeros(n_vertices),
            divergence=np.zeros(n_cells),
            v=np.zeros(n_edges),
            h_vertex=np.zeros(n_vertices),
            pv_vertex=np.zeros(n_vertices),
            pv_cell=np.zeros(n_cells),
            pv_edge=np.zeros(n_edges),
        )

    def copy(self) -> "Diagnostics":
        return Diagnostics(**{f.name: getattr(self, f.name).copy() for f in fields(self)})


@dataclass
class Reconstruction:
    """Outputs of ``mpas_reconstruct``: cell-centre velocity vectors."""

    uReconstructX: np.ndarray  # (nCells,)
    uReconstructY: np.ndarray  # (nCells,)
    uReconstructZ: np.ndarray  # (nCells,)
    uReconstructZonal: np.ndarray  # (nCells,)
    uReconstructMeridional: np.ndarray  # (nCells,)
