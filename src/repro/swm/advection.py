"""High-order thickness advection: the ``d2fdx2_cell1/2`` terms of Table I.

MPAS's ``config_thickness_adv_order = 3/4`` replaces the plain two-cell
average ``h_edge`` with a correction built from the second derivative of ``h``
along the edge direction at each of the two adjacent cells (the MPAS
``deriv_two`` machinery).  We reproduce it with a per-cell least-squares
quadratic fit over the cell and its neighbours in local tangent-plane
coordinates:

    fit   h(x, y) ~ a0 + a1 x + a2 y + a3 x^2 + a4 xy + a5 y^2
    take  d2fdx2 = second directional derivative along the edge normal
                 = 2 a3 nx^2 + 2 a4 nx ny + 2 a5 ny^2

Fourth order:  ``h_edge = mean - dc^2/12 * (d2_1 + d2_2)/2``
Third order adds the upwinded antisymmetric part weighted by
``coef_3rd_order`` and ``sign(u)``, exactly as the MPAS shallow-water core.

All weights are precomputed per mesh into a :class:`AdvectionCoefficients`
gather table; evaluating ``d2fdx2`` is then a pure pattern-C stencil
(cell output from neighbouring cells), matching the Table I classification.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..engine import dispatch
from ..geometry.sphere import tangent_basis, tangent_plane_coords
from ..mesh.mesh import Mesh
from ..obs.instrument import pattern_span

__all__ = [
    "AdvectionCoefficients",
    "advection_coefficients",
    "d2fdx2_raw",
    "d2fdx2_on_edges",
    "h_edge_high_order",
]


@dataclass(frozen=True, eq=False)
class AdvectionCoefficients:
    """Gather table for the edge-wise second derivatives.

    ``cells[e, s, k]`` lists the stencil cells for side ``s`` (0 = cell c0,
    1 = cell c1) of edge ``e``; ``weights[e, s, k]`` the matching linear
    weights such that ``d2fdx2[e, s] = sum_k weights * h[cells]``.  Padded
    entries have index 0 and weight 0.
    """

    cells: np.ndarray  # (nEdges, 2, maxStencil) int
    weights: np.ndarray  # (nEdges, 2, maxStencil) float


_CACHE: "weakref.WeakKeyDictionary[Mesh, AdvectionCoefficients]" = (
    weakref.WeakKeyDictionary()
)


def advection_coefficients(mesh: Mesh) -> AdvectionCoefficients:
    """Build (once per mesh) the ``deriv_two``-style coefficient table."""
    coeffs = _CACHE.get(mesh)
    if coeffs is not None:
        return coeffs

    conn, met = mesh.connectivity, mesh.metrics
    radius = met.radius
    max_stencil = conn.max_edges + 1

    # Per-cell quadratic-fit pseudo-inverses: rows give the 6 polynomial
    # coefficients as linear combinations of (h(c), h(neigh_1), ...).
    cell_stencils: list[np.ndarray] = []
    cell_pinvs: list[np.ndarray] = []
    # Nondimensionalize the fit per cell (coords in units of the local grid
    # spacing): the raw metre-scale design matrix mixes columns spanning ~12
    # orders of magnitude and loses half the significant digits.
    scales = np.sqrt(met.areaCell)
    for c in range(conn.n_cells):
        neigh = conn.cellsOnCell[c, : conn.nEdgesOnCell[c]]
        stencil = np.concatenate(([c], neigh))
        scale = scales[c]
        xy = tangent_plane_coords(met.xCell[c], met.xCell[stencil]) * (radius / scale)
        x, y = xy[:, 0], xy[:, 1]
        design = np.stack(
            [np.ones_like(x), x, y, x * x, x * y, y * y], axis=1
        )
        # Least squares (pentagon: 6 eq / 6 unknowns; hexagon: 7 / 6).
        # Undo the nondimensionalization on the quadratic rows so the
        # second derivatives come out in 1/m^2.
        pinv = np.linalg.pinv(design)
        pinv[3:6] /= scale * scale
        cell_stencils.append(stencil)
        cell_pinvs.append(pinv)

    cells = np.zeros((conn.n_edges, 2, max_stencil), dtype=np.int64)
    weights = np.zeros((conn.n_edges, 2, max_stencil), dtype=np.float64)
    for e in range(conn.n_edges):
        for s in range(2):
            c = int(conn.cellsOnEdge[e, s])
            stencil = cell_stencils[c]
            pinv = cell_pinvs[c]
            # Edge-normal direction in cell c's tangent frame.
            east, north = tangent_basis(met.xCell[c])
            n3 = met.edgeNormal[e]
            nx = float(n3 @ east)
            ny = float(n3 @ north)
            nrm = np.hypot(nx, ny)
            nx, ny = nx / nrm, ny / nrm
            # d2/dn2 of the quadratic: 2*a3*nx^2 + 2*a4*nx*ny + 2*a5*ny^2
            row = 2.0 * (nx * nx * pinv[3] + nx * ny * pinv[4] + ny * ny * pinv[5])
            k = stencil.shape[0]
            cells[e, s, :k] = stencil
            weights[e, s, :k] = row
    coeffs = AdvectionCoefficients(cells=cells, weights=weights)
    _CACHE[mesh] = coeffs
    return coeffs


def d2fdx2_raw(mesh: Mesh, h_cell: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The fused C1,C2 sweep alone (no span): ``(d2fdx2_cell1, d2fdx2_cell2)``.

    Registered as the ``numpy`` implementation of the ``d2fdx2`` operator;
    tuple-valued, so the split executor refuses to partition it.
    """
    coeffs = advection_coefficients(mesh)
    # One vectorized sweep evaluates both Table I instances (C1 and C2);
    # the fused span is split between them at report time.
    d2 = np.sum(coeffs.weights * h_cell[coeffs.cells], axis=2)
    return d2[:, 0], d2[:, 1]


def d2fdx2_on_edges(
    mesh: Mesh, h_cell: np.ndarray, backend: str = "numpy"
) -> tuple[np.ndarray, np.ndarray]:
    """Second derivative of ``h`` along each edge at its two cells.

    Returns ``(d2fdx2_cell1, d2fdx2_cell2)`` — the Table I variables.
    """
    with pattern_span("C1,C2", mesh, backend=backend):
        return dispatch("d2fdx2", mesh, h_cell, backend=backend)


def h_edge_high_order(
    mesh: Mesh,
    h_cell: np.ndarray,
    u_edge: np.ndarray,
    order: int,
    coef_3rd_order: float = 0.25,
    backend: str = "numpy",
) -> np.ndarray:
    """Thickness interpolated to edges at 2nd, 3rd or 4th order."""
    mean = dispatch("cell_to_edge_mean", mesh, h_cell, backend=backend)
    if order == 2:
        return mean
    d2_1, d2_2 = d2fdx2_on_edges(mesh, h_cell, backend=backend)
    dc2_12 = mesh.metrics.dcEdge**2 / 12.0
    h_edge = mean - dc2_12 * 0.5 * (d2_1 + d2_2)
    if order == 4:
        return h_edge
    if order == 3:
        # Upwinded antisymmetric correction, MPAS sign convention: positive
        # u flows from c0 to c1, so upwinding weights the c0-side derivative.
        return h_edge + coef_3rd_order * np.sign(u_edge) * dc2_12 * 0.5 * (d2_2 - d2_1)
    raise ValueError("order must be 2, 3 or 4")
