"""Discrete TRiSK operators on the C-grid, in regularity-aware gather form.

Every stencil operator here is written the way Section III-D of the paper
prescribes for shared-memory parallelism: as a *gather* over the output point
type (Algorithm 3), with signs and padding folded into precomputed label
matrices (Algorithm 4).  In NumPy this is also the fast form — a fancy-index
gather plus a row reduction — whereas the original edge-order *scatter* form
(Algorithm 2) needs ``np.add.at``.  Both forms exist in the code base: the
scatter/loop references live in :mod:`repro.swm.reference` and
:mod:`repro.reduction`, and the equivalence is covered by tests.

An :class:`OperatorPlan` caches, per mesh, the padded index and label-matrix
arrays all operators share.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..mesh.mesh import Mesh

__all__ = [
    "OperatorPlan",
    "plan_for",
    "cell_divergence",
    "flux_divergence",
    "edge_gradient_of_cell",
    "edge_gradient_of_vertex",
    "vertex_curl",
    "cell_kinetic_energy",
    "cell_to_edge_mean",
    "vertex_from_cells_kite",
    "cell_from_vertices_kite",
    "vertex_to_edge_mean",
    "tangential_velocity",
    "coriolis_edge_term",
]


@dataclass(frozen=True)
class OperatorPlan:
    """Precomputed gather indices and label matrices for one mesh.

    The ``*_safe`` index arrays have fill entries clamped to 0; the matching
    label matrices carry 0 there, so padded lanes contribute nothing (the
    branch-free trick of Algorithm 4).
    """

    # cells <- edges
    eoc_safe: np.ndarray  # (nCells, maxEdges)
    sign_dv: np.ndarray  # edgeSignOnCell * dvEdge, 0-padded
    ke_weight: np.ndarray  # 0.25 * dcEdge * dvEdge, 0-padded
    inv_area_cell: np.ndarray  # (nCells,)

    # vertices <- edges
    eov: np.ndarray  # (nVertices, 3)
    sign_dc: np.ndarray  # edgeSignOnVertex * dcEdge

    # vertices <- cells
    cov: np.ndarray  # (nVertices, 3)
    kite: np.ndarray  # kiteAreasOnVertex
    inv_area_tri: np.ndarray  # (nVertices,)

    # cells <- vertices
    voc_safe: np.ndarray  # (nCells, maxEdges)
    kite_on_cell: np.ndarray  # kite area of (vertex, this cell), 0-padded

    # edges <- cells / vertices
    c0: np.ndarray
    c1: np.ndarray
    v0: np.ndarray
    v1: np.ndarray
    inv_dc: np.ndarray
    inv_dv: np.ndarray

    # edges <- edges (TRiSK)
    eoe_safe: np.ndarray  # (nEdges, 2*maxEdges-2)
    woe: np.ndarray  # weightsOnEdge, 0-padded


_PLAN_KEEPALIVE: "weakref.WeakKeyDictionary[Mesh, OperatorPlan]" = (
    weakref.WeakKeyDictionary()
)


def plan_for(mesh: Mesh) -> OperatorPlan:
    """Return (building once) the operator plan of ``mesh``."""
    plan = _PLAN_KEEPALIVE.get(mesh)
    if plan is not None:
        return plan

    conn, met, tri = mesh.connectivity, mesh.metrics, mesh.trisk

    eoc = conn.edgesOnCell
    mask = (eoc >= 0).astype(np.float64)
    eoc_safe = np.where(eoc >= 0, eoc, 0)
    sign_dv = conn.edgeSignOnCell * met.dvEdge[eoc_safe] * mask
    ke_weight = 0.25 * met.dcEdge[eoc_safe] * met.dvEdge[eoc_safe] * mask

    eov = conn.edgesOnVertex
    sign_dc = conn.edgeSignOnVertex * met.dcEdge[eov]

    # kite area of (vertex v, cell c) looked up from the cell side:
    # kiteOnCell[c, j] pairs with verticesOnCell[c, j].
    voc = conn.verticesOnCell
    voc_safe = np.where(voc >= 0, voc, 0)
    vmask = (voc >= 0).astype(np.float64)
    # Build a sparse (vertex, cell) -> kite-area lookup:
    kite_lookup: dict[tuple[int, int], float] = {}
    for v in range(conn.n_vertices):
        for k in range(3):
            kite_lookup[(v, int(conn.cellsOnVertex[v, k]))] = float(
                met.kiteAreasOnVertex[v, k]
            )
    kite_on_cell = np.zeros_like(sign_dv)
    for c in range(conn.n_cells):
        for j in range(int(conn.nEdgesOnCell[c])):
            kite_on_cell[c, j] = kite_lookup[(int(voc[c, j]), c)]

    eoe = tri.edgesOnEdge
    eoe_safe = np.where(eoe >= 0, eoe, 0)

    plan = OperatorPlan(
        eoc_safe=eoc_safe,
        sign_dv=sign_dv,
        ke_weight=ke_weight,
        inv_area_cell=1.0 / met.areaCell,
        eov=eov,
        sign_dc=sign_dc,
        cov=conn.cellsOnVertex,
        kite=met.kiteAreasOnVertex,
        inv_area_tri=1.0 / met.areaTriangle,
        voc_safe=voc_safe,
        kite_on_cell=kite_on_cell * vmask,
        c0=conn.cellsOnEdge[:, 0],
        c1=conn.cellsOnEdge[:, 1],
        v0=conn.verticesOnEdge[:, 0],
        v1=conn.verticesOnEdge[:, 1],
        inv_dc=1.0 / met.dcEdge,
        inv_dv=1.0 / met.dvEdge,
        eoe_safe=eoe_safe,
        woe=tri.weightsOnEdge,
    )
    _PLAN_KEEPALIVE[mesh] = plan
    return plan


# --------------------------------------------------------------------------
# cells <- edges (pattern family "A": mass point from velocity points)
# --------------------------------------------------------------------------


def cell_divergence(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """Divergence at cells of a normal edge field: (1/A) * sum(sign*u*dv)."""
    p = plan_for(mesh)
    return np.sum(p.sign_dv * u_edge[p.eoc_safe], axis=1) * p.inv_area_cell


def flux_divergence(mesh: Mesh, u_edge: np.ndarray, h_edge: np.ndarray) -> np.ndarray:
    """Divergence of the thickness flux ``h_edge * u`` (drives ``tend_h``)."""
    p = plan_for(mesh)
    flux = u_edge * h_edge
    return np.sum(p.sign_dv * flux[p.eoc_safe], axis=1) * p.inv_area_cell


def cell_kinetic_energy(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """Kinetic energy at cells: (1/A) * sum(0.25 * dc * dv * u^2)."""
    p = plan_for(mesh)
    u2 = u_edge * u_edge
    return np.sum(p.ke_weight * u2[p.eoc_safe], axis=1) * p.inv_area_cell


# --------------------------------------------------------------------------
# edges <- cells (pattern family "C": velocity point from mass points)
# --------------------------------------------------------------------------


def edge_gradient_of_cell(mesh: Mesh, phi_cell: np.ndarray) -> np.ndarray:
    """Normal gradient at edges of a cell field: (phi(c1) - phi(c0)) / dc."""
    p = plan_for(mesh)
    return (phi_cell[p.c1] - phi_cell[p.c0]) * p.inv_dc


def cell_to_edge_mean(mesh: Mesh, phi_cell: np.ndarray) -> np.ndarray:
    """Second-order ``h_edge``: plain average of the two adjacent cells."""
    p = plan_for(mesh)
    return 0.5 * (phi_cell[p.c0] + phi_cell[p.c1])


# --------------------------------------------------------------------------
# vertices <- edges (pattern family "D": vorticity point from velocity points)
# --------------------------------------------------------------------------


def vertex_curl(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """Relative vorticity at vertices: circulation / triangle area."""
    p = plan_for(mesh)
    return np.sum(p.sign_dc * u_edge[p.eov], axis=1) * p.inv_area_tri


# --------------------------------------------------------------------------
# vertices <- cells (pattern family "E")
# --------------------------------------------------------------------------


def vertex_from_cells_kite(mesh: Mesh, phi_cell: np.ndarray) -> np.ndarray:
    """Kite-area-weighted cell->vertex interpolation (e.g. ``h_vertex``)."""
    p = plan_for(mesh)
    return np.sum(p.kite * phi_cell[p.cov], axis=1) * p.inv_area_tri


# --------------------------------------------------------------------------
# cells <- vertices (pattern family "F")
# --------------------------------------------------------------------------


def cell_from_vertices_kite(mesh: Mesh, phi_vertex: np.ndarray) -> np.ndarray:
    """Kite-area-weighted vertex->cell interpolation (e.g. ``pv_cell``)."""
    p = plan_for(mesh)
    return np.sum(p.kite_on_cell * phi_vertex[p.voc_safe], axis=1) * p.inv_area_cell


# --------------------------------------------------------------------------
# edges <- vertices (pattern family "G")
# --------------------------------------------------------------------------


def vertex_to_edge_mean(mesh: Mesh, phi_vertex: np.ndarray) -> np.ndarray:
    """Average of the two edge endpoints (e.g. second-order ``pv_edge``)."""
    p = plan_for(mesh)
    return 0.5 * (phi_vertex[p.v0] + phi_vertex[p.v1])


def edge_gradient_of_vertex(mesh: Mesh, phi_vertex: np.ndarray) -> np.ndarray:
    """Tangential gradient at edges of a vertex field: (phi(v1)-phi(v0))/dv."""
    p = plan_for(mesh)
    return (phi_vertex[p.v1] - phi_vertex[p.v0]) * p.inv_dv


# --------------------------------------------------------------------------
# edges <- edges (pattern family "B"/"H": the wide TRiSK stencil)
# --------------------------------------------------------------------------


def tangential_velocity(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """TRiSK tangential velocity: v_e = sum_j w_{e,j} u_{eoe(e,j)}."""
    p = plan_for(mesh)
    return np.sum(p.woe * u_edge[p.eoe_safe], axis=1)


def coriolis_edge_term(
    mesh: Mesh, u_edge: np.ndarray, h_edge: np.ndarray, pv_edge: np.ndarray
) -> np.ndarray:
    """Nonlinear Coriolis/PV momentum term.

    ``sum_j w_{e,j} * u_{e'} * h_edge_{e'} * 0.5 * (pv_edge_e + pv_edge_{e'})``
    with ``e' = edgesOnEdge(e, j)`` — the energy-neutral TRiSK form used by
    the MPAS shallow-water core.
    """
    p = plan_for(mesh)
    flux = u_edge * h_edge
    gathered_flux = flux[p.eoe_safe]
    gathered_pv = pv_edge[p.eoe_safe]
    avg_pv = 0.5 * (pv_edge[:, None] + gathered_pv)
    return np.sum(p.woe * gathered_flux * avg_pv, axis=1)
