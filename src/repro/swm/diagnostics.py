"""The ``compute_solve_diagnostics`` kernel (Algorithm 1, line 7/11).

Recomputes every diagnostic of Table I from a (provisional) state:
``h_edge``, ``ke``, ``vorticity``, ``divergence``, tangential ``v``,
``h_vertex``, ``pv_vertex``, ``pv_cell`` and ``pv_edge`` (with APVM
upwinding).  This is the most pattern-rich kernel of the model — the paper's
Figure 4 splits it across host and device, with an *adjustable* part used to
tune the load balance.
"""

from __future__ import annotations

import numpy as np

from ..engine import dispatch
from ..mesh.mesh import Mesh
from ..obs.instrument import pattern_span
from .advection import h_edge_high_order
from .config import SWConfig
from .state import Diagnostics, State

__all__ = ["compute_solve_diagnostics"]


def compute_solve_diagnostics(
    mesh: Mesh,
    state: State,
    f_vertex: np.ndarray,
    config: SWConfig,
) -> Diagnostics:
    """Compute all diagnostic fields from ``state``.

    Parameters
    ----------
    mesh : Mesh
    state : State
        Provisional (RK substep) or accepted state.
    f_vertex : (nVertices,) array
        Coriolis parameter at vorticity points.
    config : SWConfig
        ``apvm_upwinding`` and ``thickness_adv_order`` are honoured here.
    """
    if config.plan:
        from ..engine.plan import compiled_plan

        return compiled_plan(mesh, config).diagnostics(state, f_vertex)
    h, u = state.h, state.u
    backend = config.backend

    # Pattern D1 (with the fused C1,C2 sweep nested inside for high order).
    with pattern_span("D1", mesh, backend=backend):
        h_edge = h_edge_high_order(
            mesh, h, u, config.thickness_adv_order, config.coef_3rd_order,
            backend=backend,
        )
    with pattern_span("A2", mesh, backend=backend):
        ke = dispatch("kinetic_energy", mesh, u, backend=backend)
    with pattern_span("H1", mesh, backend=backend):
        vorticity = dispatch("vertex_curl", mesh, u, backend=backend)
    with pattern_span("A3", mesh, backend=backend):
        divergence = dispatch("cell_divergence", mesh, u, backend=backend)
    with pattern_span("B2", mesh, backend=backend):
        v = dispatch("tangential_velocity", mesh, u, backend=backend)
    with pattern_span("E1", mesh, backend=backend):
        h_vertex = dispatch("vertex_from_cells_kite", mesh, h, backend=backend)
        unstable = bool(np.any(h_vertex <= 0.0))
        if not unstable:
            pv_vertex = (f_vertex + vorticity) / h_vertex
    if unstable:
        raise FloatingPointError(
            "non-positive h_vertex: the simulation has gone unstable "
            "(reduce dt or check the initial condition)"
        )
    with pattern_span("F1", mesh, backend=backend):
        pv_cell = dispatch("cell_from_vertices_kite", mesh, pv_vertex, backend=backend)
    with pattern_span("G1", mesh, backend=backend):
        pv_edge = dispatch("vertex_to_edge_mean", mesh, pv_vertex, backend=backend)

        if config.apvm_upwinding != 0.0:
            # Anticipated PV method: upwind pv_edge along the full velocity
            # vector, damping the enstrophy cascade (Ringler et al. 2010).
            grad_pv_t = dispatch(
                "edge_gradient_of_vertex", mesh, pv_vertex, backend=backend
            )
            grad_pv_n = dispatch("edge_gradient_of_cell", mesh, pv_cell, backend=backend)
            factor = config.apvm_upwinding * config.dt
            pv_edge = pv_edge - factor * (v * grad_pv_t + u * grad_pv_n)

    return Diagnostics(
        h_edge=h_edge,
        ke=ke,
        vorticity=vorticity,
        divergence=divergence,
        v=v,
        h_vertex=h_vertex,
        pv_vertex=pv_vertex,
        pv_cell=pv_cell,
        pv_edge=pv_edge,
    )
