"""The ``compute_solve_diagnostics`` kernel (Algorithm 1, line 7/11).

Recomputes every diagnostic of Table I from a (provisional) state:
``h_edge``, ``ke``, ``vorticity``, ``divergence``, tangential ``v``,
``h_vertex``, ``pv_vertex``, ``pv_cell`` and ``pv_edge`` (with APVM
upwinding).  This is the most pattern-rich kernel of the model — the paper's
Figure 4 splits it across host and device, with an *adjustable* part used to
tune the load balance.
"""

from __future__ import annotations

import numpy as np

from ..mesh.mesh import Mesh
from ..obs.instrument import pattern_span
from .advection import h_edge_high_order
from .config import SWConfig
from .operators import (
    cell_divergence,
    cell_from_vertices_kite,
    cell_kinetic_energy,
    edge_gradient_of_cell,
    edge_gradient_of_vertex,
    tangential_velocity,
    vertex_curl,
    vertex_from_cells_kite,
    vertex_to_edge_mean,
)
from .state import Diagnostics, State

__all__ = ["compute_solve_diagnostics"]


def compute_solve_diagnostics(
    mesh: Mesh,
    state: State,
    f_vertex: np.ndarray,
    config: SWConfig,
) -> Diagnostics:
    """Compute all diagnostic fields from ``state``.

    Parameters
    ----------
    mesh : Mesh
    state : State
        Provisional (RK substep) or accepted state.
    f_vertex : (nVertices,) array
        Coriolis parameter at vorticity points.
    config : SWConfig
        ``apvm_upwinding`` and ``thickness_adv_order`` are honoured here.
    """
    h, u = state.h, state.u

    # Pattern D1 (with the fused C1,C2 sweep nested inside for high order).
    with pattern_span("D1", mesh):
        h_edge = h_edge_high_order(
            mesh, h, u, config.thickness_adv_order, config.coef_3rd_order
        )
    with pattern_span("A2", mesh):
        ke = cell_kinetic_energy(mesh, u)
    with pattern_span("H1", mesh):
        vorticity = vertex_curl(mesh, u)
    with pattern_span("A3", mesh):
        divergence = cell_divergence(mesh, u)
    with pattern_span("B2", mesh):
        v = tangential_velocity(mesh, u)
    with pattern_span("E1", mesh):
        h_vertex = vertex_from_cells_kite(mesh, h)
        unstable = bool(np.any(h_vertex <= 0.0))
        if not unstable:
            pv_vertex = (f_vertex + vorticity) / h_vertex
    if unstable:
        raise FloatingPointError(
            "non-positive h_vertex: the simulation has gone unstable "
            "(reduce dt or check the initial condition)"
        )
    with pattern_span("F1", mesh):
        pv_cell = cell_from_vertices_kite(mesh, pv_vertex)
    with pattern_span("G1", mesh):
        pv_edge = vertex_to_edge_mean(mesh, pv_vertex)

        if config.apvm_upwinding != 0.0:
            # Anticipated PV method: upwind pv_edge along the full velocity
            # vector, damping the enstrophy cascade (Ringler et al. 2010).
            grad_pv_t = edge_gradient_of_vertex(mesh, pv_vertex)
            grad_pv_n = edge_gradient_of_cell(mesh, pv_cell)
            factor = config.apvm_upwinding * config.dt
            pv_edge = pv_edge - factor * (v * grad_pv_t + u * grad_pv_n)

    return Diagnostics(
        h_edge=h_edge,
        ke=ke,
        vorticity=vorticity,
        divergence=divergence,
        v=v,
        h_vertex=h_vertex,
        pv_vertex=pv_vertex,
        pv_cell=pv_cell,
        pv_edge=pv_edge,
    )
