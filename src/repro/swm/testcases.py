"""Williamson et al. (1992) standard shallow-water test cases.

The paper validates with "a number of test cases [22]" and reports test case
five (zonal flow over an isolated mountain) in Figure 5.  We implement:

* **TC2** — global steady-state nonlinear zonal geostrophic flow.  Has an
  exact solution (the initial state), so it measures the discretization
  error directly.
* **TC5** — zonal flow over an isolated mountain; the Figure 5 workload.
  No analytic solution; used for conservation and cross-implementation
  comparisons.
* **TC6** — Rossby–Haurwitz wave (wavenumber 4).

All cases use the unrotated configuration (``alpha = 0``), like the paper.
Velocity fields are produced both as 3D vectors (for initializing edge
normal components) and as zonal/meridional components (for validating
``mpas_reconstruct``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..constants import EARTH_RADIUS, GRAVITY, OMEGA, SECONDS_PER_DAY
from ..mesh.mesh import Mesh
from .state import State

__all__ = [
    "TestCase",
    "cosine_bell",
    "steady_zonal_flow",
    "isolated_mountain",
    "rossby_haurwitz",
    "dam_break",
    "flow_over_ridge",
    "TEST_CASES",
    "initialize",
]


@dataclass(frozen=True, eq=False)
class TestCase:
    """A fully-specified initial-value problem on the sphere.

    Attributes
    ----------
    name, number : str, int
        Williamson catalogue identification.
    velocity : callable (points (n,3) unit vectors) -> (n,3) velocity vectors
    thickness : callable (points) -> (n,) fluid thickness h (not h + b)
    topography : callable (points) -> (n,) bottom height b
    exact_thickness : same signature as ``thickness`` or None
        Time-independent exact solution, when one exists (TC2).
    suggested_days : float
        Standard integration length for reporting.
    coriolis : callable (points) -> (n,) or None
        Case-specific Coriolis parameter (the rotated-orientation cases
        redefine ``f`` in the flow-aligned frame, per Williamson et al.);
        ``None`` uses the standard ``2 * Omega * sin(lat)``.
    """

    name: str
    number: int
    velocity: Callable[[np.ndarray], np.ndarray]
    thickness: Callable[[np.ndarray], np.ndarray]
    topography: Callable[[np.ndarray], np.ndarray]
    exact_thickness: Callable[[np.ndarray], np.ndarray] | None
    suggested_days: float
    coriolis: Callable[[np.ndarray], np.ndarray] | None = None


def _lonlat(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    from ..geometry.sphere import xyz_to_lonlat

    return xyz_to_lonlat(points)


def _rotation_axis(alpha: float) -> np.ndarray:
    """Axis of the solid-body flow for the Williamson orientation ``alpha``.

    ``alpha = 0`` is the standard eastward zonal flow (axis = north pole);
    ``alpha = pi/2`` sends the flow over both geographic poles, the classic
    stress test for polar treatment (trivial on an SCVT, which has no pole
    singularity — but the battery includes it for completeness).
    """
    return np.array([-np.sin(alpha), 0.0, np.cos(alpha)])


def _zonal_velocity_vector(
    points: np.ndarray, u0: float, alpha: float = 0.0
) -> np.ndarray:
    """Solid-body flow ``u0 * (axis x r)`` for the orientation ``alpha``."""
    points = np.asarray(points, dtype=np.float64)
    return u0 * np.cross(_rotation_axis(alpha), points)


def _geostrophic_thickness(
    points: np.ndarray,
    u0: float,
    gh0: float,
    radius: float,
    omega: float,
    g: float,
    alpha: float = 0.0,
) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    # sin(lat') in the flow-aligned frame; for alpha = 0 this is sin(lat).
    sin_lat_rot = points @ _rotation_axis(alpha)
    gh = gh0 - (radius * omega * u0 + 0.5 * u0 * u0) * sin_lat_rot**2
    return gh / g


def cosine_bell(
    radius: float = EARTH_RADIUS,
    base_thickness: float = 1000.0,
) -> TestCase:
    """Williamson TC1: advection of a cosine bell by solid-body rotation.

    Integrated with ``SWConfig(advection_only=True)`` (the wind is frozen):
    after exactly one revolution (12 days) the bell returns to its starting
    point, so the initial condition doubles as the exact solution at that
    time.  A uniform ``base_thickness`` is added beneath the standard
    1000 m bell so every thickness-derived diagnostic stays positive; the
    advective dynamics are unaffected (the flow is non-divergent).
    """
    u0 = 2.0 * np.pi * radius / (12.0 * SECONDS_PER_DAY)
    h0 = 1000.0
    r_bell = radius / 3.0
    lon_c, lat_c = 1.5 * np.pi, 0.0
    from ..geometry.sphere import arc_length, lonlat_to_xyz

    centre = lonlat_to_xyz(np.array(lon_c), np.array(lat_c))

    def thickness(points: np.ndarray) -> np.ndarray:
        r = radius * arc_length(np.asarray(points, dtype=np.float64), centre)
        bell = np.where(
            r < r_bell, 0.5 * h0 * (1.0 + np.cos(np.pi * r / r_bell)), 0.0
        )
        return base_thickness + bell

    def topography(points: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(points).shape[0])

    return TestCase(
        name="cosine_bell",
        number=1,
        velocity=lambda p: _zonal_velocity_vector(p, u0),
        thickness=thickness,
        topography=topography,
        exact_thickness=thickness,  # valid after whole revolutions
        suggested_days=12.0,
    )


def steady_zonal_flow(
    radius: float = EARTH_RADIUS,
    omega: float = OMEGA,
    g: float = GRAVITY,
    alpha: float = 0.0,
) -> TestCase:
    """Williamson TC2: steady nonlinear zonal geostrophic flow.

    ``alpha`` is the standard flow-orientation parameter: the rotation axis
    of the flow is tilted by ``alpha`` from the planetary axis, and the
    Coriolis parameter is redefined in the flow frame
    (``f = 2 Omega sin(lat')``) so the flow remains an exact steady state —
    exactly as specified by Williamson et al. (1992).
    """
    u0 = 2.0 * np.pi * radius / (12.0 * SECONDS_PER_DAY)
    gh0 = 2.94e4
    axis = _rotation_axis(alpha)

    def thickness(points: np.ndarray) -> np.ndarray:
        return _geostrophic_thickness(points, u0, gh0, radius, omega, g, alpha)

    def topography(points: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(points).shape[0])

    coriolis = None
    if alpha != 0.0:
        def coriolis(points: np.ndarray) -> np.ndarray:
            return 2.0 * omega * (np.asarray(points, dtype=np.float64) @ axis)

    return TestCase(
        name="steady_zonal_flow" if alpha == 0.0 else f"steady_zonal_flow_a{alpha:.2f}",
        number=2,
        velocity=lambda p: _zonal_velocity_vector(p, u0, alpha),
        thickness=thickness,
        topography=topography,
        exact_thickness=thickness,
        suggested_days=5.0,
        coriolis=coriolis,
    )


def isolated_mountain(
    radius: float = EARTH_RADIUS, omega: float = OMEGA, g: float = GRAVITY
) -> TestCase:
    """Williamson TC5: zonal flow over an isolated mountain (Figure 5)."""
    u0 = 20.0
    h0 = 5960.0
    b0 = 2000.0
    r_m = np.pi / 9.0
    lon_c = 1.5 * np.pi
    lat_c = np.pi / 6.0

    def topography(points: np.ndarray) -> np.ndarray:
        lon, lat = _lonlat(points)
        # Conical mountain in (lon, lat) metric, as specified by Williamson.
        r = np.sqrt(
            np.minimum(r_m**2, (lon - lon_c) ** 2 + (lat - lat_c) ** 2)
        )
        return b0 * (1.0 - r / r_m)

    def thickness(points: np.ndarray) -> np.ndarray:
        surface = _geostrophic_thickness(points, u0, g * h0, radius, omega, g)
        return surface - topography(points)

    return TestCase(
        name="isolated_mountain",
        number=5,
        velocity=lambda p: _zonal_velocity_vector(p, u0),
        thickness=thickness,
        topography=topography,
        exact_thickness=None,
        suggested_days=15.0,
    )


def rossby_haurwitz(
    radius: float = EARTH_RADIUS, omega: float = OMEGA, g: float = GRAVITY
) -> TestCase:
    """Williamson TC6: Rossby–Haurwitz wave, zonal wavenumber R = 4."""
    w = 7.848e-6
    K = 7.848e-6
    R = 4.0
    h0 = 8000.0

    def velocity(points: np.ndarray) -> np.ndarray:
        lon, lat = _lonlat(points)
        cos_lat = np.cos(lat)
        u_zonal = radius * w * cos_lat + radius * K * cos_lat ** (R - 1.0) * (
            R * np.sin(lat) ** 2 - cos_lat**2
        ) * np.cos(R * lon)
        v_merid = -radius * K * R * cos_lat ** (R - 1.0) * np.sin(lat) * np.sin(R * lon)
        from ..geometry.sphere import tangent_basis

        east, north = tangent_basis(np.asarray(points, dtype=np.float64))
        return u_zonal[..., None] * east + v_merid[..., None] * north

    def thickness(points: np.ndarray) -> np.ndarray:
        lon, lat = _lonlat(points)
        c = np.cos(lat)
        A = 0.5 * w * (2.0 * omega + w) * c**2 + 0.25 * K**2 * c ** (2.0 * R) * (
            (R + 1.0) * c**2 + (2.0 * R**2 - R - 2.0) - 2.0 * R**2 * c ** (-2.0)
        )
        B = (
            2.0
            * (omega + w)
            * K
            / ((R + 1.0) * (R + 2.0))
            * c**R
            * ((R**2 + 2.0 * R + 2.0) - (R + 1.0) ** 2 * c**2)
        )
        C = 0.25 * K**2 * c ** (2.0 * R) * ((R + 1.0) * c**2 - (R + 2.0))
        gh = g * h0 + radius**2 * (A + B * np.cos(R * lon) + C * np.cos(2.0 * R * lon))
        return gh / g

    def topography(points: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(points).shape[0])

    return TestCase(
        name="rossby_haurwitz",
        number=6,
        velocity=velocity,
        thickness=thickness,
        topography=topography,
        exact_thickness=None,
        suggested_days=14.0,
    )


def dam_break(
    radius: float = EARTH_RADIUS,
    h_inside: float = 2500.0,
    h_outside: float = 2000.0,
    cap_radius: float = np.pi / 6.0,
) -> TestCase:
    """Dam break on the sphere: a cap of deeper fluid released at rest.

    The discontinuous-initial-condition battery member (the spherical
    analogue of the dam-break validations Delmas & Soulaïmani run for
    their multi-GPU SWE solver): the thickness jumps from ``h_inside`` to
    ``h_outside`` across a spherical cap of angular radius ``cap_radius``
    centred on the equator, the fluid starts at rest, and the collapse
    radiates gravity waves through the jump.  No analytic solution; used
    for conservation checks and shock-adjacent robustness of the
    unfiltered core (the jump is sampled, not smoothed — cells change
    value across one edge).
    """
    lon_c, lat_c = 1.5 * np.pi, 0.0
    from ..geometry.sphere import arc_length, lonlat_to_xyz

    centre = lonlat_to_xyz(np.array(lon_c), np.array(lat_c))

    def thickness(points: np.ndarray) -> np.ndarray:
        r = arc_length(np.asarray(points, dtype=np.float64), centre)
        return np.where(r < cap_radius, h_inside, h_outside)

    def velocity(points: np.ndarray) -> np.ndarray:
        return np.zeros((np.asarray(points).shape[0], 3))

    def topography(points: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(points).shape[0])

    return TestCase(
        name="dam_break",
        number=9,  # post-Williamson numbering, after the Galewsky jet (8)
        velocity=velocity,
        thickness=thickness,
        topography=topography,
        exact_thickness=None,
        suggested_days=0.25,
    )


def flow_over_ridge(
    radius: float = EARTH_RADIUS,
    omega: float = OMEGA,
    g: float = GRAVITY,
    b0: float = 1500.0,
    lat_r: float = np.pi / 6.0,
    half_width: float = np.pi / 9.0,
) -> TestCase:
    """Zonal flow over a zonally-symmetric mid-latitude ridge.

    The variable-topography battery member beyond TC5: instead of an
    isolated conical mountain, the bottom rises in a smooth
    ``cos^2``-profile ridge of height ``b0`` encircling the sphere at
    latitude ``lat_r`` (half-width ``half_width``).  The initial surface
    is the TC2 geostrophic surface of a 20 m/s zonal flow, so the fluid
    thins over the ridge crest and the flow must negotiate continuous —
    not compactly-supported — topography; exercises the ``grad(h + b)``
    pressure-gradient coupling along every longitude.
    """
    u0 = 20.0
    h0 = 5960.0

    def topography(points: np.ndarray) -> np.ndarray:
        _, lat = _lonlat(points)
        inside = np.abs(lat - lat_r) < half_width
        b = np.zeros(np.asarray(points).shape[0])
        b[inside] = b0 * np.cos(
            0.5 * np.pi * (lat[inside] - lat_r) / half_width
        ) ** 2
        return b

    def thickness(points: np.ndarray) -> np.ndarray:
        surface = _geostrophic_thickness(points, u0, g * h0, radius, omega, g)
        return surface - topography(points)

    return TestCase(
        name="flow_over_ridge",
        number=10,  # post-Williamson numbering
        velocity=lambda p: _zonal_velocity_vector(p, u0),
        thickness=thickness,
        topography=topography,
        exact_thickness=None,
        suggested_days=10.0,
    )


#: Registry by Williamson test-case number.
TEST_CASES: dict[int, Callable[[], TestCase]] = {
    1: cosine_bell,
    2: steady_zonal_flow,
    5: isolated_mountain,
    6: rossby_haurwitz,
}


def initialize(mesh: Mesh, case: TestCase) -> tuple[State, np.ndarray]:
    """Discretize a test case on a mesh.

    Returns
    -------
    state : State
        ``h`` sampled at cell centres, ``u`` as the normal component of the
        analytic velocity at edge points.
    b_cell : (nCells,) array
        Bottom topography at cell centres.
    """
    met = mesh.metrics
    h = case.thickness(met.xCell)
    vel_edge = case.velocity(met.xEdge)
    u = np.sum(vel_edge * met.edgeNormal, axis=1)
    b = case.topography(met.xCell)
    state = State(h=h, u=u)
    state.validate_shapes(mesh.nCells, mesh.nEdges)
    return state, b
