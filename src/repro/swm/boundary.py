"""The ``enforce_boundary_edge`` kernel (Algorithm 1, line 4).

Zeroes the momentum tendency on boundary edges.  Global spherical meshes are
closed, so the default mask is empty and the kernel is a (cheap) no-op — but
it is kept as a first-class kernel for fidelity with Algorithm 1 and to
support limited-area masks, which MPAS carries through the same code path.
"""

from __future__ import annotations

import numpy as np

from ..mesh.mesh import Mesh
from ..obs.instrument import pattern_span

__all__ = ["boundary_edge_mask", "enforce_boundary_edge"]


def boundary_edge_mask(mesh: Mesh, cell_mask: np.ndarray | None = None) -> np.ndarray:
    """Boolean mask of boundary edges.

    With ``cell_mask`` (True = active cell), an edge is a boundary edge when
    its two cells have different activity; without one, the closed sphere has
    no boundary and the mask is all-False.
    """
    if cell_mask is None:
        return np.zeros(mesh.nEdges, dtype=bool)
    cell_mask = np.asarray(cell_mask, dtype=bool)
    c0 = mesh.connectivity.cellsOnEdge[:, 0]
    c1 = mesh.connectivity.cellsOnEdge[:, 1]
    return cell_mask[c0] != cell_mask[c1]


def enforce_boundary_edge(tend_u: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Zero ``tend_u`` on masked edges, in place; returns ``tend_u``."""
    with pattern_span("X1", n_points=tend_u.size):
        if mask.any():
            tend_u[mask] = 0.0
    return tend_u
