"""Loop-order reference implementations of the TRiSK operators.

These are direct Python transcriptions of the MPAS Fortran loops — including
the *edge-order scatter* forms that Algorithm 2 of the paper highlights as
race-prone under multithreading.  They exist to pin down the semantics of the
vectorized gather kernels in :mod:`repro.swm.operators` (equivalence is
asserted by the test suite) and to serve as the "original code" baseline in
the reduction benchmarks.  They are deliberately unoptimized.
"""

from __future__ import annotations

import numpy as np

from ..mesh.mesh import Mesh

__all__ = [
    "cell_divergence_scatter",
    "cell_divergence_loop",
    "vertex_curl_loop",
    "cell_kinetic_energy_loop",
    "tangential_velocity_loop",
    "vertex_from_cells_kite_loop",
    "cell_from_vertices_kite_loop",
    "flux_divergence_scatter",
    "coriolis_edge_term_loop",
    "cell_to_edge_mean_loop",
    "vertex_to_edge_mean_loop",
    "edge_gradient_of_cell_loop",
    "edge_gradient_of_vertex_loop",
    "velocity_reconstruction_loop",
]


def cell_divergence_scatter(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """Edge-order scatter divergence — the Algorithm 2 access pattern.

    Traverses edges and accumulates into the two adjacent cells with opposite
    signs; the normal points from cell0 to cell1, so it is an outflow for
    cell0 (+) and an inflow for cell1 (-).
    """
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(conn.n_cells, dtype=np.float64)
    for e in range(conn.n_edges):
        c0 = conn.cellsOnEdge[e, 0]
        c1 = conn.cellsOnEdge[e, 1]
        flux = u_edge[e] * met.dvEdge[e]
        out[c0] += flux
        out[c1] -= flux
    return out / met.areaCell


def cell_divergence_loop(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """Cell-order gather divergence — the Algorithm 3 access pattern."""
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(conn.n_cells, dtype=np.float64)
    for c in range(conn.n_cells):
        acc = 0.0
        for j in range(int(conn.nEdgesOnCell[c])):
            e = conn.edgesOnCell[c, j]
            acc += conn.edgeSignOnCell[c, j] * u_edge[e] * met.dvEdge[e]
        out[c] = acc / met.areaCell[c]
    return out


def vertex_curl_loop(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """Vertex-order circulation / area."""
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(conn.n_vertices, dtype=np.float64)
    for v in range(conn.n_vertices):
        acc = 0.0
        for j in range(3):
            e = conn.edgesOnVertex[v, j]
            acc += conn.edgeSignOnVertex[v, j] * u_edge[e] * met.dcEdge[e]
        out[v] = acc / met.areaTriangle[v]
    return out


def cell_kinetic_energy_loop(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(conn.n_cells, dtype=np.float64)
    for c in range(conn.n_cells):
        acc = 0.0
        for j in range(int(conn.nEdgesOnCell[c])):
            e = conn.edgesOnCell[c, j]
            acc += 0.25 * met.dcEdge[e] * met.dvEdge[e] * u_edge[e] ** 2
        out[c] = acc / met.areaCell[c]
    return out


def tangential_velocity_loop(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    tri = mesh.trisk
    out = np.zeros(mesh.nEdges, dtype=np.float64)
    for e in range(mesh.nEdges):
        acc = 0.0
        for j in range(int(tri.nEdgesOnEdge[e])):
            acc += tri.weightsOnEdge[e, j] * u_edge[tri.edgesOnEdge[e, j]]
        out[e] = acc
    return out


def vertex_from_cells_kite_loop(mesh: Mesh, phi_cell: np.ndarray) -> np.ndarray:
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(conn.n_vertices, dtype=np.float64)
    for v in range(conn.n_vertices):
        acc = 0.0
        for j in range(3):
            acc += met.kiteAreasOnVertex[v, j] * phi_cell[conn.cellsOnVertex[v, j]]
        out[v] = acc / met.areaTriangle[v]
    return out


def flux_divergence_scatter(
    mesh: Mesh, u_edge: np.ndarray, h_edge: np.ndarray
) -> np.ndarray:
    """Edge-order scatter of the thickness-flux divergence (Algorithm 2).

    The ``tend_h`` access pattern of the original MPAS loop: traverse edges,
    accumulate ``h_e u_e dv_e`` into the two adjacent cells with opposite
    signs.
    """
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(conn.n_cells, dtype=np.float64)
    for e in range(conn.n_edges):
        c0 = conn.cellsOnEdge[e, 0]
        c1 = conn.cellsOnEdge[e, 1]
        flux = u_edge[e] * h_edge[e] * met.dvEdge[e]
        out[c0] += flux
        out[c1] -= flux
    return out / met.areaCell


def coriolis_edge_term_loop(
    mesh: Mesh, u_edge: np.ndarray, h_edge: np.ndarray, pv_edge: np.ndarray
) -> np.ndarray:
    """Edge-order loop of the nonlinear Coriolis/PV term (TRiSK form)."""
    tri = mesh.trisk
    out = np.zeros(mesh.nEdges, dtype=np.float64)
    for e in range(mesh.nEdges):
        acc = 0.0
        for j in range(int(tri.nEdgesOnEdge[e])):
            ep = int(tri.edgesOnEdge[e, j])
            acc += (
                tri.weightsOnEdge[e, j]
                * u_edge[ep]
                * h_edge[ep]
                * 0.5
                * (pv_edge[e] + pv_edge[ep])
            )
        out[e] = acc
    return out


def cell_to_edge_mean_loop(mesh: Mesh, phi_cell: np.ndarray) -> np.ndarray:
    """Edge-order loop of the two-cell average (2nd-order ``h_edge``)."""
    conn = mesh.connectivity
    out = np.zeros(mesh.nEdges, dtype=np.float64)
    for e in range(mesh.nEdges):
        out[e] = 0.5 * (
            phi_cell[conn.cellsOnEdge[e, 0]] + phi_cell[conn.cellsOnEdge[e, 1]]
        )
    return out


def vertex_to_edge_mean_loop(mesh: Mesh, phi_vertex: np.ndarray) -> np.ndarray:
    """Edge-order loop of the two-endpoint average (2nd-order ``pv_edge``)."""
    conn = mesh.connectivity
    out = np.zeros(mesh.nEdges, dtype=np.float64)
    for e in range(mesh.nEdges):
        out[e] = 0.5 * (
            phi_vertex[conn.verticesOnEdge[e, 0]] + phi_vertex[conn.verticesOnEdge[e, 1]]
        )
    return out


def edge_gradient_of_cell_loop(mesh: Mesh, phi_cell: np.ndarray) -> np.ndarray:
    """Edge-order loop of the normal gradient of a cell field."""
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(mesh.nEdges, dtype=np.float64)
    for e in range(mesh.nEdges):
        out[e] = (
            phi_cell[conn.cellsOnEdge[e, 1]] - phi_cell[conn.cellsOnEdge[e, 0]]
        ) / met.dcEdge[e]
    return out


def edge_gradient_of_vertex_loop(mesh: Mesh, phi_vertex: np.ndarray) -> np.ndarray:
    """Edge-order loop of the tangential gradient of a vertex field."""
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(mesh.nEdges, dtype=np.float64)
    for e in range(mesh.nEdges):
        out[e] = (
            phi_vertex[conn.verticesOnEdge[e, 1]] - phi_vertex[conn.verticesOnEdge[e, 0]]
        ) / met.dvEdge[e]
    return out


def velocity_reconstruction_loop(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """Cell-order loop of the A4 velocity reconstruction.

    Applies the same per-cell least-squares matrices as the production
    kernel (:func:`repro.swm.reconstruct.reconstruction_matrices`), one cell
    at a time — the Fortran-style transcription of the pattern-A gather.
    """
    from .reconstruct import reconstruction_matrices

    conn = mesh.connectivity
    mats = reconstruction_matrices(mesh)
    out = np.zeros((conn.n_cells, 3), dtype=np.float64)
    for c in range(conn.n_cells):
        n = int(conn.nEdgesOnCell[c])
        edges = conn.edgesOnCell[c, :n]
        out[c] = mats[c, :, :n] @ u_edge[edges]
    return out


def cell_from_vertices_kite_loop(mesh: Mesh, phi_vertex: np.ndarray) -> np.ndarray:
    """Vertex->cell kite interpolation, written as a *scatter over vertices*.

    Like Algorithm 2 this writes cell data in vertex order — the second
    irregular-reduction shape in the model.
    """
    conn, met = mesh.connectivity, mesh.metrics
    out = np.zeros(conn.n_cells, dtype=np.float64)
    for v in range(conn.n_vertices):
        for j in range(3):
            c = conn.cellsOnVertex[v, j]
            out[c] += met.kiteAreasOnVertex[v, j] * phi_vertex[v]
    return out / met.areaCell
