"""The ``mpas_reconstruct`` kernel (Algorithm 1, line 12).

Reconstructs the full 3D velocity vector at cell centres from the normal
components on the surrounding edges (patterns A4 + X6 of Table I), then
rotates it into zonal/meridional components.  MPAS uses radial basis
functions; we use the equivalent-accuracy constrained least-squares fit:

    minimize  sum_e (U . n_e - u_e)^2   subject to  U . r_hat = 0

solved per cell in the local (east, north) tangent basis — ``U = E a`` with
``a = pinv(N E) u`` — so the result is tangent to the sphere by construction
(the edge normals are tangent at the *edge* points, not at the cell centre,
so a penalty formulation would leak a radial component).
"""

from __future__ import annotations

import weakref

import numpy as np

from ..engine import dispatch
from ..geometry.sphere import tangent_basis
from ..mesh.mesh import Mesh
from ..obs.instrument import pattern_span
from .state import Reconstruction

__all__ = ["mpas_reconstruct", "reconstruct_cell_vectors", "reconstruction_matrices"]

_CACHE: "weakref.WeakKeyDictionary[Mesh, np.ndarray]" = weakref.WeakKeyDictionary()


def reconstruction_matrices(mesh: Mesh) -> np.ndarray:
    """Per-cell (3, maxEdges) matrices mapping edge normals to a 3D vector.

    ``U_c = M_c @ u[edgesOnCell(c)]`` solves the constrained least-squares
    problem of the module docstring.  Padded edge slots map to zero columns.
    """
    mats = _CACHE.get(mesh)
    if mats is not None:
        return mats

    conn, met = mesh.connectivity, mesh.metrics
    n_cells, max_edges = conn.n_cells, conn.max_edges
    mats = np.zeros((n_cells, 3, max_edges), dtype=np.float64)
    east, north = tangent_basis(met.xCell)
    for c in range(n_cells):
        n = int(conn.nEdgesOnCell[c])
        edges = conn.edgesOnCell[c, :n]
        # Rows: outward-facing signs do not matter (u_e is signed in the
        # global n_e convention), so use the global normals directly.
        N = met.edgeNormal[edges]  # (n, 3)
        E = np.stack([east[c], north[c]], axis=1)  # (3, 2)
        mats[c, :, :n] = E @ np.linalg.pinv(N @ E)
    _CACHE[mesh] = mats
    return mats


def reconstruct_cell_vectors(mesh: Mesh, u_edge: np.ndarray) -> np.ndarray:
    """The A4 gather alone: per-cell 3D velocity vectors, shape (nCells, 3).

    This is the ``numpy``-backend registration of the ``velocity_reconstruction``
    operator; :func:`mpas_reconstruct` dispatches it through the engine.
    """
    conn = mesh.connectivity
    mats = reconstruction_matrices(mesh)
    eoc = np.where(conn.edgesOnCell >= 0, conn.edgesOnCell, 0)
    mask = (conn.edgesOnCell >= 0).astype(np.float64)
    gathered = u_edge[eoc] * mask  # (nCells, maxEdges)
    return np.einsum("cik,ck->ci", mats, gathered)


def mpas_reconstruct(
    mesh: Mesh, u_edge: np.ndarray, backend: str = "numpy"
) -> Reconstruction:
    """Reconstruct cell-centre velocities from edge normal components."""
    met = mesh.metrics
    # Pattern A4: cell vector from neighbouring edges.
    with pattern_span("A4", mesh, backend=backend):
        U = dispatch("velocity_reconstruction", mesh, u_edge, backend=backend)

    # Local X6: change of basis at each cell.
    with pattern_span("X6", mesh, backend=backend):
        east, north = tangent_basis(met.xCell)
        zonal = np.sum(U * east, axis=1)
        meridional = np.sum(U * north, axis=1)
    return Reconstruction(
        uReconstructX=U[:, 0],
        uReconstructY=U[:, 1],
        uReconstructZ=U[:, 2],
        uReconstructZonal=zonal,
        uReconstructMeridional=meridional,
    )
