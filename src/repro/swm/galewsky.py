"""Galewsky, Scott & Polvani (2004) barotropic-instability test case.

A modern complement to the Williamson battery: a balanced mid-latitude zonal
jet that is steady when unperturbed, plus an optional localized height bump
that triggers barotropic instability and rolls the jet up into vortices
within ~6 days.  Exercises the full nonlinear dynamics (sharp gradients,
vorticity filamentation) far harder than TC2/TC5.

The balanced height field has no closed form; it is obtained by integrating
the zonal-balance relation

    g dh/dphi = -a u(phi) (f(phi) + tan(phi) u(phi) / a)

on a fine latitude grid (trapezoidal rule), shifted so the global-mean layer
depth equals 10 km, and interpolated to the mesh points — exactly the
procedure of the original paper.
"""

from __future__ import annotations

import numpy as np

from ..constants import EARTH_RADIUS, GRAVITY, OMEGA
from .testcases import TestCase

__all__ = ["galewsky_jet"]

#: Jet parameters from Galewsky et al. (2004).
PHI0 = np.pi / 7.0
PHI1 = np.pi / 2.0 - PHI0
U_MAX = 80.0
MEAN_DEPTH = 10_000.0

#: Perturbation parameters.
H_HAT = 120.0
ALPHA = 1.0 / 3.0
BETA = 1.0 / 15.0
PHI2 = np.pi / 4.0


def _jet_profile(lat: np.ndarray) -> np.ndarray:
    """Zonal wind u(phi): exponentially confined to (PHI0, PHI1)."""
    lat = np.asarray(lat, dtype=np.float64)
    en = np.exp(-4.0 / (PHI1 - PHI0) ** 2)
    inside = (lat > PHI0) & (lat < PHI1)
    u = np.zeros_like(lat)
    denom = (lat[inside] - PHI0) * (lat[inside] - PHI1)
    u[inside] = (U_MAX / en) * np.exp(1.0 / denom)
    return u


def _balanced_depth_table(
    radius: float, omega: float, g: float, n: int = 20001
) -> tuple[np.ndarray, np.ndarray]:
    """(lat grid, balanced h) by integrating the gradient relation."""
    lat = np.linspace(-np.pi / 2.0, np.pi / 2.0, n)
    u = _jet_profile(lat)
    f = 2.0 * omega * np.sin(lat)
    integrand = -radius * u * (f + np.tan(lat) * u / radius) / g
    # np.trapezoid cumulative: manual cumulative trapezoid.
    dlat = np.diff(lat)
    increments = 0.5 * (integrand[1:] + integrand[:-1]) * dlat
    h = np.concatenate([[0.0], np.cumsum(increments)])
    # Shift so the area-weighted global mean is MEAN_DEPTH.
    weights = np.cos(lat)
    mean = np.sum(h * weights) / np.sum(weights)
    return lat, h - mean + MEAN_DEPTH


def galewsky_jet(
    perturbed: bool = True,
    radius: float = EARTH_RADIUS,
    omega: float = OMEGA,
    g: float = GRAVITY,
) -> TestCase:
    """The Galewsky et al. jet, optionally with the instability trigger.

    ``perturbed=False`` gives the balanced steady jet (a much harder steady
    state than TC2: the wind has near-discontinuous derivatives at the jet
    edges).  ``perturbed=True`` adds the Gaussian height bump that seeds the
    barotropic instability.
    """
    from ..geometry.sphere import tangent_basis, xyz_to_lonlat

    lat_grid, h_grid = _balanced_depth_table(radius, omega, g)

    def thickness(points: np.ndarray) -> np.ndarray:
        lon, lat = xyz_to_lonlat(np.asarray(points, dtype=np.float64))
        h = np.interp(lat, lat_grid, h_grid)
        if perturbed:
            lon_c = np.where(lon > np.pi, lon - 2.0 * np.pi, lon)  # (-pi, pi]
            h = h + H_HAT * np.cos(lat) * np.exp(-((lon_c / ALPHA) ** 2)) * np.exp(
                -(((PHI2 - lat) / BETA) ** 2)
            )
        return h

    def velocity(points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        _, lat = xyz_to_lonlat(points)
        east, _ = tangent_basis(points)
        return _jet_profile(lat)[..., None] * east

    def topography(points: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(points).shape[0])

    return TestCase(
        name="galewsky_jet" if perturbed else "galewsky_jet_balanced",
        number=8,  # conventional "post-Williamson" numbering
        velocity=velocity,
        thickness=thickness,
        topography=topography,
        exact_thickness=None if perturbed else thickness,
        suggested_days=6.0,
    )
