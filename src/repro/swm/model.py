"""High-level shallow-water model driver: the three-phase MPAS procedure.

``ShallowWaterModel`` wraps initialization (mesh + test case + Coriolis),
time-integration (RK-4 stepping with optional per-step callbacks) and
finalization (summary of invariants and errors), mirroring the MPAS running
procedure described in Section II-B of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import SECONDS_PER_DAY
from ..mesh.mesh import Mesh
from .config import SWConfig
from .error import ErrorNorms, Invariants, error_norms, invariants
from .state import Diagnostics, Reconstruction, State
from .testcases import TestCase, initialize
from .timestep import RK4Integrator, StepResult

__all__ = ["ShallowWaterModel", "RunResult", "suggested_dt"]


def suggested_dt(mesh: Mesh, case: TestCase, gravity: float, cfl: float = 0.5) -> float:
    """Gravity-wave CFL time step estimate for a test case on a mesh.

    ``dt = cfl * min(dcEdge) / (|U| + sqrt(g * max(h)))``.

    The wave speed is ``sqrt(g h)`` with ``h`` the *fluid thickness* — the
    shallow-water phase speed depends on the depth of the moving layer,
    not on the bottom elevation beneath it, so topography enters only
    through its effect on ``h`` itself.  (An earlier version used
    ``max(h + b)``, which needlessly shrank ``dt`` for any case whose
    topographic peak coincides with the thickness maximum.)
    """
    met = mesh.metrics
    h = case.thickness(met.xCell)
    vel = case.velocity(met.xCell)
    c = np.sqrt(gravity * float(np.max(h)))
    umax = float(np.max(np.linalg.norm(vel, axis=1)))
    return cfl * float(np.min(met.dcEdge)) / (umax + c)


@dataclass
class RunResult:
    """Outcome of a model run."""

    state: State
    diagnostics: Diagnostics
    reconstruction: Reconstruction | None
    steps: int
    elapsed_seconds: float  # simulated time
    invariant_history: list[Invariants] = field(default_factory=list)

    def _drift_endpoints(self) -> tuple[Invariants, Invariants]:
        """The (start, end) invariant records a drift is measured between.

        Every executor records at least the run endpoints; a result that
        carries fewer than two entries (e.g. hand-built) cannot answer a
        drift question — raise actionably instead of ``IndexError``.
        """
        if len(self.invariant_history) < 2:
            raise ValueError(
                "this RunResult carries no start/end invariant records "
                f"({len(self.invariant_history)} of the 2 required), so "
                "mass_drift()/energy_drift() are undefined; every executor "
                "records the endpoints — rebuild the result through "
                "repro.api.run or repro.jobs.result()"
            )
        return self.invariant_history[0], self.invariant_history[-1]

    def mass_drift(self) -> float:
        """Relative mass change over the run (should be ~ round-off)."""
        first, last = self._drift_endpoints()
        return abs(last.mass - first.mass) / abs(first.mass)

    def energy_drift(self) -> float:
        """Relative total-energy change over the run."""
        first, last = self._drift_endpoints()
        return abs(last.total_energy - first.total_energy) / abs(
            first.total_energy
        )


class ShallowWaterModel:
    """Initialization / time-integration / finalization driver."""

    def __init__(self, mesh: Mesh, config: SWConfig) -> None:
        self.mesh = mesh
        self.config = config
        self.case: TestCase | None = None
        self.state: State | None = None
        self.diagnostics: Diagnostics | None = None
        self.b_cell: np.ndarray | None = None
        self.integrator: RK4Integrator | None = None

    # ---------------------------------------------------------------- phases
    def initialize(self, case: TestCase) -> State:
        """Phase 1: discretize the test case and prime the diagnostics."""
        self.case = case
        state, b = initialize(self.mesh, case)
        if case.coriolis is not None:
            f_vertex = case.coriolis(self.mesh.metrics.xVertex)
        else:
            f_vertex = self.config.coriolis(self.mesh.metrics.latVertex)
        self.integrator = RK4Integrator(self.mesh, self.config, b, f_vertex)
        self.b_cell = b
        self.state = state
        self.diagnostics = self.integrator.diagnostics_for(state)
        return state

    def run(
        self,
        steps: int | None = None,
        days: float | None = None,
        invariant_interval: int = 0,
        callback=None,
        checkpoint_dir=None,
        start_step: int = 0,
        checkpoint_keep: int | None = None,
        on_checkpoint=None,
    ) -> RunResult:
        """Phase 2: integrate for ``steps`` steps or ``days`` simulated days.

        ``invariant_interval > 0`` records the conserved integrals every that
        many steps (plus at start and end).  ``callback(step, result)`` runs
        after each step when given.

        ``start_step`` labels the current state as already being at that
        step (a resumed run): step numbering, invariant records and the
        checkpoint cadence all continue from it, so an interrupted run
        restarted from a checkpoint writes checkpoints at the *same* steps
        an uninterrupted run would.  ``checkpoint_keep`` overrides the
        checkpointer's retention (durable runs keep everything);
        ``on_checkpoint(step, path)`` fires after every checkpoint write —
        the durable manifest's commit hook.

        The run executes under the recovery policy built from the config's
        retry knobs (:meth:`SWConfig.recovery_policy`).  With
        ``config.guard_interval > 0`` the numerical watchdog
        (:class:`repro.resilience.guards.Watchdog`) checks the new state
        every that many steps; a violation either raises
        :class:`~repro.resilience.guards.NumericalBlowup` (``guard_policy ==
        "halt"``, or rollbacks exhausted/unavailable) or restores the newest
        auto-checkpoint and halves ``dt`` (``"rollback"``).  With
        ``config.checkpoint_interval > 0`` restart files are written every
        that many steps (plus at step 0) into ``checkpoint_dir`` (default: a
        run-scoped temporary directory).  A rollback re-runs the remaining
        *step count* under the smaller ``dt``, so the simulated horizon
        shrinks; ``RunResult.elapsed_seconds`` reports the time actually
        covered by the surviving trajectory.
        """
        if (steps is None) == (days is None):
            raise ValueError("specify exactly one of steps/days")
        if steps is None:
            steps = int(round(days * SECONDS_PER_DAY / self.config.dt))
        if self.state is None or self.integrator is None:
            raise RuntimeError("initialize() must be called before run()")

        from ..resilience.checkpoint import AutoCheckpointer
        from ..resilience.faults import fault_site
        from ..resilience.guards import NumericalBlowup, Watchdog
        from ..resilience.recovery import use_recovery_policy

        config = self.config
        total = start_step + steps
        watchdog = (
            Watchdog.from_config(self.mesh, self.b_cell, config)
            if config.guard_interval
            else None
        )
        checkpointer = None
        if config.checkpoint_interval:
            kw = {} if checkpoint_keep is None else {"keep": checkpoint_keep}
            checkpointer = AutoCheckpointer(
                self, config.checkpoint_interval, directory=checkpoint_dir, **kw
            )

        state, diag = self.state, self.diagnostics
        history: list[Invariants] = []
        history_steps: list[int] = []

        def record(step: int) -> None:
            history.append(
                invariants(self.mesh, state, diag, self.b_cell, config.gravity)
            )
            history_steps.append(step)

        record(start_step)
        elapsed_at_ckpt: dict[int, float] = {}
        if checkpointer is not None:
            # A resumed run must not roll forward onto stale checkpoints a
            # previous process wrote beyond our restart point.
            checkpointer.discard_after(start_step)
            if checkpointer.last_step != start_step:
                checkpointer.save(start_step)
                if on_checkpoint is not None:
                    on_checkpoint(start_step, checkpointer.last_path)
            elapsed_at_ckpt[checkpointer.last_step] = 0.0
        recon = None
        elapsed = 0.0
        rollbacks = 0
        step = start_step + 1
        with use_recovery_policy(config.recovery_policy()):
            while step <= total:
                fault_site("process.crash", step=step)
                report = None
                result: StepResult | None = None
                try:
                    result = self.integrator.step(state, diag)
                except FloatingPointError as exc:
                    # A violently unstable step fails *inside* the RK stages
                    # before any end-of-step guard can see it.
                    if watchdog is None:
                        raise
                    report = watchdog.in_step_failure(step, exc)
                else:
                    state, diag, recon = (
                        result.state, result.diagnostics, result.reconstruction,
                    )
                    self.state, self.diagnostics = state, diag
                    elapsed += config.dt
                    if watchdog is not None and step % config.guard_interval == 0:
                        report = watchdog.check(step, state, diag, config.dt)
                if report is not None:
                    if (
                        config.guard_policy != "rollback"
                        or checkpointer is None
                        or rollbacks >= config.max_rollbacks
                    ):
                        raise NumericalBlowup(report)
                    rolled_to = checkpointer.rollback()
                    config.dt /= 2.0
                    rollbacks += 1
                    # Abandon the poisoned trajectory: state, invariant
                    # records and the clock all rewind to the checkpoint.
                    state, diag = self.state, self.diagnostics
                    while history_steps and history_steps[-1] > rolled_to:
                        history_steps.pop()
                        history.pop()
                    elapsed = elapsed_at_ckpt[rolled_to]
                    step = rolled_to + 1
                    continue
                if invariant_interval and step % invariant_interval == 0:
                    record(step)
                if checkpointer is not None and checkpointer.maybe_save(step):
                    elapsed_at_ckpt[step] = elapsed
                    if on_checkpoint is not None:
                        on_checkpoint(step, checkpointer.last_path)
                if callback is not None:
                    callback(step, result)
                step += 1
        if history_steps[-1] != total:
            record(total)

        self.state, self.diagnostics = state, diag
        return RunResult(
            state=state,
            diagnostics=diag,
            reconstruction=recon,
            steps=steps,
            elapsed_seconds=elapsed,
            invariant_history=history,
        )

    @classmethod
    def from_state(
        cls,
        mesh: Mesh,
        config: SWConfig,
        case: TestCase | None,
        state: State,
        b_cell: np.ndarray,
        f_vertex: np.ndarray,
    ) -> "ShallowWaterModel":
        """A runnable model primed with an arbitrary prognostic state.

        The ensemble driver uses this to detach one member from a batch
        (serial reference runs, rollback continuations): the returned model
        behaves exactly like one that reached ``state`` by integration,
        because the end-of-step diagnostics are a pure function of the
        state (the same contract :meth:`from_checkpoint` relies on).
        """
        model = cls(mesh, config)
        model.case = case
        state.validate_shapes(mesh.nCells, mesh.nEdges)
        model.b_cell = np.asarray(b_cell, dtype=np.float64)
        model.integrator = RK4Integrator(
            mesh, config, model.b_cell, np.asarray(f_vertex, dtype=np.float64)
        )
        model.state = state
        model.diagnostics = model.integrator.diagnostics_for(state)
        return model

    # ------------------------------------------------------------ checkpoints
    def save_checkpoint(self, path) -> None:
        """Write a restart file: prognostic state + the run's fixed fields.

        The continuation contract (tested): restoring and running N steps is
        bitwise identical to having run N more steps without the restart —
        the end-of-step diagnostics are a pure function of the state, so
        only ``h``, ``u``, ``b``, ``f`` and the configuration need storing
        (exactly MPAS's restart-stream content for this core).

        The write is crash-atomic: the archive is flushed to a ``*.tmp``
        sibling, fsynced, then published with ``os.replace`` — a reader can
        see the old file or the new file under ``path``, never a torn one.
        """
        import dataclasses
        import json
        import os
        from pathlib import Path

        if self.state is None:
            raise RuntimeError("nothing to checkpoint: initialize() first")
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        # Write through an open handle: savez would append ".npz" to a bare
        # tmp *name*, breaking the rename; a handle keeps the name exact.
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                h=self.state.h,
                u=self.state.u,
                b_cell=self.b_cell,
                f_vertex=self.integrator.f_vertex,
                config=np.array(json.dumps(dataclasses.asdict(self.config))),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def from_checkpoint(cls, mesh: Mesh, path) -> "ShallowWaterModel":
        """Rebuild a runnable model from a restart file (same mesh)."""
        import json
        from pathlib import Path

        with np.load(Path(path)) as data:
            config = SWConfig(**json.loads(str(data["config"])))
            model = cls(mesh, config)
            state = State(h=data["h"].copy(), u=data["u"].copy())
            state.validate_shapes(mesh.nCells, mesh.nEdges)
            model.b_cell = data["b_cell"].copy()
            model.integrator = RK4Integrator(
                mesh, config, model.b_cell, data["f_vertex"].copy()
            )
        model.state = state
        model.diagnostics = model.integrator.diagnostics_for(state)
        return model

    # ----------------------------------------------------------- finalization
    def exact_error(self) -> ErrorNorms:
        """Error norms against the exact solution (test cases that have one)."""
        if self.case is None or self.case.exact_thickness is None:
            raise ValueError("current test case has no exact solution")
        href = self.case.exact_thickness(self.mesh.metrics.xCell)
        return error_norms(self.mesh, self.state.h, href)

    def total_height(self) -> np.ndarray:
        """``h + b`` — the Figure 5 field."""
        return self.state.h + self.b_cell
