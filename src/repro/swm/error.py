"""Williamson normalized error norms and conservation diagnostics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.mesh import Mesh
from .state import Diagnostics, State

__all__ = ["ErrorNorms", "error_norms", "Invariants", "invariants"]


@dataclass(frozen=True)
class ErrorNorms:
    """Normalized l1 / l2 / linf errors of a cell field (Williamson eq. 82-84)."""

    l1: float
    l2: float
    linf: float


def error_norms(mesh: Mesh, field: np.ndarray, reference: np.ndarray) -> ErrorNorms:
    """Area-weighted normalized error norms of ``field`` against ``reference``."""
    w = mesh.metrics.areaCell
    diff = field - reference
    i1 = float(np.sum(w * np.abs(diff)) / np.sum(w * np.abs(reference)))
    i2 = float(
        np.sqrt(np.sum(w * diff**2)) / np.sqrt(np.sum(w * reference**2))
    )
    iinf = float(np.max(np.abs(diff)) / np.max(np.abs(reference)))
    return ErrorNorms(l1=i1, l2=i2, linf=iinf)


@dataclass(frozen=True)
class Invariants:
    """Discretely (near-)conserved integrals of the shallow-water system."""

    mass: float  # integral of h
    total_energy: float  # integral of h*K + g*h*(h/2 + b)
    potential_enstrophy: float  # integral of q^2 * h / 2 on the dual mesh


def invariants(
    mesh: Mesh,
    state: State,
    diag: Diagnostics,
    b_cell: np.ndarray,
    gravity: float,
) -> Invariants:
    """Compute the conserved integrals for conservation monitoring.

    Mass is conserved to round-off by the flux-form thickness equation; total
    energy is conserved by the spatial TRiSK discretization (RK-4 introduces
    a small O(dt^5)-per-step drift); potential enstrophy decays slightly
    under APVM upwinding and is conserved without it.
    """
    area_c = mesh.metrics.areaCell
    area_v = mesh.metrics.areaTriangle
    mass = float(np.sum(area_c * state.h))
    energy = float(
        np.sum(area_c * (state.h * diag.ke + gravity * state.h * (0.5 * state.h + b_cell)))
    )
    enstrophy = float(
        np.sum(area_v * 0.5 * diag.pv_vertex**2 * diag.h_vertex)
    )
    return Invariants(mass=mass, total_energy=energy, potential_enstrophy=enstrophy)
