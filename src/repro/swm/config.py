"""Configuration of the shallow-water core (MPAS ``config_*`` equivalents)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import APVM_UPWINDING, GRAVITY, OMEGA

__all__ = ["SWConfig"]


@dataclass
class SWConfig:
    """Runtime configuration of the shallow-water model.

    Attributes
    ----------
    dt : float
        Time step in seconds.
    gravity : float
        Gravitational acceleration (m s^-2).
    omega : float
        Planetary rotation rate (rad s^-1); sets the Coriolis parameter
        ``f = 2 * omega * sin(lat)`` unless explicit ``f`` arrays are given.
    apvm_upwinding : float
        Anticipated-potential-vorticity upwinding factor
        (MPAS ``config_apvm_upwinding``); 0 disables APVM.
    thickness_adv_order : int
        Spatial order of the thickness (``h_edge``) advection: 2 uses the
        plain two-cell average; 3/4 add the ``d2fdx2`` correction terms of
        Table I (MPAS ``config_thickness_adv_order``).
    coef_3rd_order : float
        Blending coefficient of the upwinded third-order correction
        (MPAS ``config_coef_3rd_order``), used only when
        ``thickness_adv_order == 3``.
    viscosity : float
        Del2 momentum dissipation coefficient ``nu_2`` (m^2 s^-1); 0 (the MPAS
        shallow-water default) disables it.
    advection_only : bool
        Freeze the velocity field and integrate only the thickness equation
        (the Williamson TC1 passive-advection configuration): ``tend_u`` is
        forced to zero every substage.
    backend : str
        Execution backend for the stencil operators (``"numpy"``,
        ``"scatter"``, ``"codegen"`` or ``"sparse"``); every kernel
        dispatches through the :mod:`repro.engine` registry under this name.
    parallel : str
        Execution mode of the run (dispatched by :func:`repro.api.run`):
        ``"serial"`` integrates in-process; ``"lockstep"`` steps ``ranks``
        decomposed ranks inside one process
        (:class:`repro.parallel.runner.DecomposedShallowWater`);
        ``"pool"`` steps them concurrently in a persistent shared-memory
        worker pool (:class:`repro.parallel.pool.PoolShallowWater`).
        All three produce bitwise-identical owned state.
    ranks : int
        Number of decomposed ranks for the ``"lockstep"``/``"pool"`` modes
        (must stay 1 for ``"serial"``).
    backend_retries, halo_retries, halo_backoff_s, transfer_retries
        Bounded-retry knobs of the recovery policy installed for the
        duration of a model run (see :class:`repro.resilience.recovery.
        RecoveryPolicy` for each knob's meaning).
    guard_interval : int
        Run the numerical watchdog every this many steps (0 disables it);
        1 gives the per-step NaN/Inf scan.
    guard_policy : str
        What a watchdog violation does: ``"halt"`` raises
        :class:`~repro.resilience.guards.NumericalBlowup` with a diagnostic
        naming the offending field and step; ``"rollback"`` restores the
        last auto-checkpoint and halves ``dt`` (requires
        ``checkpoint_interval > 0``).
    guard_mass_drift, guard_energy_drift : float
        Relative invariant-drift limits against the first guarded state
        (0 disables each).
    guard_cfl_max : float
        Gravity-wave Courant-number ceiling on the running state
        (0 disables; 1.0 is the textbook stability limit).
    checkpoint_interval : int
        Automatic restart-file cadence in steps (0 disables).
    max_rollbacks : int
        Watchdog rollbacks allowed per run before halting anyway.
    """

    dt: float
    gravity: float = GRAVITY
    omega: float = OMEGA
    apvm_upwinding: float = APVM_UPWINDING
    thickness_adv_order: int = 2
    coef_3rd_order: float = 0.25
    viscosity: float = 0.0
    #: Del4 hyperdiffusion coefficient ``nu_4`` (m^4 s^-1); 0 disables it.
    #: Scale-selective: damps grid noise much faster than resolved flow
    #: (MPAS ``config_h_mom_eddy_visc4``).
    hyperviscosity: float = 0.0
    advection_only: bool = False
    backend: str = "numpy"
    #: Execute substeps through a fused per-mesh :class:`~repro.engine.plan.
    #: ExecutionPlan` (requires ``backend="sparse"``): the RK kernels run as
    #: compiled stage programs with zero per-op dispatch, bitwise identical
    #: to the unfused sparse backend.
    plan: bool = False
    #: Plan fusion mode: ``"exact"`` replays the unfused arithmetic bitwise;
    #: ``"algebraic"`` additionally composes linear-operator chains into
    #: single matrices (equivalent to ~1e-12, not bitwise).
    plan_fuse: str = "exact"
    #: Halo synchronization schedule of the decomposed modes: ``"static"``
    #: executes all 8 Algorithm-1 sync points with full payloads (the
    #: bitwise-proven escape hatch); ``"dataflow"`` runs the comm-avoiding
    #: schedule derived from the step graph by
    #: :func:`repro.dataflow.schedule.derive_halo_schedule` — provably-clean
    #: sync points are elided and the rest ship only the dirty variables.
    #: Both produce bitwise-identical owned state.
    halo_schedule: str = "static"
    parallel: str = "serial"
    ranks: int = 1
    backend_retries: int = 1
    halo_retries: int = 2
    halo_backoff_s: float = 0.0
    transfer_retries: int = 2
    guard_interval: int = 0
    guard_policy: str = "halt"
    guard_mass_drift: float = 0.0
    guard_energy_drift: float = 0.0
    guard_cfl_max: float = 0.0
    checkpoint_interval: int = 0
    max_rollbacks: int = 3
    #: Ensemble width: 0 runs a single scenario; N > 0 advances N
    #: perturbed-IC members lockstep through one batched execution plan
    #: (:mod:`repro.ensemble`).  Requires ``backend="sparse"`` and
    #: ``parallel="serial"``.
    ensemble: int = 0
    #: Base seed of the per-member IC perturbation streams; member ``k``
    #: draws from ``default_rng([ensemble_seed, k])``, so each member's
    #: perturbation is independent of the ensemble width.
    ensemble_seed: int = 0
    #: Relative amplitude of the thickness perturbation applied to each
    #: member's initial condition (0 runs N identical members).
    ensemble_amplitude: float = 1e-6
    #: ``"lockstep"`` advances all members through one batched plan;
    #: ``"serial"`` runs them one by one (the bitwise reference path).
    ensemble_mode: str = "lockstep"

    #: Execution modes accepted by :attr:`parallel`.
    PARALLEL_MODES = ("serial", "lockstep", "pool")

    #: Halo schedules accepted by :attr:`halo_schedule`.
    HALO_SCHEDULES = ("static", "dataflow")

    #: Ensemble execution modes accepted by :attr:`ensemble_mode`.
    ENSEMBLE_MODES = ("lockstep", "serial")

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject inconsistent configurations with actionable messages.

        Called automatically at construction; call it again after mutating
        fields in place.  Raises :class:`ValueError` naming the offending
        field and the accepted values.
        """
        if self.dt <= 0.0:
            raise ValueError(f"dt must be positive, got {self.dt!r}")
        if self.thickness_adv_order not in (2, 3, 4):
            raise ValueError(
                "thickness_adv_order must be 2, 3 or 4, "
                f"got {self.thickness_adv_order!r}"
            )
        if self.viscosity < 0.0:
            raise ValueError("viscosity must be non-negative")
        if self.hyperviscosity < 0.0:
            raise ValueError("hyperviscosity must be non-negative")
        if self.guard_policy not in ("halt", "rollback"):
            raise ValueError(
                f"guard_policy must be 'halt' or 'rollback', got {self.guard_policy!r}"
            )
        for name in (
            "backend_retries", "halo_retries", "transfer_retries",
            "guard_interval", "checkpoint_interval", "max_rollbacks",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        for name in (
            "halo_backoff_s", "guard_mass_drift", "guard_energy_drift",
            "guard_cfl_max",
        ):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        if self.halo_schedule not in self.HALO_SCHEDULES:
            raise ValueError(
                f"halo_schedule must be one of {self.HALO_SCHEDULES}, "
                f"got {self.halo_schedule!r}"
            )
        if self.parallel not in self.PARALLEL_MODES:
            raise ValueError(
                f"parallel must be one of {self.PARALLEL_MODES}, "
                f"got {self.parallel!r}"
            )
        if int(self.ranks) != self.ranks or self.ranks < 1:
            raise ValueError(f"ranks must be a positive integer, got {self.ranks!r}")
        if self.parallel == "serial" and self.ranks != 1:
            raise ValueError(
                f"ranks={self.ranks} needs a decomposed mode: "
                "set parallel='pool' or parallel='lockstep'"
            )
        from ..engine import BACKENDS  # deferred: config must stay import-light

        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.plan and self.backend != "sparse":
            raise ValueError(
                "plan=True requires backend='sparse' (plans fuse the "
                f"precompiled CSR operators), got backend={self.backend!r}"
            )
        from ..engine.plan import PLAN_FUSE_MODES  # deferred: import-light

        if self.plan_fuse not in PLAN_FUSE_MODES:
            raise ValueError(
                f"plan_fuse must be one of {PLAN_FUSE_MODES}, "
                f"got {self.plan_fuse!r}"
            )
        if int(self.ensemble) != self.ensemble or self.ensemble < 0:
            raise ValueError(
                "ensemble must be a non-negative integer "
                f"(0 disables batching), got {self.ensemble!r}"
            )
        if int(self.ensemble_seed) != self.ensemble_seed or self.ensemble_seed < 0:
            raise ValueError(
                "ensemble_seed must be a non-negative integer "
                f"(it seeds the per-member rng streams), got {self.ensemble_seed!r}"
            )
        if self.ensemble_amplitude < 0.0:
            raise ValueError(
                "ensemble_amplitude must be >= 0 (relative thickness "
                f"perturbation; 0 runs identical members), got "
                f"{self.ensemble_amplitude!r}"
            )
        if self.ensemble_mode not in self.ENSEMBLE_MODES:
            raise ValueError(
                f"ensemble_mode must be one of {self.ENSEMBLE_MODES}, "
                f"got {self.ensemble_mode!r}"
            )
        if self.ensemble:
            if self.backend != "sparse":
                raise ValueError(
                    "ensemble runs batch the precompiled CSR operators: "
                    f"set backend='sparse' (got backend={self.backend!r})"
                )
            if self.parallel != "serial":
                raise ValueError(
                    "ensemble batching is in-process: set parallel='serial' "
                    f"(got parallel={self.parallel!r})"
                )

    def recovery_policy(self):
        """The :class:`~repro.resilience.recovery.RecoveryPolicy` these knobs
        describe (installed by :meth:`repro.swm.model.ShallowWaterModel.run`)."""
        from ..resilience.recovery import RecoveryPolicy  # deferred: import-light

        return RecoveryPolicy(
            backend_retries=self.backend_retries,
            halo_retries=self.halo_retries,
            halo_backoff_s=self.halo_backoff_s,
            transfer_retries=self.transfer_retries,
        )

    def coriolis(self, lat: np.ndarray) -> np.ndarray:
        """Coriolis parameter at the given latitudes (radians)."""
        return 2.0 * self.omega * np.sin(lat)
