"""Configuration of the shallow-water core (MPAS ``config_*`` equivalents)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import APVM_UPWINDING, GRAVITY, OMEGA

__all__ = ["SWConfig"]


@dataclass
class SWConfig:
    """Runtime configuration of the shallow-water model.

    Attributes
    ----------
    dt : float
        Time step in seconds.
    gravity : float
        Gravitational acceleration (m s^-2).
    omega : float
        Planetary rotation rate (rad s^-1); sets the Coriolis parameter
        ``f = 2 * omega * sin(lat)`` unless explicit ``f`` arrays are given.
    apvm_upwinding : float
        Anticipated-potential-vorticity upwinding factor
        (MPAS ``config_apvm_upwinding``); 0 disables APVM.
    thickness_adv_order : int
        Spatial order of the thickness (``h_edge``) advection: 2 uses the
        plain two-cell average; 3/4 add the ``d2fdx2`` correction terms of
        Table I (MPAS ``config_thickness_adv_order``).
    coef_3rd_order : float
        Blending coefficient of the upwinded third-order correction
        (MPAS ``config_coef_3rd_order``), used only when
        ``thickness_adv_order == 3``.
    viscosity : float
        Del2 momentum dissipation coefficient ``nu_2`` (m^2 s^-1); 0 (the MPAS
        shallow-water default) disables it.
    advection_only : bool
        Freeze the velocity field and integrate only the thickness equation
        (the Williamson TC1 passive-advection configuration): ``tend_u`` is
        forced to zero every substage.
    backend : str
        Execution backend for the stencil operators (``"numpy"``,
        ``"scatter"`` or ``"codegen"``); every kernel dispatches through the
        :mod:`repro.engine` registry under this name.
    """

    dt: float
    gravity: float = GRAVITY
    omega: float = OMEGA
    apvm_upwinding: float = APVM_UPWINDING
    thickness_adv_order: int = 2
    coef_3rd_order: float = 0.25
    viscosity: float = 0.0
    #: Del4 hyperdiffusion coefficient ``nu_4`` (m^4 s^-1); 0 disables it.
    #: Scale-selective: damps grid noise much faster than resolved flow
    #: (MPAS ``config_h_mom_eddy_visc4``).
    hyperviscosity: float = 0.0
    advection_only: bool = False
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")
        if self.thickness_adv_order not in (2, 3, 4):
            raise ValueError("thickness_adv_order must be 2, 3 or 4")
        if self.viscosity < 0.0:
            raise ValueError("viscosity must be non-negative")
        if self.hyperviscosity < 0.0:
            raise ValueError("hyperviscosity must be non-negative")
        from ..engine import BACKENDS  # deferred: config must stay import-light

        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")

    def coriolis(self, lat: np.ndarray) -> np.ndarray:
        """Coriolis parameter at the given latitudes (radians)."""
        return 2.0 * self.omega * np.sin(lat)
