"""Run history recording and serialization (the MPAS "output stream").

The MPAS framework writes periodic output streams during time integration;
this module provides the equivalent for the reproduction: a
:class:`HistoryWriter` callback that snapshots selected fields at a fixed
step interval and serializes everything (with the run's invariant record) to
a compressed ``.npz`` archive for later analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..mesh.mesh import Mesh
from .config import SWConfig
from .timestep import StepResult

__all__ = ["HistoryWriter", "History", "load_history"]

#: Snapshot-able fields: name -> extractor(StepResult).
_FIELDS = {
    "h": lambda r: r.state.h,
    "u": lambda r: r.state.u,
    "ke": lambda r: r.diagnostics.ke,
    "vorticity": lambda r: r.diagnostics.vorticity,
    "divergence": lambda r: r.diagnostics.divergence,
    "pv_vertex": lambda r: r.diagnostics.pv_vertex,
    "uReconstructZonal": lambda r: r.reconstruction.uReconstructZonal,
    "uReconstructMeridional": lambda r: r.reconstruction.uReconstructMeridional,
}


@dataclass
class History:
    """An in-memory run history: times plus per-field snapshot stacks."""

    times: np.ndarray  # (nSnapshots,) seconds
    fields: dict[str, np.ndarray]  # name -> (nSnapshots, nPoints)

    @property
    def n_snapshots(self) -> int:
        return int(self.times.shape[0])

    def series(self, name: str, index: int) -> np.ndarray:
        """Time series of one point of one field."""
        return self.fields[name][:, index]


class HistoryWriter:
    """Snapshot recorder usable as a ``ShallowWaterModel.run`` callback.

    Parameters
    ----------
    mesh : Mesh
    config : SWConfig
    fields : tuple of str
        Which fields to record (subset of ``h``, ``u``, ``ke``,
        ``vorticity``, ``divergence``, ``pv_vertex``,
        ``uReconstructZonal``, ``uReconstructMeridional``).
    interval : int
        Record every this-many steps.
    """

    def __init__(
        self,
        mesh: Mesh,
        config: SWConfig,
        fields: tuple[str, ...] = ("h", "u"),
        interval: int = 1,
    ) -> None:
        unknown = set(fields) - set(_FIELDS)
        if unknown:
            raise ValueError(f"unknown history fields: {sorted(unknown)}")
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.mesh = mesh
        self.config = config
        self.field_names = fields
        self.interval = interval
        self._times: list[float] = []
        self._snaps: dict[str, list[np.ndarray]] = {f: [] for f in fields}

    # The ShallowWaterModel callback signature.
    def __call__(self, step: int, result: StepResult) -> None:
        if step % self.interval:
            return
        self._times.append(step * self.config.dt)
        for name in self.field_names:
            self._snaps[name].append(_FIELDS[name](result).copy())

    def history(self) -> History:
        return History(
            times=np.asarray(self._times),
            fields={k: np.asarray(v) for k, v in self._snaps.items()},
        )

    def save(self, path: str | Path) -> None:
        """Write the recorded history to a compressed npz archive."""
        hist = self.history()
        np.savez_compressed(
            Path(path),
            times=hist.times,
            field_names=np.array(list(self.field_names)),
            **{f"field_{k}": v for k, v in hist.fields.items()},
        )


def load_history(path: str | Path) -> History:
    """Load a history previously written by :meth:`HistoryWriter.save`."""
    with np.load(Path(path)) as data:
        names = [str(n) for n in data["field_names"]]
        return History(
            times=data["times"],
            fields={n: data[f"field_{n}"] for n in names},
        )
