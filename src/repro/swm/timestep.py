"""RK-4 time stepping, structured exactly as Algorithm 1 of the paper.

Every line of Algorithm 1 is a named kernel here so that the pattern catalog
(:mod:`repro.patterns`), the data-flow graph (:mod:`repro.dataflow`) and the
hybrid schedulers (:mod:`repro.hybrid`) can refer to the same units the paper
uses:

====  =============================  ====================================
line  kernel                         role
====  =============================  ====================================
3     ``compute_tend``               RHS evaluation
4     ``enforce_boundary_edge``      zero tendencies on boundary edges
6     ``compute_next_substep_state`` provisional state for the next stage
7/11  ``compute_solve_diagnostics``  diagnostics of the new (sub)state
8/10  ``accumulative_update``        accumulate the RK-weighted tendency
12    ``mpas_reconstruct``           cell-centre velocity vectors
====  =============================  ====================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.mesh import Mesh
from ..obs.instrument import kernel_span, pattern_span
from .config import SWConfig
from .state import Diagnostics, Reconstruction, State

__all__ = ["RK4Integrator", "StepResult", "RK_SUBSTEP_WEIGHTS", "RK_ACCUMULATE_WEIGHTS"]

#: Provisional-state weights (fraction of dt) for stages 1..3 (Alg. 1 line 6).
RK_SUBSTEP_WEIGHTS: tuple[float, float, float] = (0.5, 0.5, 1.0)

#: Accumulation weights (fraction of dt) for stages 1..4 (Alg. 1 lines 8/10).
RK_ACCUMULATE_WEIGHTS: tuple[float, float, float, float] = (
    1.0 / 6.0,
    1.0 / 3.0,
    1.0 / 3.0,
    1.0 / 6.0,
)


@dataclass
class StepResult:
    """State and diagnostics after one full RK-4 step."""

    state: State
    diagnostics: Diagnostics
    reconstruction: Reconstruction


def compute_next_substep_state(
    state: State, tend_h: np.ndarray, tend_u: np.ndarray, weight_dt: float
) -> State:
    """Provisional state for the next RK stage (local X-type computation)."""
    with pattern_span("X2", n_points=state.h.size):
        h = state.h + weight_dt * tend_h
    with pattern_span("X3", n_points=state.u.size):
        u = state.u + weight_dt * tend_u
    return State(h=h, u=u)


def accumulative_update(
    acc: State, tend_h: np.ndarray, tend_u: np.ndarray, weight_dt: float
) -> None:
    """Accumulate the RK-weighted tendency into ``acc`` in place."""
    with pattern_span("X4", n_points=acc.h.size):
        acc.h += weight_dt * tend_h
    with pattern_span("X5", n_points=acc.u.size):
        acc.u += weight_dt * tend_u


class RK4Integrator:
    """Drives the shallow-water core through RK-4 steps.

    The six Algorithm-1 kernels are resolved by *name* from the engine's
    :func:`~repro.engine.default_registry` (or an explicit ``registry``), so
    an instrumented or substituted kernel table drives the exact same loop.

    Parameters
    ----------
    mesh : Mesh
    config : SWConfig
    b_cell : (nCells,) array
        Bottom topography.
    f_vertex : (nVertices,) array
        Coriolis parameter at vorticity points.
    boundary_mask : (nEdges,) bool array, optional
        Edges on which ``enforce_boundary_edge`` zeroes the tendency.
    registry : KernelRegistry, optional
        Kernel table to resolve the Algorithm-1 names from; defaults to the
        process-wide engine registry.
    """

    def __init__(
        self,
        mesh: Mesh,
        config: SWConfig,
        b_cell: np.ndarray,
        f_vertex: np.ndarray,
        boundary_mask: np.ndarray | None = None,
        registry=None,
    ) -> None:
        from ..engine import default_registry

        reg = registry if registry is not None else default_registry()
        self._compute_tend = reg.kernel("compute_tend")
        self._enforce_boundary_edge = reg.kernel("enforce_boundary_edge")
        self._compute_next_substep_state = reg.kernel("compute_next_substep_state")
        self._compute_solve_diagnostics = reg.kernel("compute_solve_diagnostics")
        self._accumulative_update = reg.kernel("accumulative_update")
        self._mpas_reconstruct = reg.kernel("mpas_reconstruct")
        self.mesh = mesh
        self.config = config
        self.b_cell = np.asarray(b_cell, dtype=np.float64)
        self.f_vertex = np.asarray(f_vertex, dtype=np.float64)
        if self.b_cell.shape != (mesh.nCells,):
            raise ValueError("b_cell must have shape (nCells,)")
        if self.f_vertex.shape != (mesh.nVertices,):
            raise ValueError("f_vertex must have shape (nVertices,)")
        self.boundary_mask = (
            np.zeros(mesh.nEdges, dtype=bool)
            if boundary_mask is None
            else np.asarray(boundary_mask, dtype=bool)
        )
        if config.plan:
            # Compile (and warm the cache for) the fused plan up front so
            # the first step does not pay compilation inside the timed loop.
            from ..engine.plan import compiled_plan

            compiled_plan(mesh, config, registry=registry)

    # The halo-exchange hook lets the distributed driver reuse this exact
    # integrator; serial runs leave it as a no-op.  ``sync`` names the
    # Algorithm-1 synchronization point (``"pre@s1"`` .. ``"post@s4"``) so
    # a schedule-aware runner can elide or thin the exchange per point.
    def exchange_halo(self, state: State, sync: str = "") -> None:  # pragma: no cover - hook
        """Overridden by the distributed runner; no-op in serial."""

    def diagnostics_for(self, state: State) -> Diagnostics:
        """Diagnostics consistent with an arbitrary state (e.g. the IC)."""
        return self._compute_solve_diagnostics(
            self.mesh, state, self.f_vertex, self.config
        )

    def step(self, state: State, diag: Diagnostics) -> StepResult:
        """Advance one full time step (Algorithm 1, inner loop).

        ``diag`` must be consistent with ``state`` (as produced by the
        previous step, or by :meth:`diagnostics_for` for the first one).
        """
        dt = self.config.dt
        provis = state.copy()
        provis_diag = diag
        acc = state.copy()

        backend = self.config.backend
        new_diag: Diagnostics | None = None
        for stage in range(4):
            self.exchange_halo(provis, sync=f"pre@s{stage + 1}")
            with kernel_span("compute_tend", stage=stage, backend=backend):
                tend_h, tend_u = self._compute_tend(
                    self.mesh, provis, provis_diag, self.b_cell, self.config
                )
            with kernel_span("enforce_boundary_edge", stage=stage, backend=backend):
                self._enforce_boundary_edge(tend_u, self.boundary_mask)
            with kernel_span("accumulative_update", stage=stage, backend=backend):
                self._accumulative_update(
                    acc, tend_h, tend_u, RK_ACCUMULATE_WEIGHTS[stage] * dt
                )
            if stage < 3:
                with kernel_span(
                    "compute_next_substep_state", stage=stage, backend=backend
                ):
                    provis = self._compute_next_substep_state(
                        state, tend_h, tend_u, RK_SUBSTEP_WEIGHTS[stage] * dt
                    )
                self.exchange_halo(provis, sync=f"post@s{stage + 1}")
                with kernel_span(
                    "compute_solve_diagnostics", stage=stage, backend=backend
                ):
                    provis_diag = self._compute_solve_diagnostics(
                        self.mesh, provis, self.f_vertex, self.config
                    )
            else:
                self.exchange_halo(acc, sync="post@s4")
                with kernel_span(
                    "compute_solve_diagnostics", stage=stage, backend=backend
                ):
                    new_diag = self._compute_solve_diagnostics(
                        self.mesh, acc, self.f_vertex, self.config
                    )
        with kernel_span("mpas_reconstruct", backend=backend):
            if self.config.plan:
                # Looked up per step (not cached on self): a config
                # mutation such as the rollback handler halving dt maps to
                # a different plan key and must recompile transparently.
                from ..engine.plan import compiled_plan

                recon = compiled_plan(self.mesh, self.config).reconstruct(acc.u)
            else:
                recon = self._mpas_reconstruct(self.mesh, acc.u, backend=backend)
        assert new_diag is not None
        return StepResult(state=acc, diagnostics=new_diag, reconstruction=recon)
