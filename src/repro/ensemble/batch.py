"""The batched RK-4 integrator: N members per step through one fused plan.

:class:`BatchedIntegrator` mirrors :class:`repro.swm.timestep.RK4Integrator`
line for line — same stage order, same weight products, same in-place
accumulation — but every field is an ``(n, N)`` member block and every
kernel is a stage of a *batched* :class:`~repro.engine.plan.ExecutionPlan`
(``compiled_plan(..., batch=N)``).  Each CSR operator is applied to the
whole block in one multi-vector matvec, which amortizes the operator walk
across the ensemble; the batched stages are per-column bitwise identical
to the serial ones (see *Batched plans* in :mod:`repro.engine.plan`), so
column ``k`` of every step equals a serial step of member ``k`` bit for
bit.

The integrator always executes through the batched plan, even for configs
with ``plan=False``: the default ``plan_fuse="exact"`` program replays the
unfused sparse backend's arithmetic bitwise (the PR 6 contract, asserted
by the golden suite), so members of a ``backend="sparse"`` run match their
serial unfused reference exactly as well.

Divergence isolation: the ``unstable`` mask handed to each diagnostics
call receives per-member flags from the ``E1`` stability guard instead of
an exception; all batched stages are column-independent, so a member gone
non-finite cannot leak into its neighbours' columns.
"""

from __future__ import annotations

import numpy as np

from ..engine.plan import compiled_plan
from ..mesh.mesh import Mesh
from ..swm.boundary import enforce_boundary_edge
from ..swm.config import SWConfig
from ..swm.state import Diagnostics, State
from ..swm.timestep import RK_ACCUMULATE_WEIGHTS, RK_SUBSTEP_WEIGHTS, StepResult

__all__ = ["BatchedIntegrator"]


class BatchedIntegrator:
    """RK-4 over an ``(n, N)`` batched state, one fused plan per step.

    Parameters mirror :class:`~repro.swm.timestep.RK4Integrator`;
    ``n_members`` is the batch width N and the ``state``/``diag`` passed to
    :meth:`step` must carry the member axis (``State.stack``).
    """

    def __init__(
        self,
        mesh: Mesh,
        config: SWConfig,
        b_cell: np.ndarray,
        f_vertex: np.ndarray,
        n_members: int,
        registry=None,
    ) -> None:
        if config.backend != "sparse":
            raise ValueError(
                "batched integration requires backend='sparse' "
                f"(got backend={config.backend!r})"
            )
        if int(n_members) < 1:
            raise ValueError(f"n_members must be >= 1, got {n_members!r}")
        self.mesh = mesh
        self.config = config
        self.n_members = int(n_members)
        self.b_cell = np.asarray(b_cell, dtype=np.float64)
        self.f_vertex = np.asarray(f_vertex, dtype=np.float64)
        if self.b_cell.shape != (mesh.nCells,):
            raise ValueError("b_cell must have shape (nCells,)")
        if self.f_vertex.shape != (mesh.nVertices,):
            raise ValueError("f_vertex must have shape (nVertices,)")
        self.boundary_mask = np.zeros(mesh.nEdges, dtype=bool)
        self._registry = registry
        # Warm the batched plan up front, like RK4Integrator does for
        # plan=True runs, so step one is not a compile.
        self._plan()

    def _plan(self):
        # Looked up per use (not cached on self): a config mutation such as
        # a rollback halving dt maps to a different plan key and must
        # recompile transparently, mirroring RK4Integrator.
        return compiled_plan(
            self.mesh, self.config, registry=self._registry, batch=self.n_members
        )

    def diagnostics_for(
        self, state: State, unstable: np.ndarray | None = None
    ) -> Diagnostics:
        """Batched diagnostics consistent with an arbitrary batched state."""
        state.validate_shapes(self.mesh.nCells, self.mesh.nEdges, self.n_members)
        return self._plan().diagnostics(state, self.f_vertex, unstable=unstable)

    def step(
        self,
        state: State,
        diag: Diagnostics,
        unstable: np.ndarray | None = None,
    ) -> StepResult:
        """Advance all N members one step (Algorithm 1, batched).

        ``unstable`` — an ``(N,)`` bool array — collects per-member
        stability flags from the diagnostics stages; without it a
        non-positive ``h_vertex`` in *any* member raises, exactly like the
        serial integrator.
        """
        plan = self._plan()
        dt = self.config.dt
        provis = state.copy()
        provis_diag = diag
        acc = state.copy()

        new_diag: Diagnostics | None = None
        for stage in range(4):
            tend_h, tend_u = plan.tend(provis, provis_diag, self.b_cell)
            enforce_boundary_edge(tend_u, self.boundary_mask)
            w_acc = RK_ACCUMULATE_WEIGHTS[stage] * dt
            acc.h += w_acc * tend_h
            acc.u += w_acc * tend_u
            if stage < 3:
                w_sub = RK_SUBSTEP_WEIGHTS[stage] * dt
                provis = State(
                    h=state.h + w_sub * tend_h,
                    u=state.u + w_sub * tend_u,
                )
                provis_diag = plan.diagnostics(
                    provis, self.f_vertex, unstable=unstable
                )
            else:
                new_diag = plan.diagnostics(acc, self.f_vertex, unstable=unstable)
        recon = plan.reconstruct(acc.u)
        assert new_diag is not None
        return StepResult(state=acc, diagnostics=new_diag, reconstruction=recon)
