"""Deterministic per-member initial conditions for ensemble runs.

Each member perturbs the test case's discretized thickness field with a
relative Gaussian perturbation ``h * (1 + amplitude * xi)``, drawn from an
rng stream seeded by ``[ensemble_seed, member]`` — so member ``k``'s
initial condition depends only on ``(case, mesh, seed, amplitude, k)``,
never on the ensemble width or the execution mode.  The batched driver and
the serial reference path both build their ICs through these functions,
which is what makes "member ``k`` of the batch equals the same-seed serial
run" hold bitwise from step 0.
"""

from __future__ import annotations

import numpy as np

from ..mesh.mesh import Mesh
from ..swm.state import State
from ..swm.testcases import TestCase, initialize

__all__ = [
    "member_rng",
    "perturbed_thickness",
    "perturbed_member",
    "member_initial_state",
    "ensemble_initial_states",
]


def member_rng(seed: int, member: int) -> np.random.Generator:
    """The rng stream of one ensemble member (independent across members)."""
    return np.random.default_rng([int(seed), int(member)])


def perturbed_thickness(
    h: np.ndarray, rng: np.random.Generator, amplitude: float
) -> np.ndarray:
    """``h * (1 + amplitude * N(0, 1))`` — the relative IC perturbation."""
    return h * (1.0 + amplitude * rng.standard_normal(h.shape))


def perturbed_member(
    base: State, member: int, seed: int, amplitude: float
) -> State:
    """Member ``member``'s initial state from the unperturbed base state."""
    if amplitude == 0.0:
        return base.copy()
    rng = member_rng(seed, member)
    return State(
        h=perturbed_thickness(base.h, rng, amplitude),
        u=base.u.copy(),
    )


def member_initial_state(
    mesh: Mesh, case: TestCase, member: int, seed: int, amplitude: float
) -> tuple[State, np.ndarray]:
    """One member's ``(state, topography)`` — the serial reference entry.

    Bitwise identical to what :func:`ensemble_initial_states` builds for
    the same member (both perturb the same deterministic base IC).
    """
    base, b = initialize(mesh, case)
    return perturbed_member(base, member, seed, amplitude), b


def ensemble_initial_states(
    mesh: Mesh, case: TestCase, n_members: int, seed: int, amplitude: float
) -> tuple[list[State], np.ndarray]:
    """All N member initial states plus the shared topography field."""
    if n_members < 1:
        raise ValueError(f"n_members must be >= 1, got {n_members!r}")
    base, b = initialize(mesh, case)
    states = [perturbed_member(base, k, seed, amplitude) for k in range(n_members)]
    return states, b
