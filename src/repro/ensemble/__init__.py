"""Batched ensemble execution: N scenarios through one compiled plan.

Serving production traffic means many concurrent scenarios, not one big
run.  This package adds the batch dimension on top of the execution stack:

* :mod:`~repro.ensemble.members` — deterministic per-member initial
  conditions (seeded relative thickness perturbations, one independent
  rng stream per member).
* :mod:`~repro.ensemble.batch` — :class:`~repro.ensemble.batch.
  BatchedIntegrator`, the RK-4 loop over ``(n, N)`` member blocks driven
  by a batched :class:`~repro.engine.plan.ExecutionPlan`; column ``k`` is
  bitwise identical to a serial integration of member ``k``.
* :mod:`~repro.ensemble.run` — :class:`~repro.ensemble.run.EnsembleRun`,
  the lockstep driver with per-member invariants and divergence verdicts
  (a diverging member is quarantined or detached to a serial rollback
  continuation without stalling the batch), producing one
  :class:`~repro.swm.model.RunResult` per member.

The public entry point is :func:`repro.api.run_ensemble` (CLI:
``python -m repro run --ensemble N``).
"""

from .batch import BatchedIntegrator
from .members import ensemble_initial_states, member_initial_state, member_rng
from .run import EnsembleResult, EnsembleRun, MemberVerdict, run_ensemble

__all__ = [
    "BatchedIntegrator",
    "EnsembleResult",
    "EnsembleRun",
    "MemberVerdict",
    "ensemble_initial_states",
    "member_initial_state",
    "member_rng",
    "run_ensemble",
]
