"""The lockstep ensemble driver: N members, one plan per step, per-member
verdicts.

:class:`EnsembleRun` packs N perturbed-IC members into one batched state
and advances them together through a batched execution plan
(:class:`~repro.ensemble.batch.BatchedIntegrator`), keeping per-member
invariant trajectories and watchdog verdicts.  Divergence handling reuses
the resilience stack's policy knobs:

``guard_policy="halt"`` (default)
    A member whose column goes non-finite or trips the ``E1`` stability
    guard is *quarantined*: its verdict becomes ``"diverged"``, its result
    slot ``None``, and the batch keeps stepping — columns are independent
    under every batched stage, so the poison cannot spread.
``guard_policy="rollback"``
    The diverged member is *detached*: its column is restored from the
    newest in-memory snapshot (taken every ``checkpoint_interval`` steps,
    or the IC), ``dt`` is halved for that member alone, and it finishes as
    a serial :class:`~repro.swm.model.ShallowWaterModel` continuation —
    the PR 3 rollback semantics, applied per member, while the healthy
    members never stall.

Healthy members are returned as ordinary per-member
:class:`~repro.swm.model.RunResult`\\ s whose state/diagnostics/invariants
are **bitwise identical** to a serial run of the same member (the batched
plan's per-column contract plus the shared IC builders of
:mod:`~repro.ensemble.members`).  ``ensemble_mode="serial"`` runs the same
members one by one through the serial model — the reference path the tests
compare against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..mesh.mesh import Mesh
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..resilience.guards import NumericalBlowup, member_finite_mask
from ..swm.config import SWConfig
from ..swm.error import Invariants, invariants
from ..swm.model import RunResult, ShallowWaterModel
from ..swm.state import State
from ..swm.testcases import TestCase
from .batch import BatchedIntegrator
from .members import ensemble_initial_states

__all__ = ["MemberVerdict", "EnsembleResult", "EnsembleRun", "run_ensemble"]


@dataclass(frozen=True)
class MemberVerdict:
    """Outcome of one ensemble member."""

    member: int
    status: str  # "ok", "diverged" or "recovered"
    failed_step: int | None = None
    detail: str = ""


@dataclass
class EnsembleResult:
    """Outcome of an ensemble run: one result and one verdict per member.

    ``members[k]`` is ``None`` exactly when ``verdicts[k].status ==
    "diverged"`` (the member was quarantined and produced no trajectory).
    """

    members: list[RunResult | None]
    verdicts: list[MemberVerdict]
    steps: int
    invariant_history: list[Invariants] = field(default_factory=list)

    @property
    def n_members(self) -> int:
        """Ensemble width (including diverged members)."""
        return len(self.members)

    def survivors(self) -> list[int]:
        """Indices of members that produced a result."""
        return [k for k, r in enumerate(self.members) if r is not None]

    def mean_invariants(self) -> list[Invariants]:
        """Ensemble-mean invariant trajectory over the lockstep survivors.

        Averages record-by-record across the ``"ok"`` members (detached
        continuations record on their own clock and are excluded).
        Deterministic for a fixed member order, so the golden suite can
        pin it bitwise.
        """
        full = [
            r.invariant_history
            for r, v in zip(self.members, self.verdicts)
            if r is not None and v.status == "ok"
        ]
        if not full:
            return []
        length = len(full[0])
        return [
            Invariants(
                mass=float(np.mean([h[i].mass for h in full])),
                total_energy=float(np.mean([h[i].total_energy for h in full])),
                potential_enstrophy=float(
                    np.mean([h[i].potential_enstrophy for h in full])
                ),
            )
            for i in range(length)
        ]

    def summary_rows(self) -> list[tuple]:
        """``(member, status, steps, mass_drift, failed_step)`` per member."""
        rows = []
        for k, (res, verdict) in enumerate(zip(self.members, self.verdicts)):
            if res is None:
                rows.append((k, verdict.status, 0, float("nan"), verdict.failed_step))
            else:
                rows.append(
                    (k, verdict.status, res.steps, res.mass_drift(),
                     verdict.failed_step)
                )
        return rows

    def summary_table(self) -> str:
        """A fixed-width member table (the CLI / report rendering)."""
        lines = [
            "member  status     steps  mass_drift    failed_at",
            "------  ---------  -----  ------------  ---------",
        ]
        for member, status, steps, drift, failed in self.summary_rows():
            failed_s = "-" if failed is None else str(failed)
            drift_s = "-" if drift != drift else f"{drift:.3e}"
            lines.append(
                f"{member:6d}  {status:9s}  {steps:5d}  {drift_s:>12s}  {failed_s:>9s}"
            )
        return "\n".join(lines)


class EnsembleRun:
    """Driver for one ensemble: build members, advance lockstep, judge them.

    Parameters
    ----------
    mesh, case, config
        The shared scenario.  ``config.ensemble`` must be >= 1 and is the
        member count; ``config.ensemble_seed`` / ``config.
        ensemble_amplitude`` control the per-member IC perturbation;
        ``config.ensemble_mode`` selects lockstep batching or the serial
        reference path.
    initial_states
        Optional explicit member ICs (parameter sweeps, tests).  Length
        must equal ``config.ensemble``; topography still comes from the
        case.
    """

    def __init__(
        self,
        mesh: Mesh,
        case: TestCase,
        config: SWConfig,
        initial_states: list[State] | None = None,
        registry=None,
    ) -> None:
        if config.ensemble < 1:
            raise ValueError(
                "EnsembleRun requires config.ensemble >= 1 "
                f"(got {config.ensemble!r}); plain runs go through repro.api.run"
            )
        if initial_states is not None and len(initial_states) != config.ensemble:
            raise ValueError(
                f"initial_states has {len(initial_states)} members, "
                f"config.ensemble is {config.ensemble}"
            )
        self.mesh = mesh
        self.case = case
        self.config = config
        self.registry = registry
        self._explicit_states = initial_states

    # ------------------------------------------------------------- plumbing
    def _f_vertex(self) -> np.ndarray:
        if self.case.coriolis is not None:
            return self.case.coriolis(self.mesh.metrics.xVertex)
        return self.config.coriolis(self.mesh.metrics.latVertex)

    def _member_states(self) -> tuple[list[State], np.ndarray]:
        from ..swm.testcases import initialize

        if self._explicit_states is not None:
            _, b = initialize(self.mesh, self.case)
            return [s.copy() for s in self._explicit_states], b
        return ensemble_initial_states(
            self.mesh,
            self.case,
            self.config.ensemble,
            self.config.ensemble_seed,
            self.config.ensemble_amplitude,
        )

    def _member_config(self, **overrides) -> SWConfig:
        """A private config copy for one detached member (never shared: the
        serial model mutates ``dt`` on rollback)."""
        return dataclasses.replace(
            self.config, ensemble=0, parallel="serial", ranks=1, **overrides
        )

    # ------------------------------------------------------------ execution
    def execute(self, steps: int, invariant_interval: int = 0) -> EnsembleResult:
        """Advance all members ``steps`` steps; one verdict per member."""
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps!r}")
        get_registry().gauge("ensemble.members").set(self.config.ensemble)
        if self.config.ensemble_mode == "serial":
            return self._execute_serial(steps, invariant_interval)
        return self._execute_lockstep(steps, invariant_interval)

    def _execute_serial(self, steps: int, invariant_interval: int) -> EnsembleResult:
        """The reference path: each member as its own serial model run."""
        states, b = self._member_states()
        f_vertex = self._f_vertex()
        results: list[RunResult | None] = []
        verdicts: list[MemberVerdict] = []
        tracer = get_tracer()
        for k, state in enumerate(states):
            model = ShallowWaterModel.from_state(
                self.mesh, self._member_config(), self.case, state, b, f_vertex
            )
            with tracer.span("ensemble.member", category="ensemble", member=k):
                try:
                    res = model.run(
                        steps=steps, invariant_interval=invariant_interval
                    )
                except (NumericalBlowup, FloatingPointError) as exc:
                    get_registry().counter(
                        "ensemble.member.diverged", member=str(k)
                    ).inc()
                    results.append(None)
                    verdicts.append(
                        MemberVerdict(k, "diverged", None, str(exc))
                    )
                    continue
            get_registry().counter(
                "ensemble.member.steps", member=str(k)
            ).inc(res.steps)
            results.append(res)
            verdicts.append(MemberVerdict(k, "ok"))
        return self._finish(results, verdicts, steps)

    def _execute_lockstep(self, steps: int, invariant_interval: int) -> EnsembleResult:
        config = self.config
        n = config.ensemble
        states, b = self._member_states()
        f_vertex = self._f_vertex()
        integ = BatchedIntegrator(
            self.mesh, config, b, f_vertex, n, registry=self.registry
        )
        packed = State.stack(states)
        unstable = np.zeros(n, dtype=bool)
        diag = integ.diagnostics_for(packed, unstable=unstable)

        alive = np.ones(n, dtype=bool)
        failed_step = [None] * n
        verdict_detail = [""] * n
        histories: list[list[Invariants]] = [[] for _ in range(n)]
        history_steps: list[int] = []
        detached: dict[int, RunResult | None] = {}

        def record(step: int) -> None:
            history_steps.append(step)
            for k in np.flatnonzero(alive):
                histories[k].append(
                    invariants(
                        self.mesh, packed.member(k), diag.member(k), b,
                        config.gravity,
                    )
                )

        def judge(step: int) -> None:
            bad = (unstable | member_finite_mask(packed)) & alive
            for k in np.flatnonzero(bad):
                alive[k] = False
                failed_step[k] = step
                get_registry().counter(
                    "ensemble.member.diverged", member=str(int(k))
                ).inc()
                if config.guard_policy == "rollback":
                    detached[int(k)] = self._detach(
                        int(k), snapshot_step, snapshot, b, f_vertex,
                        steps, invariant_interval, verdict_detail,
                    )
                else:
                    verdict_detail[k] = (
                        "member went non-finite or non-positive "
                        f"at step {step} (guard_policy='halt')"
                    )

        # In-memory rollback anchors (per-member columns of the whole
        # batch); refreshed on the serial checkpoint cadence.
        snapshot_step = 0
        snapshot = packed.copy()
        judge(0)
        record(0)
        step_timer = get_registry().timer("ensemble.step")
        for step in range(1, steps + 1):
            with step_timer.time():
                result = integ.step(packed, diag, unstable=unstable)
            packed, diag = result.state, result.diagnostics
            recon = result.reconstruction
            judge(step)
            if (
                config.checkpoint_interval
                and step % config.checkpoint_interval == 0
            ):
                snapshot_step, snapshot = step, packed.copy()
            if invariant_interval and step % invariant_interval == 0:
                record(step)
        if history_steps[-1] != steps:
            record(steps)

        results: list[RunResult | None] = []
        verdicts: list[MemberVerdict] = []
        elapsed = steps * config.dt
        for k in range(n):
            if alive[k]:
                get_registry().counter(
                    "ensemble.member.steps", member=str(k)
                ).inc(steps)
                results.append(
                    RunResult(
                        state=packed.member(k),
                        diagnostics=diag.member(k),
                        reconstruction=recon.member(k),
                        steps=steps,
                        elapsed_seconds=elapsed,
                        invariant_history=histories[k],
                    )
                )
                verdicts.append(MemberVerdict(k, "ok"))
            elif k in detached and detached[k] is not None:
                results.append(detached[k])
                verdicts.append(
                    MemberVerdict(k, "recovered", failed_step[k], verdict_detail[k])
                )
            else:
                results.append(None)
                verdicts.append(
                    MemberVerdict(k, "diverged", failed_step[k], verdict_detail[k])
                )
        return self._finish(results, verdicts, steps)

    def _detach(
        self,
        member: int,
        snapshot_step: int,
        snapshot: State,
        b: np.ndarray,
        f_vertex: np.ndarray,
        steps: int,
        invariant_interval: int,
        verdict_detail: list[str],
    ) -> RunResult | None:
        """Finish one diverged member serially from its last snapshot.

        The PR 3 rollback semantics applied per member: restore the
        member's column, halve its (private) ``dt`` and integrate the
        remaining steps through the serial model — the batch never waits.
        Returns ``None`` when the continuation blows up too.
        """
        remaining = steps - snapshot_step
        config = self._member_config(dt=self.config.dt / 2.0, ensemble_mode="serial")
        detail = (
            f"rolled back to step {snapshot_step}, continuing serially "
            f"with dt={config.dt:.6g} for {remaining} steps"
        )
        verdict_detail[member] = detail
        if remaining < 1:
            return None
        tracer = get_tracer()
        with tracer.span("ensemble.detach", category="ensemble", member=member):
            # from_state primes the diagnostics, which raises right here if
            # the snapshot itself is already poisoned (divergence before the
            # first refresh) — the member is then unrecoverable.
            try:
                model = ShallowWaterModel.from_state(
                    self.mesh, config, self.case, snapshot.member(member), b,
                    f_vertex,
                )
                res = model.run(
                    steps=remaining, invariant_interval=invariant_interval
                )
            except (NumericalBlowup, FloatingPointError) as exc:
                verdict_detail[member] = f"{detail}; continuation failed: {exc}"
                return None
        get_registry().counter(
            "ensemble.member.steps", member=str(member)
        ).inc(res.steps)
        return res

    def _finish(
        self,
        results: list[RunResult | None],
        verdicts: list[MemberVerdict],
        steps: int,
    ) -> EnsembleResult:
        out = EnsembleResult(members=results, verdicts=verdicts, steps=steps)
        ok = [r for r, v in zip(results, verdicts) if r is not None and v.status == "ok"]
        if ok:
            out.invariant_history = ok[0].invariant_history
        get_registry().gauge("ensemble.survivors").set(len(out.survivors()))
        return out


def run_ensemble(
    mesh: Mesh,
    case: TestCase,
    config: SWConfig,
    steps: int,
    invariant_interval: int = 0,
    initial_states: list[State] | None = None,
    registry=None,
) -> EnsembleResult:
    """Build and execute one :class:`EnsembleRun` (the package-level entry).

    The public, token-friendly wrapper (case names, ``days``, mesh levels)
    is :func:`repro.api.run_ensemble`.
    """
    return EnsembleRun(
        mesh, case, config, initial_states=initial_states, registry=registry
    ).execute(steps, invariant_interval=invariant_interval)
