"""Durable runs: crash-consistent run directories with bitwise resume.

A run that matters is a run that can die — OOM-killed, preempted, power
lost — and be *continued*, not restarted.  Delmas & Soulaïmani (PAPERS.md)
treat restart files as first-class artifacts of production SWE runs; this
module gives the reproduction the same property on top of the existing
restart-file machinery (:meth:`repro.swm.model.ShallowWaterModel.
save_checkpoint`), with one extra guarantee: **the newest complete
checkpoint is always discoverable from the disk alone**, no matter where in
the write sequence the process died.

The on-disk layout of a run directory::

    <run_dir>/
        manifest.json           # the single source of truth
        checkpoints/
            auto-00000000.npz   # committed restart files
            auto-00000005.npz
            quarantine/         # torn checkpoints, moved aside on resume

and the crash-consistency protocol:

1. every checkpoint is written atomically (``*.tmp`` + ``os.replace`` +
   fsync), so a file under its final name is never half-written;
2. after each checkpoint publish, the manifest is rewritten — also
   atomically — *committing* the checkpoint: step, file name, byte length
   and SHA-256 enter ``manifest["checkpoints"]``;
3. resume trusts only the manifest: uncommitted checkpoint files (published
   in the window before the manifest write, or mid-write ``*.tmp`` debris)
   are deleted, committed files are re-hashed and quarantined if they do
   not match their recorded digest, and the run continues from the newest
   checkpoint that survives.

Because checkpoints land at fixed multiples of ``config.
checkpoint_interval`` — a resumed run keeps the cadence of the original —
and the restart contract is bitwise (diagnostics are a pure function of the
state), a run killed at *any* point and resumed produces the identical
final state to one that was never interrupted, in serial and in the
decomposed pool (ranks re-derive their partition from the restored global
state via ``load_state``).  The crash-chaos tests prove exactly that with
real ``SIGKILL``\\ s (the ``process.crash`` fault site).

Entry points: :func:`run_durable` (fresh run into a directory),
:func:`resume_durable` (continue one), surfaced as
``repro.api.run(run_dir=... / resume=...)`` and ``python -m repro run
--run-dir/--resume``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..swm.config import SWConfig
from ..swm.state import State
from .integrity import quarantine

__all__ = [
    "MANIFEST_VERSION",
    "MANIFEST_NAME",
    "ManifestError",
    "DurableRun",
    "run_durable",
    "resume_durable",
]

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
CHECKPOINT_DIRNAME = "checkpoints"


class ManifestError(RuntimeError):
    """A run directory cannot be (re)used: missing, incompatible or complete.

    The message always says what to do about it — resume elsewhere, pass
    the matching mesh/config, or start a fresh directory.
    """


def sha256_file(path: str | Path, chunk: int = 1 << 20) -> str:
    """Streamed SHA-256 hex digest of a file."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Publish a JSON document with temp-write + fsync + ``os.replace``."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _mesh_identity(mesh) -> dict:
    """What the manifest records about the mesh: fingerprint + rebuild hints.

    The fingerprint (content hash of every array the operators consume) is
    the compatibility check; level/lloyd/radius let :func:`resume_durable`
    rebuild the mesh through the cache without being handed one.  A mesh
    loaded from the disk cache loses its ``info`` provenance, so the level
    falls back to the persisted ``icos<level>`` name.
    """
    from ..engine.sparse import mesh_fingerprint

    info = getattr(mesh, "info", None) or {}
    level = info.get("level")
    name = str(getattr(mesh, "name", ""))
    if level is None and name.startswith("icos"):
        try:
            level = int(name[4:])
        except ValueError:
            level = None
    return {
        "fingerprint": mesh_fingerprint(mesh),
        "name": name,
        "level": level,
        "lloyd_iterations": int(info.get("lloyd_iterations", 4)),
        "radius": float(mesh.radius),
    }


class DurableRun:
    """One crash-consistent run directory: the manifest and its checkpoints."""

    def __init__(self, directory: Path, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest

    # ------------------------------------------------------------ lifecycle
    @property
    def checkpoint_path(self) -> Path:
        return self.directory / CHECKPOINT_DIRNAME

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @classmethod
    def create(
        cls, directory, case_token, mesh, config: SWConfig, steps: int
    ) -> "DurableRun":
        """Initialize a fresh run directory (refusing to clobber one)."""
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            raise ManifestError(
                f"{directory} already holds a durable run; resume it with "
                f"repro.api.run(resume={str(directory)!r}) / "
                f"`python -m repro run --resume {directory}`, or point "
                f"run_dir at a fresh directory"
            )
        directory.mkdir(parents=True, exist_ok=True)
        (directory / CHECKPOINT_DIRNAME).mkdir(exist_ok=True)
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "case": case_token,
            "config": dataclasses.asdict(config),
            "mesh": _mesh_identity(mesh),
            "steps": int(steps),
            "completed": False,
            "checkpoints": [],
        }
        run = cls(directory, manifest)
        run.save()
        return run

    @classmethod
    def open(cls, directory) -> "DurableRun":
        """Attach to an existing run directory."""
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        if not path.exists():
            raise ManifestError(
                f"{directory} is not a durable run directory (no "
                f"{MANIFEST_NAME}); start one with repro.api.run(..., "
                f"run_dir={str(directory)!r})"
            )
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(
                f"unreadable manifest {path}: {exc}; the atomic-write "
                f"protocol should make this impossible — inspect the "
                f"directory by hand"
            ) from exc
        version = manifest.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ManifestError(
                f"manifest {path} has version {version!r}, this build "
                f"understands {MANIFEST_VERSION}; resume with the matching "
                f"code revision or start a fresh run directory"
            )
        return cls(directory, manifest)

    def save(self) -> None:
        """Atomically publish the current manifest."""
        _atomic_write_json(self.manifest_path, self.manifest)

    # ---------------------------------------------------------- checkpoints
    def commit_checkpoint(self, step: int, path) -> None:
        """Record a just-published checkpoint file in the manifest.

        The commit point of the protocol: only after this returns is the
        checkpoint reachable by a future resume.  Re-committing a step
        (a resumed run re-saving its restart point) replaces the entry.
        """
        path = Path(path)
        entry = {
            "step": int(step),
            "file": path.name,
            "bytes": path.stat().st_size,
            "sha256": sha256_file(path),
        }
        kept = [c for c in self.manifest["checkpoints"] if c["step"] != step]
        kept.append(entry)
        self.manifest["checkpoints"] = sorted(kept, key=lambda c: c["step"])
        self.save()

    def latest_valid_checkpoint(self) -> tuple[int, Path] | None:
        """The newest committed checkpoint whose bytes match the manifest.

        Walks newest to oldest; an entry whose file is missing is skipped,
        one whose size or SHA-256 disagrees (torn or damaged after commit)
        is quarantined (``resilience.cache.quarantined`` tagged
        ``kind=checkpoint``) and the walk continues to the previous one.
        """
        for entry in reversed(self.manifest["checkpoints"]):
            path = self.checkpoint_path / entry["file"]
            if not path.exists():
                continue
            if (
                path.stat().st_size == entry["bytes"]
                and sha256_file(path) == entry["sha256"]
            ):
                return int(entry["step"]), path
            quarantine(path, kind="checkpoint", reason="manifest digest mismatch")
        return None

    def clean_uncommitted(self) -> list[Path]:
        """Delete checkpoint files the manifest never committed.

        A crash between publishing ``auto-N.npz`` and rewriting the
        manifest leaves a complete-looking file that the run never vouched
        for; a resumed process must not discover and roll forward onto it.
        ``*.tmp`` debris from a crash mid-write goes too.
        """
        committed = {c["file"] for c in self.manifest["checkpoints"]}
        removed: list[Path] = []
        cdir = self.checkpoint_path
        if not cdir.exists():
            return removed
        for path in sorted(cdir.glob("auto-*.npz")):
            if path.name not in committed:
                path.unlink(missing_ok=True)
                removed.append(path)
        for path in sorted(cdir.glob("*.tmp")):
            path.unlink(missing_ok=True)
            removed.append(path)
        return removed

    def mark_complete(self) -> None:
        """Stamp the run finished (resume will refuse it thereafter)."""
        self.manifest["completed"] = True
        self.save()

    # -------------------------------------------------------- compatibility
    def validate_compatible(
        self, config: SWConfig | None = None, mesh=None, case_token=None
    ) -> None:
        """Refuse (actionably) anything that contradicts the manifest."""
        if config is not None:
            want = self.manifest["config"]
            got = dataclasses.asdict(config)
            bad = sorted(
                k for k in set(want) | set(got) if want.get(k) != got.get(k)
            )
            if bad:
                detail = ", ".join(
                    f"{k}: manifest={want.get(k)!r} given={got.get(k)!r}"
                    for k in bad
                )
                raise ManifestError(
                    f"config incompatible with the durable run in "
                    f"{self.directory} ({detail}); resume takes its config "
                    f"from the manifest — drop the config argument, or "
                    f"start a fresh run directory"
                )
        if mesh is not None:
            from ..engine.sparse import mesh_fingerprint

            want_fp = self.manifest["mesh"]["fingerprint"]
            got_fp = mesh_fingerprint(mesh)
            if want_fp != got_fp:
                raise ManifestError(
                    f"mesh fingerprint {got_fp} does not match the durable "
                    f"run in {self.directory} (manifest: {want_fp}, "
                    f"{self.manifest['mesh']['name']}); resume with the "
                    f"same mesh, or start a fresh run directory"
                )
        if case_token is not None and case_token != self.manifest["case"]:
            raise ManifestError(
                f"case {case_token!r} does not match the durable run in "
                f"{self.directory} (manifest: {self.manifest['case']!r})"
            )


# -------------------------------------------------------------- executors
def _write_restart(path: Path, state: State, b_cell, f_vertex, config) -> None:
    """Atomically publish one restart file (the ``save_checkpoint`` format)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            h=state.h,
            u=state.u,
            b_cell=b_cell,
            f_vertex=f_vertex,
            config=np.array(json.dumps(dataclasses.asdict(config))),
        )
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _execute_serial(
    run: DurableRun,
    mesh,
    case,
    config: SWConfig,
    start_step: int,
    total: int,
    resume_path: Path | None,
    invariant_interval: int = 0,
    callback=None,
):
    from ..swm.model import ShallowWaterModel

    if resume_path is not None:
        model = ShallowWaterModel.from_checkpoint(mesh, resume_path)
        model.case = case
        config = model.config  # a mid-run dt halving survives the restart
    else:
        model = ShallowWaterModel(mesh, config)
        model.initialize(case)
    result = model.run(
        steps=total - start_step,
        start_step=start_step,
        invariant_interval=invariant_interval,
        callback=callback,
        checkpoint_dir=run.checkpoint_path,
        checkpoint_keep=10**9,  # durable runs keep every committed file
        on_checkpoint=run.commit_checkpoint,
    )
    if not run.manifest["checkpoints"] or (
        run.manifest["checkpoints"][-1]["step"] != total
    ):
        final = run.checkpoint_path / f"auto-{total:08d}.npz"
        model.save_checkpoint(final)
        run.commit_checkpoint(total, final)
    run.mark_complete()
    return result


def _execute_decomposed(
    run: DurableRun,
    mesh,
    case,
    config: SWConfig,
    start_step: int,
    total: int,
    resume_state: State | None,
):
    from ..parallel.runner import gathered_run_result
    from .faults import fault_site

    if config.parallel == "lockstep":
        from ..parallel.runner import DecomposedShallowWater

        exec_obj = DecomposedShallowWater(mesh, config.ranks, case, config)
    else:
        from ..parallel.pool import PoolShallowWater

        exec_obj = PoolShallowWater(mesh, config.ranks, case, config)
    try:
        if resume_state is not None:
            exec_obj.load_state(resume_state, step=start_step)
        start_state = exec_obj.gather_state()
        latest = run.manifest["checkpoints"]
        if not latest or latest[-1]["step"] != start_step:
            path = run.checkpoint_path / f"auto-{start_step:08d}.npz"
            _write_restart(
                path, start_state, exec_obj.b_cell, exec_obj.f_vertex, config
            )
            run.commit_checkpoint(start_step, path)
        interval = config.checkpoint_interval
        done = start_step
        while done < total:
            chunk = min(interval, total - done)
            for s in range(done + 1, done + chunk + 1):
                fault_site("process.crash", step=s)
            exec_obj.advance(chunk)
            done += chunk
            state = exec_obj.gather_state()
            path = run.checkpoint_path / f"auto-{done:08d}.npz"
            _write_restart(
                path, state, exec_obj.b_cell, exec_obj.f_vertex, config
            )
            run.commit_checkpoint(done, path)
        if hasattr(exec_obj, "_merge_observability"):
            exec_obj._merge_observability()
        result = gathered_run_result(
            mesh, start_state, exec_obj.gather_state(),
            exec_obj.b_cell, exec_obj.f_vertex, config, total - start_step,
        )
    finally:
        if hasattr(exec_obj, "close"):
            exec_obj.close()
    run.mark_complete()
    return result


# ------------------------------------------------------------ entry points
def run_durable(
    directory,
    case_token,
    mesh,
    config: SWConfig,
    steps: int,
    invariant_interval: int = 0,
    callback=None,
):
    """Start a fresh durable run in ``directory`` and integrate ``steps``.

    ``case_token`` must be a case *name or Williamson number* (something
    :func:`repro.api.resolve_case` can re-resolve at resume time); an
    ad-hoc :class:`TestCase` object cannot be stored in a manifest.  A
    ``config.checkpoint_interval`` of 0 is bumped to 1 — a durable run
    without checkpoints would be an ordinary run with extra paperwork.
    """
    from ..api import resolve_case

    if not isinstance(case_token, (str, int)):
        raise ManifestError(
            "durable runs need the case as a name or Williamson number "
            "(resolvable again at resume time), not a TestCase object"
        )
    case = resolve_case(case_token)
    if config.checkpoint_interval < 1:
        config = dataclasses.replace(config, checkpoint_interval=1)
    run = DurableRun.create(directory, case_token, mesh, config, steps)
    if config.parallel == "serial":
        return _execute_serial(
            run, mesh, case, config, 0, steps, None,
            invariant_interval=invariant_interval, callback=callback,
        )
    if invariant_interval or callback is not None:
        raise ValueError(
            "invariant_interval/callback require parallel='serial'"
        )
    return _execute_decomposed(run, mesh, case, config, 0, steps, None)


def resume_durable(
    directory,
    mesh=None,
    invariant_interval: int = 0,
    callback=None,
):
    """Continue the durable run in ``directory`` to its recorded horizon.

    Everything is restored from the directory: the config and case from
    the manifest, the state from the newest checkpoint whose bytes match
    their committed digest, the mesh through the cache (pass ``mesh=`` to
    skip the rebuild — its fingerprint is validated against the manifest).
    The continued trajectory is bitwise identical to an uninterrupted run.
    """
    from ..api import resolve_case

    run = DurableRun.open(directory)
    if run.manifest.get("completed"):
        raise ManifestError(
            f"the durable run in {run.directory} already completed its "
            f"{run.manifest['steps']} steps; start a fresh run directory "
            f"to integrate further"
        )
    config = SWConfig(**run.manifest["config"])
    case = resolve_case(run.manifest["case"])
    if mesh is not None:
        run.validate_compatible(mesh=mesh)
    else:
        ident = run.manifest["mesh"]
        if ident["level"] is None:
            raise ManifestError(
                f"the manifest in {run.directory} records no mesh level to "
                f"rebuild from (custom mesh {ident['name']!r}); pass the "
                f"original mesh via mesh=..."
            )
        from ..mesh.cache import cached_mesh

        mesh = cached_mesh(
            ident["level"],
            lloyd_iterations=ident["lloyd_iterations"],
            radius=ident["radius"],
        )
        run.validate_compatible(mesh=mesh)

    run.clean_uncommitted()
    found = run.latest_valid_checkpoint()
    if found is None:
        raise ManifestError(
            f"no committed checkpoint in {run.directory} survives "
            f"validation; the run cannot be resumed — start a fresh run "
            f"directory"
        )
    start_step, ckpt = found
    total = int(run.manifest["steps"])
    if config.parallel == "serial":
        return _execute_serial(
            run, mesh, case, config, start_step, total, ckpt,
            invariant_interval=invariant_interval, callback=callback,
        )
    if invariant_interval or callback is not None:
        raise ValueError(
            "invariant_interval/callback require parallel='serial'"
        )
    with np.load(ckpt) as data:
        state = State(h=data["h"].copy(), u=data["u"].copy())
    return _execute_decomposed(
        run, mesh, case, config, start_step, total, state
    )
