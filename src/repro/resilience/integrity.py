"""Self-healing integrity layer for the on-disk caches.

Every persistent cache in this repo (mesh archives, compiled sparse
operators, composed plan matrices) is written atomically — temp file, then
``os.replace`` — so a *reader* never sees a half-written archive under the
final name.  What atomic writes cannot prevent is the file being damaged
*after* publication: a disk hiccup, a torn page from a power loss, a
truncation by a full filesystem, an over-eager cleanup script.  Before this
layer, one corrupt ``.npz`` crashed every future run that touched it
(``zipfile.BadZipFile`` out of ``np.load``), turning a cheap rebuildable
artifact into a persistent outage.

The contract here is **self-healing**: a cache entry that fails validation
is never loaded and never fatal.  It is moved to a ``quarantine/`` folder
next to the cache (preserved for post-mortem, out of the loader's way),
counted as ``resilience.cache.quarantined`` (tagged by cache ``kind``), and
the caller rebuilds the entry exactly as if it had never been cached.

Validation is a CRC *sidecar*: :func:`seal` writes ``<file>.crc`` holding
the byte length and CRC-32 of the published file, and :func:`verify` checks
both on read.  A sidecar (rather than an in-archive footer) keeps the
``.npz`` payload bit-identical to what ``np.savez_compressed`` produced —
``np.load`` stays the single reader — and the replace-file-then-replace-
sidecar window degrades safely: a mismatch quarantines and rebuilds.
Legacy entries written before this layer carry no sidecar; they are loaded
on a best-effort basis and quarantined only if actually unreadable.

:func:`checked_load` bundles the policy for cache call sites::

    m = checked_load(path, loader, kind="operator")
    if m is None:       # missing, stale, or quarantined-corrupt
        m = rebuild()

All helpers are import-light (``zlib`` + the metrics registry) so the
engine's process-startup path can use them freely.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

from ..obs.metrics import get_registry

__all__ = [
    "SIDECAR_SUFFIX",
    "QUARANTINE_DIRNAME",
    "seal",
    "verify",
    "quarantine",
    "checked_load",
]

#: Appended to the cached file's full name: ``mesh.npz`` -> ``mesh.npz.crc``.
SIDECAR_SUFFIX = ".crc"

#: Subdirectory (next to the cached files) corrupt entries are moved into.
QUARANTINE_DIRNAME = "quarantine"


def _sidecar_path(path: Path) -> Path:
    return path.with_name(path.name + SIDECAR_SUFFIX)


def _length_and_crc(path: Path, chunk: int = 1 << 20) -> tuple[int, int]:
    """Byte length and CRC-32 of a file, streamed."""
    length = 0
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            length += len(block)
            crc = zlib.crc32(block, crc)
    return length, crc & 0xFFFFFFFF


def seal(path: str | Path) -> Path:
    """Write the CRC sidecar for a just-published cache file.

    The sidecar itself is written atomically (temp + ``os.replace``), so a
    crash between publishing the file and sealing it leaves at worst a
    *missing or stale* sidecar — which :func:`verify` treats as suspect,
    never as valid.
    """
    path = Path(path)
    length, crc = _length_and_crc(path)
    sidecar = _sidecar_path(path)
    tmp = sidecar.with_name(sidecar.name + ".tmp")
    tmp.write_text(f"crc32 {length} {crc:08x}\n", encoding="ascii")
    os.replace(tmp, sidecar)
    return sidecar


def verify(path: str | Path) -> bool | None:
    """Does the file match its sidecar?

    Returns ``True`` (sealed and intact), ``False`` (sealed but length or
    CRC disagree — also for an unparseable sidecar), or ``None`` (no
    sidecar: a legacy entry from before the integrity layer, unknown).
    """
    path = Path(path)
    sidecar = _sidecar_path(path)
    if not sidecar.exists():
        return None
    try:
        tag, length_s, crc_s = sidecar.read_text(encoding="ascii").split()
        if tag != "crc32":
            return False
        want = (int(length_s), int(crc_s, 16))
    except (OSError, UnicodeDecodeError, ValueError):
        return False
    try:
        return _length_and_crc(path) == want
    except OSError:
        return False


def quarantine(path: str | Path, kind: str, reason: str = "") -> Path | None:
    """Move a corrupt cache entry (and its sidecar) out of the loader's way.

    The entry lands in ``<dir>/quarantine/`` next to the cache (same
    filesystem, so the move is an atomic rename) and the
    ``resilience.cache.quarantined`` counter is incremented tagged
    ``kind=<kind>``.  Returns the quarantined path, or ``None`` if the file
    vanished concurrently.
    """
    path = Path(path)
    qdir = path.parent / QUARANTINE_DIRNAME
    qdir.mkdir(parents=True, exist_ok=True)
    dest = qdir / path.name
    n = 0
    while dest.exists():
        n += 1
        dest = qdir / f"{path.name}.{n}"
    try:
        os.replace(path, dest)
    except OSError:
        return None
    sidecar = _sidecar_path(path)
    if sidecar.exists():
        try:
            os.replace(sidecar, qdir / f"{dest.name}{SIDECAR_SUFFIX}")
        except OSError:
            pass
    get_registry().counter("resilience.cache.quarantined", kind=kind).inc()
    return dest


def checked_load(path: str | Path, loader, kind: str, stale: tuple = ()):
    """Validate-then-load one cache entry; never raise on corruption.

    * sidecar mismatch -> quarantine, return ``None`` (caller rebuilds);
    * ``loader(path)`` returning ``None`` -> stale format/fingerprint,
      return ``None`` (caller rebuilds and overwrites — no quarantine);
    * ``loader`` raising one of ``stale`` -> same stale semantics;
    * ``loader`` raising anything else -> the entry is unreadable despite
      (or without) a sidecar: quarantine, return ``None``.

    ``loader`` runs only on files whose sidecar verified (or legacy files
    with no sidecar), so it may assume byte integrity and concentrate on
    format/version checks.
    """
    path = Path(path)
    if not path.exists():
        return None
    if verify(path) is False:
        quarantine(path, kind, reason="sidecar mismatch")
        return None
    try:
        return loader(path)
    except stale:
        return None
    except Exception:
        quarantine(path, kind, reason="unreadable")
        return None
