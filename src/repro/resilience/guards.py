"""Numerical watchdogs: NaN/Inf scans, invariant-drift limits, CFL monitor.

A pattern-level hybrid run can fail numerically as well as mechanically: a
too-aggressive time step excites the gravity-wave CFL limit, a buggy backend
poisons a field with NaN, or slow invariant drift signals a mis-wired
operator long before the state visibly blows up.  The local-time-stepping
MPAS-SW literature (arXiv:2106.07154) puts CFL/stability monitoring *inside*
the stepping loop for exactly this reason; :class:`Watchdog` is that monitor
for this repo.

Three guards run per check, cheapest first:

``finite``
    NaN/Inf scan of the prognostic fields ``h`` and ``u``.  Runs first so the
    drift and CFL guards never compare against NaN (every NaN comparison is
    false — the classic silent-propagation trap).
``cfl``
    Gravity-wave Courant number of the *current* state, the running-state
    counterpart of :func:`repro.swm.model.suggested_dt`:
    ``dt * (max |(u, v)| + sqrt(g * max(h + b))) / min(dcEdge)``.
``mass_drift`` / ``energy_drift``
    Relative drift of the conserved integrals (:func:`repro.swm.error.
    invariants`) against the first checked state.  Mass is conserved to
    round-off by the flux-form thickness equation, so even a tiny relative
    threshold separates round-off from corruption.

A violation is returned as a :class:`GuardReport` naming the guard, the
offending field, the measured value and the limit — the caller
(:meth:`repro.swm.model.ShallowWaterModel.run`) decides whether to halt
(raise :class:`NumericalBlowup`) or roll back to the last auto-checkpoint
with a halved time step.  Every violation is counted as
``resilience.guard.violation`` tagged by guard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import get_registry
from ..swm.error import Invariants, invariants

__all__ = [
    "GuardReport",
    "NumericalBlowup",
    "Watchdog",
    "cfl_number",
    "member_finite_mask",
]


def member_finite_mask(state) -> np.ndarray:
    """Per-member finite scan of a batched state: ``(N,)`` bool, True = bad.

    The batched counterpart of the watchdog's ``finite`` guard: columns are
    independent under every batched stage, so a poisoned member shows up
    only in its own column and the ensemble driver can quarantine it
    without stalling (or perturbing) the healthy members.
    """
    bad_h = ~np.isfinite(state.h).all(axis=0)
    bad_u = ~np.isfinite(state.u).all(axis=0)
    return bad_h | bad_u


@dataclass(frozen=True)
class GuardReport:
    """One watchdog violation: which guard fired, on what, by how much."""

    step: int
    guard: str  # "finite", "cfl", "mass_drift", "energy_drift"
    field: str  # offending field ("h", "u") or the monitored quantity
    value: float
    limit: float
    detail: str

    def message(self) -> str:
        if self.guard == "instability":
            return (
                f"watchdog caught in-step instability at step {self.step} on "
                f"{self.field!r}: {self.detail}"
            )
        return (
            f"watchdog {self.guard!r} violated at step {self.step} on "
            f"{self.field!r}: {self.value:.6g} exceeds limit {self.limit:.6g} "
            f"({self.detail})"
        )


class NumericalBlowup(RuntimeError):
    """A watchdog violation under the ``halt`` policy (or rollbacks exhausted).

    Carries the :class:`GuardReport` so callers and tests can see *which*
    field failed *which* guard at *which* step — no silent NaN propagation.
    """

    def __init__(self, report: GuardReport) -> None:
        self.report = report
        super().__init__(report.message())


def cfl_number(mesh, state, diag, b_cell, gravity: float, dt: float) -> float:
    """Gravity-wave Courant number of the current state.

    The running-state counterpart of :func:`repro.swm.model.suggested_dt`
    (which prices the *initial condition*): speed is the fastest combination
    of advective velocity ``|(u, v)|`` and gravity-wave speed
    ``sqrt(g * max(h + b))``, over the smallest primal edge.
    """
    c = float(np.sqrt(gravity * np.max(state.h + b_cell)))
    umax = float(np.max(np.hypot(state.u, diag.v)))
    return dt * (umax + c) / float(np.min(mesh.metrics.dcEdge))


class Watchdog:
    """Per-step numerical guards over a running shallow-water integration.

    Parameters
    ----------
    mesh, b_cell, gravity
        The run's fixed fields (for invariants and wave speeds).
    mass_drift, energy_drift : float
        Relative drift limits against the first checked state; 0 disables
        that guard.
    cfl_max : float
        Courant-number ceiling; 0 disables the CFL guard.  The finite scan
        cannot be disabled — it is the whole point.
    """

    def __init__(
        self,
        mesh,
        b_cell: np.ndarray,
        gravity: float,
        *,
        mass_drift: float = 0.0,
        energy_drift: float = 0.0,
        cfl_max: float = 0.0,
    ) -> None:
        for name, v in (
            ("mass_drift", mass_drift),
            ("energy_drift", energy_drift),
            ("cfl_max", cfl_max),
        ):
            if v < 0.0:
                raise ValueError(f"{name} must be >= 0 (0 disables)")
        self.mesh = mesh
        self.b_cell = b_cell
        self.gravity = gravity
        self.mass_drift = mass_drift
        self.energy_drift = energy_drift
        self.cfl_max = cfl_max
        self.reference: Invariants | None = None

    @classmethod
    def from_config(cls, mesh, b_cell: np.ndarray, config) -> "Watchdog":
        """Build from the :class:`~repro.swm.config.SWConfig` guard knobs."""
        return cls(
            mesh,
            b_cell,
            config.gravity,
            mass_drift=config.guard_mass_drift,
            energy_drift=config.guard_energy_drift,
            cfl_max=config.guard_cfl_max,
        )

    # ------------------------------------------------------------------ check
    def _violation(
        self, step: int, guard: str, field: str, value: float, limit: float, detail: str
    ) -> GuardReport:
        get_registry().counter("resilience.guard.violation", guard=guard).inc()
        return GuardReport(step, guard, field, value, limit, detail)

    def in_step_failure(self, step: int, exc: BaseException) -> GuardReport:
        """Translate a mid-step floating-point failure into a guard report.

        A violently unstable ``dt`` can raise ``FloatingPointError`` inside
        the RK stages (non-positive thickness) before any end-of-step check
        runs; the stepping loop routes it here so the same halt/rollback
        policy applies.
        """
        return self._violation(
            step, "instability", "h,u", float("inf"), 0.0, str(exc)
        )

    def check(self, step: int, state, diag, dt: float) -> GuardReport | None:
        """Run all enabled guards; return the first violation (or ``None``)."""
        # 1. Finite scan first: everything below compares against these
        # fields, and comparisons with NaN are silently false.
        for name, arr in (("h", state.h), ("u", state.u)):
            bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
            if bad:
                return self._violation(
                    step, "finite", name, float(bad), 0.0,
                    f"{bad} non-finite values of {np.size(arr)}",
                )
        # 2. CFL ceiling on the current state.
        if self.cfl_max > 0.0:
            cfl = cfl_number(self.mesh, state, diag, self.b_cell, self.gravity, dt)
            if cfl > self.cfl_max:
                return self._violation(
                    step, "cfl", "u", cfl, self.cfl_max,
                    f"dt={dt:.6g} s exceeds the gravity-wave limit",
                )
        # 3. Invariant drift against the first checked state.
        if self.mass_drift > 0.0 or self.energy_drift > 0.0:
            inv = invariants(self.mesh, state, diag, self.b_cell, self.gravity)
            if self.reference is None:
                self.reference = inv
                return None
            ref = self.reference
            if self.mass_drift > 0.0:
                drift = abs(inv.mass - ref.mass) / abs(ref.mass)
                if drift > self.mass_drift:
                    return self._violation(
                        step, "mass_drift", "h", drift, self.mass_drift,
                        "relative drift of the mass integral",
                    )
            if self.energy_drift > 0.0:
                drift = abs(inv.total_energy - ref.total_energy) / abs(
                    ref.total_energy
                )
                if drift > self.energy_drift:
                    return self._violation(
                        step, "energy_drift", "h,u", drift, self.energy_drift,
                        "relative drift of the total-energy integral",
                    )
        return None
