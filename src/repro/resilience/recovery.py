"""Recovery policies: how each layer reacts when a fault site fires.

The policy object is deliberately dumb — a handful of bounded-retry knobs —
because the *mechanisms* live where the state lives:

* backend dispatch retries the same backend, then falls back to ``numpy``
  (:meth:`repro.engine.KernelRegistry.dispatch`).  A retry that succeeds is
  bitwise-invisible; a fallback changes backend (counted as
  ``resilience.recovery.fallback``) and is correct to backend tolerance.
* split execution re-runs a failed device's rows on the survivor and
  demotes the placement to single-device — degraded mode
  (:func:`repro.engine.split.run_split`).
* halo exchanges retry with exponential backoff, the simulated backoff
  seconds accounted into ``resilience.halo.backoff_s``
  (:class:`repro.parallel.runner.DecomposedShallowWater`).
* simulated PCIe transfers are rescheduled, the failed attempt occupying
  its channel like a real wire-level retry would
  (:class:`repro.hybrid.executor.HybridExecutor`).

Install a non-default policy with :func:`use_recovery_policy`;
:meth:`repro.swm.model.ShallowWaterModel.run` installs one built from the
``SWConfig`` retry knobs for the duration of a run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "RecoveryPolicy",
    "active_recovery_policy",
    "use_recovery_policy",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry knobs for every recovery mechanism.

    Attributes
    ----------
    backend_retries : int
        Same-backend re-dispatches after a faulted kernel dispatch before
        falling back.
    backend_fallback : bool
        After retries are exhausted, resolve the ``numpy`` implementation
        and run that (the counted ``engine.fallback``-style escape hatch).
    split_degrade : bool
        After a split-device failure, demote the placement to the surviving
        device for subsequent dispatches (degraded mode).
    halo_retries : int
        Re-attempts of a faulted halo exchange before giving up.
    halo_backoff_s : float
        Base backoff charged per halo retry (doubled each attempt);
        accounted into the ``resilience.halo.backoff_s`` counter so the
        step model can price recovery, not just success.
    transfer_retries : int
        Re-schedules of a faulted simulated PCIe transfer.
    """

    backend_retries: int = 1
    backend_fallback: bool = True
    split_degrade: bool = True
    halo_retries: int = 2
    halo_backoff_s: float = 0.0
    transfer_retries: int = 2

    def __post_init__(self) -> None:
        for name in ("backend_retries", "halo_retries", "transfer_retries"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.halo_backoff_s < 0.0:
            raise ValueError("halo_backoff_s must be >= 0")


_POLICY = RecoveryPolicy()


def active_recovery_policy() -> RecoveryPolicy:
    """The process-wide policy (defaults are always installed)."""
    return _POLICY


@contextmanager
def use_recovery_policy(policy: RecoveryPolicy) -> Iterator[RecoveryPolicy]:
    """Temporarily install ``policy`` process-wide."""
    global _POLICY
    old = _POLICY
    _POLICY = policy
    try:
        yield policy
    finally:
        _POLICY = old
