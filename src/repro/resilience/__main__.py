"""Resilience CLI: end-to-end fault-recovery proof.

Run it::

    python -m repro.resilience --selftest

The selftest integrates the Galewsky jet for 10 RK-4 steps on a small mesh
under an aggressive seeded fault plan, once per fault scenario, and proves
that every *recoverable* fault leaves the final state **bitwise identical**
to the fault-free run:

1. ``engine.dispatch`` faults — one recovered by a same-backend retry, one
   by the counted ``numpy`` fallback;
2. an ``engine.split.device`` failure mid-pattern — the survivor re-executes
   the dead device's rows and the placement degrades to single-device;
3. ``halo.exchange`` faults in the 2-rank decomposed run — bounded retries;
4. ``hybrid.transfer`` faults in the simulated executor — rescheduled, the
   failed attempts occupying their PCIe channel (timeline still validates);
5. the numerical watchdog — an unstable ``dt`` is caught by the CFL guard
   and either halts with a diagnostic or rolls back to the auto-checkpoint
   with ``dt`` halving, per the configured policy.

Exit code 0 on success; the fault/recovery counter table is printed so the
obs report provably shows nonzero counters for what was thrown at the runs.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack

import numpy as np

from ..obs.metrics import MetricsRegistry, get_registry, use_registry
from .faults import FaultPlan, FaultSpec, use_fault_plan

#: Steps of every selftest integration (the acceptance horizon).
SELFTEST_STEPS = 10


def _base_config(mesh, case, **overrides):
    from ..constants import GRAVITY
    from ..swm.config import SWConfig
    from ..swm.model import suggested_dt

    kwargs = dict(
        dt=suggested_dt(mesh, case, GRAVITY, cfl=0.5), thickness_adv_order=4
    )
    kwargs.update(overrides)
    return SWConfig(**kwargs)


def _run_model(level: int, steps: int, plan=None, placements=None, **overrides):
    """Integrate the Galewsky jet; returns the final ``(h, u)``."""
    from ..engine.split import use_placements
    from ..mesh.cache import cached_mesh
    from ..swm.galewsky import galewsky_jet
    from ..swm.model import ShallowWaterModel

    mesh = cached_mesh(level)
    case = galewsky_jet()
    model = ShallowWaterModel(mesh, _base_config(mesh, case, **overrides))
    model.initialize(case)
    with ExitStack() as stack:
        if placements is not None:
            stack.enter_context(use_placements(placements))
        if plan is not None:
            stack.enter_context(use_fault_plan(plan))
        model.run(steps=steps)
    return model.state.h.copy(), model.state.u.copy()


def _run_decomposed(level: int, steps: int, plan=None):
    """2-rank lockstep Galewsky integration; returns the gathered ``(h, u)``."""
    from ..mesh.cache import cached_mesh
    from ..parallel.runner import DecomposedShallowWater
    from ..swm.galewsky import galewsky_jet

    mesh = cached_mesh(level)
    case = galewsky_jet()
    runner = DecomposedShallowWater(mesh, 2, case, _base_config(mesh, case))
    with ExitStack() as stack:
        if plan is not None:
            stack.enter_context(use_fault_plan(plan))
        runner.run(steps)
    state = runner.gather_state()
    return state.h, state.u


def _check(name: str, ok: bool, detail: str = "") -> bool:
    print(f"  {name:28s} [{'ok' if ok else 'FAIL'}]{' ' + detail if detail else ''}")
    return ok


def _bitwise(name: str, got, ref) -> bool:
    h, u = got
    h_ref, u_ref = ref
    same = np.array_equal(h, h_ref) and np.array_equal(u, u_ref)
    detail = "" if same else (
        f"max|dh|={np.max(np.abs(h - h_ref)):.3e} "
        f"max|du|={np.max(np.abs(u - u_ref)):.3e}"
    )
    return _check(name, same, detail)


def _counter_total(prefix: str) -> float:
    return sum(
        s.value for s in get_registry().series() if s.name.startswith(prefix)
    )


# ------------------------------------------------------------------ scenarios
def _scenario_dispatch(level: int, reference) -> bool:
    plan = FaultPlan(
        [
            # One transient fault: the same-backend retry recovers it.
            FaultSpec("engine.dispatch", at=(3,), max_fires=1),
            # One persistent fault: fires on the attempt *and* its retry, so
            # recovery falls back to the numpy implementation (bitwise
            # identical here, since the run's backend is numpy).
            FaultSpec("engine.dispatch", at=(40, 41), max_fires=2),
        ],
        seed=1,
    )
    got = _run_model(level, SELFTEST_STEPS, plan=plan)
    ok = _bitwise("backend-dispatch faults", got, reference)
    return ok & _check(
        "  plan fired", plan.total_fires == 3, f"{plan.total_fires} fires"
    )


def _scenario_split(level: int, reference) -> bool:
    from ..hybrid.executor import Placement

    plan = FaultPlan(
        [
            FaultSpec(
                "engine.split.device", at=(2,), match={"device": "mic"}, max_fires=1
            )
        ],
        seed=2,
    )
    got = _run_model(
        level,
        SELFTEST_STEPS,
        plan=plan,
        placements={"A1": Placement("split", 0.5)},
    )
    ok = _bitwise("split-device failure", got, reference)
    degraded = _counter_total("resilience.split.degraded") > 0
    return ok & _check("  degraded to survivor", degraded)


def _scenario_halo(level: int) -> bool:
    ref = _run_decomposed(level, SELFTEST_STEPS)
    plan = FaultPlan(
        [
            FaultSpec("halo.exchange", at=(7,), max_fires=1),
            FaultSpec("halo.exchange", probability=0.05, max_fires=2),
        ],
        seed=3,
    )
    got = _run_decomposed(level, SELFTEST_STEPS, plan=plan)
    ok = _bitwise("halo-exchange faults", got, ref)
    return ok & _check(
        "  plan fired", plan.total_fires >= 1, f"{plan.total_fires} fires"
    )


def _scenario_transfer() -> bool:
    from ..dataflow.build import build_step_graph
    from ..hybrid.executor import HybridExecutor
    from ..hybrid.schedule import node_times, pattern_level_assignment
    from ..hybrid.stepmodel import _cpu_parallel_model, _mic_model, _perf_config
    from ..machine.counts import MeshCounts
    from ..machine.interconnect import TransferModel
    from ..machine.spec import PAPER_NODE

    dfg = build_step_graph(_perf_config())
    counts = MeshCounts(nCells=40962, name="120-km")
    times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
    transfer = TransferModel(PAPER_NODE.pcie_bw_gbs, PAPER_NODE.pcie_latency_us)
    executor = HybridExecutor(dfg, times, counts, transfer)
    assignment = pattern_level_assignment(dfg, times)

    clean = executor.run(assignment)
    plan = FaultPlan(
        [FaultSpec("hybrid.transfer", at=(2,), probability=0.2, max_fires=3)],
        seed=4,
    )
    with use_fault_plan(plan):
        faulted = executor.run(assignment)
    faulted.validate_no_overlap()
    faulted.validate_dependencies(dfg)
    retried = [t for t in faulted.tasks if t.name.startswith("xfer!")]
    ok = _check(
        "transfer faults rescheduled",
        plan.total_fires >= 1 and len(retried) == plan.total_fires,
        f"{plan.total_fires} fires, {len(retried)} rescheduled",
    )
    return ok & _check(
        "  recovery slows the node",
        faulted.makespan >= clean.makespan,
        f"{clean.makespan * 1e3:.2f} -> {faulted.makespan * 1e3:.2f} ms",
    )


def _scenario_watchdog(level: int) -> bool:
    from ..constants import GRAVITY
    from ..mesh.cache import cached_mesh
    from ..swm.galewsky import galewsky_jet
    from ..swm.model import ShallowWaterModel, suggested_dt
    from .guards import NumericalBlowup

    mesh = cached_mesh(level)
    case = galewsky_jet()
    dt_stable = suggested_dt(mesh, case, GRAVITY, cfl=0.5)

    # Halt: an unstable dt trips the CFL guard with a named diagnostic.
    model = ShallowWaterModel(
        mesh,
        _base_config(
            mesh, case, dt=4.0 * dt_stable, guard_interval=1, guard_cfl_max=1.0
        ),
    )
    model.initialize(case)
    try:
        with np.errstate(all="ignore"):
            model.run(steps=SELFTEST_STEPS)
        halted = False
        detail = "no violation raised"
    except NumericalBlowup as exc:
        halted = exc.report.guard == "cfl" and exc.report.step == 1
        detail = str(exc)
    ok = _check("watchdog halt (CFL)", halted, detail)

    # Rollback: dt just above the ceiling halves once, then completes.
    model = ShallowWaterModel(
        mesh,
        _base_config(
            mesh, case,
            dt=1.6 * dt_stable, guard_interval=1, guard_cfl_max=0.7,
            guard_policy="rollback", checkpoint_interval=2,
        ),
    )
    model.initialize(case)
    result = model.run(steps=SELFTEST_STEPS)
    rolled = _counter_total("resilience.checkpoint.rollback") > 0
    ok &= _check(
        "watchdog rollback + dt/2",
        rolled and result.steps == SELFTEST_STEPS
        and np.isfinite(model.state.h).all(),
        f"final dt={model.config.dt:.1f}s",
    )
    return ok


# ------------------------------------------------------------------------ CLI
def _selftest(level: int) -> int:
    from ..obs.report import render_resilience_report

    registry = MetricsRegistry()
    with use_registry(registry):
        print(f"fault-free reference: Galewsky, level {level}, "
              f"{SELFTEST_STEPS} steps")
        reference = _run_model(level, SELFTEST_STEPS)

        ok = _scenario_dispatch(level, reference)
        ok &= _scenario_split(level, reference)
        ok &= _scenario_halo(level)
        ok &= _scenario_transfer()
        ok &= _scenario_watchdog(level)

        injected = _counter_total("resilience.fault.injected")
        recovered = (
            _counter_total("resilience.recovery.")
            + _counter_total("resilience.split.")
            + _counter_total("resilience.checkpoint.rollback")
        )
        ok &= _check(
            "nonzero fault/recovery counters",
            injected > 0 and recovered > 0,
            f"{injected:g} injected, {recovered:g} recovery actions",
        )
        print()
        print(render_resilience_report(registry, "Fault and recovery counters"))
    if not ok:
        print("resilience selftest FAILED")
        return 1
    print("resilience selftest OK: every recoverable fault was bitwise-invisible")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Fault-injection and recovery utilities.",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="faulted Galewsky runs must recover bitwise-identically",
    )
    parser.add_argument(
        "--level",
        type=int,
        default=2,
        help="icosahedral mesh level for the selftest (default 2 = 162 cells)",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return _selftest(args.level)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
