"""Deterministic fault injection: named sites, seeded plans, counted fires.

A production run of the paper's pattern-level design must survive a device
dropping out mid-kernel, a flaky PCIe transfer or a lost halo exchange.  The
precondition for *testing* that survival is the ability to make those
failures happen on demand — deterministically, so a recovered run can be
compared bitwise against a fault-free one.

Every place in the execution stack where hardware can fail is a named
*fault site* (:data:`KNOWN_SITES`):

``engine.dispatch``
    One backend kernel dispatch (:meth:`repro.engine.KernelRegistry.
    dispatch`), tagged ``op`` and ``backend``.
``engine.split.device``
    One device's share of a split execution (:func:`repro.engine.split.
    run_split`), tagged ``op`` and ``device`` — the "MIC died mid-pattern"
    scenario of degraded-mode recovery.
``halo.exchange``
    One halo exchange of the multi-rank runner
    (:class:`repro.parallel.runner.DecomposedShallowWater`), tagged
    ``ranks``.
``hybrid.transfer``
    One PCIe transfer of the simulated hybrid executor
    (:class:`repro.hybrid.executor.HybridExecutor`), tagged ``dst``.
``process.crash``
    One integration step about to start (the serial run loop of
    :meth:`repro.swm.model.ShallowWaterModel.run` and the durable
    decomposed loop of :mod:`repro.resilience.durable`), tagged ``step``.
    The chaos site: with ``action="kill"`` the fire is not an exception
    but a real ``SIGKILL`` of the current process — the crash-consistency
    tests use it to die mid-integration and prove that resuming from the
    run directory is bitwise-invisible.

Each site calls :func:`fault_site` unconditionally; with no plan installed
that is a single module-global ``None`` check.  A :class:`FaultPlan`
(installed with :func:`use_fault_plan`) matches each call against its
:class:`FaultSpec` entries and raises :class:`FaultInjected` when one fires
— either at exact 1-based call indices (``at=(3,)``, the reproducible mode
the selftest uses) or with per-call probability ``p`` from a seeded
generator.  Every fire is counted into the metrics registry as
``resilience.fault.injected`` tagged by site, so the cost report can show
exactly what was thrown at a run.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..obs.metrics import get_registry

__all__ = [
    "KNOWN_SITES",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "active_fault_plan",
    "use_fault_plan",
    "fault_site",
]

#: Every fault site wired into the execution stack.
KNOWN_SITES: tuple[str, ...] = (
    "engine.dispatch",
    "engine.split.device",
    "halo.exchange",
    "hybrid.transfer",
    "process.crash",
)


class FaultInjected(RuntimeError):
    """An injected fault fired at a site (never raised by real hardware).

    Recovery layers catch exactly this type: a real bug raising ``ValueError``
    or ``FloatingPointError`` must *not* be silently retried into oblivion.
    """

    def __init__(self, site: str, tags: dict, fire_index: int) -> None:
        self.site = site
        self.tags = dict(tags)
        self.fire_index = fire_index
        detail = ", ".join(f"{k}={v}" for k, v in sorted(self.tags.items()))
        super().__init__(f"injected fault #{fire_index} at {site!r} ({detail})")


@dataclass
class FaultSpec:
    """When one fault site should fire.

    Attributes
    ----------
    site : str
        The fault-site name (one of :data:`KNOWN_SITES`).
    at : sequence of int
        1-based indices of *matching* calls at which to fire — call 3 means
        "the third call of this site whose tags satisfy ``match``".
        Deterministic regardless of seed.
    probability : float
        Per-matching-call fire probability, drawn from the plan's seeded
        generator (0 disables; combine with ``at`` freely).
    max_fires : int or None
        Stop firing after this many fires (``None`` = unlimited).  The knob
        that turns "always fails" into "fails once, then recovers".
    match : dict
        Tag filters: the spec only considers calls whose tags contain every
        ``key: value`` pair (compared as strings), e.g.
        ``{"device": "mic"}`` or ``{"op": "flux_divergence"}``.
    action : str
        What a fire does.  ``"raise"`` (default) raises
        :class:`FaultInjected` for the recovery layers to catch.
        ``"kill"`` delivers ``SIGKILL`` to the current process — no
        exception, no cleanup, no ``atexit`` — the real-crash mode the
        durable-run tests use (``{"step": N}`` + ``at=(1,)`` kills at the
        first call for step ``N``).
    """

    site: str
    at: Sequence[int] = ()
    probability: float = 0.0
    max_fires: int | None = None
    match: dict = field(default_factory=dict)
    action: str = "raise"
    # Mutable bookkeeping (per plan run).
    calls: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {KNOWN_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if any(i < 1 for i in self.at):
            raise ValueError("`at` uses 1-based call indices")
        if not self.at and self.probability == 0.0:
            raise ValueError("spec never fires: give `at` and/or `probability`")
        if self.action not in ("raise", "kill"):
            raise ValueError("action must be 'raise' or 'kill'")

    def matches(self, tags: dict) -> bool:
        return all(str(tags.get(k)) == str(v) for k, v in self.match.items())


class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries, checked at every site call.

    Two plans built with the same specs and seed fire identically — the
    property that lets the selftest prove bitwise-identical recovery.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.total_fires = 0

    def reset(self) -> None:
        """Rewind call counters and the RNG to the initial state."""
        self._rng = np.random.default_rng(self.seed)
        self.total_fires = 0
        for spec in self.specs:
            spec.calls = 0
            spec.fires = 0

    def check(self, site: str, **tags) -> None:
        """Raise :class:`FaultInjected` if any spec fires for this call."""
        for spec in self.specs:
            if spec.site != site or not spec.matches(tags):
                continue
            spec.calls += 1
            if spec.max_fires is not None and spec.fires >= spec.max_fires:
                continue
            fire = spec.calls in spec.at
            if not fire and spec.probability > 0.0:
                fire = float(self._rng.random()) < spec.probability
            if fire:
                spec.fires += 1
                self.total_fires += 1
                get_registry().counter(
                    "resilience.fault.injected", site=site
                ).inc()
                if spec.action == "kill":
                    # A real crash: the process dies here, mid-whatever it
                    # was doing.  No Python-level unwinding happens.
                    sig = getattr(signal, "SIGKILL", None)
                    if sig is not None:
                        os.kill(os.getpid(), sig)
                    os._exit(137)
                raise FaultInjected(site, tags, self.total_fires)


# ------------------------------------------------------------- active plan
_PLAN: FaultPlan | None = None


def active_fault_plan() -> FaultPlan | None:
    """The currently installed plan (``None`` almost always)."""
    return _PLAN


@contextmanager
def use_fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` process-wide for the duration of the block."""
    global _PLAN
    old = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = old


def fault_site(site: str, **tags) -> None:
    """Declare one fault-site call; raises :class:`FaultInjected` if it fires.

    The unconditional hot-path cost is one global read and one ``None``
    check — cheap enough to leave in every dispatch.
    """
    if _PLAN is not None:
        _PLAN.check(site, **tags)
