"""Fault-tolerant runtime: injection, recovery, watchdogs, auto-checkpoints.

The paper's pattern-level granularity lets work move freely between host and
device; this package makes that design *survivable*.  Four pieces:

* :mod:`~repro.resilience.faults` — named fault sites in every execution
  layer, driven by seeded :class:`~repro.resilience.faults.FaultPlan`\\ s
  (deterministic or probabilistic), so failures are testable on demand.
* :mod:`~repro.resilience.recovery` — the bounded-retry policy each layer
  consults when a site fires: backend re-dispatch + numpy fallback, split
  degraded mode, halo retry with backoff, transfer rescheduling.
* :mod:`~repro.resilience.guards` — numerical watchdogs (NaN/Inf scans,
  invariant-drift limits, a CFL monitor) inside the stepping loop.
* :mod:`~repro.resilience.checkpoint` — interval-based restart files with
  in-run rollback, the recovery arm of the watchdog.
* :mod:`~repro.resilience.integrity` — CRC-sidecar validation and
  quarantine-and-rebuild self-healing for every on-disk cache (mesh,
  operator, plan): a corrupt entry is moved aside and rebuilt, never fatal.
* :mod:`~repro.resilience.durable` — crash-consistent run directories
  (manifest + committed checkpoints) and bitwise resume after a real
  process death, in serial and pool mode.

This ``__init__`` re-exports only the import-light fault/recovery/integrity
machinery (the engine registry imports it on every process start); import
``repro.resilience.guards`` / ``repro.resilience.checkpoint`` /
``repro.resilience.durable`` directly for the pieces that pull in the
shallow-water core.

Run ``python -m repro.resilience --selftest`` for the end-to-end proof:
a faulted Galewsky run recovering to a bitwise-identical final state.
"""

from .faults import (
    KNOWN_SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    fault_site,
    use_fault_plan,
)
from .integrity import checked_load, quarantine, seal, verify
from .recovery import RecoveryPolicy, active_recovery_policy, use_recovery_policy

__all__ = [
    "KNOWN_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "fault_site",
    "use_fault_plan",
    "RecoveryPolicy",
    "active_recovery_policy",
    "use_recovery_policy",
    "seal",
    "verify",
    "quarantine",
    "checked_load",
]
