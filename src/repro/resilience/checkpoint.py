"""Interval-based auto-checkpointing with in-run rollback.

:class:`AutoCheckpointer` layers on the model's existing restart files
(:meth:`repro.swm.model.ShallowWaterModel.save_checkpoint` /
:meth:`~repro.swm.model.ShallowWaterModel.from_checkpoint`): every
``interval`` steps it writes a full restart file, keeps the newest ``keep``
of them, and can *roll the running model back* to the newest one — the
recovery arm of the numerical watchdog (:mod:`repro.resilience.guards`).

Rollback restores only the prognostic fields (``h``, ``u``) and recomputes
the diagnostics from them; that is exactly the restart contract the test
suite already proves bitwise (end-of-step diagnostics are a pure function of
the state), so a rolled-back trajectory is indistinguishable from one that
never left the checkpointed state.  Saves and rollbacks are counted as
``resilience.checkpoint.saved`` / ``resilience.checkpoint.rollback``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from ..obs.metrics import get_registry

__all__ = ["AutoCheckpointer"]


class AutoCheckpointer:
    """Periodic restart files for a running model, newest-first rollback.

    Parameters
    ----------
    model : ShallowWaterModel
        The model being integrated; ``model.state`` must be current when
        :meth:`save` is called (the run loop updates it every step).
    interval : int
        Steps between automatic saves (:meth:`maybe_save`); must be >= 1.
    directory : path-like, optional
        Where restart files go.  Default: a temporary directory owned by
        this checkpointer (deleted with it).  Pointing at an existing
        directory *discovers* any prior ``auto-*.npz`` checkpoints in it,
        so a restarted process can roll back to (or resume from) files a
        previous process wrote.
    keep : int
        How many newest checkpoints to retain on disk.
    """

    def __init__(self, model, interval: int, directory=None, keep: int = 2) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.model = model
        self.interval = interval
        self.keep = keep
        self._tmp = None
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            directory = self._tmp.name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._saved: list[tuple[int, Path]] = self._discover()

    def _discover(self) -> list[tuple[int, Path]]:
        """Existing ``auto-<step>.npz`` files in the directory, step order."""
        found: list[tuple[int, Path]] = []
        for path in self.directory.glob("auto-*.npz"):
            try:
                step = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            found.append((step, path))
        return sorted(found)

    # ------------------------------------------------------------------ save
    @property
    def last_step(self) -> int | None:
        """Step number of the newest retained checkpoint (``None`` if none)."""
        return self._saved[-1][0] if self._saved else None

    @property
    def last_path(self) -> Path | None:
        """Path of the newest retained checkpoint (``None`` if none)."""
        return self._saved[-1][1] if self._saved else None

    def discard_after(self, step: int) -> None:
        """Drop (and delete) every checkpoint newer than ``step``.

        A resumed run starting at ``step`` must not be able to roll *forward*
        onto checkpoints a previous, longer-lived process left behind.
        """
        while self._saved and self._saved[-1][0] > step:
            _, path = self._saved.pop()
            path.unlink(missing_ok=True)

    def maybe_save(self, step: int) -> bool:
        """Save iff ``step`` is a multiple of the interval."""
        if step % self.interval == 0:
            self.save(step)
            return True
        return False

    def save(self, step: int) -> Path:
        """Write one restart file for the model's current state."""
        path = self.directory / f"auto-{step:08d}.npz"
        self.model.save_checkpoint(path)
        self._saved.append((step, path))
        while len(self._saved) > self.keep:
            _, old = self._saved.pop(0)
            old.unlink(missing_ok=True)
        get_registry().counter("resilience.checkpoint.saved").inc()
        return path

    # -------------------------------------------------------------- rollback
    def rollback(self) -> int:
        """Restore the model to the newest checkpoint; return its step.

        Only ``h``/``u`` are read back (the run's fixed fields never change);
        diagnostics are recomputed, matching the restart contract.  The
        model's *current* configuration is kept — so a caller that halves
        ``dt`` before resuming integrates the restored state under the new
        step size.
        """
        if not self._saved:
            raise RuntimeError("no auto-checkpoint to roll back to")
        from ..swm.state import State

        step, path = self._saved[-1]
        model = self.model
        with np.load(path) as data:
            state = State(h=data["h"].copy(), u=data["u"].copy())
        model.state = state
        model.diagnostics = model.integrator.diagnostics_for(state)
        get_registry().counter("resilience.checkpoint.rollback").inc()
        return step
