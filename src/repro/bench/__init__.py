"""Shared benchmark-harness utilities (table/series renderers, paper data)."""

from .paper import FIG6_PAPER, FIG7_PAPER, FIG9_PAPER, TABLE_III_PAPER
from .tables import fmt_speedup, fmt_time, render_series, render_table

__all__ = [
    "FIG6_PAPER",
    "FIG7_PAPER",
    "FIG9_PAPER",
    "TABLE_III_PAPER",
    "fmt_speedup",
    "fmt_time",
    "render_series",
    "render_table",
]
