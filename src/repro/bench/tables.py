"""Text renderers for the paper's tables and figure data.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the output format consistent across benches and examples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "fmt_time", "fmt_speedup"]


def fmt_time(seconds: float) -> str:
    """Human-scaled time formatting for report rows."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def fmt_speedup(x: float) -> str:
    return f"{x:.2f}x"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Monospace table with a title rule, sized to its content."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    fmt=fmt_time,
) -> str:
    """Figure data as a table: one row per x, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(fmt(series[name][i]) for name in series)])
    return render_table(title, headers, rows)
