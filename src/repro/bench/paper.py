"""The paper's published numbers, for side-by-side reporting.

These values are *only* used to print "paper vs. reproduced" comparisons in
the benchmark output and EXPERIMENTS.md; nothing in the models reads them.
"""

from __future__ import annotations

__all__ = [
    "FIG6_PAPER",
    "FIG7_PAPER",
    "TABLE_III_PAPER",
    "FIG9_PAPER",
]

#: Figure 6 (approximate bar readings): cumulative speedup on one Xeon Phi
#: over the serial baseline, 30-km mesh.
FIG6_PAPER: dict[str, float] = {
    "Baseline": 1.0,
    "OpenMP": 18.0,  # "less than 20x"
    "Refactoring": 62.0,  # "over 60x"
    "SIMD": 74.0,  # "+ about another 20%"
    "Streaming": 85.0,
    "Others": 98.0,  # "nearly 100x"
}

#: Figure 7: per-step seconds (CPU serial, kernel-level, pattern-driven) and
#: the quoted speedups.
FIG7_PAPER: dict[int, tuple[float, float, float]] = {
    40962: (0.271, 0.059, 0.045),
    163842: (1.115, 0.198, 0.143),
    655362: (4.434, 0.741, 0.532),
    2621442: (17.528, 2.896, 2.102),
}

#: Table III.
TABLE_III_PAPER: dict[str, int] = {
    "120-km": 40_962,
    "60-km": 163_842,
    "30-km": 655_362,
    "15-km": 2_621_442,
}

#: Figure 9 (weak scaling, ~40,962 cells/process): per-step seconds.
FIG9_PAPER: dict[int, tuple[float, float]] = {
    # procs: (cpu, hybrid)
    1: (0.271, 0.045),
    4: (0.272, 0.046),
    16: (0.274, 0.046),
    64: (0.273, 0.047),
}
