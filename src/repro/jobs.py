"""The job queue: deferred, deduplicated, checkpoint-backed runs.

A service that owns many runs does not want ``run()``'s synchronous
contract; it wants to *describe* work, hand it in, and collect results
later — possibly from a different process than the one that submitted.
This module is that surface, three functions over
:class:`~repro.api.RunRequest`:

:func:`submit`
    Register a request and return a :class:`JobHandle`.  Submission never
    integrates anything.  Two submissions whose requests share a
    :meth:`~repro.api.RunRequest.key` — same mesh fingerprint, same case,
    same config, same horizon — return the *same* handle: the work is
    deduplicated, not queued twice.
:func:`status`
    ``"pending"`` (nothing ran yet), ``"running"`` (a durable job with
    committed checkpoints short of its horizon — e.g. the driving process
    died mid-run), ``"completed"`` or ``"failed"``.
:func:`result`
    The job's :class:`~repro.swm.model.RunResult`, computing it now if
    needed (lazy, synchronous).  For durable jobs this is crash-tolerant:
    a partially-run directory resumes from its newest committed
    checkpoint, and a *completed* job whose in-memory record was evicted
    (process restart) reconstructs the result from the final checkpoint —
    the manifest is the source of truth, not this process's memory.

Durability is opt-in per request: a ``run_dir`` on the request routes the
job through the PR 8 :mod:`~repro.resilience.durable` machinery (manifest
+ committed checkpoints), and :func:`status`/:func:`result` accept the
bare run directory in place of a handle, so a fresh process can pick up a
job it never submitted.  Requests without ``run_dir`` live only in this
process (fine for scripts and tests, gone on restart).

Ensemble requests (``config.ensemble >= 1``) are jobbable in-process:
``result()`` returns the :class:`~repro.ensemble.run.EnsembleResult`.
Durable ensemble jobs are not supported yet — one manifest describes one
trajectory.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from pathlib import Path

from .obs.metrics import get_registry

__all__ = ["JobHandle", "JobError", "submit", "status", "result", "reset"]


class JobError(RuntimeError):
    """A job cannot be submitted, inspected or completed as asked."""


@dataclass(frozen=True, eq=False)
class JobHandle:
    """One submitted job: its identity, its request, its (optional) home.

    Frozen like the request it wraps; the mutable execution record lives
    in the queue, keyed by ``id``.
    """

    id: str
    request: object  # the normalized RunRequest
    run_dir: Path | None = None


@dataclass
class _Job:
    handle: JobHandle
    state: str = "pending"  # pending | completed | failed
    result: object = None
    error: BaseException | None = None


# The in-process queue: content key -> job, id -> job.  Durable jobs are
# *also* recorded here (fast path), but their ground truth is the
# manifest on disk — see _durable_status/_durable_result.
_BY_KEY: dict[tuple, _Job] = {}
_BY_ID: dict[str, _Job] = {}
_IDS = itertools.count(1)


def reset() -> None:
    """Forget every in-process job record (tests; simulates eviction).

    Durable jobs survive this by design: their run directories still
    resolve through :func:`status`/:func:`result`.
    """
    _BY_KEY.clear()
    _BY_ID.clear()


def submit(request=None, **kwargs) -> JobHandle:
    """Register one run request; return its (possibly pre-existing) handle.

    Accepts a :class:`~repro.api.RunRequest` or its keyword fields
    (``submit(case="galewsky", steps=10)``).  Submission is cheap-ish —
    the request is normalized (mesh build hits the cache) but *nothing is
    integrated*.  A request whose :meth:`~repro.api.RunRequest.key`
    matches an earlier submission returns that submission's handle.

    A durable request (``run_dir``) additionally creates the run
    directory's manifest right now, so the job is discoverable from disk
    before any step runs; re-submitting over an existing directory
    attaches to it instead of failing.
    """
    from .api import RunRequest

    if request is None:
        request = RunRequest(**kwargs)
    elif kwargs:
        raise JobError("pass a RunRequest or keyword fields, not both")
    if not isinstance(request, RunRequest):
        raise JobError(
            f"submit() takes a RunRequest (or its keyword fields), "
            f"got {type(request).__name__}"
        )
    req = request.normalize()
    key = req.key()
    existing = _BY_KEY.get(key)
    if existing is not None:
        get_registry().counter("jobs.deduplicated").inc()
        return existing.handle

    run_dir = None if req.run_dir is None else Path(req.run_dir)
    if run_dir is not None:
        if req.config.ensemble:
            raise JobError(
                "durable ensemble jobs are not supported: one manifest "
                "describes one trajectory — drop run_dir or submit the "
                "members as separate requests"
            )
        _ensure_manifest(req, run_dir)

    handle = JobHandle(id=f"job-{next(_IDS):04d}", request=req, run_dir=run_dir)
    job = _Job(handle=handle)
    _BY_KEY[key] = job
    _BY_ID[handle.id] = job
    get_registry().counter("jobs.submitted").inc()
    return handle


def status(job) -> str:
    """The job's lifecycle state: pending / running / completed / failed.

    ``job`` is a :class:`JobHandle` or, for durable jobs, the run
    directory itself — any process can ask, not just the submitter.
    """
    record, run_dir = _resolve(job)
    if run_dir is not None:
        return _durable_status(run_dir)
    if record is None:
        raise JobError(f"unknown job {job!r} (not submitted in this process)")
    return record.state


def result(job):
    """The job's result, computing or recovering it now if necessary.

    Synchronous and idempotent: the first call on a pending job runs it
    (durable jobs resume from their newest committed checkpoint if a
    previous driver died mid-run); later calls return the cached result.
    A completed *durable* job with no in-memory record — submitted by a
    process that has since exited — reconstructs its
    :class:`~repro.swm.model.RunResult` from the final checkpoint.
    """
    record, run_dir = _resolve(job)
    if record is not None and record.state == "completed":
        return record.result
    if record is not None and record.state == "failed":
        raise record.error
    if run_dir is not None:
        value = _durable_result(run_dir)
        if record is not None:
            record.state, record.result = "completed", value
        return value
    if record is None:
        raise JobError(f"unknown job {job!r} (not submitted in this process)")
    try:
        value = _run_now(record.handle.request)
    except Exception as exc:
        record.state, record.error = "failed", exc
        raise
    record.state, record.result = "completed", value
    return value


# ---------------------------------------------------------------- internals
def _resolve(job) -> tuple[_Job | None, Path | None]:
    """``(in-process record or None, durable run_dir or None)``."""
    if isinstance(job, JobHandle):
        return _BY_ID.get(job.id), job.run_dir
    if isinstance(job, str) and job in _BY_ID:
        return _BY_ID[job], _BY_ID[job].handle.run_dir
    if isinstance(job, (str, Path)):
        return None, Path(job)
    raise JobError(
        f"expected a JobHandle, a job id, or a durable run directory, "
        f"got {job!r}"
    )


def _run_now(req):
    """Execute a normalized request in-process (plain or ensemble)."""
    if req.config.ensemble:
        from .api import run_ensemble

        return run_ensemble(
            case=req.case,
            mesh=req.mesh,
            config=req.config,
            steps=req.steps,
            invariant_interval=req.invariant_interval,
        )
    from .api import _execute

    return _execute(req)


def _ensure_manifest(req, run_dir: Path) -> None:
    """Create the durable run directory now (or attach to a matching one)."""
    from .resilience.durable import DurableRun, ManifestError

    config = req.config
    if config.checkpoint_interval < 1:
        # Mirror run_durable: a durable run without checkpoints would be
        # an ordinary run with extra paperwork.
        config = dataclasses.replace(config, checkpoint_interval=1)
    if (run_dir / "manifest.json").exists():
        existing = DurableRun.open(run_dir)
        existing.validate_compatible(
            config=config, mesh=req.mesh, case_token=req.case_token
        )
        if int(existing.manifest["steps"]) != int(req.steps):
            raise ManifestError(
                f"job horizon {req.steps} does not match the durable run in "
                f"{run_dir} (manifest: {existing.manifest['steps']}); point "
                f"the request at a fresh directory"
            )
        return
    DurableRun.create(run_dir, req.case_token, req.mesh, config, req.steps)


def _durable_status(run_dir: Path) -> str:
    from .resilience.durable import DurableRun

    run = DurableRun.open(run_dir)
    if run.manifest.get("completed"):
        return "completed"
    if run.manifest["checkpoints"]:
        return "running"
    return "pending"


def _durable_result(run_dir: Path):
    """Drive or recover a durable job purely from its run directory."""
    from .resilience.durable import DurableRun, ManifestError, resume_durable

    run = DurableRun.open(run_dir)
    if run.manifest.get("completed"):
        return _reconstruct_completed(run)
    if run.manifest["checkpoints"]:
        # A previous driver made progress and died; roll forward from the
        # newest committed checkpoint (bitwise identical to never dying).
        get_registry().counter("jobs.resumed").inc()
        return resume_durable(run_dir)
    # Fresh directory: drive the run from step 0 under this manifest.
    mesh = _manifest_mesh(run)
    from .api import resolve_case
    from .resilience.durable import _execute_decomposed, _execute_serial
    from .swm.config import SWConfig

    config = SWConfig(**run.manifest["config"])
    case = resolve_case(run.manifest["case"])
    total = int(run.manifest["steps"])
    if config.parallel == "serial":
        return _execute_serial(run, mesh, case, config, 0, total, None)
    return _execute_decomposed(run, mesh, case, config, 0, total, None)


def _manifest_mesh(run):
    """Rebuild the job's mesh from the manifest identity (cache-backed)."""
    from .resilience.durable import ManifestError

    ident = run.manifest["mesh"]
    if ident["level"] is None:
        raise ManifestError(
            f"the manifest in {run.directory} records no mesh level to "
            f"rebuild from (custom mesh {ident['name']!r}); drive this job "
            f"from the submitting process instead"
        )
    from .mesh.cache import cached_mesh

    mesh = cached_mesh(
        ident["level"],
        lloyd_iterations=ident["lloyd_iterations"],
        radius=ident["radius"],
    )
    run.validate_compatible(mesh=mesh)
    return mesh


def _reconstruct_completed(run):
    """A completed job's result, rebuilt from its final checkpoint.

    ``resume_durable`` (rightly) refuses completed runs, but a service
    asking for the result of a finished job after a restart deserves an
    answer, not an error: the final committed checkpoint holds the
    prognostic state, and the end-of-step diagnostics are a pure function
    of it (the restart contract), so everything except the in-run
    invariant history is recoverable bitwise.  The *endpoint* invariants
    are recomputed too — the initial condition re-discretizes from the
    manifest's case token and the final state comes off the checkpoint,
    so ``mass_drift()``/``energy_drift()`` answer identically to the
    original driver (which recorded the same two states).
    """
    from .api import resolve_case
    from .resilience.durable import ManifestError
    from .swm.error import invariants
    from .swm.model import RunResult, ShallowWaterModel
    from .swm.testcases import initialize

    total = int(run.manifest["steps"])
    found = run.latest_valid_checkpoint()
    if found is None or found[0] != total:
        at = "none" if found is None else f"step {found[0]}"
        raise ManifestError(
            f"the completed run in {run.directory} has no valid final "
            f"checkpoint (newest: {at}, want step {total}); the result "
            f"cannot be reconstructed"
        )
    _, ckpt = found
    mesh = _manifest_mesh(run)
    get_registry().counter("jobs.reconstructed").inc()
    model = ShallowWaterModel.from_checkpoint(mesh, ckpt)
    recon = model.integrator._mpas_reconstruct(
        mesh, model.state.u, backend=model.config.backend
    )
    case = resolve_case(run.manifest["case"])
    state0, b0 = initialize(mesh, case)
    diag0 = model.integrator.diagnostics_for(state0)
    history = [
        invariants(mesh, state0, diag0, b0, model.config.gravity),
        invariants(
            mesh, model.state, model.diagnostics, model.b_cell,
            model.config.gravity,
        ),
    ]
    return RunResult(
        state=model.state,
        diagnostics=model.diagnostics,
        reconstruction=recon,
        steps=total,
        elapsed_seconds=total * model.config.dt,
        invariant_history=history,
    )
