"""Nested, labelled span tracing — the measurement substrate of the repo.

The paper's method is measurement-driven: kernel profiles motivate the
Figure 2 placement, per-pattern costs drive the Figure 4b hybrid split, and
the Figure 6 ladder is a sequence of measured deltas.  :class:`Tracer` makes
those measurements first-class: a stack of labelled spans, each carrying the
tags the rest of the repo speaks in (pattern id A-H, kernel name, mesh-point
type, element count, estimated bytes moved).

Spans come from two clocks:

* *wall* spans (``tracer.span(...)`` as a context manager) time real NumPy
  kernel executions with ``time.perf_counter``, relative to the tracer's
  creation so numbers stay small and exportable;
* *simulated* spans (``tracer.add_span(...)`` with explicit times) record
  the discrete-event timelines of :mod:`repro.hybrid.executor`, which have
  their own model time axis.

A process-wide tracer (:func:`get_tracer`) is installed but *disabled* by
default; every instrumentation site checks ``enabled`` first and returns a
shared no-op span, so an untraced run pays one attribute check and one
no-op context manager per kernel call (far below 1% of kernel cost).
Tracing is single-threaded by design, like the NumPy model it measures.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "SpanRecord",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_span",
]


class SpanRecord:
    """One completed (or in-flight) span.

    ``start``/``end`` are seconds on the owning tracer's time axis;
    ``end`` is ``None`` while the span is still open.  ``parent`` is the
    index of the enclosing span in ``tracer.spans`` (``None`` at the root),
    ``depth`` the nesting level, and ``tags`` an arbitrary mapping — by
    convention ``pattern``, ``kind``, ``kernel``, ``point``, ``n_points``
    and ``bytes_est`` for pattern spans.
    """

    __slots__ = ("index", "name", "category", "start", "end", "parent", "depth", "tags")

    def __init__(
        self,
        index: int,
        name: str,
        category: str,
        start: float,
        end: float | None,
        parent: int | None,
        depth: int,
        tags: dict,
    ) -> None:
        self.index = index
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.parent = parent
        self.depth = depth
        self.tags = tags

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "parent": self.parent,
            "depth": self.depth,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dur = "open" if self.end is None else f"{self.duration * 1e3:.3f} ms"
        return f"SpanRecord({self.name!r}, {self.category}, {dur}, depth={self.depth})"


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that finalizes one :class:`SpanRecord` on exit."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, *exc) -> bool:
        self._tracer._finish(self._record)
        return False


class Tracer:
    """Records nested spans on a private time axis starting at creation."""

    def __init__(self, enabled: bool = True, clock=time.perf_counter) -> None:
        self.enabled = enabled
        self._clock = clock
        self._t0 = clock()
        self.spans: list[SpanRecord] = []
        self._stack: list[int] = []

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        """Seconds since tracer creation (the wall-span time axis)."""
        return self._clock() - self._t0

    # ----------------------------------------------------------------- spans
    def span(self, name: str, category: str = "kernel", **tags):
        """Open a nested span; use as ``with tracer.span(...):``."""
        if not self.enabled:
            return NULL_SPAN
        record = SpanRecord(
            index=len(self.spans),
            name=name,
            category=category,
            start=self.now(),
            end=None,
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
            tags=tags,
        )
        self.spans.append(record)
        self._stack.append(record.index)
        return _ActiveSpan(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.end = self.now()
        # Robust to exceptions unwinding several spans at once.
        while self._stack and self._stack[-1] >= record.index:
            self._stack.pop()

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "sim",
        **tags,
    ) -> SpanRecord | None:
        """Record a span with explicit times (simulated timelines).

        Returns the record, or ``None`` when tracing is disabled.
        """
        if not self.enabled:
            return None
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        record = SpanRecord(
            index=len(self.spans),
            name=name,
            category=category,
            start=start,
            end=end,
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
            tags=tags,
        )
        self.spans.append(record)
        return record

    def merge_records(self, records: list[dict], **extra_tags) -> int:
        """Absorb finished spans exported by another tracer (``to_dict``).

        The cross-process half of tracing: pool workers export their
        finished spans as dicts and the parent merges them here with
        ``extra_tags`` (conventionally ``rank=r``).  Parent/child tracers
        have different time origins, so merged spans keep their own time
        axis and are appended as roots (parent links inside one worker are
        not preserved — aggregation is by name/tag, which survives).
        Returns the number of spans merged; no-op while disabled.
        """
        if not self.enabled:
            return 0
        merged = 0
        for rec in records:
            if rec.get("end") is None:
                continue
            tags = dict(rec.get("tags", {}))
            tags.update(extra_tags)
            self.add_span(
                rec["name"],
                rec["start"],
                rec["end"],
                category=rec.get("category", "kernel"),
                **tags,
            )
            merged += 1
        return merged

    # ------------------------------------------------------------ inspection
    def finished(self) -> list[SpanRecord]:
        return [s for s in self.spans if s.end is not None]

    def roots(self) -> list[SpanRecord]:
        return [s for s in self.spans if s.parent is None]

    def children(self, record: SpanRecord) -> list[SpanRecord]:
        return [s for s in self.spans if s.parent == record.index]

    def aggregate(self, tag: str, category: str | None = None) -> dict[str, float]:
        """Total duration of finished spans, grouped by one tag's value."""
        totals: dict[str, float] = {}
        for s in self.finished():
            if category is not None and s.category != category:
                continue
            key = s.tags.get(tag)
            if key is None:
                continue
            key = str(key)
            totals[key] = totals.get(key, 0.0) + s.duration
        return totals

    def aggregate_names(self, category: str | None = None) -> dict[str, float]:
        """Total duration of finished spans, grouped by span name."""
        totals: dict[str, float] = {}
        for s in self.finished():
            if category is not None and s.category != category:
                continue
            totals[s.name] = totals.get(s.name, 0.0) + s.duration
        return totals

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self.spans)


# -------------------------------------------------------------- global tracer
_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless one was installed)."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns the old one."""
    global _GLOBAL
    old = _GLOBAL
    _GLOBAL = tracer
    return old


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` as the process-wide tracer."""
    old = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(old)


def trace_span(name: str, category: str = "kernel", **tags):
    """Open a span on the process-wide tracer (no-op when disabled)."""
    t = _GLOBAL
    if not t.enabled:
        return NULL_SPAN
    return t.span(name, category=category, **tags)
