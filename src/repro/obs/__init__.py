"""Unified observability: tracing, metrics, exporters and cost reports.

The measurement layer every perf decision in this repo rests on (see
``docs/observability.md``):

* :mod:`repro.obs.trace` — nested, labelled spans (pattern id A-H, kernel,
  point type, element count, estimated bytes) with a process-wide tracer
  that is free when disabled;
* :mod:`repro.obs.metrics` — process-wide counters/gauges/timers with
  tagged series (halo traffic, split ratios, autotune trials);
* :mod:`repro.obs.export` — JSON-lines and Chrome ``chrome://tracing``
  trace-event output;
* :mod:`repro.obs.report` — per-pattern measured-vs-modeled cost tables
  joining the tracer with :mod:`repro.machine.cost`, plus the
  ``python -m repro.obs.report`` CLI (``--selftest`` smoke-tests the whole
  chain).
"""

from .instrument import kernel_span, pattern_span
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    get_registry,
    set_registry,
    use_registry,
)
from .trace import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    trace_span,
    use_tracer,
)

__all__ = [
    "kernel_span",
    "pattern_span",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "set_registry",
    "use_registry",
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_span",
    "use_tracer",
]
