"""Repo-aware span helpers: pattern/kernel spans tagged from the catalog.

:func:`pattern_span` is the one-liner the kernels use: given a Table I label
(``"A1"``, ``"B1"``, ... or the fused ``"C1,C2"`` pair that one vectorized
sweep computes together), it opens a span on the process-wide tracer tagged
with everything the report layer needs — pattern id, stencil kind letter,
owning kernel, output point type, element count and the estimated bytes
moved (from the catalog's per-point traffic counts, the same numbers
:mod:`repro.machine.cost` prices).

The catalog lookup is built lazily on the first *enabled* call, so importing
an instrumented kernel module never imports the pattern machinery, and a
disabled tracer pays only the ``enabled`` check.
"""

from __future__ import annotations

from .trace import NULL_SPAN, get_tracer

__all__ = ["kernel_span", "pattern_span", "pattern_info"]

_PATTERN_INFO: dict[str, dict] | None = None


def pattern_info() -> dict[str, dict]:
    """Per-label static tags derived from the full Table I catalog."""
    global _PATTERN_INFO
    if _PATTERN_INFO is None:
        from ..patterns.catalog import build_catalog

        info: dict[str, dict] = {}
        for inst in build_catalog(None):
            info[inst.label] = {
                "kind": inst.kind_letter,
                "kernel": inst.kernel,
                "point": inst.output_point.value,
                "output_point": inst.output_point,
                "bytes_per_point": 8.0 * inst.f64_per_point
                + 4.0 * inst.i32_per_point,
            }
        _PATTERN_INFO = info
    return _PATTERN_INFO


def kernel_span(name: str, stage: int | None = None, **tags):
    """Span for one Algorithm 1 kernel call (no-op when tracing is off)."""
    t = get_tracer()
    if not t.enabled:
        return NULL_SPAN
    if stage is not None:
        tags["stage"] = stage
    return t.span(name, category="kernel", kernel=name, **tags)


def pattern_span(label: str, mesh=None, n_points: int | None = None, **tags):
    """Span for one Table I pattern instance (no-op when tracing is off).

    ``label`` may name a single instance or a comma-fused group (``"C1,C2"``)
    computed by one sweep; tags then merge the group.  ``mesh`` (anything
    with ``nCells``/``nEdges``/``nVertices``, incl.
    :class:`~repro.machine.counts.MeshCounts`) sizes ``n_points`` and
    ``bytes_est``; pass ``n_points`` directly when no mesh is at hand.
    """
    t = get_tracer()
    if not t.enabled:
        return NULL_SPAN
    info = pattern_info()
    parts = [info[part] for part in label.split(",")]
    first = parts[0]
    if mesh is not None and n_points is None:
        n_points = first["output_point"].count(mesh)
    span_tags = {
        "pattern": label,
        "kind": first["kind"],
        "kernel": first["kernel"],
        "point": first["point"],
    }
    if n_points is not None:
        span_tags["n_points"] = int(n_points)
        span_tags["bytes_est"] = sum(p["bytes_per_point"] for p in parts) * int(
            n_points
        )
    span_tags.update(tags)
    return t.span(label, category="pattern", **span_tags)
