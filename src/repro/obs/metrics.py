"""Process-wide metrics: counters, gauges and timers with tagged series.

Every ``(name, tags)`` combination is one *series*; the registry creates a
series on first touch and accumulates into it thereafter, so call sites can
write ``registry.counter("halo.bytes", ranks=4).inc(n)`` unconditionally.
Unlike the tracer there is no disabled state — a metric update is one dict
lookup plus an addition, cheap enough to leave on always — which also makes
autotuning trajectories and halo traffic replayable after the fact.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]


def _series_key(name: str, tags: dict) -> tuple:
    return (name, tuple(sorted((k, str(v)) for k, v in tags.items())))


class Counter:
    """Monotonically increasing total (bytes moved, exchanges performed)."""

    __slots__ = ("name", "tags", "value")
    kind = "counter"

    def __init__(self, name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-written value (a split fraction, a trial makespan)."""

    __slots__ = ("name", "tags", "value")
    kind = "gauge"

    def __init__(self, name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"value": self.value}


class Timer:
    """Observation statistics (count / total / min / max / mean)."""

    __slots__ = ("name", "tags", "count", "total", "min", "max")
    kind = "timer"

    def __init__(self, name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def absorb(self, count: int, total: float, min_s: float, max_s: float) -> None:
        """Fold another timer's statistics into this one (cross-process merge)."""
        if count <= 0:
            return
        self.count += int(count)
        self.total += total
        self.min = min(self.min, min_s)
        self.max = max(self.max, max_s)

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create home of all tagged series in one process."""

    def __init__(self) -> None:
        self._series: dict[tuple, object] = {}

    def _get(self, cls, name: str, tags: dict):
        key = _series_key(name, tags)
        series = self._series.get(key)
        if series is None:
            series = cls(name, tags)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise TypeError(
                f"series {name!r} {tags!r} already registered as {series.kind}"
            )
        return series

    def counter(self, name: str, **tags) -> Counter:
        return self._get(Counter, name, tags)

    def gauge(self, name: str, **tags) -> Gauge:
        return self._get(Gauge, name, tags)

    def timer(self, name: str, **tags) -> Timer:
        return self._get(Timer, name, tags)

    # ------------------------------------------------------------ inspection
    def series(self, name: str | None = None) -> list:
        """All series, optionally filtered by metric name."""
        out = [s for s in self._series.values() if name is None or s.name == name]
        return sorted(out, key=lambda s: _series_key(s.name, s.tags))

    def snapshot(self) -> list[dict]:
        """JSON-ready dump of every series (exporter input)."""
        return [
            {
                "metric": s.name,
                "kind": s.kind,
                "tags": {k: v for k, v in s.tags.items()},
                **s.snapshot(),
            }
            for s in self.series()
        ]

    def merge_snapshot(self, snapshot: list[dict], **extra_tags) -> int:
        """Fold a :meth:`snapshot` from another registry into this one.

        The cross-process half of observability: worker processes snapshot
        their private registry and ship the list over a pipe; the parent
        merges each series here, with ``extra_tags`` (conventionally
        ``rank=r``) appended so per-worker series stay distinguishable.
        Counters accumulate, gauges keep the last merged value, timers fold
        their full statistics.  Returns the number of series merged.
        """
        for record in snapshot:
            tags = dict(record["tags"])
            tags.update(extra_tags)
            kind = record["kind"]
            if kind == "counter":
                self.counter(record["metric"], **tags).inc(record["value"])
            elif kind == "gauge":
                self.gauge(record["metric"], **tags).set(record["value"])
            elif kind == "timer":
                self.timer(record["metric"], **tags).absorb(
                    record["count"], record["total"], record["min"], record["max"]
                )
            else:  # pragma: no cover - future kinds must be handled explicitly
                raise ValueError(f"cannot merge series of kind {kind!r}")
        return len(snapshot)

    def clear(self) -> None:
        self._series.clear()

    def __len__(self) -> int:
        return len(self._series)


# ------------------------------------------------------------ global registry
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the old one."""
    global _GLOBAL
    old = _GLOBAL
    _GLOBAL = registry
    return old


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` process-wide."""
    old = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(old)
