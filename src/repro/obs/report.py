"""Measured-vs-modeled cost reporting (and the observability CLI).

The performance model (:mod:`repro.machine.cost`) predicts per-pattern
times; the tracer measures them on the real NumPy kernels.  This module
joins the two on the Table I labels, so "is the model drifting from the
code?" is one function call: :func:`measured_vs_modeled` returns one row per
pattern with measured/modeled *shares* of a step and their difference.
Shares — not absolute times — are the comparable quantity: the model prices
a simulated Xeon, the measurement times NumPy, but both must agree on
*where the time goes* for the Figure 4b scheduling story to hold.

Run it::

    python -m repro.obs.report --selftest
    python -m repro.obs.report --case galewsky --steps 10 \\
        --chrome trace.json --jsonl run.jsonl --kernels
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

from .export import read_jsonl, validate_chrome_trace, write_chrome_trace, write_jsonl
from .instrument import pattern_info
from .metrics import MetricsRegistry, get_registry, use_registry
from .trace import SpanRecord, Tracer, use_tracer

__all__ = [
    "PatternCost",
    "BackendCost",
    "measured_pattern_costs",
    "modeled_pattern_costs",
    "measured_vs_modeled",
    "render_cost_report",
    "backend_cost_rows",
    "render_backend_cost_report",
    "kernel_profile_rows",
    "render_kernel_profile",
    "resilience_rows",
    "render_resilience_report",
    "ensemble_rows",
    "render_ensemble_report",
    "halo_rows",
    "render_halo_report",
    "run_traced",
    "main",
]


# ------------------------------------------------------------------- measured
def pattern_self_times(spans: list[SpanRecord]) -> dict[str, float]:
    """Self time per pattern label (child pattern spans subtracted).

    Pattern spans may nest (``D1`` runs the fused ``C1,C2`` sweep inside),
    so each span is charged only for the time not covered by its own
    pattern children; fused labels (``"C1,C2"``) are split among their
    members in proportion to the catalog's bytes-per-point.
    """
    finished = [s for s in spans if s.end is not None]
    self_time: dict[int, float] = {
        s.index: s.duration for s in finished if s.category == "pattern"
    }
    for s in finished:
        if s.category != "pattern" or s.parent is None:
            continue
        if s.parent in self_time:
            self_time[s.parent] -= s.duration
    by_index = {s.index: s for s in finished}
    info = pattern_info()
    totals: dict[str, float] = {}
    for index, seconds in self_time.items():
        label = str(by_index[index].tags.get("pattern", by_index[index].name))
        parts = label.split(",")
        weights = [info[p]["bytes_per_point"] if p in info else 1.0 for p in parts]
        total_w = sum(weights) or 1.0
        for part, w in zip(parts, weights):
            totals[part] = totals.get(part, 0.0) + seconds * (w / total_w)
    return totals


def measured_pattern_costs(tracer: Tracer) -> dict[str, float]:
    """Total measured self time per Table I label, in seconds."""
    return pattern_self_times(tracer.spans)


# -------------------------------------------------------------------- modeled
def occurrences_per_step(config=None) -> dict[str, int]:
    """How many times each pattern instance runs in one RK-4 step."""
    from ..dataflow.build import build_step_graph

    dfg = build_step_graph(config, with_halo=False)
    counts: dict[str, int] = {}
    for node in dfg.compute_nodes():
        label = dfg.instance(node).label
        counts[label] = counts.get(label, 0) + 1
    return counts


def modeled_pattern_costs(
    mesh_counts, config=None, device=None, profile=None
) -> dict[str, float]:
    """Model-predicted seconds per pattern for one full RK-4 step."""
    from ..machine.cost import CostModel, ExecutionProfile
    from ..machine.spec import XEON_E5_2680V2
    from ..patterns.catalog import build_catalog

    if device is None:
        device = XEON_E5_2680V2
    if profile is None:
        # Single-threaded, unvectorized: the profile closest to NumPy.
        profile = ExecutionProfile(threads=1, vectorized=False)
    model = CostModel(device=device, profile=profile)
    occurrences = occurrences_per_step(config)
    costs: dict[str, float] = {}
    for inst in build_catalog(config):
        n = inst.output_point.count(mesh_counts)
        costs[inst.label] = model.instance_time(inst, n) * occurrences.get(
            inst.label, 0
        )
    return costs


# ---------------------------------------------------------------------- join
@dataclass(frozen=True)
class PatternCost:
    """One row of the measured-vs-modeled table."""

    label: str
    kind: str
    kernel: str
    point: str
    per_step: int
    measured_s: float
    measured_share: float
    modeled_s: float
    modeled_share: float

    @property
    def drift_pp(self) -> float:
        """Measured minus modeled share, in percentage points."""
        return 100.0 * (self.measured_share - self.modeled_share)


def measured_vs_modeled(
    tracer: Tracer, mesh_counts, config=None, device=None, profile=None
) -> list[PatternCost]:
    """Join measured and modeled per-pattern costs on the Table I labels."""
    from ..patterns.catalog import build_catalog

    measured = measured_pattern_costs(tracer)
    modeled = modeled_pattern_costs(mesh_counts, config, device, profile)
    occurrences = occurrences_per_step(config)
    m_total = sum(measured.get(i.label, 0.0) for i in build_catalog(config)) or 1.0
    p_total = sum(modeled.values()) or 1.0
    rows = []
    for inst in build_catalog(config):
        m = measured.get(inst.label, 0.0)
        p = modeled.get(inst.label, 0.0)
        rows.append(
            PatternCost(
                label=inst.label,
                kind=inst.kind_letter,
                kernel=inst.kernel,
                point=inst.output_point.value,
                per_step=occurrences.get(inst.label, 0),
                measured_s=m,
                measured_share=m / m_total,
                modeled_s=p,
                modeled_share=p / p_total,
            )
        )
    rows.sort(key=lambda r: -r.measured_s)
    return rows


def render_cost_report(rows: list[PatternCost], title: str) -> str:
    """The per-pattern measured-vs-modeled table, render_table-formatted."""
    from ..bench.tables import fmt_time, render_table

    table_rows = [
        [
            r.label,
            r.kind,
            r.kernel,
            r.point,
            r.per_step,
            fmt_time(r.measured_s),
            f"{100 * r.measured_share:.1f}%",
            f"{100 * r.modeled_share:.1f}%",
            f"{r.drift_pp:+.1f}",
        ]
        for r in rows
    ]
    return render_table(
        title,
        ["pattern", "kind", "kernel", "point", "n/step",
         "measured", "meas %", "model %", "drift pp"],
        table_rows,
    )


# --------------------------------------------------------- per-backend costs
@dataclass(frozen=True)
class BackendCost:
    """One ``engine.op`` timer series: an operator under one backend."""

    pattern: str
    op: str
    backend: str
    calls: int
    total_s: float
    mean_s: float


def backend_cost_rows(registry: MetricsRegistry) -> list[BackendCost]:
    """Per-backend per-pattern dispatch costs from the ``engine.op`` timers.

    Every registry dispatch is timed into a series tagged
    ``(op, pattern, backend)`` (see :meth:`repro.engine.KernelRegistry.
    dispatch`), so one run — or several runs under different backends into
    the same registry — yields directly comparable rows.
    """
    rows = [
        BackendCost(
            pattern=str(s.tags.get("pattern", "-")),
            op=str(s.tags.get("op", "?")),
            backend=str(s.tags.get("backend", "?")),
            calls=s.count,
            total_s=s.total,
            mean_s=s.mean,
        )
        for s in registry.series("engine.op")
    ]
    rows.sort(key=lambda r: (-r.total_s, r.pattern, r.op, r.backend))
    return rows


def render_backend_cost_report(rows: list[BackendCost], title: str) -> str:
    """The per-backend per-pattern dispatch-cost table."""
    from ..bench.tables import fmt_time, render_table

    table_rows = [
        [r.pattern, r.op, r.backend, r.calls, fmt_time(r.total_s), fmt_time(r.mean_s)]
        for r in rows
    ]
    return render_table(
        title, ["pattern", "op", "backend", "calls", "total", "mean"], table_rows
    )


# --------------------------------------------------------- fault and recovery
def resilience_rows(registry: MetricsRegistry) -> list[list[str]]:
    """Every fault/recovery series: injected faults, retries, fallbacks,
    degradations, backoff, checkpoints, watchdog violations and
    quarantined cache entries.

    Covers the ``resilience.*`` namespace written by the fault plans
    (:mod:`repro.resilience.faults`), the per-layer recovery mechanisms
    and the cache integrity layer (``resilience.cache.quarantined``,
    tagged by cache ``kind``), so one cost report shows both what was
    thrown at a run and how it survived.
    """
    rows = []
    for s in registry.series():
        if not s.name.startswith("resilience."):
            continue
        tags = ", ".join(f"{k}={v}" for k, v in sorted(s.tags.items())) or "-"
        rows.append([s.name, tags, f"{s.value:g}"])
    return rows


def render_resilience_report(registry: MetricsRegistry, title: str) -> str:
    """The fault/recovery counter table (empty-safe)."""
    from ..bench.tables import render_table

    rows = resilience_rows(registry) or [["(no faults injected)", "-", "0"]]
    return render_table(title, ["series", "tags", "value"], rows)


# ------------------------------------------------------------ ensemble runs
def ensemble_rows(registry: MetricsRegistry) -> list[list[str]]:
    """Every ``ensemble.*`` metric series: width, survivors, per-member
    step counts and divergences (tagged ``member=k``), and the lockstep
    step timer."""
    rows = []
    for s in registry.series():
        if not s.name.startswith("ensemble."):
            continue
        tags = ", ".join(f"{k}={v}" for k, v in sorted(s.tags.items())) or "-"
        if hasattr(s, "value"):  # counters and gauges
            shown = f"{s.value:g}"
        else:  # the ensemble.step timer
            shown = f"{s.count} calls, {s.total:.4f} s total"
        rows.append([s.name, tags, shown])
    return rows


def render_ensemble_report(result, registry: MetricsRegistry, title: str) -> str:
    """The per-member verdict table plus the ``ensemble.*`` metric series.

    ``result`` is an :class:`~repro.ensemble.run.EnsembleResult`; its
    member summary leads, the registry rows (including the per-member
    ``ensemble.member.steps`` counters) follow.
    """
    from ..bench.tables import render_table

    parts = [f"{title}", "", result.summary_table()]
    rows = ensemble_rows(registry)
    if rows:
        parts += ["", render_table("Ensemble metrics", ["series", "tags", "value"], rows)]
    return "\n".join(parts)


# ----------------------------------------------------------- halo exchanges
def halo_rows(tracer: Tracer) -> list[list[str]]:
    """Per-sync-point halo traffic from the ``halo``-category spans.

    The decomposed runners tag every exchange span with its Algorithm-1
    sync point (``pre@s1`` .. ``post@s4``), the variables moved, a bytes
    estimate and — under the dataflow schedule — how much of the span was
    spent blocked (``wait_s``) versus usefully computing inside the
    overlap window (``overlap_s``).  Static full exchanges, which carry no
    ``sync`` tag, aggregate under ``full`` with the whole span as wait.
    """
    from ..dataflow.schedule import SYNC_POINT_NAMES

    by_sync: dict[str, list] = {}
    for s in tracer.spans:
        if s.category != "halo" or s.end is None:
            continue
        key = str(s.tags.get("sync", "full"))
        row = by_sync.setdefault(key, [0, 0.0, 0.0, 0.0, 0.0, set()])
        row[0] += 1
        row[1] += s.duration
        row[2] += float(s.tags.get("wait_s", s.duration))
        row[3] += float(s.tags.get("overlap_s", 0.0))
        row[4] += float(s.tags.get("bytes_est", 0.0))
        row[5].update(str(s.tags.get("vars", "h,u")).split(","))
    order = {name: i for i, name in enumerate(SYNC_POINT_NAMES)}
    rows = []
    for sync in sorted(by_sync, key=lambda k: (order.get(k, len(order)), k)):
        count, wall, wait, overlap, nbytes, variables = by_sync[sync]
        rows.append([
            sync,
            ",".join(sorted(variables)),
            count,
            f"{nbytes / 1024.0:.1f} KiB",
            f"{wall * 1e3:.2f} ms",
            f"{wait * 1e3:.2f} ms",
            f"{overlap * 1e3:.2f} ms",
        ])
    return rows


def render_halo_report(tracer: Tracer, title: str) -> str:
    """The per-sync-point halo table (empty-safe)."""
    from ..bench.tables import render_table

    rows = halo_rows(tracer) or [["(no halo exchanges)", "-", 0, "-", "-", "-", "-"]]
    return render_table(
        title,
        ["sync", "vars", "exchanges", "bytes", "wall", "wait", "overlap"],
        rows,
    )


# ------------------------------------------------------------- kernel profile
def kernel_profile_rows(tracer: Tracer) -> list[list[str]]:
    """The classic per-kernel breakdown (kernel, wall time, share)."""
    totals = tracer.aggregate_names(category="kernel")
    total = sum(totals.values()) or 1.0
    return [
        [kernel, f"{secs * 1e3:.2f} ms", f"{100 * secs / total:.1f}%"]
        for kernel, secs in sorted(totals.items(), key=lambda kv: -kv[1])
    ]


def render_kernel_profile(tracer: Tracer, title: str) -> str:
    from ..bench.tables import render_table

    return render_table(
        title, ["kernel", "wall time", "share"], kernel_profile_rows(tracer)
    )


# ------------------------------------------------------------------ traced run
def _resolve_case(token: str):
    """Resolve ``token`` through the scenario registry (any alias works).

    The report used to carry its own private three-entry case table, which
    silently drifted from the cases the rest of the package accepted; now
    every name/alias/``perturbed:`` token in
    :mod:`repro.swm.scenarios` works here too.
    """
    from ..swm import scenarios

    return scenarios.resolve(token)


def run_traced(
    case: str = "galewsky",
    level: int = 3,
    steps: int = 10,
    config=None,
    warmup: bool = True,
    backend: str = "numpy",
    parallel: str = "serial",
    ranks: int = 1,
    halo_schedule: str = "static",
) -> tuple[Tracer, MetricsRegistry, object, object]:
    """Integrate ``steps`` RK-4 steps with tracing on.

    Returns ``(tracer, registry, mesh, config)``.  A warm-up step (untraced)
    pays the one-time per-mesh setup — reconstruction matrices, deriv_two
    coefficients — so the spans measure steady-state kernel cost.
    ``backend`` selects the engine execution backend (ignored when an
    explicit ``config`` is given — set ``config.backend`` instead).

    ``parallel``/``ranks``/``halo_schedule`` select a decomposed executor
    (lockstep or pool) instead of the serial integrator; its per-exchange
    ``halo`` spans feed :func:`halo_rows`.
    """
    from ..constants import GRAVITY
    from ..mesh import cached_mesh
    from ..swm.testcases import initialize
    from ..swm.timestep import RK4Integrator

    mesh = cached_mesh(level)
    test_case = _resolve_case(case)
    if config is None:
        from ..swm import scenarios
        from ..swm.config import SWConfig
        from ..swm.model import suggested_dt

        sc = scenarios.scenario_for(test_case)
        config = SWConfig(
            dt=suggested_dt(mesh, test_case, GRAVITY, cfl=0.5),
            thickness_adv_order=4,
            backend=backend,
            parallel=parallel,
            ranks=ranks,
            halo_schedule=halo_schedule,
            advection_only=bool(sc is not None and sc.advection_only),
        )
    if config.parallel != "serial":
        from ..api import run as api_run

        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            api_run(test_case, mesh=mesh, config=config, steps=steps)
        registry.counter("swm.steps", case=case, level=level).inc(steps)
        return tracer, registry, mesh, config
    state, b_cell = initialize(mesh, test_case)
    f_vertex = config.coriolis(mesh.metrics.latVertex)
    integ = RK4Integrator(mesh, config, b_cell, f_vertex)
    diag = integ.diagnostics_for(state)
    if warmup:
        integ.step(state, diag)

    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        for _ in range(steps):
            result = integ.step(state, diag)
            state, diag = result.state, result.diagnostics
    registry.counter("swm.steps", case=case, level=level).inc(steps)
    return tracer, registry, mesh, config


# ------------------------------------------------------------------------ CLI
def _selftest() -> int:
    """End-to-end smoke: trace a 2-step run, export, validate, round-trip."""
    from ..patterns.catalog import build_catalog

    tracer, registry, mesh, config = run_traced("galewsky", level=2, steps=2)
    rows = measured_vs_modeled(tracer, mesh, config)
    missing = [
        inst.label
        for inst in build_catalog(config)
        for row in [next(r for r in rows if r.label == inst.label)]
        if row.measured_s <= 0.0
    ]
    if missing:
        print(f"selftest FAILED: no measured time for patterns {missing}")
        return 1

    backend_rows = backend_cost_rows(registry)
    if not backend_rows:
        print("selftest FAILED: no engine.op dispatch series recorded")
        return 1
    bad = [r for r in backend_rows if r.backend != config.backend or r.calls <= 0]
    if bad:
        print(f"selftest FAILED: engine.op rows with wrong backend tag: {bad}")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        chrome = Path(tmp) / "trace.json"
        jsonl = Path(tmp) / "run.jsonl"
        n_events = write_chrome_trace(tracer, chrome, registry)
        validate_chrome_trace(chrome)
        n_records = write_jsonl(tracer, jsonl, registry)
        spans, metrics = read_jsonl(jsonl)
        if len(spans) != len(tracer.finished()):
            print("selftest FAILED: JSONL span round-trip lost records")
            return 1
        if pattern_self_times(spans) != pattern_self_times(tracer.spans):
            print("selftest FAILED: JSONL round-trip changed pattern costs")
            return 1

    print(render_cost_report(
        rows,
        f"Selftest: measured vs modeled per-pattern cost "
        f"({mesh.nCells} cells, 2 steps)",
    ))
    print(
        f"obs selftest OK: {len(tracer.finished())} spans, "
        f"{len(registry)} metric series, {n_events} trace events, "
        f"{n_records} JSONL records, {len(backend_rows)} engine.op series, "
        f"max |drift| = {max(abs(r.drift_pp) for r in rows):.1f} pp"
    )
    return 0


def _overhead(case: str, level: int, steps: int) -> float:
    """Wall-time ratio of a traced over an untraced run (same steps)."""
    import time

    def timed(traced: bool) -> float:
        t0 = time.perf_counter()
        if traced:
            run_traced(case, level, steps)
        else:
            _run_untraced(case, level, steps)
        return time.perf_counter() - t0

    # Warm the process caches (mesh, reconstruction matrices, deriv-two
    # coefficients) so neither timed run pays one-time setup.
    _run_untraced(case, level, 1)
    off = min(timed(False) for _ in range(3))
    on = min(timed(True) for _ in range(3))
    return on / off


def _run_untraced(case: str, level: int, steps: int) -> None:
    from ..constants import GRAVITY
    from ..mesh import cached_mesh
    from ..swm.config import SWConfig
    from ..swm.model import suggested_dt
    from ..swm.testcases import initialize
    from ..swm.timestep import RK4Integrator

    mesh = cached_mesh(level)
    test_case = _resolve_case(case)
    config = SWConfig(
        dt=suggested_dt(mesh, test_case, GRAVITY, cfl=0.5), thickness_adv_order=4
    )
    state, b_cell = initialize(mesh, test_case)
    f_vertex = config.coriolis(mesh.metrics.latVertex)
    integ = RK4Integrator(mesh, config, b_cell, f_vertex)
    diag = integ.diagnostics_for(state)
    for _ in range(steps + 1):  # +1 matches the traced warm-up step
        result = integ.step(state, diag)
        state, diag = result.state, result.diagnostics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Trace a shallow-water run and report per-pattern costs.",
    )
    parser.add_argument("--selftest", action="store_true",
                        help="fast end-to-end smoke test (exporters included)")
    parser.add_argument("--case", default="galewsky",
                        help="scenario name, alias, Williamson number, or "
                             "perturbed:<base>:<member>:<seed> token "
                             "(catalogue: python -m repro cases)")
    parser.add_argument("--level", type=int, default=3,
                        help="icosahedral mesh level (default 3 = 642 cells)")
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument("--chrome", type=Path, default=None,
                        help="write a chrome://tracing JSON here")
    parser.add_argument("--jsonl", type=Path, default=None,
                        help="write a JSON-lines export here")
    parser.add_argument("--kernels", action="store_true",
                        help="also print the per-kernel breakdown")
    parser.add_argument("--overhead", action="store_true",
                        help="measure tracing overhead (traced/untraced ratio)")
    parser.add_argument("--backend", default="numpy",
                        help="engine execution backend "
                             "(numpy/scatter/codegen/sparse)")
    parser.add_argument("--parallel", default="serial",
                        choices=("serial", "lockstep", "pool"),
                        help="executor; non-serial runs add the per-sync-"
                             "point halo table")
    parser.add_argument("--ranks", type=int, default=1)
    parser.add_argument("--halo-schedule", default="static",
                        choices=("static", "dataflow"),
                        help="halo schedule of the decomposed executors")
    parser.add_argument("--compare-backends", action="store_true",
                        help="run under every backend and print the "
                             "per-backend per-pattern dispatch costs")
    parser.add_argument("--ensemble", type=int, default=0,
                        help="trace a lockstep ensemble of N members and "
                             "print the per-member summary table")
    args = parser.parse_args(argv)

    if args.selftest:
        return _selftest()

    if args.ensemble:
        from ..api import run_ensemble

        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            ens = run_ensemble(
                args.case, level=args.level, steps=args.steps,
                ensemble=args.ensemble, invariant_interval=1,
            )
        print(render_ensemble_report(
            ens, registry,
            f"Ensemble summary ({args.case}, {args.ensemble} members, "
            f"{args.steps} steps, level {args.level})",
        ))
        return 0

    if args.overhead:
        ratio = _overhead(args.case, args.level, args.steps)
        print(f"tracing overhead: {100 * (ratio - 1):+.1f}% "
              f"({args.steps} steps, level {args.level})")
        return 0

    if args.compare_backends:
        from ..engine import BACKENDS

        all_rows: list[BackendCost] = []
        for backend in BACKENDS:
            _, registry, mesh, _ = run_traced(
                args.case, args.level, args.steps, backend=backend
            )
            all_rows.extend(backend_cost_rows(registry))
        all_rows.sort(key=lambda r: (r.pattern, r.op, r.backend))
        print(render_backend_cost_report(
            all_rows,
            f"Per-backend per-pattern dispatch cost ({args.case}, "
            f"{mesh.nCells} cells, {args.steps} steps)",
        ))
        return 0

    tracer, registry, mesh, config = run_traced(
        args.case, args.level, args.steps, backend=args.backend,
        parallel=args.parallel, ranks=args.ranks,
        halo_schedule=args.halo_schedule,
    )
    rows = measured_vs_modeled(tracer, mesh, config)
    print(render_cost_report(
        rows,
        f"Measured vs modeled per-pattern cost ({args.case}, "
        f"{mesh.nCells} cells, {args.steps} steps)",
    ))
    print()
    print(render_backend_cost_report(
        backend_cost_rows(registry),
        f"Per-backend per-pattern dispatch cost (backend={args.backend})",
    ))
    if resilience_rows(registry):
        print()
        print(render_resilience_report(registry, "Fault and recovery counters"))
    if halo_rows(tracer):
        print()
        print(render_halo_report(
            tracer,
            f"Halo exchanges per sync point ({args.parallel}, "
            f"ranks={args.ranks}, schedule={args.halo_schedule})",
        ))
    if args.kernels:
        print()
        print(render_kernel_profile(
            tracer,
            f"Measured kernel cost breakdown ({mesh.nCells} cells, "
            f"{args.steps} steps, real NumPy kernels)",
        ))
    if args.chrome is not None:
        n = write_chrome_trace(tracer, args.chrome, registry)
        validate_chrome_trace(args.chrome)
        print(f"wrote {n} trace events to {args.chrome} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl is not None:
        n = write_jsonl(tracer, args.jsonl, registry)
        print(f"wrote {n} JSONL records to {args.jsonl}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
