"""Trace/metric exporters: JSON-lines and Chrome ``chrome://tracing``.

Two formats, two audiences:

* **JSON-lines** — one self-describing JSON object per line (``type``:
  ``span`` | ``metric``), trivially greppable/streamable and loss-free:
  :func:`read_jsonl` round-trips everything :func:`write_jsonl` emits.
* **Chrome trace-event** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` (or https://ui.perfetto.dev) renders as a flame
  chart.  Wall spans land on one track per nesting stack; simulated
  executor spans land on one track per model resource (``cpu``, ``mic``,
  ``pcie_up``, ...), so a hybrid schedule reads exactly like Figure 4b.

Timestamps are microseconds (the Chrome convention) on the tracer's own
axis; tags ride along in each event's ``args``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator

from .metrics import MetricsRegistry
from .trace import SpanRecord, Tracer

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_US = 1e6  # seconds -> microseconds


# ------------------------------------------------------------------ JSON-lines
def jsonl_records(
    tracer: Tracer, registry: MetricsRegistry | None = None
) -> Iterator[dict]:
    """All export records: finished spans, then metric series."""
    for span in tracer.finished():
        yield {"type": "span", **span.to_dict()}
    if registry is not None:
        for rec in registry.snapshot():
            yield {"type": "metric", **rec}


def write_jsonl(
    tracer: Tracer,
    target: str | Path | IO[str],
    registry: MetricsRegistry | None = None,
) -> int:
    """Write one JSON object per line; returns the record count."""
    n = 0
    if hasattr(target, "write"):
        for rec in jsonl_records(tracer, registry):
            target.write(json.dumps(rec) + "\n")
            n += 1
        return n
    with open(target, "w") as fh:
        for rec in jsonl_records(tracer, registry):
            fh.write(json.dumps(rec) + "\n")
            n += 1
    return n


def read_jsonl(source: str | Path | IO[str]) -> tuple[list[SpanRecord], list[dict]]:
    """Parse a JSON-lines export back into span records and metric dicts."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text().splitlines()
    spans: list[SpanRecord] = []
    metrics: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.pop("type", None)
        if kind == "span":
            spans.append(
                SpanRecord(
                    index=rec["index"],
                    name=rec["name"],
                    category=rec["category"],
                    start=rec["start"],
                    end=rec["end"],
                    parent=rec["parent"],
                    depth=rec["depth"],
                    tags=rec["tags"],
                )
            )
        elif kind == "metric":
            metrics.append(rec)
        else:
            raise ValueError(f"unknown JSONL record type {kind!r}")
    return spans, metrics


# ----------------------------------------------------------- Chrome trace JSON
def _tid_of(span: SpanRecord) -> str:
    """Track name: simulated spans go on their model resource's track."""
    if span.category in ("sim", "halo-sim"):
        return f"sim:{span.tags.get('resource', 'model')}"
    return "wall"


def chrome_trace_events(
    tracer: Tracer, registry: MetricsRegistry | None = None
) -> list[dict]:
    """The ``traceEvents`` list for one tracer (+ optional counter events)."""
    tids: dict[str, int] = {}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro-mpas-hybrid"},
        }
    ]

    def tid(label: str) -> int:
        if label not in tids:
            tids[label] = len(tids)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tids[label],
                    "args": {"name": label},
                }
            )
        return tids[label]

    for span in tracer.finished():
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 0,
                "tid": tid(_tid_of(span)),
                "args": dict(span.tags),
            }
        )
    if registry is not None:
        for rec in registry.snapshot():
            if rec["kind"] not in ("counter", "gauge"):
                continue
            value = rec["value"]
            if value != value:  # skip never-set NaN gauges
                continue
            tag_str = ",".join(f"{k}={v}" for k, v in sorted(rec["tags"].items()))
            name = rec["metric"] + (f"{{{tag_str}}}" if tag_str else "")
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": 0,
                    "pid": 0,
                    "args": {"value": value},
                }
            )
    return events


def write_chrome_trace(
    tracer: Tracer,
    target: str | Path | IO[str],
    registry: MetricsRegistry | None = None,
) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    doc = {
        "traceEvents": chrome_trace_events(tracer, registry),
        "displayTimeUnit": "ms",
    }
    if hasattr(target, "write"):
        json.dump(doc, target)
    else:
        with open(target, "w") as fh:
            json.dump(doc, fh)
    return len(doc["traceEvents"])


def validate_chrome_trace(source: str | Path | IO[str] | dict) -> int:
    """Validate a Chrome trace document; returns the number of events.

    Checks the invariants ``chrome://tracing`` relies on: a ``traceEvents``
    list, known phases, non-negative ``ts``/``dur`` on complete events, and
    proper nesting (no partially-overlapping ``X`` events on one track).
    Raises :class:`ValueError` on the first violation.
    """
    if isinstance(source, dict):
        doc = source
    elif hasattr(source, "read"):
        doc = json.load(source)
    else:
        doc = json.loads(Path(source).read_text())
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")

    eps = 1e-6  # microsecond round-off slack
    by_tid: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev or "name" not in ev:
            raise ValueError(f"event {i} lacks 'ph'/'name'")
        ph = ev["ph"]
        if ph not in ("X", "B", "E", "M", "C", "I"):
            raise ValueError(f"event {i} has unsupported phase {ph!r}")
        if ph in ("X", "C", "I") and ev.get("ts", 0) < 0:
            raise ValueError(f"event {i} has negative ts")
        if ph == "X":
            if ev.get("dur", -1.0) < 0:
                raise ValueError(f"event {i} ({ev['name']!r}) has negative dur")
            key = (ev.get("pid", 0), ev.get("tid", 0))
            by_tid.setdefault(key, []).append(
                (ev["ts"], ev["ts"] + ev["dur"], ev["name"])
            )
    for key, intervals in by_tid.items():
        intervals.sort()
        stack: list[tuple[float, float, str]] = []
        for start, end, name in intervals:
            while stack and start >= stack[-1][1] - eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                raise ValueError(
                    f"track {key}: {name!r} [{start:.3f},{end:.3f}] partially "
                    f"overlaps {stack[-1][2]!r} [..,{stack[-1][1]:.3f}]"
                )
            stack.append((start, end, name))
    return len(events)
