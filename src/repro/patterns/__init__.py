"""Pattern taxonomy of the shallow-water model (Figure 3 / Table I)."""

from .catalog import KERNELS, PatternInstance, build_catalog, instances_by_kernel
from .classify import VARIABLE_POINTS, classify, point_of
from .pattern import STENCIL_PATTERNS, LocalPattern, PatternKind, StencilPattern
from .points import PointType

__all__ = [
    "KERNELS",
    "PatternInstance",
    "build_catalog",
    "instances_by_kernel",
    "VARIABLE_POINTS",
    "classify",
    "point_of",
    "STENCIL_PATTERNS",
    "LocalPattern",
    "PatternKind",
    "StencilPattern",
    "PointType",
]
