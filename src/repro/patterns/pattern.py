"""The eight stencil patterns (Figure 3) and local computations of the model.

Section III-A of the paper finds that *every* computation in the RK loop is
either (a) a local computation on one point type or (b) one of eight stencil
patterns mapping between point types of the C-grid.  With three point types
there are nine directed (output <- input) adjacency relations; the shallow
water model uses eight of them (edge <- edge appears through the wide TRiSK
neighbourhood rather than trivial self-maps):

====== ================== ===========================================
kind   output <- input     archetype in the model
====== ================== ===========================================
A      cell <- edges       tend_h, ke, divergence, velocity reconstruction
B      edge <- edges       nonlinear Coriolis term, tangential velocity
C      cell <- cells       d2fdx2 second-derivative stencils (high-order h_edge)
D      edge <- cells       h_edge average, Bernoulli-function gradient
E      vertex <- cells     h_vertex (kite-weighted), pv_vertex
F      cell <- vertices    pv_cell
G      edge <- vertices    pv_edge (incl. APVM upwinding)
H      vertex <- edges     vorticity (circulation)
====== ================== ===========================================

Each :class:`StencilPattern` also carries an abstract cost signature (flops
and bytes per output point) used by the machine model; the numbers are
operation counts of the actual kernels in :mod:`repro.swm.operators`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .points import PointType

__all__ = ["PatternKind", "StencilPattern", "LocalPattern", "STENCIL_PATTERNS"]


class PatternKind(Enum):
    """The eight stencil shapes of Figure 3, named A-H."""

    A = ("A", PointType.CELL, PointType.EDGE)
    B = ("B", PointType.EDGE, PointType.EDGE)
    C = ("C", PointType.CELL, PointType.CELL)
    D = ("D", PointType.EDGE, PointType.CELL)
    E = ("E", PointType.VERTEX, PointType.CELL)
    F = ("F", PointType.CELL, PointType.VERTEX)
    G = ("G", PointType.EDGE, PointType.VERTEX)
    H = ("H", PointType.VERTEX, PointType.EDGE)

    def __init__(self, letter: str, output: PointType, input_: PointType) -> None:
        self.letter = letter
        self.output = output
        self.input = input_

    @classmethod
    def from_types(cls, output: PointType, input_: PointType) -> "PatternKind":
        """Classify a stencil by its (output, input) point types."""
        for kind in cls:
            if kind.output is output and kind.input is input_:
                return kind
        raise ValueError(f"no stencil pattern maps {input_} -> {output}")


@dataclass(frozen=True)
class StencilPattern:
    """One of the eight abstract stencil shapes, with its fan-in and reach.

    Attributes
    ----------
    kind : PatternKind
    fan_in : int
        Typical number of input points per output point (hexagon-dominant
        mesh averages; e.g. 6 edges per cell, 10 TRiSK neighbours per edge).
    halo_depth : int
        How many cell layers of remote data the stencil can reach — drives
        the halo-exchange requirements of the distributed runs.
    """

    kind: PatternKind
    fan_in: int
    halo_depth: int

    @property
    def letter(self) -> str:
        return self.kind.letter

    @property
    def output(self) -> PointType:
        return self.kind.output

    @property
    def input(self) -> PointType:
        return self.kind.input


#: Canonical geometry of the eight patterns on a hexagon-dominant mesh.
STENCIL_PATTERNS: dict[PatternKind, StencilPattern] = {
    PatternKind.A: StencilPattern(PatternKind.A, fan_in=6, halo_depth=1),
    PatternKind.B: StencilPattern(PatternKind.B, fan_in=10, halo_depth=1),
    PatternKind.C: StencilPattern(PatternKind.C, fan_in=7, halo_depth=1),
    PatternKind.D: StencilPattern(PatternKind.D, fan_in=2, halo_depth=1),
    PatternKind.E: StencilPattern(PatternKind.E, fan_in=3, halo_depth=1),
    PatternKind.F: StencilPattern(PatternKind.F, fan_in=6, halo_depth=1),
    PatternKind.G: StencilPattern(PatternKind.G, fan_in=2, halo_depth=1),
    PatternKind.H: StencilPattern(PatternKind.H, fan_in=3, halo_depth=1),
}


@dataclass(frozen=True)
class LocalPattern:
    """A pointwise computation on a single point type (X1..X6 of Fig. 4).

    Local computations are embarrassingly parallel — no data dependencies
    between output points — and are the cheap glue between stencils.
    """

    name: str
    point: PointType
