"""Table I: the pattern instances of the shallow-water model.

Each :class:`PatternInstance` records where an operation fits in the pattern
taxonomy (kind A-H or local X), which kernel of Algorithm 1 owns it, its
input/output variables, and an abstract cost signature (operation/traffic
counts per output point, derived from the kernel implementations in
:mod:`repro.swm`).  :func:`build_catalog` returns the active instances for a
given :class:`~repro.swm.config.SWConfig` — e.g. the ``d2fdx2`` stencils
(C1/C2) only exist when high-order thickness advection is enabled, exactly as
in the MPAS code.

Instance labels follow the paper's Table I where the published table is
legible (A1-A4, B1-B2, X1-X6, and the pv chain E/F/G); the remaining letters
are assigned self-consistently by the (output <- input) type classification
of :class:`~repro.patterns.pattern.PatternKind`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..swm.config import SWConfig
from .pattern import PatternKind
from .points import PointType

__all__ = ["PatternInstance", "build_catalog", "KERNELS", "instances_by_kernel"]

#: Kernel execution order within one RK substage (Algorithm 1).
KERNELS: tuple[str, ...] = (
    "compute_tend",
    "enforce_boundary_edge",
    "compute_next_substep_state",
    "compute_solve_diagnostics",
    "accumulative_update",
    "mpas_reconstruct",
)


@dataclass(frozen=True)
class PatternInstance:
    """One concrete use of a computation pattern inside a kernel.

    Attributes
    ----------
    label : str
        Table I identifier (``A1`` .. ``X6``).
    kernel : str
        Owning kernel (one of :data:`KERNELS`).
    kind : PatternKind or None
        Stencil shape; ``None`` marks a local (X) computation.
    output_point : PointType
        Point type the instance writes (drives its iteration count).
    inputs / outputs : tuple of str
        Variable names, following Table I.
    flops_per_point : float
        Floating-point operations per output point.
    f64_per_point : float
        Double-precision values moved (reads + writes) per output point.
    i32_per_point : float
        Connectivity/index entries read per output point.
    splittable : bool
        Whether the pattern-level scheduler may split this instance
        fractionally between host and device (the "adjustable" light-yellow
        boxes of Figure 4b).
    """

    label: str
    kernel: str
    kind: PatternKind | None
    output_point: PointType
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    flops_per_point: float
    f64_per_point: float
    i32_per_point: float
    splittable: bool = False
    #: Inputs read only at the output point itself (not part of the stencil
    #: shape); used by the signature classifier.
    point_local: tuple[str, ...] = ()

    @property
    def is_local(self) -> bool:
        return self.kind is None

    @property
    def kind_letter(self) -> str:
        return "X" if self.kind is None else self.kind.letter

    def n_points(self, mesh) -> int:
        return self.output_point.count(mesh)

    def flops(self, mesh) -> float:
        return self.flops_per_point * self.n_points(mesh)

    def bytes_moved(self, mesh) -> float:
        return (8.0 * self.f64_per_point + 4.0 * self.i32_per_point) * self.n_points(
            mesh
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ins = ",".join(self.inputs)
        outs = ",".join(self.outputs)
        return f"{self.label}[{self.kernel}] {ins} -> {outs}"


def build_catalog(config: SWConfig | None = None) -> list[PatternInstance]:
    """Active pattern instances for the given configuration (Table I).

    ``None`` uses a default configuration with 4th-order thickness advection
    and APVM enabled, which activates every pattern of the paper's table.
    """
    if config is None:
        config = SWConfig(dt=1.0, thickness_adv_order=4)
    use_high_order = config.thickness_adv_order >= 3
    use_viscosity = config.viscosity != 0.0

    P = PatternInstance
    K = PatternKind
    C, E, V = PointType.CELL, PointType.EDGE, PointType.VERTEX

    catalog: list[PatternInstance] = []

    # ------------------------------------------------------------ compute_tend
    catalog.append(
        P("A1", "compute_tend", K.A, C, ("provis_u", "h_edge"), ("tend_h",),
          flops_per_point=25, f64_per_point=20, i32_per_point=6)
    )
    b1_inputs = ["pv_edge", "provis_u", "h_edge", "ke", "provis_h"]
    b1_flops, b1_f64, b1_i32 = 62, 45, 10
    if use_viscosity:
        b1_inputs += ["divergence", "vorticity"]
        b1_flops, b1_f64 = b1_flops + 8, b1_f64 + 4
    catalog.append(
        P("B1", "compute_tend", K.B, E, tuple(b1_inputs), ("tend_u",),
          flops_per_point=b1_flops, f64_per_point=b1_f64, i32_per_point=b1_i32,
          splittable=True)
    )

    # --------------------------------------------------- enforce_boundary_edge
    catalog.append(
        P("X1", "enforce_boundary_edge", None, E, ("tend_u",), ("tend_u",),
          flops_per_point=1, f64_per_point=2, i32_per_point=0)
    )

    # ------------------------------------------------ compute_next_substep_state
    catalog.append(
        P("X2", "compute_next_substep_state", None, C, ("h", "tend_h"), ("provis_h",),
          flops_per_point=2, f64_per_point=3, i32_per_point=0)
    )
    catalog.append(
        P("X3", "compute_next_substep_state", None, E, ("u", "tend_u"), ("provis_u",),
          flops_per_point=2, f64_per_point=3, i32_per_point=0)
    )

    # --------------------------------------------- compute_solve_diagnostics
    d1_inputs = ["provis_h"]
    if use_high_order:
        catalog.append(
            P("C1", "compute_solve_diagnostics", K.C, C, ("provis_h",),
              ("d2fdx2_cell1",), flops_per_point=16, f64_per_point=16,
              i32_per_point=7, splittable=True)
        )
        catalog.append(
            P("C2", "compute_solve_diagnostics", K.C, C, ("provis_h",),
              ("d2fdx2_cell2",), flops_per_point=16, f64_per_point=16,
              i32_per_point=7, splittable=True)
        )
        d1_inputs += ["d2fdx2_cell1", "d2fdx2_cell2"]
        if config.thickness_adv_order == 3:
            d1_inputs += ["provis_u"]
    catalog.append(
        P("D1", "compute_solve_diagnostics", K.D, E, tuple(d1_inputs), ("h_edge",),
          flops_per_point=8 if use_high_order else 2,
          f64_per_point=7 if use_high_order else 3, i32_per_point=2)
    )
    catalog.append(
        P("A2", "compute_solve_diagnostics", K.A, C, ("provis_u",), ("ke",),
          flops_per_point=25, f64_per_point=20, i32_per_point=6, splittable=True)
    )
    catalog.append(
        P("A3", "compute_solve_diagnostics", K.A, C, ("provis_u",), ("divergence",),
          flops_per_point=19, f64_per_point=14, i32_per_point=6, splittable=True)
    )
    catalog.append(
        P("H1", "compute_solve_diagnostics", K.H, V, ("provis_u",), ("vorticity",),
          flops_per_point=10, f64_per_point=8, i32_per_point=3)
    )
    catalog.append(
        P("B2", "compute_solve_diagnostics", K.B, E, ("provis_u",), ("v",),
          flops_per_point=20, f64_per_point=22, i32_per_point=10, splittable=True)
    )
    catalog.append(
        P("E1", "compute_solve_diagnostics", K.E, V, ("provis_h", "vorticity"),
          ("h_vertex", "pv_vertex"),
          flops_per_point=10, f64_per_point=9, i32_per_point=3,
          point_local=("vorticity",))
    )
    catalog.append(
        P("F1", "compute_solve_diagnostics", K.F, C, ("pv_vertex",), ("pv_cell",),
          flops_per_point=13, f64_per_point=14, i32_per_point=6)
    )
    g1_inputs = ["pv_vertex"]
    g1_flops, g1_f64 = 3, 4
    if config.apvm_upwinding != 0.0:
        g1_inputs += ["pv_cell", "provis_u", "v"]
        g1_flops, g1_f64 = 14, 11
    catalog.append(
        P("G1", "compute_solve_diagnostics", K.G, E, tuple(g1_inputs), ("pv_edge",),
          flops_per_point=g1_flops, f64_per_point=g1_f64, i32_per_point=4,
          point_local=("provis_u", "v"))
    )

    # ------------------------------------------------------ accumulative_update
    # Table I writes these as h -> h and u -> u; the accumulator is a separate
    # time level in the implementation, named *_acc here so that the data-flow
    # graph does not alias it with the state read by the other kernels.
    catalog.append(
        P("X4", "accumulative_update", None, C, ("h_acc", "tend_h"), ("h_acc",),
          flops_per_point=2, f64_per_point=3, i32_per_point=0)
    )
    catalog.append(
        P("X5", "accumulative_update", None, E, ("u_acc", "tend_u"), ("u_acc",),
          flops_per_point=2, f64_per_point=3, i32_per_point=0)
    )

    # -------------------------------------------------------- mpas_reconstruct
    catalog.append(
        P("A4", "mpas_reconstruct", K.A, C, ("u",),
          ("uReconstructX", "uReconstructY", "uReconstructZ"),
          flops_per_point=36, f64_per_point=28, i32_per_point=6)
    )
    catalog.append(
        P("X6", "mpas_reconstruct", None, C,
          ("uReconstructX", "uReconstructY", "uReconstructZ"),
          ("uReconstructZonal", "uReconstructMeridional"),
          flops_per_point=10, f64_per_point=11, i32_per_point=0)
    )

    return catalog


def instances_by_kernel(
    catalog: list[PatternInstance],
) -> dict[str, list[PatternInstance]]:
    """Group a catalog by owning kernel, preserving Algorithm 1 order."""
    grouped: dict[str, list[PatternInstance]] = {k: [] for k in KERNELS}
    for inst in catalog:
        grouped[inst.kernel].append(inst)
    return grouped
