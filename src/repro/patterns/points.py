"""The three mesh point types of the C-staggered Voronoi mesh (Figure 1)."""

from __future__ import annotations

from enum import Enum

__all__ = ["PointType"]


class PointType(Enum):
    """Where a discretized variable lives on the C-grid."""

    CELL = "cell"  # mass points (Voronoi generators)
    EDGE = "edge"  # velocity points
    VERTEX = "vertex"  # vorticity points (Voronoi vertices)

    def count(self, mesh) -> int:
        """Number of points of this type on ``mesh``."""
        return {
            PointType.CELL: mesh.nCells,
            PointType.EDGE: mesh.nEdges,
            PointType.VERTEX: mesh.nVertices,
        }[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
