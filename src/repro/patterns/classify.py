"""Classification of computations into patterns — the Section III-A analysis.

The paper identifies patterns "through a rigorous analysis of the MPAS code":
every loop is classified by the point type it writes and the point types it
reads, and by whether it reads a *neighbourhood* (stencil) or only the output
point itself (local).  This module provides that classification as code: a
registry of where each Table I variable lives, and :func:`classify` which
maps a loop signature to a stencil kind or to ``None`` (local).
"""

from __future__ import annotations

from .pattern import PatternKind
from .points import PointType

__all__ = ["VARIABLE_POINTS", "point_of", "classify"]

#: Point type of every variable appearing in Table I.
VARIABLE_POINTS: dict[str, PointType] = {
    "h": PointType.CELL,
    "h_acc": PointType.CELL,
    "provis_h": PointType.CELL,
    "tend_h": PointType.CELL,
    "ke": PointType.CELL,
    "divergence": PointType.CELL,
    "pv_cell": PointType.CELL,
    "d2fdx2_cell1": PointType.CELL,
    "d2fdx2_cell2": PointType.CELL,
    "b": PointType.CELL,
    "uReconstructX": PointType.CELL,
    "uReconstructY": PointType.CELL,
    "uReconstructZ": PointType.CELL,
    "uReconstructZonal": PointType.CELL,
    "uReconstructMeridional": PointType.CELL,
    "u": PointType.EDGE,
    "u_acc": PointType.EDGE,
    "provis_u": PointType.EDGE,
    "tend_u": PointType.EDGE,
    "h_edge": PointType.EDGE,
    "v": PointType.EDGE,
    "pv_edge": PointType.EDGE,
    "vorticity": PointType.VERTEX,
    "h_vertex": PointType.VERTEX,
    "pv_vertex": PointType.VERTEX,
    "f_vertex": PointType.VERTEX,
}


def point_of(variable: str) -> PointType:
    """Point type of a Table I variable name."""
    try:
        return VARIABLE_POINTS[variable]
    except KeyError:
        raise KeyError(f"unknown model variable {variable!r}") from None


#: For each output type, the stencil kind selected by foreign neighbourhood
#: input types, in priority order (widest geometric relation first).
_FOREIGN_PRIORITY: dict[PointType, tuple[tuple[PointType, PatternKind], ...]] = {
    PointType.CELL: (
        (PointType.EDGE, PatternKind.A),
        (PointType.VERTEX, PatternKind.F),
    ),
    PointType.EDGE: (
        (PointType.VERTEX, PatternKind.G),
        (PointType.CELL, PatternKind.D),
    ),
    PointType.VERTEX: (
        (PointType.EDGE, PatternKind.H),
        (PointType.CELL, PatternKind.E),
    ),
}

#: Same-type neighbourhood stencils.
_SAME_TYPE: dict[PointType, PatternKind] = {
    PointType.CELL: PatternKind.C,  # d2fdx2 cell neighbourhood
    PointType.EDGE: PatternKind.B,  # TRiSK edgesOnEdge neighbourhood
}


def classify(
    outputs: tuple[str, ...],
    inputs: tuple[str, ...],
    neighborhood: bool = True,
    point_local: tuple[str, ...] = (),
) -> PatternKind | None:
    """Classify a loop signature into one of the eight patterns, or local.

    Parameters
    ----------
    outputs, inputs : tuples of Table I variable names
        Output variables must share one point type.
    neighborhood : bool
        Whether the loop reads any input at *neighbouring* mesh points (a
        type signature alone cannot distinguish a same-type stencil like the
        ``d2fdx2`` cell neighbourhood from a pointwise update).
    point_local : tuple of str
        Inputs read only at the output point itself (e.g. ``u`` and ``v``
        inside the APVM correction of ``pv_edge``); they do not contribute to
        the stencil shape.

    Returns
    -------
    PatternKind or None
        ``None`` means a local (X-type) computation.  An edge (cell) output
        with same-type neighbourhood reads is the TRiSK (d2fdx2)
        neighbourhood; otherwise the widest foreign relation present wins.
    """
    out_types = {point_of(v) for v in outputs}
    if len(out_types) != 1:
        raise ValueError(f"pattern writes multiple point types: {sorted(outputs)}")
    out_t = out_types.pop()

    if not neighborhood:
        return None

    stencil_inputs = [v for v in inputs if v not in point_local]
    same_type_foreign = any(
        point_of(v) is out_t and v not in outputs for v in stencil_inputs
    )
    foreign = {point_of(v) for v in stencil_inputs} - {out_t}
    if not foreign and not same_type_foreign:
        return None  # reads only its own point: local after all

    if same_type_foreign and out_t in _SAME_TYPE:
        return _SAME_TYPE[out_t]
    for in_t, kind in _FOREIGN_PRIORITY[out_t]:
        if in_t in foreign:
            return kind
    raise ValueError(f"cannot classify {outputs} <- {inputs}")
