"""Reproduction of "Pattern-Driven Hybrid Multi- and Many-Core Acceleration
in the MPAS Shallow-Water Model" (ICPP 2015).

Subpackages
-----------
``repro.geometry``
    Spherical geometry, icosahedral seeds, SCVT (Lloyd) relaxation.
``repro.mesh``
    The C-staggered Voronoi mesh substrate with MPAS-style connectivity.
``repro.swm``
    The TRiSK shallow-water dynamical core (RK-4, Algorithm 1) and the
    Williamson test cases.
``repro.patterns``
    The eight stencil patterns and six local computations (Fig. 3, Table I).
``repro.dataflow``
    The data-flow diagram of the whole model (Fig. 4) and its analysis.
``repro.reduction``
    Irregular-reduction refactorings (Algorithms 2-4).
``repro.machine``
    Simulated CPU / Xeon Phi hardware and roofline cost models (Table II).
``repro.hybrid``
    Kernel-level and pattern-level hybrid schedulers + discrete-event
    execution timelines (Figs. 2, 4, 6, 7).
``repro.parallel``
    Mesh partitioning, halos, functional multi-rank execution (lockstep
    and shared-memory process pool) and the strong/weak scaling models
    (Figs. 8, 9).

The supported front door is :mod:`repro.api` — ``build_mesh``,
``resolve_case`` and ``run`` are re-exported here for convenience::

    import repro
    result = repro.run("galewsky", level=3, steps=10)
"""

from .api import (
    RunResult,
    SWConfig,
    TestCase,
    build_mesh,
    resolve_case,
    run,
    suggested_dt,
)

__all__ = [
    "RunResult",
    "SWConfig",
    "TestCase",
    "build_mesh",
    "resolve_case",
    "run",
    "suggested_dt",
    "__version__",
]

__version__ = "1.0.0"
