"""Functional multi-rank execution of the shallow-water model.

``DecomposedShallowWater`` runs P ranks inside one process, lockstep, with
real halo exchanges of the prognostic state — a *functional* stand-in for the
paper's MPI layer (no MPI runtime is available here; see DESIGN.md).  The
number-for-number contract, enforced by the test suite: **the owned portion
of every rank's state is bitwise identical to the serial run**, because

* initial conditions are discretized globally and sliced,
* every kernel computes each owned output point from the same inputs in the
  same floating-point order as the serial kernels (the local meshes preserve
  the per-row neighbour order), and
* halo values of the state are refreshed from their owners at exactly the
  synchronization points of Algorithm 1 / Figure 2 (before ``compute_tend``
  and after ``compute_next_substep_state`` / the final accumulation), while
  halo *diagnostics* are recomputed redundantly, like MPAS does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.mesh import Mesh
from ..obs.metrics import get_registry
from ..obs.trace import trace_span
from ..resilience.faults import FaultInjected, fault_site
from ..resilience.recovery import active_recovery_policy
from ..swm.config import SWConfig
from ..swm.diagnostics import compute_solve_diagnostics
from ..swm.state import Diagnostics, State
from ..swm.tendencies import compute_tend
from ..swm.testcases import TestCase, initialize
from ..swm.timestep import (
    RK_ACCUMULATE_WEIGHTS,
    RK_SUBSTEP_WEIGHTS,
    accumulative_update,
    compute_next_substep_state,
)
from ..dataflow.schedule import HaloSchedule, halo_schedule_for
from .halo import (
    LocalMesh,
    build_local_mesh,
    exchange_bytes,
    halo_layers_required,
    ring_halo_indices,
    schedule_exchange_bytes,
)
from .partition import partition_cells

__all__ = ["DecomposedShallowWater", "gathered_run_result"]


def gathered_run_result(
    mesh: Mesh,
    start_state: State,
    final_state: State,
    b_cell: np.ndarray,
    f_vertex: np.ndarray,
    config: SWConfig,
    steps: int,
):
    """Build the serial-shaped :class:`~repro.swm.model.RunResult` for a
    gathered decomposed run.

    Both multi-rank executors (lockstep and pool) end a run holding the
    gathered global state; this recomputes the global diagnostics,
    cell-centre reconstruction and the start/end conserved integrals from
    it so their ``run()`` honours the same contract as
    :meth:`repro.swm.model.ShallowWaterModel.run` — ``mass_drift()`` /
    ``energy_drift()`` work unchanged.  Diagnostics are a pure function of
    the state, so the recomputation introduces no new numbers.
    """
    from ..engine import default_registry
    from ..swm.error import invariants
    from ..swm.model import RunResult

    start_diag = compute_solve_diagnostics(mesh, start_state, f_vertex, config)
    final_diag = compute_solve_diagnostics(mesh, final_state, f_vertex, config)
    recon = default_registry().kernel("mpas_reconstruct")(
        mesh, final_state.u, backend=config.backend
    )
    history = [
        invariants(mesh, start_state, start_diag, b_cell, config.gravity),
        invariants(mesh, final_state, final_diag, b_cell, config.gravity),
    ]
    return RunResult(
        state=final_state,
        diagnostics=final_diag,
        reconstruction=recon,
        steps=steps,
        elapsed_seconds=steps * config.dt,
        invariant_history=history,
    )


@dataclass
class _RankData:
    mesh: LocalMesh
    state: State
    diag: Diagnostics
    b_cell: np.ndarray
    f_vertex: np.ndarray


class DecomposedShallowWater:
    """P-rank lockstep shallow-water integration with halo exchanges."""

    def __init__(
        self,
        mesh: Mesh,
        n_ranks: int,
        case: TestCase,
        config: SWConfig,
        halo_layers: int | None = None,
        partition_method: str = "kmeans",
    ) -> None:
        self.mesh = mesh
        self.config = config
        self.n_ranks = n_ranks
        if halo_layers is None:
            halo_layers = halo_layers_required(
                config.thickness_adv_order, config.apvm_upwinding != 0.0
            )
        self.owner = partition_cells(mesh, n_ranks, method=partition_method)

        global_state, global_b = initialize(mesh, case)
        if case.coriolis is not None:
            f_vertex_global = case.coriolis(mesh.metrics.xVertex)
        else:
            f_vertex_global = config.coriolis(mesh.metrics.latVertex)
        self.start_state = State(h=global_state.h.copy(), u=global_state.u.copy())
        self.b_cell = global_b
        self.f_vertex = f_vertex_global

        self.ranks: list[_RankData] = []
        for r in range(n_ranks):
            lm = build_local_mesh(mesh, self.owner, r, halo_layers=halo_layers)
            state = State(
                h=global_state.h[lm.cells_global].copy(),
                u=global_state.u[lm.edges_global].copy(),
            )
            diag = compute_solve_diagnostics(lm, state, f_vertex_global[lm.vertices_global], config)
            self.ranks.append(
                _RankData(
                    mesh=lm,
                    state=state,
                    diag=diag,
                    b_cell=global_b[lm.cells_global],
                    f_vertex=f_vertex_global[lm.vertices_global],
                )
            )
        self.exchange_count = 0
        self.schedule = halo_schedule_for(config)
        meshes = [rd.mesh for rd in self.ranks]
        # Refresh index sets per kept sync point (ring-limited under the
        # dataflow schedule; the static schedule keeps the full-slice path).
        self._sync_idx: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._sync_bytes: dict[str, float] = {}
        for point in self.schedule.points:
            self._sync_idx[point.name] = [
                ring_halo_indices(lm, point.rings) for lm in meshes
            ]
            self._sync_bytes[point.name] = schedule_exchange_bytes(
                meshes, HaloSchedule(mode=self.schedule.mode, points=(point,))
            )
        #: Oracle hook for the schedule-soundness test: a ``(sync, field)``
        #: pair whose halo refresh is skipped — a needed refresh then shows
        #: up as an owned-state diff against serial.
        self._skip_refresh: tuple[str, str] | None = None
        # Per-exchange payload is fixed by the decomposition; cache the
        # counter series so the hot path pays two adds per exchange.
        registry = get_registry()
        self._bytes_per_exchange = exchange_bytes(meshes)
        self._halo_bytes = registry.counter("halo.bytes", ranks=n_ranks)
        self._halo_exchanges = registry.counter("halo.exchanges", ranks=n_ranks)
        registry.gauge("halo.bytes_per_exchange", ranks=n_ranks).set(
            self._bytes_per_exchange
        )

    # ------------------------------------------------------------- exchange
    def _exchange(self, states: list[State], sync: str = "") -> None:
        """Refresh halo values of ``h``/``u`` from their owning ranks.

        ``sync`` names the Algorithm-1 synchronization point; under the
        dataflow :class:`~repro.dataflow.schedule.HaloSchedule` an elided
        point returns immediately (no exchange, no fault site) and a kept
        point refreshes only the fields it names, ring-limited to its
        depth.  The static schedule (and a call without ``sync``) keeps the
        full-slice refresh of every halo point.

        Each executed exchange is one ``halo.exchange`` fault site (a
        dropped MPI message).  A faulted exchange is re-attempted up to
        ``RecoveryPolicy.halo_retries`` times with exponential backoff; the
        simulated backoff seconds are accounted into the
        ``resilience.halo.backoff_s`` counter so the scaling step model can
        price recovery, not just success.  Retries exhausted, the injected
        fault propagates — a halo the ranks never agree on is not
        recoverable by degradation.
        """
        point = self.schedule.entry(sync) if sync else None
        if sync and point is None:
            return  # elided by the dataflow schedule: provably clean
        thin = point is not None and self.schedule.mode == "dataflow"
        attempt = 0
        while True:
            try:
                fault_site("halo.exchange", ranks=self.n_ranks)
                break
            except FaultInjected:
                policy = active_recovery_policy()
                if attempt >= policy.halo_retries:
                    raise
                registry = get_registry()
                registry.counter(
                    "resilience.recovery.retry", site="halo.exchange",
                    ranks=self.n_ranks,
                ).inc()
                registry.counter(
                    "resilience.halo.backoff_s", ranks=self.n_ranks
                ).inc(policy.halo_backoff_s * 2.0**attempt)
                attempt += 1
        fields = point.fields if point is not None else ("h", "u")
        skip = self._skip_refresh
        if skip is not None and skip[0] == sync:
            fields = tuple(f for f in fields if f != skip[1])
        bytes_moved = (
            self._sync_bytes[sync] if thin else self._bytes_per_exchange
        )
        with trace_span(
            "halo_exchange", category="halo", sync=sync or "full",
            ranks=self.n_ranks, bytes_est=bytes_moved,
        ):
            gh = np.empty(self.mesh.nCells)
            gu = np.empty(self.mesh.nEdges)
            for rd, st in zip(self.ranks, states):
                lm = rd.mesh
                gh[lm.cells_global[: lm.n_owned_cells]] = st.h[: lm.n_owned_cells]
                gu[lm.edges_global[: lm.n_owned_edges]] = st.u[: lm.n_owned_edges]
            for r, (rd, st) in enumerate(zip(self.ranks, states)):
                lm = rd.mesh
                if thin:
                    cell_idx, edge_idx = self._sync_idx[sync][r]
                    if "h" in fields:
                        st.h[cell_idx] = gh[lm.cells_global[cell_idx]]
                    if "u" in fields:
                        st.u[edge_idx] = gu[lm.edges_global[edge_idx]]
                else:
                    if "h" in fields:
                        st.h[lm.n_owned_cells :] = gh[lm.cells_global[lm.n_owned_cells :]]
                    if "u" in fields:
                        st.u[lm.n_owned_edges :] = gu[lm.edges_global[lm.n_owned_edges :]]
        self.exchange_count += 1
        self._halo_bytes.inc(bytes_moved)
        self._halo_exchanges.inc()

    # ----------------------------------------------------------------- step
    def step(self) -> None:
        """One RK-4 step across all ranks (Algorithm 1, lockstep)."""
        dt = self.config.dt
        provis = [rd.state.copy() for rd in self.ranks]
        provis_diag = [rd.diag for rd in self.ranks]
        acc = [rd.state.copy() for rd in self.ranks]

        for stage in range(4):
            self._exchange(provis, sync=f"pre@s{stage + 1}")
            tends = [
                compute_tend(rd.mesh, pv, pd, rd.b_cell, self.config)
                for rd, pv, pd in zip(self.ranks, provis, provis_diag)
            ]
            for (tend_h, tend_u), a in zip(tends, acc):
                accumulative_update(a, tend_h, tend_u, RK_ACCUMULATE_WEIGHTS[stage] * dt)
            if stage < 3:
                provis = [
                    compute_next_substep_state(
                        rd.state, th, tu, RK_SUBSTEP_WEIGHTS[stage] * dt
                    )
                    for rd, (th, tu) in zip(self.ranks, tends)
                ]
                self._exchange(provis, sync=f"post@s{stage + 1}")
                provis_diag = [
                    compute_solve_diagnostics(rd.mesh, pv, rd.f_vertex, self.config)
                    for rd, pv in zip(self.ranks, provis)
                ]
            else:
                self._exchange(acc, sync="post@s4")
                for rd, a in zip(self.ranks, acc):
                    rd.diag = compute_solve_diagnostics(
                        rd.mesh, a, rd.f_vertex, self.config
                    )
                    rd.state = a

    def run(self, steps: int):
        """Integrate ``steps`` steps; returns the gathered
        :class:`~repro.swm.model.RunResult` (the serial-run contract)."""
        start_state = self.gather_state()
        for _ in range(steps):
            self.step()
        return gathered_run_result(
            self.mesh, start_state, self.gather_state(),
            self.b_cell, self.f_vertex, self.config, steps,
        )

    def advance(self, steps: int) -> None:
        """Advance ``steps`` steps without gathering (durable chunk driver)."""
        for _ in range(steps):
            self.step()

    def load_state(self, state: State, step: int = 0) -> None:
        """Replace every rank's local state from a restored global ``state``.

        Each rank re-slices its owned + halo points from the global arrays
        and recomputes its diagnostics — the resume counterpart of the
        initial-condition slicing in ``__init__`` (``step`` is accepted for
        signature parity with the pool executor; the lockstep runner keeps
        no step counter).
        """
        for rd in self.ranks:
            lm = rd.mesh
            rd.state = State(
                h=state.h[lm.cells_global].copy(),
                u=state.u[lm.edges_global].copy(),
            )
            rd.diag = compute_solve_diagnostics(
                lm, rd.state, rd.f_vertex, self.config
            )

    # ------------------------------------------------------------- gathering
    def gather_state(self) -> State:
        """Assemble the global state from the owned slices of all ranks."""
        gh = np.full(self.mesh.nCells, np.nan)
        gu = np.full(self.mesh.nEdges, np.nan)
        for rd in self.ranks:
            lm = rd.mesh
            gh[lm.cells_global[: lm.n_owned_cells]] = rd.state.h[: lm.n_owned_cells]
            gu[lm.edges_global[: lm.n_owned_edges]] = rd.state.u[: lm.n_owned_edges]
        if np.any(np.isnan(gh)) or np.any(np.isnan(gu)):
            raise AssertionError("ownership does not cover the mesh")
        return State(h=gh, u=gu)
