"""Shared-memory prognostic state for the process-pool executor.

The pool runner (:mod:`repro.parallel.pool`) holds the *global* prognostic
fields ``h`` (cells) and ``u`` (edges) in one ``multiprocessing.shared_memory``
segment mapped into every worker process.  A halo exchange is then two pure
slice copies per rank — owned slices in, halo slices out — with no
serialization and no parent round-trip, exactly the red synchronization
arrows of Figure 2 priced at memory bandwidth instead of pickling.

Layout: a single float64 segment, ``h`` in the first ``n_cells`` slots and
``u`` in the following ``n_edges``.  The copies are index assignments only
(no arithmetic), so the values that flow through the segment are bitwise
identical to the in-process lockstep exchange
(:class:`repro.parallel.runner.DecomposedShallowWater._exchange`).

Lifecycle: the parent :meth:`SharedState.create`\\ s and eventually
:meth:`SharedState.unlink`\\ s the segment; workers receive the
``SharedState`` object (inherited directly under ``fork``, re-attached by
name when pickled under ``spawn``) and only ever :meth:`SharedState.close`
their mapping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedState"]

_FLOAT = np.float64


class SharedState:
    """The global ``(h, u)`` state in one named shared-memory segment."""

    def __init__(self, shm, n_cells: int, n_edges: int, owner: bool) -> None:
        self._shm = shm
        self.n_cells = int(n_cells)
        self.n_edges = int(n_edges)
        self._owner = owner
        flat = np.ndarray(
            (self.n_cells + self.n_edges,), dtype=_FLOAT, buffer=shm.buf
        )
        #: Global thickness field, aliased into the shared segment.
        self.h = flat[: self.n_cells]
        #: Global normal-velocity field, aliased into the shared segment.
        self.u = flat[self.n_cells :]

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, n_cells: int, n_edges: int) -> "SharedState":
        """Allocate a fresh zeroed segment (parent side; call ``unlink``)."""
        from multiprocessing import shared_memory

        nbytes = (int(n_cells) + int(n_edges)) * np.dtype(_FLOAT).itemsize
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        return cls(shm, n_cells, n_edges, owner=True)

    @classmethod
    def attach(cls, name: str, n_cells: int, n_edges: int) -> "SharedState":
        """Map an existing segment by name (worker side; call ``close``)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        # The parent's resource tracker already accounts for this segment;
        # a worker-side attach must not re-register it, or the tracker
        # reports a spurious leak when the worker exits without unlinking.
        try:
            from multiprocessing.resource_tracker import unregister

            unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        return cls(shm, n_cells, n_edges, owner=False)

    @property
    def name(self) -> str:
        """OS-level segment name (the attach key)."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self.h = self.u = None  # release views into the buffer first
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external views
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; mappings must be closed first)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> tuple:
        # Spawned workers re-attach by name; forked workers never pickle.
        return (self.name, self.n_cells, self.n_edges)

    def __setstate__(self, state: tuple) -> None:
        name, n_cells, n_edges = state
        other = SharedState.attach(name, n_cells, n_edges)
        self.__dict__.update(other.__dict__)

    # ------------------------------------------------------------ state I/O
    def write_global(self, h: np.ndarray, u: np.ndarray) -> None:
        """Overwrite the whole shared state (init / snapshot restore)."""
        self.h[:] = h
        self.u[:] = u

    def read_global(self) -> tuple[np.ndarray, np.ndarray]:
        """Private copies of the full shared fields."""
        return self.h.copy(), self.u.copy()

    def publish_owned(self, local_mesh, state) -> None:
        """Phase one of an exchange: write this rank's owned slices."""
        lm = local_mesh
        self.h[lm.cells_global[: lm.n_owned_cells]] = state.h[: lm.n_owned_cells]
        self.u[lm.edges_global[: lm.n_owned_edges]] = state.u[: lm.n_owned_edges]

    def refresh_halo(self, local_mesh, state) -> None:
        """Phase two of an exchange: read this rank's halo slices."""
        lm = local_mesh
        state.h[lm.n_owned_cells :] = self.h[lm.cells_global[lm.n_owned_cells :]]
        state.u[lm.n_owned_edges :] = self.u[lm.edges_global[lm.n_owned_edges :]]

    def read_local(self, local_mesh):
        """This rank's full local state (owned + halo) as private copies."""
        from ..swm.state import State

        lm = local_mesh
        return State(
            h=self.h[lm.cells_global].copy(), u=self.u[lm.edges_global].copy()
        )
