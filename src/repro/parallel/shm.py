"""Shared-memory prognostic state for the process-pool executor.

The pool runner (:mod:`repro.parallel.pool`) holds the *global* prognostic
fields ``h`` (cells) and ``u`` (edges) in one ``multiprocessing.shared_memory``
segment mapped into every worker process.  A halo exchange is then two pure
slice copies per rank — owned slices in, halo slices out — with no
serialization and no parent round-trip, exactly the red synchronization
arrows of Figure 2 priced at memory bandwidth instead of pickling.

Layout: ``n_buffers`` consecutive ``(h, u)`` blocks in one float64 segment
— ``h`` in the first ``n_cells`` slots of each block and ``u`` in the
following ``n_edges``.  The copies are index assignments only (no
arithmetic), so the values that flow through the segment are bitwise
identical to the in-process lockstep exchange
(:class:`repro.parallel.runner.DecomposedShallowWater._exchange`).

The static halo schedule uses a single buffer behind a global barrier.
The comm-avoiding dataflow schedule double-buffers: exchange ``i``
(1-based) flows through block ``i % n_buffers``, and the
:class:`SyncBoard` publish/acknowledge counters guarantee a block is
never overwritten while a peer still reads it — the barrier-free
producer/consumer protocol that lets interior compute overlap the
exchange.

Lifecycle: the parent :meth:`SharedState.create`\\ s and eventually
:meth:`SharedState.unlink`\\ s the segment; workers receive the
``SharedState`` object (inherited directly under ``fork``, re-attached by
name when pickled under ``spawn``) and only ever :meth:`SharedState.close`
their mapping.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["SharedState", "SyncBoard"]

_FLOAT = np.float64


def _attach_segment(name: str):
    """Map an existing shared-memory segment by name (worker side)."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    # The parent's resource tracker already accounts for this segment;
    # a worker-side attach must not re-register it, or the tracker
    # reports a spurious leak when the worker exits without unlinking.
    try:
        from multiprocessing.resource_tracker import unregister

        unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return shm


class SharedState:
    """The global ``(h, u)`` state in one named shared-memory segment."""

    def __init__(
        self, shm, n_cells: int, n_edges: int, owner: bool, n_buffers: int = 1
    ) -> None:
        self._shm = shm
        self.n_cells = int(n_cells)
        self.n_edges = int(n_edges)
        self.n_buffers = int(n_buffers)
        self._owner = owner
        span = self.n_cells + self.n_edges
        flat = np.ndarray(
            (self.n_buffers * span,), dtype=_FLOAT, buffer=shm.buf
        )
        self._bufs = [
            (flat[b * span : b * span + self.n_cells],
             flat[b * span + self.n_cells : (b + 1) * span])
            for b in range(self.n_buffers)
        ]
        #: Global thickness field of buffer 0, aliased into the segment.
        self.h = self._bufs[0][0]
        #: Global normal-velocity field of buffer 0, aliased into the segment.
        self.u = self._bufs[0][1]

    def buffer(self, seq: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``(h, u)`` block of exchange ``seq`` (``seq % n_buffers``)."""
        return self._bufs[int(seq) % self.n_buffers]

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(
        cls, n_cells: int, n_edges: int, n_buffers: int = 1
    ) -> "SharedState":
        """Allocate a fresh zeroed segment (parent side; call ``unlink``)."""
        from multiprocessing import shared_memory

        nbytes = (
            int(n_buffers)
            * (int(n_cells) + int(n_edges))
            * np.dtype(_FLOAT).itemsize
        )
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        return cls(shm, n_cells, n_edges, owner=True, n_buffers=n_buffers)

    @classmethod
    def attach(
        cls, name: str, n_cells: int, n_edges: int, n_buffers: int = 1
    ) -> "SharedState":
        """Map an existing segment by name (worker side; call ``close``)."""
        shm = _attach_segment(name)
        return cls(shm, n_cells, n_edges, owner=False, n_buffers=n_buffers)

    @property
    def name(self) -> str:
        """OS-level segment name (the attach key)."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self.h = self.u = self._bufs = None  # release views into the buffer
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external views
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; mappings must be closed first)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> tuple:
        # Spawned workers re-attach by name; forked workers never pickle.
        return (self.name, self.n_cells, self.n_edges, self.n_buffers)

    def __setstate__(self, state: tuple) -> None:
        name, n_cells, n_edges, n_buffers = state
        other = SharedState.attach(name, n_cells, n_edges, n_buffers)
        self.__dict__.update(other.__dict__)

    # ------------------------------------------------------------ state I/O
    def write_global(self, h: np.ndarray, u: np.ndarray) -> None:
        """Overwrite the whole shared state, in *every* buffer.

        Init and snapshot restore both want all buffers coherent: after a
        reload every rank restarts its exchange sequence at zero, and any
        buffer parity it lands on must hold the committed global state.
        """
        for bh, bu in self._bufs:
            bh[:] = h
            bu[:] = u

    def read_global(self, seq: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Private copies of the full shared fields of exchange ``seq``."""
        bh, bu = self.buffer(seq)
        return bh.copy(), bu.copy()

    def publish_owned(
        self, local_mesh, state, seq: int = 0, fields=("h", "u")
    ) -> None:
        """Phase one of an exchange: write this rank's owned slices.

        ``fields`` names the variables the halo schedule actually moves at
        this sync point; an elided field's block region keeps its previous
        value (nobody reads it — the schedule proved the halo stays clean).
        """
        lm = local_mesh
        bh, bu = self.buffer(seq)
        if "h" in fields:
            bh[lm.cells_global[: lm.n_owned_cells]] = state.h[: lm.n_owned_cells]
        if "u" in fields:
            bu[lm.edges_global[: lm.n_owned_edges]] = state.u[: lm.n_owned_edges]

    def refresh_halo(
        self,
        local_mesh,
        state,
        seq: int = 0,
        fields=("h", "u"),
        cell_idx: np.ndarray | None = None,
        edge_idx: np.ndarray | None = None,
    ) -> None:
        """Phase two of an exchange: read this rank's halo slices.

        ``cell_idx``/``edge_idx`` (local indices) restrict the refresh to
        the schedule's ring-limited halo subset; ``None`` refreshes the
        full halo of the named ``fields``.
        """
        lm = local_mesh
        bh, bu = self.buffer(seq)
        if "h" in fields:
            if cell_idx is None:
                state.h[lm.n_owned_cells :] = bh[lm.cells_global[lm.n_owned_cells :]]
            else:
                state.h[cell_idx] = bh[lm.cells_global[cell_idx]]
        if "u" in fields:
            if edge_idx is None:
                state.u[lm.n_owned_edges :] = bu[lm.edges_global[lm.n_owned_edges :]]
            else:
                state.u[edge_idx] = bu[lm.edges_global[edge_idx]]

    def read_local(self, local_mesh, seq: int = 0):
        """This rank's full local state (owned + halo) as private copies."""
        from ..swm.state import State

        lm = local_mesh
        bh, bu = self.buffer(seq)
        return State(
            h=bh[lm.cells_global].copy(), u=bu[lm.edges_global].copy()
        )


class SyncBoard:
    """Publish/acknowledge counters for the comm-avoiding halo schedule.

    One shared-memory scoreboard replaces the pool's global barrier under
    the dataflow schedule.  Per rank it holds two monotonically increasing
    ``int64`` exchange counters — ``pub[r]`` (the last exchange rank *r*
    published) and ``ack[r]`` (the last exchange rank *r* finished
    reading) — plus a ``float64`` ``observed[r]`` slot with the longest
    compute interval rank *r* has measured (the cross-rank input to the
    adaptive sync timeout).  A single ``multiprocessing.Condition``
    (fork-inherited / Process-arg pickled, like the barrier it replaces)
    wakes waiters; the counters themselves live in the segment so a
    predicate is one vectorized compare.

    The protocol (``n_buffers`` state buffers, exchange ``seq`` 1-based):

    * a rank may *write* buffer ``seq % n_buffers`` once every consumer of
      its owned points has ``ack >= seq - n_buffers`` (the buffer's
      previous occupant is fully drained);
    * a rank may *read* its halo for exchange ``seq`` once every provider
      of its halo points has ``pub >= seq``.

    A timed-out wait raises :class:`threading.BrokenBarrierError`, so the
    pool's existing broken-exchange recovery path (respawn + rewind)
    applies unchanged; :meth:`reset` rewinds the counters to match.
    """

    def __init__(self, shm, cond, n_ranks: int, owner: bool) -> None:
        self._shm = shm
        self._cond = cond
        self.n_ranks = int(n_ranks)
        self._owner = owner
        n = self.n_ranks
        isz = np.dtype(np.int64).itemsize
        self.pub = np.ndarray((n,), dtype=np.int64, buffer=shm.buf)
        self.ack = np.ndarray((n,), dtype=np.int64, buffer=shm.buf, offset=n * isz)
        self.observed = np.ndarray(
            (n,), dtype=_FLOAT, buffer=shm.buf, offset=2 * n * isz
        )

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, n_ranks: int, ctx) -> "SyncBoard":
        """Allocate the scoreboard (parent side; ``ctx`` a mp context)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=3 * 8 * int(n_ranks))
        board = cls(shm, ctx.Condition(), n_ranks, owner=True)
        board.pub[:] = 0
        board.ack[:] = 0
        board.observed[:] = 0.0
        return board

    @property
    def name(self) -> str:
        """OS-level segment name (the attach key)."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self.pub = self.ack = self.observed = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external views
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> tuple:
        # The Condition pickles through multiprocessing's Process-argument
        # reduction (exactly like the Barrier it replaces); the segment
        # re-attaches by name.
        return (self.name, self.n_ranks, self._cond)

    def __setstate__(self, state: tuple) -> None:
        name, n_ranks, cond = state
        self.__init__(_attach_segment(name), cond, n_ranks, owner=False)

    # -------------------------------------------------------------- protocol
    def reset(self) -> None:
        """Rewind every exchange counter to zero (recovery rewind).

        ``observed`` survives on purpose: the compute-interval estimates
        stay valid across a respawn and keep the adaptive timeout armed.
        """
        self.pub[:] = 0
        self.ack[:] = 0

    def _wait(self, predicate, timeout: float, what: str) -> None:
        with self._cond:
            if not self._cond.wait_for(predicate, timeout):
                raise threading.BrokenBarrierError(
                    f"halo sync timed out after {timeout:.1f}s waiting for {what}"
                )

    def await_acked(self, ranks: np.ndarray, seq: int, timeout: float) -> None:
        """Block until every rank in ``ranks`` has acknowledged ``seq``."""
        if seq <= 0 or len(ranks) == 0:
            return
        ack = self.ack
        self._wait(
            lambda: bool(np.all(ack[ranks] >= seq)), timeout, f"acks >= {seq}"
        )

    def await_published(self, ranks: np.ndarray, seq: int, timeout: float) -> None:
        """Block until every rank in ``ranks`` has published ``seq``."""
        if len(ranks) == 0:
            return
        pub = self.pub
        self._wait(
            lambda: bool(np.all(pub[ranks] >= seq)), timeout, f"pubs >= {seq}"
        )

    def mark_published(self, rank: int, seq: int) -> None:
        """Announce this rank's owned slices of exchange ``seq`` are written."""
        with self._cond:
            self.pub[rank] = seq
            self._cond.notify_all()

    def mark_acked(self, rank: int, seq: int) -> None:
        """Announce this rank has finished reading exchange ``seq``."""
        with self._cond:
            self.ack[rank] = seq
            self._cond.notify_all()

    # ------------------------------------------------------ adaptive timeout
    def observe(self, rank: int, seconds: float) -> None:
        """Record a compute interval (max-tracked per rank)."""
        if seconds > self.observed[rank]:
            self.observed[rank] = float(seconds)

    def max_observed(self) -> float:
        """The slowest compute interval any rank has reported."""
        return float(self.observed.max())
