"""Strong and weak scaling models (Figures 8 and 9).

Per-process times come from the hybrid step model on the process-local
problem (owned cells + redundant halo); communication from the FDR
InfiniBand halo-exchange model, including the PCIe synchronization the
hybrid code pays to stage halo data off/onto the accelerator.

The paper's configurations:

* **strong scaling** (Fig. 8): 30-km (655,362 cells) and 15-km (2,621,442
  cells) meshes, 1..64 MPI processes (x2 each step);
* **weak scaling** (Fig. 9): ~40,962 cells per process, 1..64 processes
  (x4 each step);
* the "CPU version" is the original pure-MPI code, one (single-threaded)
  process per CPU/MIC group, exactly as in Figure 7's baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hybrid.stepmodel import LocalProblem, decompose, hybrid_step_time, serial_step_time
from ..machine.interconnect import HaloExchangeModel, TransferModel
from ..machine.spec import PAPER_CLUSTER, ClusterSpec

__all__ = [
    "ScalingPoint",
    "halo_exchange_seconds",
    "strong_scaling",
    "weak_scaling",
    "parallel_efficiency",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One x-axis point of Figure 8/9."""

    n_procs: int
    total_cells: int
    local: LocalProblem
    cpu_time: float  # original code, time per step
    hybrid_time: float  # pattern-driven hybrid, time per step

    @property
    def hybrid_gain(self) -> float:
        """How much faster the hybrid code is than the original at this P."""
        return self.cpu_time / self.hybrid_time


def halo_exchange_seconds(
    local: LocalProblem,
    cluster: ClusterSpec = PAPER_CLUSTER,
    hybrid: bool = False,
) -> float:
    """Seconds per halo exchange of the prognostic state (h at cells, u at
    edges; edges outnumber halo cells ~3:1).

    The hybrid code additionally stages the halo band across PCIe in both
    directions (download before MPI, upload after).
    """
    if local.halo_cells == 0:
        return 0.0
    halo_points = local.halo_cells * 4  # cells + ~3x edges
    net = HaloExchangeModel(
        bandwidth_gbs=cluster.network_bw_gbs,
        latency_us=cluster.network_latency_us,
    )
    t = net.time(halo_points, n_fields=1)
    if hybrid:
        pcie = TransferModel(
            bandwidth_gbs=cluster.node.pcie_bw_gbs,
            latency_us=cluster.node.pcie_latency_us,
        )
        t += 2.0 * pcie.time(8.0 * halo_points)
    return t


def _point(total_cells: int, n_procs: int, cluster: ClusterSpec) -> ScalingPoint:
    local = decompose(total_cells, n_procs)
    cpu_halo = halo_exchange_seconds(local, cluster, hybrid=False)
    hyb_halo = halo_exchange_seconds(local, cluster, hybrid=True)
    return ScalingPoint(
        n_procs=n_procs,
        total_cells=total_cells,
        local=local,
        cpu_time=serial_step_time(local, halo_time=cpu_halo),
        hybrid_time=hybrid_step_time(local, mode="pattern", halo_time=hyb_halo),
    )


def strong_scaling(
    total_cells: int,
    procs: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    cluster: ClusterSpec = PAPER_CLUSTER,
) -> list[ScalingPoint]:
    """Figure 8: fixed mesh, growing process count."""
    return [_point(total_cells, p, cluster) for p in procs]


def weak_scaling(
    cells_per_proc: int = 40962,
    procs: tuple[int, ...] = (1, 4, 16, 64),
    cluster: ClusterSpec = PAPER_CLUSTER,
) -> list[ScalingPoint]:
    """Figure 9: ~fixed cells per process, growing process count."""
    return [_point(cells_per_proc * p, p, cluster) for p in procs]


def parallel_efficiency(series: list[ScalingPoint], which: str = "hybrid") -> list[float]:
    """Efficiency relative to the first point of a series.

    Strong scaling: ``t1 / (P * tP)`` (adjusted for the first point's process
    count); weak scaling: ``t1 / tP``.
    """
    attr = "hybrid_time" if which == "hybrid" else "cpu_time"
    t0 = getattr(series[0], attr)
    p0 = series[0].n_procs
    out = []
    for pt in series:
        t = getattr(pt, attr)
        if pt.total_cells == series[0].total_cells:  # strong
            out.append(t0 * p0 / (pt.n_procs * t))
        else:  # weak
            out.append(t0 / t)
    return out
