"""Mesh partitioning for MPI-style domain decomposition.

MPAS uses METIS partitions of the cell graph; we provide a deterministic
spherical k-means partitioner (quasi-uniform meshes yield compact, balanced,
nearly-convex parts — the same qualitative shape METIS produces) plus a
graph-greedy fallback, and quality diagnostics (balance, edge cut).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.icosahedron import icosahedral_points
from ..geometry.sphere import normalize
from ..mesh.mesh import Mesh

__all__ = ["PartitionQuality", "partition_cells", "partition_quality"]


def _seed_directions(n_parts: int) -> np.ndarray:
    """Deterministic, well-spread unit vectors used as k-means seeds."""
    # Oversample a geodesic point set and take a spread subset: points of the
    # icosahedral families are nearly uniform, so striding them keeps spread.
    level = 0
    while 10 * 4**level + 2 < n_parts:
        level += 1
    pts = icosahedral_points(level)
    idx = np.linspace(0, pts.shape[0] - 1, n_parts).round().astype(int)
    return pts[np.unique(idx)][:n_parts]


def partition_cells(
    mesh: Mesh, n_parts: int, iterations: int = 25, method: str = "kmeans"
) -> np.ndarray:
    """Assign every cell an owner in ``[0, n_parts)``.

    ``kmeans``: spherical k-means on cell centres (balanced by construction
    on quasi-uniform meshes).  ``contiguous``: breadth-first graph growing,
    guaranteeing exactly balanced part sizes (+-1 cell) at the cost of
    slightly longer boundaries.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_parts == 1:
        return np.zeros(mesh.nCells, dtype=np.int64)
    if n_parts > mesh.nCells:
        raise ValueError("more parts than cells")
    if method == "kmeans":
        return _kmeans_partition(mesh, n_parts, iterations)
    if method == "contiguous":
        return _graph_grow_partition(mesh, n_parts)
    raise ValueError(f"unknown partition method {method!r}")


def _kmeans_partition(mesh: Mesh, n_parts: int, iterations: int) -> np.ndarray:
    x = mesh.metrics.xCell
    centers = _seed_directions(n_parts)
    if centers.shape[0] < n_parts:
        raise ValueError("could not seed enough distinct part centres")
    owner = np.zeros(mesh.nCells, dtype=np.int64)
    for _ in range(iterations):
        sims = x @ centers.T  # cosine similarity
        new_owner = np.argmax(sims, axis=1)
        if np.array_equal(new_owner, owner):
            break
        owner = new_owner
        for p in range(n_parts):
            members = x[owner == p]
            if members.shape[0]:
                centers[p] = normalize(members.sum(axis=0))
    # Guarantee non-empty parts: steal the closest cell for any empty part.
    for p in range(n_parts):
        if not np.any(owner == p):
            sims = x @ centers[p]
            # Pick the most-similar cell whose part has more than one member.
            for c in np.argsort(-sims):
                if np.count_nonzero(owner == owner[c]) > 1:
                    owner[c] = p
                    break
    return owner


def _graph_grow_partition(mesh: Mesh, n_parts: int) -> np.ndarray:
    from collections import deque

    conn = mesh.connectivity
    target = mesh.nCells // n_parts
    extras = mesh.nCells % n_parts
    owner = np.full(mesh.nCells, -1, dtype=np.int64)
    seeds = _seed_directions(n_parts)
    x = mesh.metrics.xCell
    next_start = 0
    for p in range(n_parts):
        size_target = target + (1 if p < extras else 0)
        # Seed: unassigned cell closest to the part direction.
        free = np.flatnonzero(owner == -1)
        seed = free[np.argmax(x[free] @ seeds[p])]
        queue = deque([int(seed)])
        count = 0
        while queue and count < size_target:
            c = queue.popleft()
            if owner[c] != -1:
                continue
            owner[c] = p
            count += 1
            for j in range(int(conn.nEdgesOnCell[c])):
                nb = int(conn.cellsOnCell[c, j])
                if owner[nb] == -1:
                    queue.append(nb)
        # Disconnected leftovers: grab nearest free cells.
        while count < size_target:
            free = np.flatnonzero(owner == -1)
            seed = free[np.argmax(x[free] @ seeds[p])]
            owner[seed] = p
            count += 1
        next_start += size_target
    assert not np.any(owner == -1)
    return owner


@dataclass(frozen=True)
class PartitionQuality:
    """Balance and communication statistics of a partition."""

    n_parts: int
    min_size: int
    max_size: int
    imbalance: float  # max / mean
    edge_cut: int  # edges whose two cells live on different parts
    cut_fraction: float

    def summary(self) -> str:
        return (
            f"parts={self.n_parts} size=[{self.min_size},{self.max_size}] "
            f"imbalance={self.imbalance:.3f} cut={self.edge_cut} "
            f"({100 * self.cut_fraction:.1f}%)"
        )


def partition_quality(mesh: Mesh, owner: np.ndarray) -> PartitionQuality:
    """Evaluate a partition (used by tests and the scaling reports)."""
    n_parts = int(owner.max()) + 1
    sizes = np.bincount(owner, minlength=n_parts)
    c0 = mesh.connectivity.cellsOnEdge[:, 0]
    c1 = mesh.connectivity.cellsOnEdge[:, 1]
    cut = int(np.count_nonzero(owner[c0] != owner[c1]))
    return PartitionQuality(
        n_parts=n_parts,
        min_size=int(sizes.min()),
        max_size=int(sizes.max()),
        imbalance=float(sizes.max() / sizes.mean()),
        edge_cut=cut,
        cut_fraction=cut / mesh.nEdges,
    )
