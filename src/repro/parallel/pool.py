"""Shared-memory process-pool execution of the decomposed model.

:class:`PoolShallowWater` is the concurrent sibling of
:class:`~repro.parallel.runner.DecomposedShallowWater`: the same
partitioning, the same per-rank local meshes, the same Algorithm-1 step —
but each rank lives in its own persistent worker process and genuinely
steps in parallel, the paper's MPI+OpenMP execution model realized with
``multiprocessing``.  Selected via ``SWConfig(parallel="pool", ranks=P)``
through :func:`repro.api.run`.

Execution contract (enforced by the test suite): **the owned portion of
every rank's state is bitwise identical to the serial run**.  This holds
because each worker executes the exact per-rank kernel sequence of the
lockstep runner on an identical :class:`~repro.parallel.halo.LocalMesh`,
and the halo exchange moves values by pure slice copies through a
:class:`~repro.parallel.shm.SharedState` segment at exactly the Algorithm-1
synchronization points.

Under the default static schedule
(``SWConfig(halo_schedule="static")``) each of the 8 sync points is a
two-phase barrier:

1. every rank publishes its owned slices into the shared segment, then
   waits (no rank may read a halo that is still being written);
2. every rank refreshes its halo slices from the segment, then waits
   (no rank may start publishing the *next* exchange while another is
   still reading this one).

Under ``halo_schedule="dataflow"`` the pool runs the comm-avoiding
schedule derived from the step graph
(:func:`repro.dataflow.schedule.derive_halo_schedule`): sync points whose
halo the graph proves clean are skipped outright, the surviving ones move
only the variables and halo rings the schedule names, and the global
barrier is replaced by the publish/acknowledge counters of a
:class:`~repro.parallel.shm.SyncBoard` over a double-buffered segment.
Each kept exchange is split around compute — a rank publishes its owned
slices the moment the substate exists, runs the RK accumulation (and,
under fused plans, the interior diagnostics of
:func:`repro.engine.plan.compiled_overlap`) while its peers drain the
exchange, and acquires its halo only at the last read point.  The owned
state stays bitwise identical to the serial run in both modes.

Worker death (a crashed process, an ``os._exit`` mid-step) is recoverable:
surviving workers time out of the broken barrier and report back, the
parent restores the last committed global state into the shared segment,
respawns the dead ranks, reloads every worker and retries the batch —
bounded by ``RecoveryPolicy.halo_retries`` (a dead worker is a lost halo
peer), counted under ``resilience.pool.*``.  A successful retry is
bitwise-invisible, like every other recovery in this repo.

Per-worker observability is private (each worker installs a fresh metrics
registry and tracer at startup) and is merged into the parent's process-wide
registry/tracer at gather time, tagged ``rank=r``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import numpy as np

from ..dataflow.schedule import halo_schedule_for
from ..mesh.mesh import Mesh
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..obs.trace import Tracer, get_tracer, set_tracer, trace_span
from ..swm.config import SWConfig
from ..swm.diagnostics import compute_solve_diagnostics
from ..swm.state import State
from ..swm.testcases import TestCase, initialize
from ..swm.timestep import (
    RK_ACCUMULATE_WEIGHTS,
    RK_SUBSTEP_WEIGHTS,
    accumulative_update,
    compute_next_substep_state,
)
from ..swm.tendencies import compute_tend
from .halo import (
    build_local_mesh,
    exchange_bytes,
    halo_layers_required,
    ring_halo_indices,
    schedule_exchange_bytes,
)
from .partition import partition_cells
from .runner import gathered_run_result
from .shm import SharedState, SyncBoard

__all__ = ["PoolShallowWater", "WorkerPoolError"]

#: Seconds a worker waits at an exchange barrier before declaring it broken.
#: Under the dataflow schedule this is a *floor*: the effective timeout is
#: ``max(DEFAULT_BARRIER_TIMEOUT, TIMEOUT_SAFETY * slowest observed compute
#: interval)``, so a long interior-overlap window on a loaded machine never
#: false-triggers the worker-death recovery.
DEFAULT_BARRIER_TIMEOUT = 120.0


class WorkerPoolError(RuntimeError):
    """A pool step failed beyond the bounded respawn budget."""


# ---------------------------------------------------------------- worker side
def _worker_exchange(shared, lm, barrier, timeout: float, state: State) -> None:
    """One two-phase shared-memory halo exchange (worker side)."""
    shared.publish_owned(lm, state)
    barrier.wait(timeout)
    shared.refresh_halo(lm, state)
    barrier.wait(timeout)


def _worker_step(exchange, lm, state, diag, b_cell, f_vertex, config):
    """One RK-4 step of one rank — the lockstep per-rank body, verbatim.

    ``exchange(state)`` performs one two-phase shared-memory halo exchange.
    """
    dt = config.dt
    provis = state.copy()
    provis_diag = diag
    acc = state.copy()
    for stage in range(4):
        exchange(provis)
        tend_h, tend_u = compute_tend(lm, provis, provis_diag, b_cell, config)
        accumulative_update(acc, tend_h, tend_u, RK_ACCUMULATE_WEIGHTS[stage] * dt)
        if stage < 3:
            provis = compute_next_substep_state(
                state, tend_h, tend_u, RK_SUBSTEP_WEIGHTS[stage] * dt
            )
            exchange(provis)
            provis_diag = compute_solve_diagnostics(lm, provis, f_vertex, config)
        else:
            exchange(acc)
            diag = compute_solve_diagnostics(lm, acc, f_vertex, config)
    return acc, diag


class _DataflowSync:
    """Worker-side driver of one rank's schedule-derived halo exchanges.

    Each kept sync point is split into a *publish* half (:meth:`begin`)
    and an *acquire* half (:meth:`finish`) so the caller can slot compute
    between them; a point the schedule elides returns ``None`` from
    :meth:`begin` and costs nothing.  Moved bytes and wait/overlap seconds
    feed the ``halo.*`` counters, plus one ``halo.sync`` span per
    exchange.
    """

    #: Multiplier on the slowest observed compute interval of any rank
    #: when deriving the effective sync timeout (see :meth:`_timeout`).
    TIMEOUT_SAFETY = 4.0

    def __init__(
        self, rank, shared, board, timeout, lm, schedule, providers, consumers
    ):
        self.rank = rank
        self.shared = shared
        self.board = board
        self.base_timeout = float(timeout)
        self.lm = lm
        self.providers = providers
        self.consumers = consumers
        self.seq = 0  # kept exchanges completed since the last global load
        self.points: dict[str, tuple] = {}
        for p in schedule.points:
            cell_idx, edge_idx = ring_halo_indices(lm, p.rings)
            nbytes = 8.0 * (
                (cell_idx.size if "h" in p.fields else 0)
                + (edge_idx.size if "u" in p.fields else 0)
            )
            self.points[p.name] = (p.fields, cell_idx, edge_idx, nbytes)
        registry = get_registry()
        self._bytes = registry.counter("halo.bytes", mode="pool")
        self._exchanges = registry.counter("halo.exchanges", mode="pool")
        self._wait_s = registry.counter("halo.wait_s", mode="pool")
        self._overlap_s = registry.counter("halo.overlap_s", mode="pool")

    def _timeout(self) -> float:
        # A sync is declared broken only after the slowest rank has had
        # several times its worst observed compute interval to arrive: a
        # long interior-overlap window must never read as a dead peer.
        # Cross-rank maximum, because a fast rank cannot observe how long
        # its slowest peer legitimately computes between sync points.
        return max(
            self.base_timeout, self.TIMEOUT_SAFETY * self.board.max_observed()
        )

    def begin(self, name: str, state):
        """Publish ``state``'s owned slices for sync point ``name``.

        Returns an opaque token for :meth:`finish`, or ``None`` when the
        schedule elides the point.  Blocks only until the target buffer's
        previous occupant is drained by every consumer of this rank.
        """
        entry = self.points.get(name)
        if entry is None:
            return None
        self.seq += 1
        t0 = time.perf_counter()
        self.board.await_acked(
            self.consumers, self.seq - self.shared.n_buffers, self._timeout()
        )
        self.shared.publish_owned(self.lm, state, seq=self.seq, fields=entry[0])
        self.board.mark_published(self.rank, self.seq)
        return (name, state, self.seq, t0, time.perf_counter())

    def finish(self, token) -> None:
        """Acquire the peers' slices: refresh the halo of ``begin``'s state."""
        name, state, seq, t0, t_pub = token
        fields, cell_idx, edge_idx, nbytes = self.points[name]
        t1 = time.perf_counter()
        self.board.await_published(self.providers, seq, self._timeout())
        self.shared.refresh_halo(
            self.lm, state, seq=seq, fields=fields,
            cell_idx=cell_idx, edge_idx=edge_idx,
        )
        self.board.mark_acked(self.rank, seq)
        t2 = time.perf_counter()
        wait = (t_pub - t0) + (t2 - t1)
        overlap = t1 - t_pub
        self._bytes.inc(nbytes)
        self._exchanges.inc()
        self._wait_s.inc(wait)
        self._overlap_s.inc(overlap)
        tracer = get_tracer()
        if tracer.enabled:
            end = tracer.now()
            tracer.add_span(
                "halo.sync", end - (t2 - t0), end, category="halo",
                sync=name, vars=",".join(fields), bytes_est=nbytes,
                wait_s=round(wait, 9), overlap_s=round(overlap, 9),
            )


def _overlapped_diagnostics(sync, token, overlap, lm, state, f_vertex, config):
    """Diagnostics of a just-exchanged substate, overlapped when possible.

    ``token`` is the in-flight exchange from :meth:`_DataflowSync.begin`
    (``None`` when the schedule elided the point — the halo is provably
    clean and the plain kernel runs directly).  With a compiled overlap
    program the interior rows are computed on the stale halo *while peers
    drain the exchange*, then the boundary rows are recomputed after the
    thin acquire — bitwise identical to refresh-then-full-compute.
    """
    if token is None:
        return compute_solve_diagnostics(lm, state, f_vertex, config)
    if overlap is None:
        sync.finish(token)
        return compute_solve_diagnostics(lm, state, f_vertex, config)
    diag, ctx = overlap.interior(state, f_vertex)
    sync.finish(token)
    overlap.boundary(ctx)
    return diag


def _worker_step_dataflow(sync, overlap, lm, state, diag, b_cell, f_vertex, config):
    """One RK-4 step under the dataflow halo schedule (worker side).

    The same kernel sequence as :func:`_worker_step`, reordered around the
    kept sync points: each post-substep exchange publishes as soon as the
    substate exists, the RK accumulation (independent of the exchange)
    and the interior diagnostics run inside the overlap window, and the
    halo is acquired at the last point before its values could be read.
    """
    dt = config.dt
    provis = state.copy()
    provis_diag = diag
    acc = state.copy()
    for stage in range(4):
        token = sync.begin(f"pre@s{stage + 1}", provis)
        if token is not None:
            sync.finish(token)
        tend_h, tend_u = compute_tend(lm, provis, provis_diag, b_cell, config)
        if stage < 3:
            provis = compute_next_substep_state(
                state, tend_h, tend_u, RK_SUBSTEP_WEIGHTS[stage] * dt
            )
            token = sync.begin(f"post@s{stage + 1}", provis)
            accumulative_update(
                acc, tend_h, tend_u, RK_ACCUMULATE_WEIGHTS[stage] * dt
            )
            provis_diag = _overlapped_diagnostics(
                sync, token, overlap, lm, provis, f_vertex, config
            )
        else:
            accumulative_update(
                acc, tend_h, tend_u, RK_ACCUMULATE_WEIGHTS[stage] * dt
            )
            token = sync.begin("post@s4", acc)
            diag = _overlapped_diagnostics(
                sync, token, overlap, lm, acc, f_vertex, config
            )
    return acc, diag


def _worker_main(
    rank: int,
    conn,
    shared: SharedState,
    barrier,
    board: SyncBoard | None,
    barrier_timeout: float,
    lm,
    b_cell: np.ndarray,
    f_vertex: np.ndarray,
    config: SWConfig,
    schedule,
    neighbors: tuple[np.ndarray, np.ndarray],
    trace_enabled: bool,
    kill_at_step: int | None,
) -> None:
    """Persistent worker loop: own rank state, obey parent commands.

    Commands (over the pipe): ``("steps", n)`` advance ``n`` RK-4 steps,
    acked ``("ok", n)`` or ``("broken", at_step)`` after a barrier break;
    ``("load", base_step)`` re-slice the local state from the shared
    segment (post-recovery resynchronization); ``("obs",)`` ship-and-clear
    this worker's metrics snapshot and finished tracer spans;
    ``("gather",)`` ship the owned state slices; ``("stop",)`` exit.

    ``board is None`` selects the static barrier path; otherwise the
    dataflow :class:`_DataflowSync` drives the kept sync points of
    ``schedule`` against the ``neighbors = (providers, consumers)`` rank
    sets.
    """
    from ..engine import default_registry
    from ..engine.split import placements_active
    from ..resilience.recovery import use_recovery_policy

    # A SIGKILLed parent cannot tell its workers anything, and under the
    # fork start method each later worker inherits the pipe write-ends of
    # the earlier ones — so no worker ever sees EOF on its command pipe
    # and the rank set would outlive the run as orphans.  Watch the parent
    # directly instead: when it dies we are re-parented, and this process
    # must go too (the durable-run resume spawns a fresh pool).
    parent_pid = os.getppid()

    def _watch_parent() -> None:
        while True:
            if os.getppid() != parent_pid:
                os._exit(0)
            time.sleep(0.5)

    threading.Thread(
        target=_watch_parent, name="parent-watch", daemon=True
    ).start()

    # Private per-process observability: never double-count series that
    # were forked from the parent.
    set_registry(MetricsRegistry())
    set_tracer(Tracer(enabled=trace_enabled))
    default_registry()  # per-process registry, built (or inherited) up front

    registry = get_registry()
    steps_done = registry.counter("pool.worker.steps")

    if board is not None:
        sync = _DataflowSync(
            rank, shared, board, barrier_timeout, lm, schedule, *neighbors
        )
        overlap = None
        if config.plan and not placements_active():
            # Fused-plan ranks split diagnostics into interior + boundary
            # around each acquire; split placements fall back to the plain
            # acquire-then-compute path (plans bypass routing entirely).
            from ..engine.plan import compiled_overlap

            rings = max(p.rings for p in schedule.points)
            overlap = compiled_overlap(lm, config, rings)

        def do_step(state_, diag_):
            return _worker_step_dataflow(
                sync, overlap, lm, state_, diag_, b_cell, f_vertex, config
            )
    else:
        sync = None
        bytes_per_exchange = 8.0 * (lm.n_halo_cells + lm.n_halo_edges)
        halo_bytes = registry.counter("halo.bytes", mode="pool")
        halo_exchanges = registry.counter("halo.exchanges", mode="pool")

        def exchange(state_):
            with trace_span(
                "halo_exchange", category="halo", bytes_est=bytes_per_exchange
            ):
                _worker_exchange(shared, lm, barrier, barrier_timeout, state_)
            halo_bytes.inc(bytes_per_exchange)
            halo_exchanges.inc()

        def do_step(state_, diag_):
            return _worker_step(
                exchange, lm, state_, diag_, b_cell, f_vertex, config
            )

    t_diag = time.perf_counter()
    state = shared.read_local(lm)
    diag = compute_solve_diagnostics(lm, state, f_vertex, config)
    if board is not None:
        # Seed the adaptive-timeout estimate before any peer can wait on
        # this rank: the startup diagnostics is one full compute interval.
        board.observe(rank, time.perf_counter() - t_diag)
    step_no = 0
    conn.send(("ready", rank))
    with use_recovery_policy(config.recovery_policy()):
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "steps":
                n = msg[1]
                try:
                    for _ in range(n):
                        step_no += 1
                        if kill_at_step is not None and step_no == kill_at_step:
                            os._exit(3)  # simulated worker crash (tests)
                        t_step = time.perf_counter()
                        with trace_span("pool_step", category="pool", step=step_no):
                            state, diag = do_step(state, diag)
                        if board is not None:
                            board.observe(rank, time.perf_counter() - t_step)
                        steps_done.inc()
                    conn.send(("ok", n))
                except threading.BrokenBarrierError:
                    conn.send(("broken", step_no))
            elif cmd == "load":
                state = shared.read_local(lm)
                diag = compute_solve_diagnostics(lm, state, f_vertex, config)
                step_no = msg[1]
                if sync is not None:
                    sync.seq = 0  # the board was reset with the reload
                kill_at_step = None  # a test kill fires at most once per spawn
                conn.send(("loaded", rank))
            elif cmd == "obs":
                tracer = get_tracer()
                conn.send((
                    "obs",
                    registry.snapshot(),
                    [s.to_dict() for s in tracer.finished()],
                ))
                registry.clear()
                tracer.clear()
            elif cmd == "gather":
                conn.send((
                    "state",
                    state.h[: lm.n_owned_cells].copy(),
                    state.u[: lm.n_owned_edges].copy(),
                ))
            elif cmd == "stop":
                conn.send(("bye", rank))
                break
            else:  # pragma: no cover - protocol error
                conn.send(("error", f"unknown command {cmd!r}"))
                break
    shared.close()
    if board is not None:
        board.close()
    conn.close()


# ---------------------------------------------------------------- parent side
class PoolShallowWater:
    """P concurrent worker ranks stepping the decomposed shallow-water model.

    Construction partitions the mesh, discretizes the test case globally,
    seeds the shared segment with the initial state and spawns one
    persistent worker per rank (``fork`` start method where available,
    ``spawn`` otherwise — all worker arguments are picklable).  Use as a
    context manager, or call :meth:`close` explicitly.

    Parameters mirror :class:`~repro.parallel.runner.DecomposedShallowWater`
    plus ``barrier_timeout`` (worker-death detection latency) and the
    test-only ``kill_at`` mapping ``{rank: step}`` that makes a first-
    generation worker exit mid-run to exercise the recovery path.
    """

    def __init__(
        self,
        mesh: Mesh,
        n_ranks: int,
        case: TestCase,
        config: SWConfig,
        halo_layers: int | None = None,
        partition_method: str = "kmeans",
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
        kill_at: dict[int, int] | None = None,
    ) -> None:
        self.mesh = mesh
        self.config = config
        self.n_ranks = n_ranks
        self.barrier_timeout = float(barrier_timeout)
        if halo_layers is None:
            halo_layers = halo_layers_required(
                config.thickness_adv_order, config.apvm_upwinding != 0.0
            )
        self.owner = partition_cells(mesh, n_ranks, method=partition_method)
        self.local_meshes = [
            build_local_mesh(mesh, self.owner, r, halo_layers=halo_layers)
            for r in range(n_ranks)
        ]

        global_state, self.b_cell = initialize(mesh, case)
        if case.coriolis is not None:
            self.f_vertex = case.coriolis(mesh.metrics.xVertex)
        else:
            self.f_vertex = config.coriolis(mesh.metrics.latVertex)

        #: The halo schedule every rank executes (static or dataflow).
        self.schedule = halo_schedule_for(config)
        dataflow = self.schedule.mode == "dataflow"

        self._shared = SharedState.create(
            mesh.nCells, mesh.nEdges, n_buffers=2 if dataflow else 1
        )
        self._shared.write_global(global_state.h, global_state.u)
        # Kept exchanges completed since the last global load: selects the
        # buffer holding the committed state (`seq % n_buffers`).
        self._exchanges_done = 0
        self._snapshot = self._shared.read_global()

        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._barrier = self._ctx.Barrier(n_ranks)
        self._board = SyncBoard.create(n_ranks, self._ctx) if dataflow else None
        self._neighbors = self._neighbor_ranks() if dataflow else [
            (np.empty(0, np.int64), np.empty(0, np.int64))
        ] * n_ranks
        self._workers: list = [None] * n_ranks
        self._conns: list = [None] * n_ranks
        self._closed = False
        self._steps_done = 0
        self.exchange_count = 0

        registry = get_registry()
        self._bytes_per_exchange = exchange_bytes(self.local_meshes)
        registry.gauge(
            "halo.bytes_per_exchange", ranks=n_ranks, mode="pool"
        ).set(self._bytes_per_exchange)
        registry.gauge(
            "halo.exchanges_per_step", ranks=n_ranks, mode="pool",
            schedule=self.schedule.mode,
        ).set(self.schedule.exchanges_per_step)
        registry.gauge(
            "halo.bytes_per_step", ranks=n_ranks, mode="pool",
            schedule=self.schedule.mode,
        ).set(schedule_exchange_bytes(self.local_meshes, self.schedule))
        self._respawns = registry.counter("resilience.pool.respawn", ranks=n_ranks)
        self._retries = registry.counter(
            "resilience.recovery.retry", site="pool.step", ranks=n_ranks
        )

        kill_at = kill_at or {}
        for r in range(n_ranks):
            self._spawn(r, kill_at.get(r))
        self._await("ready", range(n_ranks))

    def _neighbor_ranks(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-rank ``(providers, consumers)`` sets for the sync board.

        ``providers[r]`` are the ranks owning any of rank *r*'s halo
        points (whose publishes *r* must await before reading);
        ``consumers[r]`` are the ranks whose halo includes any of *r*'s
        owned points (whose acks *r* must await before overwriting a
        buffer).  Computed at the full halo depth, which bounds every
        ring-limited subset a schedule can refresh.
        """
        edge_owner = np.full(self.mesh.nEdges, -1, dtype=np.int64)
        for r, lm in enumerate(self.local_meshes):
            edge_owner[lm.edges_global[: lm.n_owned_edges]] = r
        providers: list[np.ndarray] = []
        for r, lm in enumerate(self.local_meshes):
            owners = np.concatenate([
                self.owner[lm.cells_global[lm.n_owned_cells :]],
                edge_owner[lm.edges_global[lm.n_owned_edges :]],
            ])
            owners = np.unique(owners[(owners >= 0) & (owners != r)])
            providers.append(owners.astype(np.int64))
        consumers = [
            np.array(
                [q for q in range(self.n_ranks) if r in providers[q]],
                dtype=np.int64,
            )
            for r in range(self.n_ranks)
        ]
        return [(providers[r], consumers[r]) for r in range(self.n_ranks)]

    # ----------------------------------------------------------- process mgmt
    def _spawn(self, rank: int, kill_at_step: int | None = None) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                rank, child_conn, self._shared, self._barrier, self._board,
                self.barrier_timeout, self.local_meshes[rank],
                self.b_cell[self.local_meshes[rank].cells_global],
                self.f_vertex[self.local_meshes[rank].vertices_global],
                self.config, self.schedule, self._neighbors[rank],
                get_tracer().enabled, kill_at_step,
            ),
            daemon=True,
            name=f"repro-pool-rank{rank}",
        )
        proc.start()
        child_conn.close()
        self._workers[rank] = proc
        self._conns[rank] = parent_conn

    def _await(self, expected: str, ranks) -> list[int]:
        """Collect one ack per rank; returns the ranks that died instead."""
        pending = set(ranks)
        dead: list[int] = []
        while pending:
            for r in sorted(pending):
                conn = self._conns[r]
                try:
                    if conn.poll(0.02):
                        msg = conn.recv()
                        pending.discard(r)
                        if msg[0] != expected:
                            dead.append(r)
                        continue
                except (EOFError, OSError):
                    # Pipe closed from the other side: the worker is gone.
                    pending.discard(r)
                    dead.append(r)
                    continue
                if not self._workers[r].is_alive():
                    pending.discard(r)
                    dead.append(r)
            time.sleep(0.0 if not pending else 0.005)
        return dead

    def _broadcast(self, message: tuple, ranks=None) -> None:
        for r in ranks if ranks is not None else range(self.n_ranks):
            self._conns[r].send(message)

    def _recover(self, dead: list[int]) -> None:
        """Respawn dead ranks and rewind everyone to the last committed state."""
        for r in set(dead):
            proc = self._workers[r]
            if proc.is_alive():  # acked something unexpected; treat as lost
                proc.terminate()
            proc.join(timeout=10.0)
            self._conns[r].close()
        self._barrier.reset()
        if self._board is not None:
            self._board.reset()
        self._shared.write_global(*self._snapshot)
        self._exchanges_done = 0
        for r in set(dead):
            self._respawns.inc()
            self._spawn(r)
        still_dead = self._await("ready", set(dead))
        if still_dead:
            raise WorkerPoolError(f"respawned ranks died again: {still_dead}")
        survivors = [r for r in range(self.n_ranks) if r not in set(dead)]
        self._broadcast(("load", self._steps_done), survivors)
        lost = self._await("loaded", survivors)
        if lost:
            raise WorkerPoolError(f"ranks lost during recovery reload: {lost}")

    # ------------------------------------------------------------------- run
    def step(self) -> None:
        """Advance one RK-4 step across all ranks (concurrently)."""
        self._run_steps(1)

    def run(self, steps: int):
        """Integrate ``steps`` steps; returns the gathered
        :class:`~repro.swm.model.RunResult` (same contract as the serial
        model and the lockstep runner)."""
        if self._closed:
            raise WorkerPoolError("pool is closed")
        start_state = self.gather_state()
        self._run_steps(steps)
        self._merge_observability()
        return gathered_run_result(
            self.mesh, start_state, self.gather_state(),
            self.b_cell, self.f_vertex, self.config, steps,
        )

    def advance(self, steps: int) -> None:
        """Advance ``steps`` RK-4 steps without gathering a result.

        The chunked driver for durable runs: the caller interleaves
        ``advance`` with :meth:`gather_state` checkpoints and builds one
        :func:`~repro.parallel.runner.gathered_run_result` at the end.
        """
        self._run_steps(steps)

    def load_state(self, state: State, step: int = 0) -> None:
        """Replace the global state on every rank (resume support).

        Writes ``state`` into the shared segment, rewinds the exchange
        bookkeeping (every buffer of the double-buffered segment gets the
        new state, so buffer selection restarts cleanly at seq 0) and has
        each worker re-slice its local state — the same resynchronization
        the worker-death recovery performs, driven here by a restored
        checkpoint instead of a snapshot.
        """
        if self._closed:
            raise WorkerPoolError("pool is closed")
        self._shared.write_global(state.h, state.u)
        self._exchanges_done = 0
        if self._board is not None:
            self._board.reset()
        self._snapshot = self._shared.read_global()
        self._steps_done = step
        self._broadcast(("load", step))
        lost = self._await("loaded", range(self.n_ranks))
        if lost:
            raise WorkerPoolError(f"ranks lost during state load: {lost}")

    def _run_steps(self, steps: int) -> None:
        if self._closed:
            raise WorkerPoolError("pool is closed")
        if steps <= 0:
            raise ValueError("steps must be positive")
        # A dead worker is a lost halo peer; the respawn budget is the same
        # knob that bounds lost-message retries in the lockstep runner.
        budget = self.config.halo_retries
        attempt = 0
        while True:
            self._broadcast(("steps", steps))
            dead = self._await("ok", range(self.n_ranks))
            if not dead:
                break
            if attempt >= budget:
                self.close()
                raise WorkerPoolError(
                    f"ranks {sorted(set(dead))} failed and the respawn budget "
                    f"({budget} retries) is exhausted"
                )
            attempt += 1
            self._retries.inc()
            self._recover(dead)
        self._steps_done += steps
        # Every exchange of the batch completed on every rank; the final
        # exchange published each rank's accepted state, so the buffer of
        # the last exchange now holds the committed global state.
        self._exchanges_done += self.schedule.exchanges_per_step * steps
        self.exchange_count += self.schedule.exchanges_per_step * steps
        self._snapshot = self._shared.read_global(self._exchanges_done)

    # ------------------------------------------------------------- gathering
    def gather_state(self) -> State:
        """The global state assembled in the shared segment (private copy)."""
        h, u = self._shared.read_global(self._exchanges_done)
        return State(h=h, u=u)

    def _merge_observability(self) -> None:
        """Pull per-worker metrics/spans into the parent registry/tracer."""
        registry = get_registry()
        tracer = get_tracer()
        self._broadcast(("obs",))
        for r in range(self.n_ranks):
            conn = self._conns[r]
            if not conn.poll(self.barrier_timeout):  # pragma: no cover - hang
                continue
            msg = conn.recv()
            if msg[0] != "obs":  # pragma: no cover - protocol error
                continue
            registry.merge_snapshot(msg[1], rank=r)
            tracer.merge_records(msg[2], rank=r)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the workers and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for r in range(self.n_ranks):
            proc, conn = self._workers[r], self._conns[r]
            if proc is None:
                continue
            try:
                if proc.is_alive():
                    conn.send(("stop",))
                    conn.poll(5.0)
            except (BrokenPipeError, OSError):
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._shared.close()
        self._shared.unlink()
        if self._board is not None:
            self._board.close()
            self._board.unlink()

    def __enter__(self) -> "PoolShallowWater":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
