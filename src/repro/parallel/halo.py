"""Halo construction and rank-local meshes.

Each rank owns the cells its partition assigned to it, plus ``halo_layers``
rings of ghost cells (MPAS uses two; we default to three so that the
high-order thickness advection and the APVM potential-vorticity chain are
*fully redundant* on the halo — owned outputs then only require the
prognostic state to be exchanged, exactly like the production code: halo
values of diagnostics are recomputed locally rather than communicated).

A :class:`LocalMesh` is a self-contained restriction of the global mesh to
the local point sets, using the same ``Connectivity`` / ``Metrics`` /
``TriskWeights`` containers so every kernel of :mod:`repro.swm` runs on it
unchanged.  Connectivity entries that point outside the local set (possible
only on the outermost halo ring, whose outputs are never consumed) are
remapped to safe local indices, keeping all arithmetic finite.

Point ordering is deterministic: owned points first (in ascending global
order), then halo points layer by layer — so ``array[:n_owned]`` is always
the owned slice and equals the corresponding global slice bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.connectivity import FILL, Connectivity
from ..mesh.mesh import Mesh
from ..mesh.metrics import Metrics
from ..mesh.trisk import TriskWeights

__all__ = [
    "LocalMesh",
    "build_local_mesh",
    "halo_layers_required",
    "exchange_bytes",
    "ring_halo_indices",
    "schedule_exchange_bytes",
]


def halo_layers_required(thickness_adv_order: int, apvm: bool) -> int:
    """Cell halo depth for fully-redundant halo diagnostics.

    The deepest chains: 4th-order ``h_edge`` read by the TRiSK neighbourhood
    of an owned edge reaches 3 cell layers; the APVM ``pv_edge`` chain
    likewise.  Second-order, APVM-free configurations manage with 2.
    """
    if thickness_adv_order >= 3 or apvm:
        return 3
    return 2


@dataclass(frozen=True, eq=False)
class LocalMesh:
    """One rank's restriction of the global mesh (duck-types ``Mesh``)."""

    rank: int
    connectivity: Connectivity
    metrics: Metrics
    trisk: TriskWeights

    # Local -> global index maps; owned points first.
    cells_global: np.ndarray
    edges_global: np.ndarray
    vertices_global: np.ndarray
    n_owned_cells: int
    n_owned_edges: int
    n_owned_vertices: int

    # Ring id per local point: 0 = owned, k = k-th ghost ring.  Halo edges
    # on the partition boundary carry ring 0 (they touch an owned cell);
    # a ring-limited exchange must still refresh them.
    cell_rings: np.ndarray = None  # type: ignore[assignment]
    edge_rings: np.ndarray = None  # type: ignore[assignment]

    @property
    def nCells(self) -> int:
        return self.connectivity.n_cells

    @property
    def nEdges(self) -> int:
        return self.connectivity.n_edges

    @property
    def nVertices(self) -> int:
        return self.connectivity.n_vertices

    @property
    def maxEdges(self) -> int:
        return self.connectivity.max_edges

    @property
    def radius(self) -> float:
        return self.metrics.radius

    @property
    def n_halo_cells(self) -> int:
        return self.nCells - self.n_owned_cells

    @property
    def n_halo_edges(self) -> int:
        return self.nEdges - self.n_owned_edges


def ring_halo_indices(
    lm: LocalMesh, rings: int
) -> tuple[np.ndarray, np.ndarray]:
    """Local halo indices a depth-``rings`` exchange must refresh.

    Returns ``(cell_idx, edge_idx)``: the halo cells with ring ``<= rings``
    (cells are ring-ordered, so this is a contiguous run starting at
    ``n_owned_cells``) and the halo edges whose nearest adjacent local cell
    sits within ``rings`` — exactly the edge set a depth-``rings`` local
    mesh would contain.  With ``rings`` at or above the built halo depth
    this covers every halo point and the exchange is the full one.
    """
    cr, er = lm.cell_rings, lm.edge_rings
    cell_idx = np.flatnonzero((cr >= 1) & (cr <= rings))
    edge_idx = lm.n_owned_edges + np.flatnonzero(
        er[lm.n_owned_edges:] <= rings
    )
    return cell_idx, edge_idx


def exchange_bytes(local_meshes: "list[LocalMesh]") -> float:
    """Bytes one prognostic halo exchange moves across all ranks.

    Each exchange refreshes the halo values of ``h`` (cells) and ``u``
    (edges) on every rank — the payload the paper's MPI layer ships at each
    red synchronization arrow of Figure 2.  Diagnostics are recomputed
    redundantly and move nothing.
    """
    return 8.0 * sum(
        lm.n_halo_cells + lm.n_halo_edges for lm in local_meshes
    )


def schedule_exchange_bytes(local_meshes: "list[LocalMesh]", schedule) -> float:
    """Bytes one RK step moves across all ranks under a ``HaloSchedule``.

    Counts, for every kept sync point, only the fields it names and only
    the halo points within its ring depth — the payload a comm-avoiding
    exchange actually ships.  The static schedule reduces to
    ``8 * exchange_bytes(local_meshes)`` when the built halo depth matches
    the schedule's ring depth.
    """
    total = 0.0
    for lm in local_meshes:
        per_depth: dict[int, tuple[int, int]] = {}
        for point in schedule.points:
            if point.rings not in per_depth:
                ci, ei = ring_halo_indices(lm, point.rings)
                per_depth[point.rings] = (int(ci.size), int(ei.size))
            n_cells, n_edges = per_depth[point.rings]
            fields = point.fields
            total += 8.0 * (
                (n_cells if "h" in fields else 0)
                + (n_edges if "u" in fields else 0)
            )
    return total


def _halo_rings(mesh: Mesh, owned: np.ndarray, layers: int) -> list[np.ndarray]:
    """Successive rings of ghost cells around the owned set."""
    conn = mesh.connectivity
    known = np.zeros(mesh.nCells, dtype=bool)
    known[owned] = True
    frontier = owned
    rings: list[np.ndarray] = []
    for _ in range(layers):
        neigh = conn.cellsOnCell[frontier]
        neigh = neigh[neigh >= 0]
        new = np.unique(neigh[~known[neigh]])
        rings.append(new)
        known[new] = True
        frontier = new
    return rings


def build_local_mesh(
    mesh: Mesh, owner: np.ndarray, rank: int, halo_layers: int = 3
) -> LocalMesh:
    """Restrict ``mesh`` to the cells owned by ``rank`` plus its halo."""
    conn, met, tri = mesh.connectivity, mesh.metrics, mesh.trisk

    owned_cells = np.flatnonzero(owner == rank)
    if owned_cells.size == 0:
        raise ValueError(f"rank {rank} owns no cells")
    rings = _halo_rings(mesh, owned_cells, halo_layers)
    cells_global = np.concatenate([owned_cells, *rings])

    # Edge/vertex ownership follows the first adjacent cell, giving every
    # edge/vertex exactly one owner consistently across ranks.
    edge_owner = owner[conn.cellsOnEdge[:, 0]]
    vertex_owner = owner[conn.cellsOnVertex[:, 0]]

    def local_points(on_cell: np.ndarray, point_owner: np.ndarray) -> tuple[np.ndarray, int]:
        pts = on_cell[cells_global]
        pts = np.unique(pts[pts >= 0])
        is_owned = point_owner[pts] == rank
        ordered = np.concatenate([pts[is_owned], pts[~is_owned]])
        return ordered, int(np.count_nonzero(is_owned))

    edges_global, n_owned_edges = local_points(conn.edgesOnCell, edge_owner)
    vertices_global, n_owned_vertices = local_points(conn.verticesOnCell, vertex_owner)

    # Ring ids.  Cells are ring-ordered by construction; an edge's ring is
    # the ring of its nearest adjacent local cell (absent second cells on
    # the outermost ring count as infinitely far).
    ring_of_global_cell = np.full(mesh.nCells, np.iinfo(np.int64).max, dtype=np.int64)
    ring_of_global_cell[owned_cells] = 0
    for depth, ring in enumerate(rings, start=1):
        ring_of_global_cell[ring] = depth
    cell_rings = ring_of_global_cell[cells_global]
    edge_cell_rings = np.where(
        conn.cellsOnEdge[edges_global] >= 0,
        ring_of_global_cell[np.clip(conn.cellsOnEdge[edges_global], 0, None)],
        np.iinfo(np.int64).max,
    )
    edge_rings = np.min(edge_cell_rings, axis=1)

    n_cells = cells_global.size
    n_edges = edges_global.size
    n_vertices = vertices_global.size

    cell_g2l = np.full(mesh.nCells, -1, dtype=np.int64)
    cell_g2l[cells_global] = np.arange(n_cells)
    edge_g2l = np.full(mesh.nEdges, -1, dtype=np.int64)
    edge_g2l[edges_global] = np.arange(n_edges)
    vertex_g2l = np.full(mesh.nVertices, -1, dtype=np.int64)
    vertex_g2l[vertices_global] = np.arange(n_vertices)

    def remap(table: np.ndarray, g2l: np.ndarray, fallback: np.ndarray) -> np.ndarray:
        """Remap a global index table to local ids, FILL-preserving.

        ``fallback`` (broadcastable to ``table``'s shape) substitutes
        out-of-partition references; it must itself be a valid local id.
        """
        out = np.where(table >= 0, g2l[np.clip(table, 0, None)], FILL)
        missing = (table >= 0) & (out < 0)
        if np.any(missing):
            fb = np.broadcast_to(fallback, table.shape)
            out = np.where(missing, fb, out)
        return out

    # ---------------------------------------------------------------- cells
    loc = np.arange(n_cells)[:, None]
    edgesOnCell = remap(conn.edgesOnCell[cells_global], edge_g2l, 0)
    verticesOnCell = remap(conn.verticesOnCell[cells_global], vertex_g2l, 0)
    cellsOnCell = remap(conn.cellsOnCell[cells_global], cell_g2l, loc)

    # ---------------------------------------------------------------- edges
    coe_global = conn.cellsOnEdge[edges_global]
    coe = np.where(coe_global >= 0, cell_g2l[np.clip(coe_global, 0, None)], FILL)
    # A local edge always touches at least one local cell; a missing second
    # cell (outermost ring) falls back to the present one.
    have0 = coe[:, 0] >= 0
    have1 = coe[:, 1] >= 0
    coe[:, 0] = np.where(have0, coe[:, 0], coe[:, 1])
    coe[:, 1] = np.where(have1, coe[:, 1], coe[:, 0])
    if np.any(coe < 0):
        raise AssertionError("local edge with no local cell")
    verticesOnEdge = remap(conn.verticesOnEdge[edges_global], vertex_g2l, 0)

    # -------------------------------------------------------------- vertices
    vloc = np.arange(n_vertices)[:, None]
    cov_rows = conn.cellsOnVertex[vertices_global]
    cov = np.where(cov_rows >= 0, cell_g2l[np.clip(cov_rows, 0, None)], FILL)
    # Fallback for missing cells: the first local cell on the vertex.
    first_local = np.max(cov, axis=1)  # at least one is local (>= 0)
    if np.any(first_local < 0):
        raise AssertionError("local vertex with no local cell")
    cov = np.where(cov >= 0, cov, first_local[:, None])
    eov_rows = conn.edgesOnVertex[vertices_global]
    eov = np.where(eov_rows >= 0, edge_g2l[np.clip(eov_rows, 0, None)], FILL)
    first_local_e = np.max(eov, axis=1)
    eov = np.where(eov >= 0, eov, first_local_e[:, None])

    # ------------------------------------------------------------- TRiSK
    eoe_rows = tri.edgesOnEdge[edges_global]
    eoe = np.where(eoe_rows >= 0, edge_g2l[np.clip(eoe_rows, 0, None)], FILL)
    eloc = np.arange(n_edges)[:, None]
    missing_eoe = (eoe_rows >= 0) & (eoe < 0)
    eoe = np.where(missing_eoe, np.broadcast_to(eloc, eoe.shape), eoe)

    local_conn = Connectivity(
        n_cells=n_cells,
        n_edges=n_edges,
        n_vertices=n_vertices,
        max_edges=conn.max_edges,
        nEdgesOnCell=conn.nEdgesOnCell[cells_global],
        verticesOnCell=verticesOnCell,
        edgesOnCell=edgesOnCell,
        cellsOnCell=cellsOnCell,
        cellsOnEdge=coe,
        verticesOnEdge=verticesOnEdge,
        cellsOnVertex=cov,
        edgesOnVertex=eov,
        edgeSignOnCell=conn.edgeSignOnCell[cells_global],
        edgeSignOnVertex=conn.edgeSignOnVertex[vertices_global],
    )
    local_metrics = Metrics(
        radius=met.radius,
        xCell=met.xCell[cells_global],
        xEdge=met.xEdge[edges_global],
        xVertex=met.xVertex[vertices_global],
        lonCell=met.lonCell[cells_global],
        latCell=met.latCell[cells_global],
        lonEdge=met.lonEdge[edges_global],
        latEdge=met.latEdge[edges_global],
        lonVertex=met.lonVertex[vertices_global],
        latVertex=met.latVertex[vertices_global],
        areaCell=met.areaCell[cells_global],
        areaTriangle=met.areaTriangle[vertices_global],
        kiteAreasOnVertex=met.kiteAreasOnVertex[vertices_global],
        dcEdge=met.dcEdge[edges_global],
        dvEdge=met.dvEdge[edges_global],
        edgeNormal=met.edgeNormal[edges_global],
        edgeTangent=met.edgeTangent[edges_global],
        angleEdge=met.angleEdge[edges_global],
    )
    local_trisk = TriskWeights(
        nEdgesOnEdge=tri.nEdgesOnEdge[edges_global],
        edgesOnEdge=eoe,
        weightsOnEdge=tri.weightsOnEdge[edges_global],
    )
    return LocalMesh(
        rank=rank,
        connectivity=local_conn,
        metrics=local_metrics,
        trisk=local_trisk,
        cells_global=cells_global,
        edges_global=edges_global,
        vertices_global=vertices_global,
        n_owned_cells=int(owned_cells.size),
        n_owned_edges=n_owned_edges,
        n_owned_vertices=n_owned_vertices,
        cell_rings=cell_rings,
        edge_rings=edge_rings,
    )
