"""Distributed substrate: partitioning, halos, functional multi-rank runs,
and the strong/weak scaling models (Figures 8 and 9)."""

from .halo import LocalMesh, build_local_mesh, halo_layers_required
from .partition import PartitionQuality, partition_cells, partition_quality
from .runner import DecomposedShallowWater
from .scaling import (
    ScalingPoint,
    halo_exchange_seconds,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "LocalMesh",
    "build_local_mesh",
    "halo_layers_required",
    "PartitionQuality",
    "partition_cells",
    "partition_quality",
    "DecomposedShallowWater",
    "ScalingPoint",
    "halo_exchange_seconds",
    "parallel_efficiency",
    "strong_scaling",
    "weak_scaling",
]
