"""Distributed substrate: partitioning, halos, functional multi-rank runs,
a shared-memory process pool, and the strong/weak scaling models
(Figures 8 and 9)."""

from .halo import LocalMesh, build_local_mesh, halo_layers_required
from .partition import PartitionQuality, partition_cells, partition_quality
from .pool import PoolShallowWater, WorkerPoolError
from .runner import DecomposedShallowWater, gathered_run_result
from .shm import SharedState
from .scaling import (
    ScalingPoint,
    halo_exchange_seconds,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "LocalMesh",
    "build_local_mesh",
    "halo_layers_required",
    "PartitionQuality",
    "partition_cells",
    "partition_quality",
    "DecomposedShallowWater",
    "gathered_run_result",
    "PoolShallowWater",
    "WorkerPoolError",
    "SharedState",
    "ScalingPoint",
    "halo_exchange_seconds",
    "parallel_efficiency",
    "strong_scaling",
    "weak_scaling",
]
