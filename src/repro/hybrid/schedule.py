"""Hybrid schedulers: kernel-level (Fig. 2) and pattern-level (Fig. 4b).

Both schedulers take the data-flow diagram plus per-node device times and
produce an :class:`~repro.hybrid.executor.Assignment`:

* :func:`kernel_level_assignment` — the Section II-C design: whole kernels
  are placed on one device each.  The placement follows the paper's
  flowchart (heavy stencil kernels on the accelerator, the light local
  kernels and everything around MPI on the host), or a greedy
  earliest-finish-time choice when ``greedy=True``.
* :func:`pattern_level_assignment` — the paper's contribution: individual
  pattern instances are placed by earliest finish time, and *splittable*
  instances (the adjustable boxes of Fig. 4b) are divided fractionally so
  both devices finish together, which is what lifts the speedup from ~6x to
  ~8.3x in Figure 7.
"""

from __future__ import annotations

from ..dataflow.graph import DataFlowGraph
from ..machine.cost import CostModel
from .executor import Assignment, Placement

__all__ = [
    "node_times",
    "cpu_only_assignment",
    "kernel_level_assignment",
    "pattern_level_assignment",
    "static_split_assignment",
    "balanced_fraction",
]

#: Figure 2 placement: the two stencil-heavy kernels go to the accelerator.
_FIG2_MIC_KERNELS = frozenset({"compute_tend", "compute_solve_diagnostics"})


def node_times(
    dfg: DataFlowGraph,
    mesh_counts,
    cpu_model: CostModel,
    mic_model: CostModel,
) -> dict[str, dict[str, float]]:
    """Per-node execution time on each device."""
    times: dict[str, dict[str, float]] = {}
    for node in dfg.compute_nodes():
        inst = dfg.instance(node)
        n = inst.output_point.count(mesh_counts)
        times[node] = {
            "cpu": cpu_model.instance_time(inst, n),
            "mic": mic_model.instance_time(inst, n),
        }
    return times


def cpu_only_assignment(dfg: DataFlowGraph) -> Assignment:
    """Everything on the host (the multithreaded-CPU reference)."""
    return {node: Placement("cpu") for node in dfg.compute_nodes()}


def kernel_level_assignment(
    dfg: DataFlowGraph,
    times: dict[str, dict[str, float]] | None = None,
    greedy: bool = False,
) -> Assignment:
    """Whole-kernel placement (the Figure 2 design).

    With ``greedy=True`` kernels are assigned by earliest finish time over a
    dependency-respecting simulation; otherwise the paper's static placement
    is used.  Either way the granularity is the kernel, which is what limits
    the load balance (Section II-C: "the predictable load imbalance between
    the CPU and MIC sides will also drop the performance on the whole").
    """
    if not greedy:
        return {
            node: Placement(
                "mic" if dfg.instance(node).kernel in _FIG2_MIC_KERNELS else "cpu"
            )
            for node in dfg.compute_nodes()
        }
    if times is None:
        raise ValueError("greedy kernel placement needs per-node times")
    # Group nodes into kernel occurrences (stage prefix + kernel name).
    groups: dict[tuple[str, str], list[str]] = {}
    for node in dfg.order:
        inst = dfg.instance(node)
        stage = node.split(":", 1)[0]
        groups.setdefault((stage, inst.kernel), []).append(node)
    avail = {"cpu": 0.0, "mic": 0.0}
    finish: dict[str, float] = {}
    assignment: Assignment = {}
    for (stage, kernel), nodes in groups.items():
        # Kernel is ready when all external dependencies finished.
        node_set = set(nodes)
        ready = 0.0
        for node in nodes:
            for p in dfg.predecessors_compute(node):
                if p not in node_set:
                    ready = max(ready, finish.get(p, 0.0))
        best_dev, best_end = None, float("inf")
        for dev in ("cpu", "mic"):
            t = sum(times[n][dev] for n in nodes)
            end = max(avail[dev], ready) + t
            if end < best_end:
                best_dev, best_end = dev, end
        avail[best_dev] = best_end
        running = max(avail[best_dev] - sum(times[n][best_dev] for n in nodes), ready)
        for node in nodes:
            assignment[node] = Placement(best_dev)
            running += times[node][best_dev]
            finish[node] = running
    return assignment


def pattern_level_assignment(
    dfg: DataFlowGraph,
    times: dict[str, dict[str, float]],
    allow_splits: bool = True,
    min_split_gain: float = 0.15,
) -> Assignment:
    """Instance-granularity placement with adjustable splits (Figure 4b).

    Earliest-finish-time list scheduling over the program order; for
    splittable instances the cpu fraction ``f`` is chosen so both devices
    finish simultaneously:

        avail_cpu + f * t_cpu = avail_mic + (1 - f) * t_mic

    A split is only taken when it beats the best single-device finish time by
    ``min_split_gain`` (relative) — redundant transfers make tiny splits
    counterproductive, mirroring the paper's "redundant computations might be
    introduced ... without destroying the completeness of the pattern
    structure".
    """
    avail = {"cpu": 0.0, "mic": 0.0}
    finish: dict[str, float] = {}
    assignment: Assignment = {}
    for node in dfg.order:
        inst = dfg.instance(node)
        ready = max(
            (finish.get(p, 0.0) for p in dfg.predecessors_compute(node)),
            default=0.0,
        )
        # Single-device candidates.
        candidates: list[tuple[float, Placement, dict[str, float]]] = []
        for dev in ("cpu", "mic"):
            start = max(avail[dev], ready)
            end = start + times[node][dev]
            new_avail = dict(avail)
            new_avail[dev] = end
            candidates.append((end, Placement(dev), new_avail))
        best_end, best_placement, best_avail = min(candidates, key=lambda c: c[0])

        if allow_splits and inst.splittable:
            t_cpu, t_mic = times[node]["cpu"], times[node]["mic"]
            s_cpu = max(avail["cpu"], ready)
            s_mic = max(avail["mic"], ready)
            denom = t_cpu + t_mic
            if denom > 0.0:
                f = (s_mic - s_cpu + t_mic) / denom
                if 0.02 < f < 0.98:
                    end = s_cpu + f * t_cpu  # == s_mic + (1 - f) * t_mic
                    if end < best_end * (1.0 - min_split_gain):
                        best_end = end
                        best_placement = Placement("split", cpu_fraction=f)
                        best_avail = {"cpu": end, "mic": end}
        assignment[node] = best_placement
        avail = best_avail
        finish[node] = best_end
    return assignment


def balanced_fraction(
    dfg: DataFlowGraph, times: dict[str, dict[str, float]]
) -> float:
    """CPU share that equalizes total work: ``f* = T_mic / (T_cpu + T_mic)``.

    With every pattern split at ``f*``, both devices carry the same wall time
    per stage — the load-balance objective of the adjustable design.
    """
    t_cpu = sum(times[n]["cpu"] for n in dfg.compute_nodes())
    t_mic = sum(times[n]["mic"] for n in dfg.compute_nodes())
    if t_cpu + t_mic <= 0.0:
        return 0.5
    return min(0.95, max(0.05, t_mic / (t_cpu + t_mic)))


def static_split_assignment(
    dfg: DataFlowGraph,
    times: dict[str, dict[str, float]],
    fraction: float | None = None,
) -> Assignment:
    """Split *every* pattern at one global CPU fraction (Fig. 4b taken to its
    limit): the host and device each own a fixed share of the mesh, so
    consecutive patterns exchange only thin boundary bands over PCIe.

    This is the de-facto host/device domain decomposition that the paper's
    adjustable boxes implement; the fraction defaults to the work-balancing
    :func:`balanced_fraction`.
    """
    if fraction is None:
        fraction = balanced_fraction(dfg, times)
    return {
        node: Placement("split", cpu_fraction=fraction)
        for node in dfg.compute_nodes()
    }
