"""Discrete-event execution of a data-flow graph on a simulated hybrid node.

The executor walks the data-flow diagram in program order and produces a
:class:`Timeline`: per-device busy intervals, host-device transfers and halo
exchanges.  Semantics follow Section IV of the paper:

* Mesh (connectivity) data is device-resident from the start (Section IV-A),
  so only *variables* move across PCIe, and only when a consumer needs data
  it does not hold.  Transfers overlap with compute (duplex link, separate
  upload/download channels).
* A *split* pattern (the adjustable light-yellow boxes of Figure 4b) runs a
  CPU fraction ``f`` on the host and ``1 - f`` on the device, partitioning
  the output points.  Consecutive split patterns with similar fractions form
  a de-facto host/device domain decomposition: each side only needs a thin
  *boundary band* of the other side's data (the "redundant computations" of
  Section III-C), not the whole complement.  A full copy is materialized on
  one device only when a non-split consumer runs there.
* Halo exchanges are MPI operations driven by the host; variables produced
  (partly) on the accelerator are downloaded first, and device copies are
  refreshed afterwards (the red synchronization arrows of Figures 2 and 4).

Variable residency is tracked explicitly: per variable, either full copies
on one/both devices (with availability times) or a split (fraction + per-side
times).  All transfer volumes derive from the mesh point counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from ..dataflow.graph import DataFlowGraph
from ..machine.interconnect import TransferModel
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import Tracer, get_tracer
from ..patterns.classify import point_of
from ..resilience.faults import FaultInjected, fault_site
from ..resilience.recovery import active_recovery_policy

__all__ = ["Placement", "Assignment", "Task", "Timeline", "HybridExecutor", "DEVICES"]

DEVICES = ("cpu", "mic")


@dataclass(frozen=True)
class Placement:
    """Where one node runs: a single device, or split across both."""

    device: str
    cpu_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.device not in (*DEVICES, "split"):
            raise ValueError(f"unknown device {self.device!r}")
        if self.device == "split" and not 0.0 < self.cpu_fraction < 1.0:
            raise ValueError("split placement needs 0 < cpu_fraction < 1")


Assignment = dict  # node name -> Placement


@dataclass(frozen=True)
class Task:
    """One scheduled event on the timeline."""

    name: str
    resource: str  # "cpu", "mic", "pcie_up", "pcie_down", "net"
    start: float
    end: float
    kind: str  # "compute", "transfer", "halo"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """The executed schedule of one data-flow graph pass."""

    tasks: list[Task] = field(default_factory=list)
    node_finish: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks), default=0.0)

    def busy(self, resource: str) -> float:
        return sum(t.duration for t in self.tasks if t.resource == resource)

    def transfer_time(self) -> float:
        """Total PCIe channel busy time."""
        return self.busy("pcie_up") + self.busy("pcie_down")

    def validate_no_overlap(self) -> None:
        """No two tasks may overlap on one resource."""
        by_res: dict[str, list[Task]] = {}
        for t in self.tasks:
            by_res.setdefault(t.resource, []).append(t)
        for res, tasks in by_res.items():
            tasks.sort(key=lambda t: t.start)
            for a, b in zip(tasks, tasks[1:]):
                if b.start < a.end - 1e-12:
                    raise ValueError(
                        f"overlap on {res}: {a.name}[{a.start:.2e},{a.end:.2e}] vs "
                        f"{b.name}[{b.start:.2e},{b.end:.2e}]"
                    )

    def validate_dependencies(self, dfg: DataFlowGraph) -> None:
        """Every compute/halo node must finish before its dependents start."""
        starts: dict[str, float] = {}
        for t in self.tasks:
            if t.kind in ("compute", "halo"):
                key = t.name.split("[")[0]
                starts[key] = min(starts.get(key, float("inf")), t.start)
        for node, finish in self.node_finish.items():
            for succ in dfg.graph.successors(node):
                if succ in starts and starts[succ] < self.node_finish[node] - 1e-12:
                    # Direct value flow may be satisfied by a partial result
                    # only for split->split chains; those are checked by the
                    # executor's residency bookkeeping, so only same-device
                    # full-value flows are asserted here.
                    raise ValueError(
                        f"{succ} starts at {starts[succ]:.3e} before its "
                        f"producer {node} finishes at {finish:.3e}"
                    )

    def gantt(self, width: int = 72) -> str:
        """Text Gantt chart for reports (# compute, - transfer, = halo)."""
        if not self.tasks:
            return "(empty timeline)"
        span = self.makespan
        lines = []
        for res in ("cpu", "mic", "pcie_up", "pcie_down", "net"):
            row = [" "] * width
            for t in self.tasks:
                if t.resource != res:
                    continue
                i0 = int(t.start / span * (width - 1))
                i1 = max(i0 + 1, int(math.ceil(t.end / span * (width - 1))))
                ch = {"compute": "#", "transfer": "-", "halo": "="}[t.kind]
                for i in range(i0, min(i1, width)):
                    row[i] = ch
            lines.append(f"{res:9s}|{''.join(row)}|")
        lines.append(f"makespan: {span * 1e3:.3f} ms")
        return "\n".join(lines)


@dataclass
class _Residency:
    """Where one variable's current value lives."""

    full: dict[str, float] = field(default_factory=dict)  # device -> ready time
    split_fraction: float | None = None  # CPU share, when split-resident
    split_ready: dict[str, float] = field(default_factory=dict)
    band_ready: dict[str, float] = field(default_factory=dict)  # cached bands


class HybridExecutor:
    """Executes a data-flow graph under an assignment, producing a timeline.

    Parameters
    ----------
    dfg : DataFlowGraph
    node_times : dict
        ``node_times[node][device]`` — seconds to run the whole node there.
    mesh_counts : object with nCells/nEdges/nVertices
        Sizes the per-variable transfer volumes.
    transfer : TransferModel
        The PCIe link (full-duplex: independent up/down channels).
    halo_time : float
        Seconds per halo-exchange node (0 for single-process runs).
    tracer, registry : optional
        Observability sinks; default to the process-wide ones.  When the
        tracer is enabled, every executed run emits its timeline as
        simulated spans (one track per model resource) tagged with the
        pattern id of each compute task; split fractions and PCIe traffic
        land in the registry either way.
    """

    def __init__(
        self,
        dfg: DataFlowGraph,
        node_times: dict[str, dict[str, float]],
        mesh_counts,
        transfer: TransferModel,
        halo_time: float = 0.0,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.dfg = dfg
        self.node_times = node_times
        self.mesh_counts = mesh_counts
        self.transfer = transfer
        self.halo_time = halo_time
        self.tracer = tracer
        self.registry = registry
        self._sim_offset = 0.0

    # ------------------------------------------------------------------ util
    def _var_bytes(self, variable: str) -> float:
        return 8.0 * point_of(variable).count(self.mesh_counts)

    def _band_fraction(self, variable: str) -> float:
        """Boundary band of a host/device split, as a fraction of the field.

        A bisection of ``n`` quasi-uniform points has ~``4 * sqrt(n)``
        boundary points; two halo-deep bands cover the redundant computation
        the split needs.
        """
        n = point_of(variable).count(self.mesh_counts)
        if n <= 0:
            return 0.0
        return min(1.0, 8.0 * math.sqrt(n) / n)

    # ---------------------------------------------------------------- observe
    def _record(self, assignment: Assignment, timeline: Timeline) -> None:
        """Emit the executed timeline into the observability layer."""
        registry = self.registry if self.registry is not None else get_registry()
        for node, placement in assignment.items():
            if placement.device == "split":
                registry.gauge(
                    "hybrid.split.cpu_fraction", node=node
                ).set(placement.cpu_fraction)
        for kind in ("compute", "transfer", "halo"):
            n = sum(1 for t in timeline.tasks if t.kind == kind)
            if n:
                registry.counter("hybrid.tasks", kind=kind).inc(n)

        tracer = self.tracer if self.tracer is not None else get_tracer()
        if not tracer.enabled:
            return
        base = self._sim_offset
        for t in timeline.tasks:
            tags: dict = {"resource": t.resource, "task": t.kind}
            if t.kind == "compute":
                node = t.name.split("[")[0]
                inst = self.dfg.instance(node)
                tags.update(
                    pattern=inst.label, kind=inst.kind_letter, kernel=inst.kernel
                )
            tracer.add_span(
                t.name, base + t.start, base + t.end, category="sim", **tags
            )
        # Pad so consecutive runs (autotune trials) do not visually abut.
        self._sim_offset = base + timeline.makespan * 1.05

    # ------------------------------------------------------------------ run
    def run(self, assignment: Assignment) -> Timeline:
        dfg = self.dfg
        timeline = Timeline()
        avail = {"cpu": 0.0, "mic": 0.0, "pcie_up": 0.0, "pcie_down": 0.0, "net": 0.0}
        res: dict[str, _Residency] = {}
        registry = self.registry if self.registry is not None else get_registry()

        def residency(var: str) -> _Residency:
            r = res.get(var)
            if r is None:
                # Stage inputs are resident everywhere at t = 0 (the one-time
                # initial upload of Section IV-A).
                r = _Residency(full={"cpu": 0.0, "mic": 0.0})
                res[var] = r
            return r

        def xfer(var_label: str, n_bytes: float, dst: str, earliest: float) -> float:
            """Schedule a PCIe transfer toward ``dst``; return arrival time.

            Each transfer is one ``hybrid.transfer`` fault site (a flaky
            PCIe exchange).  A faulted transfer is rescheduled up to
            ``RecoveryPolicy.transfer_retries`` times; the failed attempt
            occupies its channel for the full duration — like a wire-level
            retry would — and its traffic is accounted separately as
            ``resilience.transfer.wasted_bytes``.
            """
            if n_bytes <= 0.0:
                return earliest
            channel = "pcie_up" if dst == "mic" else "pcie_down"
            dur = self.transfer.time(n_bytes)
            start = max(avail[channel], earliest)
            attempt = 0
            while True:
                try:
                    fault_site("hybrid.transfer", dst=dst)
                    break
                except FaultInjected:
                    if attempt >= active_recovery_policy().transfer_retries:
                        raise
                    end = start + dur
                    avail[channel] = end
                    timeline.tasks.append(
                        Task(f"xfer!{var_label}->{dst}", channel, start, end, "transfer")
                    )
                    registry.counter(
                        "resilience.recovery.retry", site="hybrid.transfer"
                    ).inc()
                    registry.counter(
                        "resilience.transfer.wasted_bytes", channel=channel
                    ).inc(n_bytes)
                    start = end
                    attempt += 1
            registry.counter("hybrid.pcie.bytes", channel=channel).inc(n_bytes)
            end = start + dur
            avail[channel] = end
            timeline.tasks.append(
                Task(f"xfer:{var_label}->{dst}", channel, start, end, "transfer")
            )
            return end

        def other(dev: str) -> str:
            return "mic" if dev == "cpu" else "cpu"

        def need_full(var: str, dev: str) -> float:
            """Time when the complete current value of ``var`` is on ``dev``."""
            r = residency(var)
            if dev in r.full:
                return r.full[dev]
            if r.split_fraction is not None:
                src = other(dev)
                frac_missing = (
                    1.0 - r.split_fraction if dev == "cpu" else r.split_fraction
                )
                ready_src = r.split_ready[src]
                own_ready = r.split_ready[dev]
                end = xfer(var, self._var_bytes(var) * frac_missing, dev, ready_src)
                t = max(own_ready, end)
                r.full[dev] = t
                return t
            # Full copy elsewhere: move it over.
            src, src_time = min(r.full.items(), key=lambda kv: kv[1])
            end = xfer(var, self._var_bytes(var), dev, src_time)
            r.full[dev] = end
            return end

        def need_share(var: str, dev: str, fraction_cpu: float) -> float:
            """Time when ``dev``'s share (+ boundary band) of ``var`` is there."""
            r = residency(var)
            if dev in r.full:
                return r.full[dev]
            if r.split_fraction is not None:
                if dev in r.band_ready:
                    return r.band_ready[dev]
                # Matching decomposition: only the boundary band moves.
                mismatch = abs(r.split_fraction - fraction_cpu)
                frac = min(1.0, self._band_fraction(var) + mismatch)
                src = other(dev)
                end = xfer(
                    f"{var}~band", self._var_bytes(var) * frac, dev, r.split_ready[src]
                )
                t = max(r.split_ready[dev], end)
                r.band_ready[dev] = t
                return t
            # Full copy on the other device: fetch this side's share + band.
            src, src_time = min(r.full.items(), key=lambda kv: kv[1])
            share = fraction_cpu if dev == "cpu" else 1.0 - fraction_cpu
            frac = min(1.0, share + self._band_fraction(var))
            end = xfer(var, self._var_bytes(var) * frac, dev, src_time)
            return end

        def produce_full(var: str, dev: str, when: float) -> None:
            res[var] = _Residency(full={dev: when})

        def produce_split(var: str, f: float, t_cpu: float, t_mic: float) -> None:
            res[var] = _Residency(
                split_fraction=f, split_ready={"cpu": t_cpu, "mic": t_mic}
            )

        for node in nx.topological_sort(dfg.graph):
            data = dfg.graph.nodes[node]
            kind = data["kind"]
            if kind == "source":
                for _, _, edata in dfg.graph.out_edges(node, data=True):
                    residency(edata["variable"])
                continue

            in_vars = sorted(
                {e["variable"] for _, _, e in dfg.graph.in_edges(node, data=True)}
            )

            if kind == "halo":
                deps = [need_full(v, "cpu", ) for v in in_vars]
                start = max([avail["net"], *deps]) if deps else avail["net"]
                end = start + self.halo_time
                avail["net"] = end
                timeline.tasks.append(Task(node, "net", start, end, "halo"))
                timeline.node_finish[node] = end
                for var in data["variables"]:
                    produce_full(var, "cpu", end)
                continue

            inst = data["instance"]
            placement: Placement = assignment[node]
            out_vars = list(inst.outputs)

            if placement.device in DEVICES:
                dev = placement.device
                deps = [need_full(v, dev) for v in in_vars]
                start = max([avail[dev], *deps]) if deps else avail[dev]
                end = start + self.node_times[node][dev]
                avail[dev] = end
                timeline.tasks.append(Task(node, dev, start, end, "compute"))
                timeline.node_finish[node] = end
                for var in out_vars:
                    produce_full(var, dev, end)
            else:
                f = placement.cpu_fraction
                ends: dict[str, float] = {}
                for dev, frac in (("cpu", f), ("mic", 1.0 - f)):
                    deps = [need_share(v, dev, f) for v in in_vars]
                    start = max([avail[dev], *deps]) if deps else avail[dev]
                    end = start + frac * self.node_times[node][dev]
                    avail[dev] = end
                    timeline.tasks.append(
                        Task(f"{node}[{dev}]", dev, start, end, "compute")
                    )
                    ends[dev] = end
                timeline.node_finish[node] = max(ends.values())
                for var in out_vars:
                    produce_split(var, f, ends["cpu"], ends["mic"])

        self._record(assignment, timeline)
        return timeline
