"""End-to-end step-time models: the engine behind Figures 6-9.

Combines the pattern catalog, the data-flow diagram, the device cost models
and the hybrid schedulers into per-time-step execution times for:

* the original serial CPU code (the Figure 7 baseline),
* the kernel-level hybrid design (Figure 2),
* the pattern-driven hybrid design (Figure 4b),

optionally with MPI decomposition (halo sizes + exchange times) for the
strong/weak scaling studies of Figures 8 and 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dataflow.build import build_step_graph
from ..machine.cost import CostModel
from ..machine.interconnect import TransferModel
from ..machine.optimizations import cpu_profiles, mic_optimization_ladder
from ..machine.counts import MeshCounts
from ..machine.spec import PAPER_CLUSTER, PAPER_NODE, ClusterSpec
from ..swm.config import SWConfig
from .executor import HybridExecutor, Timeline
from .schedule import (
    cpu_only_assignment,
    kernel_level_assignment,
    node_times,
    pattern_level_assignment,
    static_split_assignment,
)

__all__ = [
    "LocalProblem",
    "decompose",
    "serial_step_time",
    "hybrid_step_time",
    "StepTimes",
    "model_step_times",
]

#: Configuration used for all performance modelling: high-order thickness
#: advection + APVM activates every pattern of Table I.
def _perf_config() -> SWConfig:
    return SWConfig(dt=1.0, thickness_adv_order=4)


@dataclass(frozen=True)
class LocalProblem:
    """Per-process share of a decomposed mesh.

    ``nCells`` etc. include the halo (the process computes owned points but
    stores/reads halo copies); ``halo_cells`` sizes the exchange messages.
    """

    owned_cells: int
    halo_cells: int
    name: str = ""

    @property
    def nCells(self) -> int:
        return self.owned_cells + self.halo_cells

    @property
    def nEdges(self) -> int:
        return 3 * self.nCells - 6 if self.halo_cells == 0 else 3 * self.nCells

    @property
    def nVertices(self) -> int:
        return 2 * self.nCells - 4 if self.halo_cells == 0 else 2 * self.nCells


def decompose(total_cells: int, n_procs: int, halo_layers: int = 2) -> LocalProblem:
    """Halo-aware local problem of one process in a P-way partition.

    A quasi-uniform spherical partition of ``m`` cells is roughly disk-shaped
    with ``~3.5 * sqrt(m)`` boundary cells per layer (hexagonal perimeter
    scaling), so the halo is ``halo_layers`` such rings.  For ``P = 1`` the
    sphere is closed and there is no halo.
    """
    owned = int(math.ceil(total_cells / n_procs))
    if n_procs == 1:
        return LocalProblem(owned_cells=owned, halo_cells=0)
    ring = 3.5 * math.sqrt(owned)
    return LocalProblem(owned_cells=owned, halo_cells=int(math.ceil(ring * halo_layers)))


def _cpu_serial_model() -> CostModel:
    return CostModel(PAPER_NODE.cpu, cpu_profiles()["serial"])


def _cpu_parallel_model() -> CostModel:
    return CostModel(PAPER_NODE.cpu, cpu_profiles(PAPER_NODE.cpu.cores)["openmp"])


def _mic_model() -> CostModel:
    return CostModel(PAPER_NODE.accelerator, mic_optimization_ladder()[-1].profile)


def serial_step_time(counts, halo_time: float = 0.0) -> float:
    """Time per step of the original (single-core, pure-MPI) code.

    One full RK-4 step = the sum of all pattern instances over the four
    substages, plus the per-substage halo exchanges (two per substage, as in
    Figure 2, for multi-process runs).
    """
    dfg = build_step_graph(_perf_config())
    model = _cpu_serial_model()
    total = 0.0
    for node in dfg.compute_nodes():
        inst = dfg.instance(node)
        total += model.instance_time(inst, inst.output_point.count(counts))
    total += halo_time * len(dfg.halo_nodes())
    return total


def hybrid_step_time(
    counts,
    mode: str = "pattern",
    halo_time: float = 0.0,
    cluster: ClusterSpec = PAPER_CLUSTER,
    return_timeline: bool = False,
) -> "float | tuple[float, Timeline]":
    """Time per step of a hybrid design on one CPU+MIC process.

    ``mode``: ``"pattern"`` (Fig. 4b), ``"kernel"`` (Fig. 2) or ``"cpu"``
    (multithreaded host only).
    """
    dfg = build_step_graph(_perf_config())
    times = node_times(dfg, counts, _cpu_parallel_model(), _mic_model())
    if mode == "pattern":
        # The Fig. 4b adjustable design: EFT placement with the catalog's
        # splittable instances divided so both devices finish together.
        assignments = [pattern_level_assignment(dfg, times, min_split_gain=0.0)]
    elif mode == "split-all":
        # Ablation: every pattern split at one balanced fraction (a full
        # host/device domain decomposition).
        assignments = [static_split_assignment(dfg, times)]
    elif mode == "kernel":
        assignments = [kernel_level_assignment(dfg, times, greedy=False)]
    elif mode == "cpu":
        assignments = [cpu_only_assignment(dfg)]
    else:
        raise ValueError(f"unknown mode {mode!r}")
    transfer = TransferModel(
        bandwidth_gbs=cluster.node.pcie_bw_gbs,
        latency_us=cluster.node.pcie_latency_us,
    )
    executor = HybridExecutor(
        dfg, times, counts, transfer=transfer, halo_time=halo_time
    )
    timeline = None
    for assignment in assignments:
        candidate = executor.run(assignment)
        candidate.validate_no_overlap()
        if timeline is None or candidate.makespan < timeline.makespan:
            timeline = candidate
    if return_timeline:
        return timeline.makespan, timeline
    return timeline.makespan


@dataclass(frozen=True)
class StepTimes:
    """Figure 7 row: per-step times and speedups for one mesh."""

    mesh_name: str
    n_cells: int
    serial: float
    kernel_level: float
    pattern_level: float

    @property
    def kernel_speedup(self) -> float:
        return self.serial / self.kernel_level

    @property
    def pattern_speedup(self) -> float:
        return self.serial / self.pattern_level


def model_step_times(counts: MeshCounts) -> StepTimes:
    """All three implementations of Figure 7 on one mesh."""
    return StepTimes(
        mesh_name=counts.name or f"{counts.nCells}-cell",
        n_cells=counts.nCells,
        serial=serial_step_time(counts),
        kernel_level=hybrid_step_time(counts, mode="kernel"),
        pattern_level=hybrid_step_time(counts, mode="pattern"),
    )
