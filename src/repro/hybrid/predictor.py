"""Analytic performance model for the hybrid designs.

The paper's conclusion lists "building performance models for the
pattern-driven design" as future work; this module provides closed-form
makespan predictions that need no event simulation:

* **cpu** — the host executes everything serially (in the dependency
  order), so the makespan is just the summed work.
* **kernel** — with the Figure 2 placement the accelerator carries the two
  stencil-heavy kernels and the host the rest; the chain
  tend -> update -> diagnostics serializes almost everything, so the
  makespan is bounded below by the accelerator's work and above by the sum,
  and is well approximated by the accelerator work plus the host work that
  cannot overlap (everything but ``accumulative_update``, which runs against
  the device-side diagnostics — the one concurrency Figure 2 exposes).
* **pattern** — with adjustable splits both devices stay busy: splittable
  work contributes its harmonic-mean time, and the remaining fixed-placement
  nodes behave like a 2-machine scheduling problem, contributing the LPT
  bound ``max(total/2, largest item)``.

The agreement of these predictions with the discrete-event executor is
asserted by the test suite (within ~25% for the hybrid modes).
"""

from __future__ import annotations

from ..dataflow.graph import DataFlowGraph
from .schedule import _FIG2_MIC_KERNELS

__all__ = ["predict_makespan"]


def predict_makespan(
    dfg: DataFlowGraph, times: dict[str, dict[str, float]], mode: str
) -> float:
    """Closed-form per-step makespan prediction for a schedule family."""
    nodes = dfg.compute_nodes()
    if mode == "cpu":
        return sum(times[n]["cpu"] for n in nodes)

    if mode == "kernel":
        mic = sum(
            times[n]["mic"] for n in nodes if dfg.instance(n).kernel in _FIG2_MIC_KERNELS
        )
        host_serial = sum(
            times[n]["cpu"]
            for n in nodes
            if dfg.instance(n).kernel
            not in (*_FIG2_MIC_KERNELS, "accumulative_update")
        )
        return mic + host_serial

    if mode == "pattern":
        split_nodes = [n for n in nodes if dfg.instance(n).splittable]
        fixed_nodes = [n for n in nodes if not dfg.instance(n).splittable]
        t_split = sum(
            times[n]["cpu"] * times[n]["mic"] / (times[n]["cpu"] + times[n]["mic"])
            for n in split_nodes
        )
        fixed = [min(times[n].values()) for n in fixed_nodes]
        t_fixed = max(sum(fixed) / 2.0, max(fixed, default=0.0))
        return t_split + t_fixed

    raise ValueError(f"unknown mode {mode!r}")
