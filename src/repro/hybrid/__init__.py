"""Hybrid CPU+accelerator scheduling and simulated execution (Figs. 2, 4, 7)."""

from .autotune import TuneResult, tune_split_fraction
from .executor import DEVICES, Assignment, HybridExecutor, Placement, Task, Timeline
from .predictor import predict_makespan
from .schedule import (
    cpu_only_assignment,
    kernel_level_assignment,
    node_times,
    pattern_level_assignment,
)
from .stepmodel import (
    LocalProblem,
    StepTimes,
    decompose,
    hybrid_step_time,
    model_step_times,
    serial_step_time,
)

__all__ = [
    "TuneResult",
    "tune_split_fraction",
    "predict_makespan",
    "DEVICES",
    "Assignment",
    "HybridExecutor",
    "Placement",
    "Task",
    "Timeline",
    "cpu_only_assignment",
    "kernel_level_assignment",
    "node_times",
    "pattern_level_assignment",
    "LocalProblem",
    "StepTimes",
    "decompose",
    "hybrid_step_time",
    "model_step_times",
    "serial_step_time",
]
