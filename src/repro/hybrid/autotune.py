"""Split-fraction autotuning — the "adaptively controlled" boxes of Fig. 4b.

Section III-C: in the pattern-driven design some operations "can be
adaptively controlled according to the configuration of the heterogeneous
system, so that the load balance is improved".  This module performs that
adaptation explicitly: it searches the global CPU share of the splittable
patterns against the discrete-event executor and returns the best fraction
found — which is how a production code would calibrate itself on an unknown
host/device combination at start-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataflow.graph import DataFlowGraph
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .executor import HybridExecutor, Placement
from .schedule import balanced_fraction

__all__ = ["TuneResult", "tune_split_fraction"]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of a split-fraction search."""

    fraction: float
    makespan: float
    evaluations: int
    history: tuple[tuple[float, float], ...]  # (fraction, makespan) pairs


def tune_split_fraction(
    dfg: DataFlowGraph,
    times: dict[str, dict[str, float]],
    executor: HybridExecutor,
    candidates: int = 9,
) -> TuneResult:
    """Scan CPU fractions around the work-balanced point and pick the best.

    A coarse grid (``candidates`` points spanning [0.05, 0.95]) plus the
    analytic :func:`~repro.hybrid.schedule.balanced_fraction` seed is
    evaluated against the executor; the argmin wins.  The makespan landscape
    is piecewise smooth in the fraction, so a grid is robust where
    derivative-based search is not.
    """
    from .schedule import pattern_level_assignment

    registry = get_registry()
    tracer = get_tracer()
    seeds = [balanced_fraction(dfg, times)]
    seeds += [0.05 + 0.9 * k / (candidates - 1) for k in range(candidates)]
    history = []
    best = None
    for trial, f in enumerate(seeds):
        assignment = pattern_level_assignment(dfg, times, min_split_gain=0.0)
        # Override every split with the candidate fraction.
        assignment = {
            n: (Placement("split", cpu_fraction=f) if p.device == "split" else p)
            for n, p in assignment.items()
        }
        with tracer.span(
            f"autotune:trial{trial}", category="autotune",
            trial=trial, fraction=round(f, 4),
        ):
            makespan = executor.run(assignment).makespan
        # One gauge series per trial: the tuning trajectory is replayable
        # from a metrics snapshot alone (fraction tag -> makespan value).
        registry.gauge(
            "hybrid.autotune.makespan", trial=trial, fraction=round(f, 4)
        ).set(makespan)
        registry.counter("hybrid.autotune.evaluations").inc()
        history.append((f, makespan))
        if best is None or makespan < best[1]:
            best = (f, makespan)
    registry.gauge("hybrid.autotune.best_fraction").set(best[0])
    registry.gauge("hybrid.autotune.best_makespan").set(best[1])
    return TuneResult(
        fraction=best[0],
        makespan=best[1],
        evaluations=len(history),
        history=tuple(history),
    )
