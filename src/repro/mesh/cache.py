"""Disk + memory cache of built meshes.

SCVT construction is deterministic, so meshes are cached by
``(level, lloyd_iterations, radius)``.  The cache directory defaults to
``~/.cache/repro-mpas`` and can be redirected with the ``REPRO_CACHE_DIR``
environment variable (useful on shared file systems).
"""

from __future__ import annotations

import os
from pathlib import Path

from ..constants import EARTH_RADIUS
from .mesh import Mesh

__all__ = ["cached_mesh", "cache_dir", "clear_memory_cache"]

_MEMORY: dict[tuple[int, int, float], Mesh] = {}


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path.home() / ".cache" / "repro-mpas"
    path.mkdir(parents=True, exist_ok=True)
    return path


def clear_memory_cache() -> None:
    """Drop in-process cached meshes (mainly for tests of the cache itself)."""
    _MEMORY.clear()


def cached_mesh(
    level: int,
    lloyd_iterations: int = 4,
    radius: float = EARTH_RADIUS,
    use_disk: bool = True,
) -> Mesh:
    """Return the SCVT mesh at ``level``, building it at most once.

    The in-memory cache makes repeated calls within one process free; the disk
    cache makes them cheap across processes (test runs, benchmarks).
    """
    key = (level, lloyd_iterations, radius)
    mesh = _MEMORY.get(key)
    if mesh is not None:
        return mesh
    path = cache_dir() / f"icos{level}_lloyd{lloyd_iterations}_r{radius:.0f}.npz"
    if use_disk and path.exists():
        mesh = Mesh.load(path)
    else:
        mesh = Mesh.build(level, lloyd_iterations=lloyd_iterations, radius=radius)
        if use_disk:
            tmp = path.with_suffix(".tmp.npz")
            mesh.save(tmp)
            os.replace(tmp, path)
    _MEMORY[key] = mesh
    return mesh
