"""Disk + memory cache of built meshes.

SCVT construction is deterministic, so meshes are cached by
``(level, lloyd_iterations, radius)``.  The cache directory defaults to
``~/.cache/repro-mpas`` and can be redirected with the ``REPRO_CACHE_DIR``
environment variable (useful on shared file systems).

Cache contract
--------------
* Disk filenames key the radius on its full ``repr`` (shortest exact
  round-trip), so two radii that differ by less than any rounding threshold
  get distinct files — ``r{radius:.0f}`` style truncation used to collide
  radii differing by < 0.5 m onto one archive.
* Every archive carries the :data:`CACHE_FORMAT_VERSION` stamp written by
  :meth:`~repro.mesh.mesh.Mesh.save`; a stale or unstamped file (older
  ``Mesh`` layout) is rebuilt and overwritten, never loaded blindly.
* The in-memory cache is keyed on ``use_disk`` too: a ``use_disk=False``
  call always gets a mesh built (or memoized) entirely without touching the
  disk cache, never a disk-loaded mesh memoized by an earlier
  ``use_disk=True`` call — and vice versa.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..constants import EARTH_RADIUS
from ..resilience.integrity import checked_load, seal
from .mesh import CACHE_FORMAT_VERSION, Mesh, MeshFormatError

__all__ = [
    "cached_mesh",
    "cache_dir",
    "clear_memory_cache",
    "CACHE_FORMAT_VERSION",
    "MeshFormatError",
]

_MEMORY: dict[tuple[int, int, float, bool], Mesh] = {}


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path.home() / ".cache" / "repro-mpas"
    path.mkdir(parents=True, exist_ok=True)
    return path


def clear_memory_cache() -> None:
    """Drop in-process cached meshes (mainly for tests of the cache itself)."""
    _MEMORY.clear()


def mesh_cache_path(
    level: int, lloyd_iterations: int = 4, radius: float = EARTH_RADIUS
) -> Path:
    """The disk-cache archive path for one ``(level, lloyd, radius)`` triple.

    The radius is keyed on ``repr`` — the shortest string that round-trips
    the exact float — so distinct radii can never share a file.
    """
    return cache_dir() / f"icos{level}_lloyd{lloyd_iterations}_r{radius!r}.npz"


def cached_mesh(
    level: int,
    lloyd_iterations: int = 4,
    radius: float = EARTH_RADIUS,
    use_disk: bool = True,
) -> Mesh:
    """Return the SCVT mesh at ``level``, building it at most once.

    The in-memory cache makes repeated calls within one process free; the disk
    cache makes them cheap across processes (test runs, benchmarks).  See the
    module docstring for the cache contract — in particular,
    ``use_disk=False`` guarantees the returned mesh was never loaded from
    (nor saved to) the disk cache, even when a ``use_disk=True`` call in the
    same process already populated it.
    """
    key = (level, lloyd_iterations, radius, use_disk)
    mesh = _MEMORY.get(key)
    if mesh is not None:
        return mesh
    path = mesh_cache_path(level, lloyd_iterations, radius)
    mesh = None
    if use_disk:
        # Stale (older Mesh layout) rebuilds in place; a corrupt archive
        # (truncated/bit-flipped npz) is quarantined and rebuilt — either
        # way a bad cache entry is never fatal.
        mesh = checked_load(path, Mesh.load, kind="mesh", stale=(MeshFormatError,))
    if mesh is None:
        mesh = Mesh.build(level, lloyd_iterations=lloyd_iterations, radius=radius)
        if use_disk:
            tmp = path.with_suffix(".tmp.npz")
            mesh.save(tmp)
            os.replace(tmp, path)
            seal(path)
    if use_disk:
        # Mark the mesh as having a persistent disk identity so dependent
        # caches (e.g. the sparse-operator cache) may persist alongside it.
        mesh.info.setdefault("disk_cached", True)
    _MEMORY[key] = mesh
    return mesh
