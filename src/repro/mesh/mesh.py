"""The assembled C-grid SCVT mesh: the substrate every other subsystem uses.

:class:`Mesh` bundles connectivity, metrics and TRiSK weights into a single
immutable object with MPAS field names, plus save/load and self-validation.
Meshes are built from icosahedral seeds (optionally Lloyd-relaxed into an
SCVT) or from arbitrary generator point sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..constants import EARTH_RADIUS, GEOM_RTOL
from ..geometry.cvt import lloyd_relax
from ..geometry.icosahedron import icosahedral_points, resolution_km
from .connectivity import Connectivity, build_connectivity
from .metrics import Metrics, build_metrics
from .trisk import TriskWeights, build_trisk_weights
from .voronoi import extract_voronoi

__all__ = [
    "Mesh",
    "MESH_FAMILY",
    "mesh_family_counts",
    "CACHE_FORMAT_VERSION",
    "MeshFormatError",
]

#: Format version of the ``.npz`` archives written by :meth:`Mesh.save`.
#: Bump whenever the saved field set or layout changes; :meth:`Mesh.load`
#: refuses archives with a different (or missing) stamp, and
#: :func:`repro.mesh.cache.cached_mesh` rebuilds instead of loading them.
#: Version 1 is the retroactive name for the unstamped seed layout.
CACHE_FORMAT_VERSION = 2


class MeshFormatError(RuntimeError):
    """A saved mesh archive has a missing or incompatible format version."""

#: The paper's quasi-uniform mesh family (Table III): nominal resolution name
#: -> icosahedral subdivision level.  ``10 * 4**level + 2`` cells each.
MESH_FAMILY: dict[str, int] = {
    "480km": 4,
    "240km": 5,
    "120km": 6,
    "60km": 7,
    "30km": 8,
    "15km": 9,
}


def mesh_family_counts() -> dict[str, int]:
    """Cell counts of the Table III mesh family (plus coarser test sizes)."""
    return {name: 10 * 4**lvl + 2 for name, lvl in MESH_FAMILY.items()}


@dataclass(frozen=True, eq=False)
class Mesh:
    """Immutable C-staggered SCVT mesh on a sphere.

    All MPAS-style arrays from :class:`~repro.mesh.connectivity.Connectivity`,
    :class:`~repro.mesh.metrics.Metrics` and
    :class:`~repro.mesh.trisk.TriskWeights` are exposed as attributes.
    """

    connectivity: Connectivity
    metrics: Metrics
    trisk: TriskWeights
    name: str = "unnamed"
    #: Extra provenance (subdivision level, Lloyd sweeps) for reporting.
    info: dict = field(default_factory=dict)

    # ------------------------------------------------------------ delegation
    def __getattr__(self, item: str):
        # Only called for attributes not found normally; forward to parts.
        for part_name in ("connectivity", "metrics", "trisk"):
            part = object.__getattribute__(self, part_name)
            if hasattr(part, item):
                return getattr(part, item)
        raise AttributeError(item)

    @property
    def nCells(self) -> int:
        return self.connectivity.n_cells

    @property
    def nEdges(self) -> int:
        return self.connectivity.n_edges

    @property
    def nVertices(self) -> int:
        return self.connectivity.n_vertices

    @property
    def maxEdges(self) -> int:
        return self.connectivity.max_edges

    @property
    def radius(self) -> float:
        return self.metrics.radius

    @property
    def sphere_area(self) -> float:
        return 4.0 * np.pi * self.radius**2

    @property
    def nominal_resolution_km(self) -> float:
        """sqrt(mean cell area) in km — the Table III naming convention."""
        return float(np.sqrt(self.sphere_area / self.nCells) / 1000.0)

    # -------------------------------------------------------------- builders
    @classmethod
    def build(
        cls,
        level: int,
        lloyd_iterations: int = 4,
        radius: float = EARTH_RADIUS,
        name: str | None = None,
    ) -> "Mesh":
        """Build the quasi-uniform SCVT mesh at an icosahedral level.

        ``lloyd_iterations`` Lloyd sweeps relax the geodesic seeds toward the
        true SCVT (Table III meshes); 0 keeps the raw geodesic generators.
        """
        points = icosahedral_points(level)
        lloyd_iters_done = 0
        if lloyd_iterations > 0:
            result = lloyd_relax(points, iterations=lloyd_iterations)
            points = result.points
            lloyd_iters_done = result.iterations
        mesh = cls.from_points(
            points,
            radius=radius,
            name=name or f"icos{level}",
        )
        mesh.info.update(
            level=level,
            lloyd_iterations=lloyd_iters_done,
            nominal_resolution_km=resolution_km(level, radius),
        )
        return mesh

    @classmethod
    def from_points(
        cls, points: np.ndarray, radius: float = EARTH_RADIUS, name: str = "custom"
    ) -> "Mesh":
        """Build a mesh from arbitrary generator points on the sphere."""
        raw = extract_voronoi(points)
        conn = build_connectivity(raw)
        metrics = build_metrics(raw, conn, radius)
        trisk = build_trisk_weights(conn, metrics)
        return cls(connectivity=conn, metrics=metrics, trisk=trisk, name=name)

    # ------------------------------------------------------------ validation
    def validate(self, rtol: float = GEOM_RTOL) -> None:
        """Check the geometric identities of the C-grid; raise on violation."""
        self.connectivity.validate_euler()
        area = self.sphere_area
        exact_checks = {
            "sum(areaCell)": float(np.sum(self.metrics.areaCell)),
            "sum(areaTriangle)": float(np.sum(self.metrics.areaTriangle)),
        }
        for label, value in exact_checks.items():
            if not np.isclose(value, area, rtol=rtol):
                raise ValueError(f"{label} = {value:.6e} != sphere area {area:.6e}")
        # The edge-diamond tiling identity sum(dc * dv) / 2 == 4*pi*R^2 is
        # exact on the plane; on the sphere it holds to O(h^2) of the cell
        # diameter, so it is tested loosely (it still catches sign/pairing
        # bugs, which produce O(1) violations).
        diamond = float(np.sum(self.metrics.dcEdge * self.metrics.dvEdge) / 2.0)
        if not np.isclose(diamond, area, rtol=2e-2):
            raise ValueError(
                f"sum(dcEdge*dvEdge)/2 = {diamond:.6e} != sphere area {area:.6e}"
            )
        kite_sum = np.sum(self.metrics.kiteAreasOnVertex, axis=1)
        if not np.allclose(kite_sum, self.metrics.areaTriangle, rtol=1e-8):
            raise ValueError("kite areas do not partition the dual triangles")
        if np.any(self.metrics.dcEdge <= 0) or np.any(self.metrics.dvEdge <= 0):
            raise ValueError("non-positive edge lengths")

    # ----------------------------------------------------------------- I/O
    def save(self, path: str | Path) -> None:
        """Serialize to a compressed ``.npz`` archive."""
        conn, met, tri = self.connectivity, self.metrics, self.trisk
        np.savez_compressed(
            Path(path),
            format_version=np.array(CACHE_FORMAT_VERSION),
            name=np.array(self.name),
            radius=np.array(met.radius),
            nEdgesOnCell=conn.nEdgesOnCell,
            verticesOnCell=conn.verticesOnCell,
            edgesOnCell=conn.edgesOnCell,
            cellsOnCell=conn.cellsOnCell,
            cellsOnEdge=conn.cellsOnEdge,
            verticesOnEdge=conn.verticesOnEdge,
            cellsOnVertex=conn.cellsOnVertex,
            edgesOnVertex=conn.edgesOnVertex,
            edgeSignOnCell=conn.edgeSignOnCell,
            edgeSignOnVertex=conn.edgeSignOnVertex,
            xCell=met.xCell,
            xEdge=met.xEdge,
            xVertex=met.xVertex,
            areaCell=met.areaCell,
            areaTriangle=met.areaTriangle,
            kiteAreasOnVertex=met.kiteAreasOnVertex,
            dcEdge=met.dcEdge,
            dvEdge=met.dvEdge,
            edgeNormal=met.edgeNormal,
            edgeTangent=met.edgeTangent,
            angleEdge=met.angleEdge,
            nEdgesOnEdge=tri.nEdgesOnEdge,
            edgesOnEdge=tri.edgesOnEdge,
            weightsOnEdge=tri.weightsOnEdge,
        )

    @classmethod
    def load(cls, path: str | Path) -> "Mesh":
        """Load a mesh previously written by :meth:`save`.

        Raises :class:`MeshFormatError` when the archive carries no
        ``format_version`` stamp (written by a pre-versioning layout) or a
        stamp other than :data:`CACHE_FORMAT_VERSION` — loading such a file
        blindly would crash on a missing field at best and silently corrupt
        downstream numerics at worst.  Callers holding a cache (see
        :func:`repro.mesh.cache.cached_mesh`) should catch it and rebuild.
        """
        from ..geometry.sphere import xyz_to_lonlat

        with np.load(Path(path)) as d:
            if "format_version" not in d.files:
                raise MeshFormatError(
                    f"{path} carries no mesh format-version stamp (written "
                    f"by a pre-version Mesh layout); rebuild it with "
                    f"Mesh.save"
                )
            found = int(d["format_version"])
            if found != CACHE_FORMAT_VERSION:
                raise MeshFormatError(
                    f"{path} has mesh format version {found}, this build "
                    f"reads version {CACHE_FORMAT_VERSION}; rebuild it with "
                    f"Mesh.save"
                )
            conn = Connectivity(
                n_cells=int(d["nEdgesOnCell"].shape[0]),
                n_edges=int(d["cellsOnEdge"].shape[0]),
                n_vertices=int(d["cellsOnVertex"].shape[0]),
                max_edges=int(d["edgesOnCell"].shape[1]),
                nEdgesOnCell=d["nEdgesOnCell"],
                verticesOnCell=d["verticesOnCell"],
                edgesOnCell=d["edgesOnCell"],
                cellsOnCell=d["cellsOnCell"],
                cellsOnEdge=d["cellsOnEdge"],
                verticesOnEdge=d["verticesOnEdge"],
                cellsOnVertex=d["cellsOnVertex"],
                edgesOnVertex=d["edgesOnVertex"],
                edgeSignOnCell=d["edgeSignOnCell"],
                edgeSignOnVertex=d["edgeSignOnVertex"],
            )
            lon_c, lat_c = xyz_to_lonlat(d["xCell"])
            lon_e, lat_e = xyz_to_lonlat(d["xEdge"])
            lon_v, lat_v = xyz_to_lonlat(d["xVertex"])
            metrics = Metrics(
                radius=float(d["radius"]),
                xCell=d["xCell"],
                xEdge=d["xEdge"],
                xVertex=d["xVertex"],
                lonCell=lon_c,
                latCell=lat_c,
                lonEdge=lon_e,
                latEdge=lat_e,
                lonVertex=lon_v,
                latVertex=lat_v,
                areaCell=d["areaCell"],
                areaTriangle=d["areaTriangle"],
                kiteAreasOnVertex=d["kiteAreasOnVertex"],
                dcEdge=d["dcEdge"],
                dvEdge=d["dvEdge"],
                edgeNormal=d["edgeNormal"],
                edgeTangent=d["edgeTangent"],
                angleEdge=d["angleEdge"],
            )
            trisk = TriskWeights(
                nEdgesOnEdge=d["nEdgesOnEdge"],
                edgesOnEdge=d["edgesOnEdge"],
                weightsOnEdge=d["weightsOnEdge"],
            )
            name = str(d["name"])
        return cls(connectivity=conn, metrics=metrics, trisk=trisk, name=name)
