"""Geometric metric fields of the C-grid mesh.

All lengths are in metres and areas in square metres on a sphere of the given
radius; positions remain unit vectors.  Identities that must hold (and are
asserted by the validation suite):

* ``sum(areaCell) == sum(areaTriangle) == 4 * pi * R**2``
* ``sum_j kiteAreasOnVertex[v, j] == areaTriangle[v]`` for every vertex
* ``sum(dcEdge * dvEdge) / 2 == 4 * pi * R**2`` (edge diamonds tile the sphere)
* edge frames satisfy ``t_e = k x n_e`` with ``n_e`` from ``c0`` to ``c1`` and
  ``t_e`` from ``v0`` to ``v1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.sphere import (
    arc_length,
    normalize,
    spherical_polygon_area,
    spherical_triangle_area,
    tangent_basis,
    xyz_to_lonlat,
)
from .connectivity import Connectivity
from .voronoi import RawVoronoi

__all__ = ["Metrics", "build_metrics"]


@dataclass(frozen=True, eq=False)
class Metrics:
    """Metric fields; names follow MPAS (lengths/areas scaled by radius)."""

    radius: float

    xCell: np.ndarray  # (nCells, 3) unit vectors
    xEdge: np.ndarray  # (nEdges, 3) unit vectors
    xVertex: np.ndarray  # (nVertices, 3) unit vectors

    lonCell: np.ndarray
    latCell: np.ndarray
    lonEdge: np.ndarray
    latEdge: np.ndarray
    lonVertex: np.ndarray
    latVertex: np.ndarray

    areaCell: np.ndarray  # (nCells,) m^2
    areaTriangle: np.ndarray  # (nVertices,) m^2
    kiteAreasOnVertex: np.ndarray  # (nVertices, 3) m^2, aligned w/ cellsOnVertex

    dcEdge: np.ndarray  # (nEdges,) m, distance between cell centres
    dvEdge: np.ndarray  # (nEdges,) m, distance between vertices

    edgeNormal: np.ndarray  # (nEdges, 3) unit tangent-plane vectors, c0 -> c1
    edgeTangent: np.ndarray  # (nEdges, 3) unit tangent-plane vectors, v0 -> v1
    angleEdge: np.ndarray  # (nEdges,) angle of edgeNormal from local east


def build_metrics(raw: RawVoronoi, conn: Connectivity, radius: float) -> Metrics:
    """Compute all metric fields for a sphere of the given ``radius``."""
    xc = raw.generators
    xv = raw.vertices
    r2 = radius * radius

    c0 = conn.cellsOnEdge[:, 0]
    c1 = conn.cellsOnEdge[:, 1]
    v0 = conn.verticesOnEdge[:, 0]
    v1 = conn.verticesOnEdge[:, 1]

    # Edge location: the crossing of the primal edge (v0-v1) and the dual arc
    # (c0-c1).  For an exact Voronoi mesh the dual arc crosses the primal edge
    # at the midpoint of the cell-centre arc, so we use that midpoint.
    xe = normalize(xc[c0] + xc[c1])

    dc = radius * arc_length(xc[c0], xc[c1])
    dv = radius * arc_length(xv[v0], xv[v1])

    # Edge frames in the tangent plane at the edge point.
    chord_n = xc[c1] - xc[c0]
    n_vec = chord_n - np.sum(chord_n * xe, axis=-1, keepdims=True) * xe
    n_vec = normalize(n_vec)
    t_vec = np.cross(xe, n_vec)  # t = k x n, right-handed frame
    # Consistency: t must point from v0 to v1.
    chord_t = xv[v1] - xv[v0]
    if np.any(np.sum(t_vec * chord_t, axis=-1) <= 0.0):
        bad = int(np.count_nonzero(np.sum(t_vec * chord_t, axis=-1) <= 0.0))
        raise ValueError(
            f"{bad} edges have inconsistent (normal, tangent) orientation; "
            "the Voronoi regions were not CCW-ordered"
        )

    east, north = tangent_basis(xe)
    angle_edge = np.arctan2(
        np.sum(n_vec * north, axis=-1), np.sum(n_vec * east, axis=-1)
    )

    area_cell = np.empty(conn.n_cells, dtype=np.float64)
    for c in range(conn.n_cells):
        ring = conn.verticesOnCell[c, : conn.nEdgesOnCell[c]]
        area_cell[c] = r2 * spherical_polygon_area(xv[ring])
    if np.any(area_cell <= 0.0):
        raise ValueError("non-positive cell area: orientation broken")

    # areaTriangle: Delaunay triangle of the three cell centres around the
    # vertex.  cellsOnVertex is CCW, so the signed excess is positive.
    cov = conn.cellsOnVertex
    area_tri = r2 * spherical_triangle_area(xc[cov[:, 0]], xc[cov[:, 1]], xc[cov[:, 2]])
    if np.any(area_tri <= 0.0):
        raise ValueError("non-positive triangle area: cellsOnVertex not CCW")

    kites = _kite_areas(raw, conn, xe, r2)

    lon_c, lat_c = xyz_to_lonlat(xc)
    lon_e, lat_e = xyz_to_lonlat(xe)
    lon_v, lat_v = xyz_to_lonlat(xv)

    return Metrics(
        radius=radius,
        xCell=xc,
        xEdge=xe,
        xVertex=xv,
        lonCell=lon_c,
        latCell=lat_c,
        lonEdge=lon_e,
        latEdge=lat_e,
        lonVertex=lon_v,
        latVertex=lat_v,
        areaCell=area_cell,
        areaTriangle=area_tri,
        kiteAreasOnVertex=kites,
        dcEdge=dc,
        dvEdge=dv,
        edgeNormal=n_vec,
        edgeTangent=t_vec,
        angleEdge=angle_edge,
    )


def _kite_areas(
    raw: RawVoronoi, conn: Connectivity, xe: np.ndarray, r2: float
) -> np.ndarray:
    """Signed kite areas, aligned with ``cellsOnVertex``.

    The kite of (vertex ``v``, cell ``i``) is the spherical quadrilateral
    ``(x_i, x_{e_prev}, x_v, x_{e_next})`` where ``e_prev``/``e_next`` are the
    two edges of cell ``i`` meeting at ``v``, taken in CCW order around the
    cell.  Signed triangle fans make the decomposition exact even for obtuse
    Delaunay triangles whose circumcentre falls outside the triangle.
    """
    xc = raw.generators
    xv = raw.vertices
    n_vertices = conn.n_vertices
    kites = np.zeros((n_vertices, 3), dtype=np.float64)

    # For each cell, map vertex -> (previous edge, next edge) along the CCW
    # ring.  verticesOnCell[c][j] sits between edgesOnCell[c][j-1] (previous)
    # and edgesOnCell[c][j] (next).
    prev_next: list[dict[int, tuple[int, int]]] = []
    for c in range(conn.n_cells):
        n = int(conn.nEdgesOnCell[c])
        table: dict[int, tuple[int, int]] = {}
        for j in range(n):
            v = int(conn.verticesOnCell[c, j])
            e_prev = int(conn.edgesOnCell[c, (j - 1) % n])
            e_next = int(conn.edgesOnCell[c, j])
            table[v] = (e_prev, e_next)
        prev_next.append(table)

    for v in range(n_vertices):
        for j in range(3):
            c = int(conn.cellsOnVertex[v, j])
            e_prev, e_next = prev_next[c][v]
            a = xc[c]
            m_prev = xe[e_prev]
            m_next = xe[e_next]
            p = xv[v]
            kites[v, j] = r2 * (
                spherical_triangle_area(a, m_prev, p)
                + spherical_triangle_area(a, p, m_next)
            )
    if np.any(kites <= 0.0):
        raise ValueError("non-positive kite area: mesh too distorted for the C-grid")
    return kites
