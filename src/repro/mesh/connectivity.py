"""MPAS-style connectivity arrays for the C-staggered Voronoi mesh.

The three point types of Figure 1 of the paper are:

* **cells** (mass points) — the Voronoi generators,
* **edges** (velocity points) — one per Voronoi cell boundary segment,
* **vertices** (vorticity points) — the Voronoi vertices / Delaunay triangle
  circumcentres.

Index arrays follow MPAS naming but use 0-based indexing and ``-1`` padding
(MPAS files are 1-based and 0-padded).  Orientation conventions:

* ``verticesOnEdge[e] = (v0, v1)``: the edge *tangent* ``t_e`` points from
  ``v0`` to ``v1``.
* ``cellsOnEdge[e] = (c0, c1)``: the edge *normal* ``n_e`` points from ``c0``
  to ``c1``, and ``(n_e, t_e, k)`` is right-handed (``t = k x n`` with ``k``
  the outward radial direction), i.e. walking along ``t_e``, cell ``c0`` lies
  on the left.
* ``verticesOnCell[c]`` / ``edgesOnCell[c]`` are CCW-ordered and aligned:
  ``edgesOnCell[c][j]`` joins ``verticesOnCell[c][j]`` to
  ``verticesOnCell[c][j+1]`` (cyclically).
* ``edgeSignOnCell[c][j] = +1`` when ``n_e`` points *out of* cell ``c``.
* ``edgeSignOnVertex[v][j] = +1`` when ``n_e`` circulates CCW around ``v``
  (equivalently ``v == verticesOnEdge[e][1]``); this is the sign with which
  ``u_e * dcEdge_e`` enters the circulation integral defining vorticity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .voronoi import RawVoronoi

__all__ = ["Connectivity", "build_connectivity"]

FILL = -1


@dataclass(frozen=True, eq=False)
class Connectivity:
    """All index arrays of the C-grid; see module docstring for conventions."""

    n_cells: int
    n_edges: int
    n_vertices: int
    max_edges: int

    nEdgesOnCell: np.ndarray  # (nCells,) int
    verticesOnCell: np.ndarray  # (nCells, maxEdges) int, FILL-padded
    edgesOnCell: np.ndarray  # (nCells, maxEdges) int, FILL-padded
    cellsOnCell: np.ndarray  # (nCells, maxEdges) int, FILL-padded

    cellsOnEdge: np.ndarray  # (nEdges, 2) int
    verticesOnEdge: np.ndarray  # (nEdges, 2) int

    cellsOnVertex: np.ndarray  # (nVertices, 3) int, CCW
    edgesOnVertex: np.ndarray  # (nVertices, 3) int, CCW-aligned with cells

    edgeSignOnCell: np.ndarray  # (nCells, maxEdges) float, 0.0 padding
    edgeSignOnVertex: np.ndarray  # (nVertices, 3) float

    def validate_euler(self) -> None:
        """Check the Euler characteristic of the closed spherical mesh."""
        if self.n_vertices - self.n_edges + self.n_cells != 2:
            raise ValueError(
                "Euler characteristic violated: "
                f"V={self.n_vertices} E={self.n_edges} F={self.n_cells}"
            )


def build_connectivity(raw: RawVoronoi) -> Connectivity:
    """Derive the full connectivity of the C-grid from a raw Voronoi diagram."""
    n_cells = raw.n_cells
    n_vertices = raw.n_vertices
    regions = raw.regions

    n_edges_on_cell = np.array([len(r) for r in regions], dtype=np.int64)
    max_edges = int(n_edges_on_cell.max())

    # ------------------------------------------------------------------ edges
    edge_of_pair: dict[tuple[int, int], int] = {}
    cells_on_edge: list[list[int]] = []
    vertices_on_edge: list[tuple[int, int]] = []

    vertices_on_cell = np.full((n_cells, max_edges), FILL, dtype=np.int64)
    edges_on_cell = np.full((n_cells, max_edges), FILL, dtype=np.int64)

    for c, ring in enumerate(regions):
        n = len(ring)
        vertices_on_cell[c, :n] = ring
        for j in range(n):
            v0, v1 = ring[j], ring[(j + 1) % n]
            key = (v0, v1) if v0 < v1 else (v1, v0)
            e = edge_of_pair.get(key)
            if e is None:
                e = len(cells_on_edge)
                edge_of_pair[key] = e
                cells_on_edge.append([c, FILL])
                # Directed pair as seen CCW from the first cell: the tangent
                # v0 -> v1 keeps this cell on the left, so the normal points
                # toward the (later) second cell.
                vertices_on_edge.append((v0, v1))
            else:
                if cells_on_edge[e][1] != FILL:
                    raise ValueError(f"edge {e} bounded by more than two cells")
                cells_on_edge[e][1] = c
            edges_on_cell[c, j] = e

    n_edges = len(cells_on_edge)
    cellsOnEdge = np.asarray(cells_on_edge, dtype=np.int64)
    verticesOnEdge = np.asarray(vertices_on_edge, dtype=np.int64)
    if np.any(cellsOnEdge == FILL):
        raise ValueError("open boundary detected: sphere meshes must be closed")

    # ------------------------------------------------------------ cellsOnCell
    cells_on_cell = np.full((n_cells, max_edges), FILL, dtype=np.int64)
    for c in range(n_cells):
        for j in range(n_edges_on_cell[c]):
            e = edges_on_cell[c, j]
            c0, c1 = cellsOnEdge[e]
            cells_on_cell[c, j] = c1 if c0 == c else c0

    # ---------------------------------------------------------- vertex tables
    cells_on_vertex = np.full((n_vertices, 3), FILL, dtype=np.int64)
    vertex_fill = np.zeros(n_vertices, dtype=np.int64)
    for c, ring in enumerate(regions):
        for v in ring:
            k = vertex_fill[v]
            if k >= 3:
                raise ValueError(f"vertex {v} touches more than 3 cells")
            cells_on_vertex[v, k] = c
            vertex_fill[v] = k + 1
    if np.any(vertex_fill != 3):
        raise ValueError("every vertex of a closed trivalent mesh must touch 3 cells")

    edges_on_vertex = np.full((n_vertices, 3), FILL, dtype=np.int64)
    evx_fill = np.zeros(n_vertices, dtype=np.int64)
    for e in range(n_edges):
        for v in verticesOnEdge[e]:
            k = evx_fill[v]
            if k >= 3:
                raise ValueError(f"vertex {v} touches more than 3 edges")
            edges_on_vertex[v, k] = e
            evx_fill[v] = k + 1
    if np.any(evx_fill != 3):
        raise ValueError("every vertex of a closed trivalent mesh must touch 3 edges")

    _orient_vertex_tables(raw, cells_on_vertex, edges_on_vertex, cellsOnEdge)

    # ------------------------------------------------------------------ signs
    edge_sign_on_cell = np.zeros((n_cells, max_edges), dtype=np.float64)
    for c in range(n_cells):
        for j in range(n_edges_on_cell[c]):
            e = edges_on_cell[c, j]
            edge_sign_on_cell[c, j] = 1.0 if cellsOnEdge[e, 0] == c else -1.0

    # Walking along t_e (v0 -> v1), the CCW circulation around the *end*
    # vertex v1 is aligned with +n_e, and around the start vertex v0 with
    # -n_e (t = k x n  =>  k x t = -n).
    edge_sign_on_vertex = np.zeros((n_vertices, 3), dtype=np.float64)
    for v in range(n_vertices):
        for j in range(3):
            e = edges_on_vertex[v, j]
            edge_sign_on_vertex[v, j] = 1.0 if verticesOnEdge[e, 1] == v else -1.0

    conn = Connectivity(
        n_cells=n_cells,
        n_edges=n_edges,
        n_vertices=n_vertices,
        max_edges=max_edges,
        nEdgesOnCell=n_edges_on_cell,
        verticesOnCell=vertices_on_cell,
        edgesOnCell=edges_on_cell,
        cellsOnCell=cells_on_cell,
        cellsOnEdge=cellsOnEdge,
        verticesOnEdge=verticesOnEdge,
        cellsOnVertex=cells_on_vertex,
        edgesOnVertex=edges_on_vertex,
        edgeSignOnCell=edge_sign_on_cell,
        edgeSignOnVertex=edge_sign_on_vertex,
    )
    conn.validate_euler()
    return conn


def _orient_vertex_tables(
    raw: RawVoronoi,
    cells_on_vertex: np.ndarray,
    edges_on_vertex: np.ndarray,
    cellsOnEdge: np.ndarray,
) -> None:
    """Order ``cellsOnVertex``/``edgesOnVertex`` CCW around each vertex.

    Cells are sorted by azimuth in the tangent plane at the vertex;
    ``edgesOnVertex[v][j]`` is then aligned so that it is the edge *between*
    ``cellsOnVertex[v][j]`` and ``cellsOnVertex[v][j+1]`` (cyclically), which
    is the layout MPAS kernels assume.
    """
    xv = raw.vertices
    xc = raw.generators
    n_vertices = xv.shape[0]

    # Build a lookup from unordered cell pairs to edge ids.
    pair_to_edge: dict[tuple[int, int], int] = {}
    for e, (c0, c1) in enumerate(cellsOnEdge):
        key = (int(c0), int(c1)) if c0 < c1 else (int(c1), int(c0))
        pair_to_edge[key] = e

    for v in range(n_vertices):
        p = xv[v]
        # Local tangent frame (any orthonormal pair works for sorting).
        ref = np.array([0.0, 0.0, 1.0]) if abs(p[2]) < 0.9 else np.array([1.0, 0.0, 0.0])
        t1 = np.cross(ref, p)
        t1 /= np.linalg.norm(t1)
        t2 = np.cross(p, t1)
        cells = cells_on_vertex[v].copy()
        d = xc[cells] - p
        ang = np.arctan2(d @ t2, d @ t1)
        order = np.argsort(ang)
        cells = cells[order]
        # arctan2 sorting gives CCW order in the (t1, t2) frame, which is CCW
        # seen from outside because (t1, t2, p) is right-handed.
        cells_on_vertex[v] = cells
        for j in range(3):
            ca, cb = int(cells[j]), int(cells[(j + 1) % 3])
            key = (ca, cb) if ca < cb else (cb, ca)
            edges_on_vertex[v, j] = pair_to_edge[key]
