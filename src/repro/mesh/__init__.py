"""C-staggered SCVT mesh substrate (the horizontal mesh of Figure 1)."""

from .cache import (
    CACHE_FORMAT_VERSION,
    MeshFormatError,
    cache_dir,
    cached_mesh,
    clear_memory_cache,
    mesh_cache_path,
)
from .connectivity import FILL, Connectivity, build_connectivity
from .mesh import MESH_FAMILY, Mesh, mesh_family_counts
from .metrics import Metrics, build_metrics
from .permute import rotate_cell_rings
from .quality import MeshQuality, assess_quality
from .trisk import TriskWeights, build_trisk_weights
from .voronoi import RawVoronoi, extract_voronoi

__all__ = [
    "FILL",
    "Connectivity",
    "build_connectivity",
    "MESH_FAMILY",
    "Mesh",
    "mesh_family_counts",
    "Metrics",
    "build_metrics",
    "MeshQuality",
    "rotate_cell_rings",
    "assess_quality",
    "TriskWeights",
    "build_trisk_weights",
    "RawVoronoi",
    "extract_voronoi",
    "cached_mesh",
    "cache_dir",
    "clear_memory_cache",
    "mesh_cache_path",
    "CACHE_FORMAT_VERSION",
    "MeshFormatError",
]
