"""TRiSK tangential-velocity reconstruction weights.

The C-grid stores only the normal velocity component ``u_e`` on each edge.
The tangential component ``v_e`` (needed by the nonlinear Coriolis term and
the APVM upwinding) is reconstructed from the normal components on the edges
of the two adjacent cells:

.. math:: v_e = \\sum_{e' \\in EOE(e)} w_{e,e'} \\, u_{e'}

following Thuburn et al. (2009) / Ringler et al. (2010).  The weight
contributed by edge ``e'`` of cell ``i`` (one of the two cells sharing ``e``)
is

.. math::

    w_{e,e'} = \\hat n_{e,i} \\, \\hat n_{e',i}
               \\left(\\tfrac12 - \\sum_{v \\in walk(e \\to e')} R_{i,v}\\right)
               \\frac{l_{e'}}{d_e},

where the walk visits the vertices of cell ``i`` counter-clockwise from ``e``
to ``e'``, ``R_{i,v}`` is the kite-area fraction
``kiteAreasOnVertex / areaCell``, ``hat n_{e,i} = +1`` when the edge normal
points out of cell ``i``, ``l`` is ``dvEdge`` and ``d`` is ``dcEdge``.  This
is the construction MPAS ships in its mesh files; the dimensionless part is
antisymmetric (``w~_{e,e'} = -w~_{e',e}``), which is what makes the discrete
Coriolis term energy-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .connectivity import FILL, Connectivity
from .metrics import Metrics

__all__ = ["TriskWeights", "build_trisk_weights"]


@dataclass(frozen=True, eq=False)
class TriskWeights:
    """Padded ``edgesOnEdge`` / ``weightsOnEdge`` tables.

    Attributes
    ----------
    nEdgesOnEdge : (nEdges,) int
        Number of valid entries per edge (``n0 - 1 + n1 - 1``).
    edgesOnEdge : (nEdges, 2 * maxEdges - 2) int
        Participating edges, ``-1``-padded.
    weightsOnEdge : (nEdges, 2 * maxEdges - 2) float
        Reconstruction weights, zero-padded (safe to use with a gathered
        ``edgesOnEdge`` where fill entries were clamped to 0).
    """

    nEdgesOnEdge: np.ndarray
    edgesOnEdge: np.ndarray
    weightsOnEdge: np.ndarray


def build_trisk_weights(conn: Connectivity, metrics: Metrics) -> TriskWeights:
    """Construct the TRiSK tables for a closed spherical C-grid."""
    n_edges = conn.n_edges
    width = 2 * conn.max_edges - 2
    n_eoe = np.zeros(n_edges, dtype=np.int64)
    eoe = np.full((n_edges, width), FILL, dtype=np.int64)
    woe = np.zeros((n_edges, width), dtype=np.float64)

    # Position of each edge within each of its two cells' CCW rings.
    edge_pos_in_cell = np.full((n_edges, 2), -1, dtype=np.int64)
    for c in range(conn.n_cells):
        for j in range(int(conn.nEdgesOnCell[c])):
            e = int(conn.edgesOnCell[c, j])
            side = 0 if conn.cellsOnEdge[e, 0] == c else 1
            edge_pos_in_cell[e, side] = j

    # Position of each cell within each vertex's cellsOnVertex triple.
    cell_slot_on_vertex: list[dict[int, int]] = [
        {int(conn.cellsOnVertex[v, k]): k for k in range(3)}
        for v in range(conn.n_vertices)
    ]

    inv_area = 1.0 / metrics.areaCell
    dv = metrics.dvEdge
    dc = metrics.dcEdge

    for e in range(n_edges):
        slot = 0
        for side, sign_e in ((0, 1.0), (1, -1.0)):
            c = int(conn.cellsOnEdge[e, side])
            n = int(conn.nEdgesOnCell[c])
            start = int(edge_pos_in_cell[e, side])
            r_sum = 0.0
            for j in range(1, n):
                pos = (start + j) % n
                v = int(conn.verticesOnCell[c, pos])
                k = cell_slot_on_vertex[v][c]
                r_sum += metrics.kiteAreasOnVertex[v, k] * inv_area[c]
                e_j = int(conn.edgesOnCell[c, pos])
                sign_ej = 1.0 if conn.cellsOnEdge[e_j, 0] == c else -1.0
                eoe[e, slot] = e_j
                woe[e, slot] = sign_e * sign_ej * (0.5 - r_sum) * dv[e_j] / dc[e]
                slot += 1
        n_eoe[e] = slot

    return TriskWeights(nEdgesOnEdge=n_eoe, edgesOnEdge=eoe, weightsOnEdge=woe)
