"""Raw spherical Voronoi extraction for SCVT generator sets.

This module wraps :class:`scipy.spatial.SphericalVoronoi` and normalizes its
output into the form the MPAS connectivity builder needs:

* generator points (the future *mass points* / cell centres),
* Voronoi vertices (the future *vorticity points*, circumcentres of the dual
  Delaunay triangles), and
* per-generator vertex rings ordered counter-clockwise as seen from outside
  the sphere.

The C-grid construction requires a *generic* tessellation: every Voronoi
vertex trivalent, every region a simple polygon.  Quasi-uniform SCVTs satisfy
this; :func:`extract_voronoi` validates it and raises otherwise rather than
silently producing a broken mesh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import SphericalVoronoi

from ..geometry.sphere import normalize, spherical_polygon_area

__all__ = ["RawVoronoi", "extract_voronoi"]


@dataclass(frozen=True, eq=False)
class RawVoronoi:
    """Oriented spherical Voronoi diagram of a generator set.

    Attributes
    ----------
    generators : (nCells, 3) float array
        Unit-vector generator positions.
    vertices : (nVertices, 3) float array
        Unit-vector Voronoi vertex positions (Delaunay circumcentres).
    regions : list of list of int
        For each generator, the indices of its Voronoi vertices in CCW order
        (outward orientation).
    """

    generators: np.ndarray
    vertices: np.ndarray
    regions: list[list[int]]

    @property
    def n_cells(self) -> int:
        return self.generators.shape[0]

    @property
    def n_vertices(self) -> int:
        return self.vertices.shape[0]


def extract_voronoi(points: np.ndarray, min_vertex_separation: float = 1e-9) -> RawVoronoi:
    """Compute the oriented spherical Voronoi diagram of ``points``.

    Parameters
    ----------
    points : (n, 3) array
        Generator positions; normalized internally.
    min_vertex_separation : float
        Smallest allowed distance between distinct Voronoi vertices of one
        region.  Closer vertices indicate a degenerate (co-circular)
        configuration that the C-grid cannot represent; a ``ValueError``
        explains the remedy (run Lloyd relaxation or jitter the seeds).

    Returns
    -------
    RawVoronoi
        With every region wound counter-clockwise.
    """
    pts = normalize(np.asarray(points, dtype=np.float64))
    if pts.shape[0] < 4:
        raise ValueError("need at least 4 generators for a spherical Voronoi diagram")
    sv = SphericalVoronoi(pts, radius=1.0)
    sv.sort_vertices_of_regions()

    vertices = normalize(sv.vertices)
    regions: list[list[int]] = []
    vertex_degree = np.zeros(vertices.shape[0], dtype=np.int64)
    for i, region in enumerate(sv.regions):
        ring = [int(v) for v in region]
        if len(ring) < 3:
            raise ValueError(f"generator {i} has a degenerate region with {len(ring)} vertices")
        if len(set(ring)) != len(ring):
            raise ValueError(
                f"generator {i} has repeated Voronoi vertices: degenerate "
                "(co-circular) configuration; apply Lloyd relaxation first"
            )
        ring_pts = vertices[ring]
        # Reject nearly-coincident vertices (duplicate circumcentres).
        diffs = np.linalg.norm(ring_pts - np.roll(ring_pts, -1, axis=0), axis=-1)
        if np.any(diffs < min_vertex_separation):
            raise ValueError(
                f"generator {i} has Voronoi vertices closer than "
                f"{min_vertex_separation}: degenerate configuration; apply "
                "Lloyd relaxation first"
            )
        if spherical_polygon_area(ring_pts) < 0.0:
            ring = ring[::-1]
        regions.append(ring)
        vertex_degree[ring] += 1

    if not np.all(vertex_degree == 3):
        bad = int(np.count_nonzero(vertex_degree != 3))
        raise ValueError(
            f"{bad} Voronoi vertices are not trivalent; the generator set is "
            "degenerate (co-circular points). Apply Lloyd relaxation first."
        )
    return RawVoronoi(generators=pts, vertices=vertices, regions=regions)
