"""Summation-order perturbations of a mesh.

The paper's hybrid implementation is *not* bitwise identical to the original
serial code: "since all computation kernels are parallelized ... and some
loops are even refactored, the two results are not bit-wise identical"
(Section V-A).  The refactored loops accumulate the same terms in a different
order, perturbing results at round-off level — which Figure 5 then shows to
be harmless.

:func:`rotate_cell_rings` reproduces exactly that effect in a controlled
way: it rotates every cell's CCW edge/vertex ring by ``shift`` positions
(and rebuilds the TRiSK walk tables accordingly), so every gather kernel
adds the same numbers in a rotated order.  The discretization is unchanged;
only floating-point association differs.
"""

from __future__ import annotations

import numpy as np

from .connectivity import Connectivity
from .mesh import Mesh
from .trisk import build_trisk_weights

__all__ = ["rotate_cell_rings"]


def rotate_cell_rings(mesh: Mesh, shift: int = 1) -> Mesh:
    """Return a mesh equal to ``mesh`` with every cell ring rotated.

    The rotation starts each cell's CCW boundary walk ``shift`` corners
    later.  All geometry and point identities are preserved; only the order
    of per-cell (and TRiSK per-edge) summations changes.
    """
    conn = mesh.connectivity
    n_cells, max_edges = conn.n_cells, conn.max_edges

    def rotate_rows(table: np.ndarray) -> np.ndarray:
        out = table.copy()  # padding (FILL or 0.0) is preserved as-is
        for c in range(n_cells):
            n = int(conn.nEdgesOnCell[c])
            k = shift % n
            row = table[c, :n]
            out[c, :n] = np.concatenate([row[k:], row[:k]])
        return out

    new_conn = Connectivity(
        n_cells=n_cells,
        n_edges=conn.n_edges,
        n_vertices=conn.n_vertices,
        max_edges=max_edges,
        nEdgesOnCell=conn.nEdgesOnCell.copy(),
        verticesOnCell=rotate_rows(conn.verticesOnCell),
        edgesOnCell=rotate_rows(conn.edgesOnCell),
        cellsOnCell=rotate_rows(conn.cellsOnCell),
        cellsOnEdge=conn.cellsOnEdge.copy(),
        verticesOnEdge=conn.verticesOnEdge.copy(),
        cellsOnVertex=conn.cellsOnVertex.copy(),
        edgesOnVertex=conn.edgesOnVertex.copy(),
        edgeSignOnCell=rotate_rows(conn.edgeSignOnCell),
        edgeSignOnVertex=conn.edgeSignOnVertex.copy(),
    )
    rotated = Mesh(
        connectivity=new_conn,
        metrics=mesh.metrics,
        trisk=build_trisk_weights(new_conn, mesh.metrics),
        name=f"{mesh.name}+rot{shift}",
        info=dict(mesh.info),
    )
    return rotated
