"""Mesh-quality diagnostics for SCVT meshes.

These are reporting aids (used by examples and by Table III regeneration);
none of the solver kernels depend on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.cvt import centroidality_residual
from .mesh import Mesh

__all__ = ["MeshQuality", "assess_quality"]


@dataclass(frozen=True, eq=False)
class MeshQuality:
    """Summary statistics of a quasi-uniform SCVT mesh."""

    n_cells: int
    n_edges: int
    n_vertices: int
    n_pentagons: int
    n_hexagons: int
    n_other: int
    area_ratio: float  # max(areaCell) / min(areaCell)
    dc_ratio: float  # max(dcEdge) / min(dcEdge)
    mean_resolution_km: float
    centroidality: float  # max |generator - cell centroid| (radians)

    def summary(self) -> str:
        return (
            f"cells={self.n_cells} edges={self.n_edges} vertices={self.n_vertices} "
            f"pent={self.n_pentagons} hex={self.n_hexagons} other={self.n_other} "
            f"area_ratio={self.area_ratio:.3f} dc_ratio={self.dc_ratio:.3f} "
            f"res={self.mean_resolution_km:.1f}km centroidality={self.centroidality:.2e}"
        )


def assess_quality(mesh: Mesh, compute_centroidality: bool = True) -> MeshQuality:
    """Compute quality statistics for ``mesh``.

    ``compute_centroidality=False`` skips the (relatively expensive) extra
    Voronoi pass; the field is then reported as ``nan``.
    """
    degrees = mesh.nEdgesOnCell
    n_pent = int(np.count_nonzero(degrees == 5))
    n_hex = int(np.count_nonzero(degrees == 6))
    n_other = int(mesh.nCells - n_pent - n_hex)
    area = mesh.areaCell
    dc = mesh.dcEdge
    cent = (
        centroidality_residual(mesh.xCell) if compute_centroidality else float("nan")
    )
    return MeshQuality(
        n_cells=mesh.nCells,
        n_edges=mesh.nEdges,
        n_vertices=mesh.nVertices,
        n_pentagons=n_pent,
        n_hexagons=n_hex,
        n_other=n_other,
        area_ratio=float(area.max() / area.min()),
        dc_ratio=float(dc.max() / dc.min()),
        mean_resolution_km=mesh.nominal_resolution_km,
        centroidality=cent,
    )
