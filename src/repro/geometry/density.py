"""Variable-resolution SCVTs: density-weighted Lloyd relaxation.

MPAS's defining capability ("Prediction Across Scales") is the
*multiresolution* SCVT: given a density function rho(x) on the sphere, the
energy-minimizing tessellation concentrates generators where rho is large,
with the local grid spacing scaling as ``rho**(-1/4)`` (Ringler, Ju &
Gunzburger 2008, for d=2: h ~ rho^(-1/(d+2))).

The paper evaluates only quasi-uniform meshes (Table III), but the whole
pattern machinery is resolution-agnostic; this module provides the
refinement substrate so the reproduction covers the "across scales" part of
the model family too.  The test suite runs the shallow-water core on a
regionally-refined mesh and checks stability and conservation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.spatial import SphericalVoronoi

from .sphere import arc_length, normalize, spherical_triangle_area

__all__ = ["DensityFunction", "radial_refinement", "weighted_lloyd_relax"]

DensityFunction = Callable[[np.ndarray], np.ndarray]


def radial_refinement(
    center_lonlat: tuple[float, float],
    inner_radius: float,
    transition_width: float,
    amplification: float,
) -> DensityFunction:
    """Density with a high-resolution disk around ``center_lonlat``.

    ``rho = amplification`` inside ``inner_radius`` (radians), 1 outside,
    with a smooth tanh transition of the given width.  The local spacing
    ratio between the refined and coarse regions is ``amplification**(1/4)``.
    """
    from .sphere import lonlat_to_xyz

    centre = lonlat_to_xyz(np.array(center_lonlat[0]), np.array(center_lonlat[1]))

    def rho(points: np.ndarray) -> np.ndarray:
        r = arc_length(np.asarray(points, dtype=np.float64), centre)
        blend = 0.5 * (1.0 - np.tanh((r - inner_radius) / transition_width))
        return 1.0 + (amplification - 1.0) * blend

    return rho


@dataclass
class WeightedLloydResult:
    points: np.ndarray
    iterations: int
    displacement_history: list[float] = field(default_factory=list)
    converged: bool = False


def _weighted_region_centroid(
    vertices: np.ndarray, density: DensityFunction
) -> np.ndarray:
    """Density-weighted centroid of one Voronoi region (triangle-fan rule).

    Each fan triangle contributes ``area * rho(midpoint) * midpoint``; for
    the smooth, cell-scale-slowly-varying densities used for mesh grading
    this one-point quadrature is the standard choice.
    """
    a = vertices[0]
    b = vertices[1:-1]
    c = vertices[2:]
    w = spherical_triangle_area(a, b, c)
    mids = (a[None, :] + b + c) / 3.0
    mids = mids / np.linalg.norm(mids, axis=1, keepdims=True)
    w = w * density(mids)
    centroid = np.sum(w[:, None] * mids, axis=0)
    if np.sum(w) < 0.0:
        centroid = -centroid
    return normalize(centroid)


def weighted_lloyd_relax(
    points: np.ndarray,
    density: DensityFunction,
    iterations: int = 30,
    tol: float = 1e-10,
) -> WeightedLloydResult:
    """Lloyd iteration with generator updates weighted by ``density``."""
    pts = normalize(np.asarray(points, dtype=np.float64))
    result = WeightedLloydResult(points=pts, iterations=0)
    for it in range(iterations):
        sv = SphericalVoronoi(pts, radius=1.0)
        sv.sort_vertices_of_regions()
        new_pts = np.empty_like(pts)
        for i, region in enumerate(sv.regions):
            new_pts[i] = _weighted_region_centroid(sv.vertices[region], density)
        disp = float(np.max(np.linalg.norm(new_pts - pts, axis=-1)))
        result.displacement_history.append(disp)
        pts = new_pts
        result.iterations = it + 1
        if disp < tol:
            result.converged = True
            break
    result.points = pts
    return result
