"""Vectorized spherical geometry primitives on the unit sphere.

All functions operate on Cartesian coordinates of unit vectors with shape
``(..., 3)`` and are fully vectorized over the leading axes.  Radii other than
one are handled by the callers (metric quantities scale by ``R`` or ``R**2``).

Conventions
-----------
* Longitude ``lon`` in ``[0, 2*pi)``, latitude ``lat`` in ``[-pi/2, pi/2]``.
* A spherical triangle ``(a, b, c)`` has *positive* signed area when its
  vertices wind counter-clockwise as seen from outside the sphere.
* The local tangent basis at ``p`` is ``(east, north)`` with
  ``east = z_hat x p / |z_hat x p|`` and ``north = p x east``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize",
    "arc_length",
    "chord_length",
    "lonlat_to_xyz",
    "xyz_to_lonlat",
    "spherical_triangle_area",
    "spherical_polygon_area",
    "polygon_centroid",
    "arc_midpoint",
    "tangent_basis",
    "rotation_matrix",
    "rotate",
    "tangent_plane_coords",
    "is_ccw",
]


def normalize(v: np.ndarray) -> np.ndarray:
    """Return ``v`` scaled to unit length along the last axis.

    Raises
    ------
    ValueError
        If any vector has (near-)zero norm, which would make the projection
        onto the sphere ill-defined.
    """
    v = np.asarray(v, dtype=np.float64)
    n = np.linalg.norm(v, axis=-1, keepdims=True)
    if np.any(n < 1e-300):
        raise ValueError("cannot normalize zero-length vector")
    return v / n


def arc_length(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Great-circle distance between unit vectors ``a`` and ``b``.

    Uses the ``atan2`` formulation, which is accurate for both nearly
    coincident and nearly antipodal points (unlike ``arccos`` of the dot
    product).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    cross = np.cross(a, b)
    sin_d = np.linalg.norm(cross, axis=-1)
    cos_d = np.sum(a * b, axis=-1)
    return np.arctan2(sin_d, cos_d)


def chord_length(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Straight-line (3D chord) distance between points on the sphere."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.linalg.norm(a - b, axis=-1)


def lonlat_to_xyz(lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
    """Convert longitude/latitude (radians) to unit Cartesian coordinates."""
    lon = np.asarray(lon, dtype=np.float64)
    lat = np.asarray(lat, dtype=np.float64)
    cos_lat = np.cos(lat)
    return np.stack(
        [cos_lat * np.cos(lon), cos_lat * np.sin(lon), np.sin(lat)], axis=-1
    )


def xyz_to_lonlat(p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convert unit Cartesian coordinates to ``(lon, lat)`` in radians.

    Longitude is wrapped into ``[0, 2*pi)`` to match the MPAS convention.
    """
    p = np.asarray(p, dtype=np.float64)
    lon = np.arctan2(p[..., 1], p[..., 0])
    lon = np.where(lon < 0.0, lon + 2.0 * np.pi, lon)
    # Clip guards against |z| marginally exceeding 1 from round-off.
    lat = np.arcsin(np.clip(p[..., 2], -1.0, 1.0))
    return lon, lat


def spherical_triangle_area(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Signed spherical excess of triangle ``(a, b, c)`` on the unit sphere.

    Uses the Van Oosterom & Strackee (1983) formula::

        tan(E / 2) = a . (b x c) / (1 + a.b + b.c + c.a)

    The result is positive for counter-clockwise winding (seen from outside)
    and negative otherwise, which lets polygon areas be assembled as signed
    triangle fans without orientation bookkeeping.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    numer = np.sum(a * np.cross(b, c), axis=-1)
    denom = (
        1.0
        + np.sum(a * b, axis=-1)
        + np.sum(b * c, axis=-1)
        + np.sum(c * a, axis=-1)
    )
    return 2.0 * np.arctan2(numer, denom)


def spherical_polygon_area(vertices: np.ndarray) -> float:
    """Signed area of a single spherical polygon given ordered unit vertices.

    Parameters
    ----------
    vertices : (n, 3) array
        Polygon corners, ordered (either orientation); the sign of the result
        reports the orientation (positive = CCW from outside).
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 2 or vertices.shape[0] < 3:
        raise ValueError("polygon needs at least 3 vertices")
    a = vertices[0]
    b = vertices[1:-1]
    c = vertices[2:]
    return float(np.sum(spherical_triangle_area(a, b, c)))


def polygon_centroid(vertices: np.ndarray) -> np.ndarray:
    """Approximate spherical centroid of a convex spherical polygon.

    Computes the area-weighted average of flat triangle centroids of a fan
    decomposition, projected back to the sphere.  For the small, nearly-planar
    cells of climate-model meshes this approximation is accurate to
    ``O(diam^2)`` and is the standard choice for spherical Lloyd iteration.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    a = vertices[0]
    b = vertices[1:-1]
    c = vertices[2:]
    w = spherical_triangle_area(a, b, c)
    tri_centroids = (a[None, :] + b + c) / 3.0
    centroid = np.sum(w[:, None] * tri_centroids, axis=0)
    # Signed weights make the result orientation-independent up to overall
    # sign: a clockwise ring yields the antipodal direction.  Flip it back so
    # callers may pass rings of either orientation.
    if np.sum(w) < 0.0:
        centroid = -centroid
    return normalize(centroid)


def arc_midpoint(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Midpoint of the minor great-circle arc between ``a`` and ``b``."""
    return normalize(np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64))


def tangent_basis(p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Local unit ``(east, north)`` tangent vectors at point(s) ``p``.

    At the poles the east direction is taken along ``+x`` (the ``lon = 0``
    meridian), matching the limit used by MPAS for ``angleEdge``.
    """
    p = np.asarray(p, dtype=np.float64)
    z_hat = np.zeros_like(p)
    z_hat[..., 2] = 1.0
    east = np.cross(z_hat, p)
    norm = np.linalg.norm(east, axis=-1, keepdims=True)
    polar = norm[..., 0] < 1e-12
    if np.any(polar):
        east = east.copy()
        east[polar] = np.array([1.0, 0.0, 0.0])
        norm = np.linalg.norm(east, axis=-1, keepdims=True)
    east = east / norm
    north = np.cross(p, east)
    return east, north


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix for rotation by ``angle`` about ``axis``."""
    axis = normalize(np.asarray(axis, dtype=np.float64))
    x, y, z = axis
    c, s = np.cos(angle), np.sin(angle)
    k = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    return np.eye(3) + s * k + (1.0 - c) * (k @ k)


def rotate(points: np.ndarray, axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotate points about ``axis`` by ``angle`` (right-hand rule)."""
    mat = rotation_matrix(axis, angle)
    return np.asarray(points, dtype=np.float64) @ mat.T


def tangent_plane_coords(origin: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Project ``points`` into the (east, north) tangent plane at ``origin``.

    Uses gnomonic-like projection scaled by arc length so distances along
    radial directions from the origin are preserved to leading order; used by
    the least-squares derivative fits of the high-order thickness advection.
    Returns an array of shape ``(..., 2)``.
    """
    origin = np.asarray(origin, dtype=np.float64)
    east, north = tangent_basis(origin)
    points = np.asarray(points, dtype=np.float64)
    x = np.sum(points * east, axis=-1)
    y = np.sum(points * north, axis=-1)
    z = np.sum(points * origin, axis=-1)
    # Angle-preserving rescale: (x, y) lie in the tangent plane at distance
    # tan(theta); rescale so |(x, y)| equals the geodesic distance theta.
    rho = np.hypot(x, y)
    theta = np.arctan2(rho, z)
    scale = np.where(rho > 1e-300, theta / np.where(rho > 1e-300, rho, 1.0), 1.0)
    return np.stack([x * scale, y * scale], axis=-1)


def is_ccw(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """True where the triangle ``(a, b, c)`` winds CCW seen from outside."""
    return spherical_triangle_area(a, b, c) > 0.0
