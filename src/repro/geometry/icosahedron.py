"""Icosahedral geodesic point sets used as SCVT generator seeds.

Subdividing the icosahedron ``k`` times yields ``10 * 4**k + 2`` quasi-uniform
points on the sphere; their Voronoi diagram is the classic hexagon-dominant
"soccer ball" mesh with exactly 12 pentagons.  The paper's mesh family
(Table III) corresponds to ``k = 6 .. 9``:

====== ============ ==========
``k``  points       resolution
====== ============ ==========
5      10,242       ~240 km
6      40,962       ~120 km
7      163,842      ~60 km
8      655,362      ~30 km
9      2,621,442    ~15 km
====== ============ ==========

The subdivision here is the standard edge-bisection ("icosphere") scheme with
projection back to the unit sphere after each level.
"""

from __future__ import annotations

import numpy as np

from .sphere import normalize

__all__ = [
    "base_icosahedron",
    "icosahedral_points",
    "icosahedral_count",
    "subdivision_level_for",
    "resolution_km",
]


def base_icosahedron() -> tuple[np.ndarray, np.ndarray]:
    """Vertices and faces of the regular icosahedron inscribed in S^2.

    Returns
    -------
    vertices : (12, 3) float array of unit vectors
    faces : (20, 3) int array of CCW vertex triples (outward orientation)
    """
    phi = (1.0 + np.sqrt(5.0)) / 2.0
    verts = np.array(
        [
            [-1.0, phi, 0.0],
            [1.0, phi, 0.0],
            [-1.0, -phi, 0.0],
            [1.0, -phi, 0.0],
            [0.0, -1.0, phi],
            [0.0, 1.0, phi],
            [0.0, -1.0, -phi],
            [0.0, 1.0, -phi],
            [phi, 0.0, -1.0],
            [phi, 0.0, 1.0],
            [-phi, 0.0, -1.0],
            [-phi, 0.0, 1.0],
        ],
        dtype=np.float64,
    )
    verts = normalize(verts)
    faces = np.array(
        [
            [0, 11, 5],
            [0, 5, 1],
            [0, 1, 7],
            [0, 7, 10],
            [0, 10, 11],
            [1, 5, 9],
            [5, 11, 4],
            [11, 10, 2],
            [10, 7, 6],
            [7, 1, 8],
            [3, 9, 4],
            [3, 4, 2],
            [3, 2, 6],
            [3, 6, 8],
            [3, 8, 9],
            [4, 9, 5],
            [2, 4, 11],
            [6, 2, 10],
            [8, 6, 7],
            [9, 8, 1],
        ],
        dtype=np.int64,
    )
    return verts, faces


def icosahedral_count(level: int) -> int:
    """Number of geodesic points after ``level`` subdivisions."""
    if level < 0:
        raise ValueError("subdivision level must be non-negative")
    return 10 * 4**level + 2


def subdivision_level_for(n_points: int) -> int:
    """Inverse of :func:`icosahedral_count`; raises for non-geodesic counts."""
    level = 0
    while icosahedral_count(level) < n_points:
        level += 1
    if icosahedral_count(level) != n_points:
        raise ValueError(
            f"{n_points} is not an icosahedral count (10 * 4**k + 2)"
        )
    return level


def resolution_km(level: int, radius_m: float = 6_371_220.0) -> float:
    """Nominal grid spacing in km: sqrt(mean cell area) on the given sphere."""
    n = icosahedral_count(level)
    area = 4.0 * np.pi * radius_m**2 / n
    return float(np.sqrt(area) / 1000.0)


def icosahedral_points(level: int) -> np.ndarray:
    """Generate the geodesic point set at the given subdivision level.

    The construction refines each triangular face into four by bisecting all
    edges and re-projecting midpoints onto the sphere.  Points are returned in
    a deterministic order (original vertices first, then midpoints in creation
    order), shape ``(10 * 4**level + 2, 3)``.
    """
    verts, faces = base_icosahedron()
    vert_list = [v for v in verts]
    for _ in range(level):
        midpoint_cache: dict[tuple[int, int], int] = {}

        def midpoint(i: int, j: int) -> int:
            key = (i, j) if i < j else (j, i)
            idx = midpoint_cache.get(key)
            if idx is None:
                m = normalize(vert_list[i] + vert_list[j])
                idx = len(vert_list)
                vert_list.append(m)
                midpoint_cache[key] = idx
            return idx

        new_faces = np.empty((len(faces) * 4, 3), dtype=np.int64)
        for f, (a, b, c) in enumerate(faces):
            ab = midpoint(int(a), int(b))
            bc = midpoint(int(b), int(c))
            ca = midpoint(int(c), int(a))
            new_faces[4 * f + 0] = (a, ab, ca)
            new_faces[4 * f + 1] = (b, bc, ab)
            new_faces[4 * f + 2] = (c, ca, bc)
            new_faces[4 * f + 3] = (ab, bc, ca)
        faces = new_faces
    points = np.asarray(vert_list, dtype=np.float64)
    assert points.shape[0] == icosahedral_count(level)
    return points
