"""Spherical centroidal Voronoi tessellation (SCVT) via Lloyd iteration.

MPAS meshes are SCVTs (Du, Faber & Gunzburger 1999; Ju, Ringler & Gunzburger
2011): point sets whose Voronoi generators coincide with the mass centroids of
their own Voronoi cells.  Starting from icosahedral geodesic seeds (already
nearly centroidal), a few Lloyd sweeps converge to a quasi-uniform SCVT with a
constant density function — the mesh family used throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import SphericalVoronoi

from .sphere import normalize, polygon_centroid

__all__ = ["LloydResult", "lloyd_relax", "centroidality_residual"]


@dataclass
class LloydResult:
    """Outcome of a Lloyd relaxation run.

    Attributes
    ----------
    points : (n, 3) array
        Relaxed generator positions (unit vectors).
    iterations : int
        Number of sweeps actually performed.
    displacement_history : list of float
        Maximum generator movement (radians) per sweep; monotone decrease is
        the practical convergence signal.
    converged : bool
        True when the final displacement fell below the tolerance.
    """

    points: np.ndarray
    iterations: int
    displacement_history: list[float] = field(default_factory=list)
    converged: bool = False


def _region_centroids(sv: SphericalVoronoi) -> np.ndarray:
    """Spherical centroid of every Voronoi region of ``sv``."""
    centroids = np.empty_like(sv.points)
    for i, region in enumerate(sv.regions):
        centroids[i] = polygon_centroid(sv.vertices[region])
    return centroids


def lloyd_relax(
    points: np.ndarray,
    iterations: int = 10,
    tol: float = 1e-10,
) -> LloydResult:
    """Run Lloyd's algorithm on the sphere.

    Each sweep replaces every generator by the centroid of its Voronoi region.
    ``tol`` is an absolute bound (radians) on the largest generator movement.

    Notes
    -----
    With icosahedral seeds the configuration is already a near-fixed-point, so
    a handful of sweeps suffices; this mirrors the quasi-uniform SCVT meshes
    of Table III.  The iteration is deterministic.
    """
    pts = normalize(np.asarray(points, dtype=np.float64))
    result = LloydResult(points=pts, iterations=0)
    for it in range(iterations):
        sv = SphericalVoronoi(pts, radius=1.0)
        sv.sort_vertices_of_regions()
        new_pts = _region_centroids(sv)
        disp = float(np.max(np.linalg.norm(new_pts - pts, axis=-1)))
        result.displacement_history.append(disp)
        pts = new_pts
        result.iterations = it + 1
        if disp < tol:
            result.converged = True
            break
    result.points = pts
    return result


def centroidality_residual(points: np.ndarray) -> float:
    """Largest distance between a generator and its Voronoi-region centroid.

    Zero for an exact SCVT; used by mesh-quality diagnostics and tests.
    """
    pts = normalize(np.asarray(points, dtype=np.float64))
    sv = SphericalVoronoi(pts, radius=1.0)
    sv.sort_vertices_of_regions()
    centroids = _region_centroids(sv)
    return float(np.max(np.linalg.norm(centroids - pts, axis=-1)))
