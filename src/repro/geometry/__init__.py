"""Spherical geometry substrate: primitives, geodesic seeds, SCVT relaxation."""

from .sphere import (
    arc_length,
    arc_midpoint,
    chord_length,
    is_ccw,
    lonlat_to_xyz,
    normalize,
    polygon_centroid,
    rotate,
    rotation_matrix,
    spherical_polygon_area,
    spherical_triangle_area,
    tangent_basis,
    tangent_plane_coords,
    xyz_to_lonlat,
)
from .icosahedron import (
    base_icosahedron,
    icosahedral_count,
    icosahedral_points,
    resolution_km,
    subdivision_level_for,
)
from .cvt import LloydResult, centroidality_residual, lloyd_relax
from .density import (
    DensityFunction,
    radial_refinement,
    weighted_lloyd_relax,
)

__all__ = [
    "arc_length",
    "arc_midpoint",
    "chord_length",
    "is_ccw",
    "lonlat_to_xyz",
    "normalize",
    "polygon_centroid",
    "rotate",
    "rotation_matrix",
    "spherical_polygon_area",
    "spherical_triangle_area",
    "tangent_basis",
    "tangent_plane_coords",
    "xyz_to_lonlat",
    "base_icosahedron",
    "icosahedral_count",
    "icosahedral_points",
    "resolution_km",
    "subdivision_level_for",
    "LloydResult",
    "DensityFunction",
    "radial_refinement",
    "weighted_lloyd_relax",
    "centroidality_residual",
    "lloyd_relax",
]
