"""Engine CLI: end-to-end backend smoke test.

Run it::

    python -m repro.engine --selftest

The selftest builds the default registry, runs one RK-4 step of the
Galewsky jet on a small mesh under every registered backend, and checks the
resulting states agree with the ``numpy`` backend to tight relative
tolerance.  Exit code 0 on success.
"""

from __future__ import annotations

import argparse
import sys

from .registry import BACKENDS, default_registry

#: Relative agreement required between any backend and ``numpy`` after one
#: full RK-4 step (the acceptance threshold of the backend refactor).
SELFTEST_RTOL = 1.0e-12


def _step_state(level: int, backend: str):
    """One RK-4 step of the Galewsky jet under ``backend``; returns (h, u)."""
    from ..constants import GRAVITY
    from ..mesh.cache import cached_mesh
    from ..swm.config import SWConfig
    from ..swm.galewsky import galewsky_jet
    from ..swm.model import suggested_dt
    from ..swm.testcases import initialize
    from ..swm.timestep import RK4Integrator

    mesh = cached_mesh(level)
    case = galewsky_jet()
    config = SWConfig(
        dt=suggested_dt(mesh, case, GRAVITY, cfl=0.5),
        thickness_adv_order=4,
        backend=backend,
    )
    state, b_cell = initialize(mesh, case)
    f_vertex = config.coriolis(mesh.metrics.latVertex)
    integ = RK4Integrator(mesh, config, b_cell, f_vertex)
    diag = integ.diagnostics_for(state)
    result = integ.step(state, diag)
    return result.state.h, result.state.u


def _selftest(level: int) -> int:
    import numpy as np

    reg = default_registry()
    missing = [b for b in BACKENDS if b not in reg.backends()]
    if missing:
        print(f"engine selftest FAILED: backends not registered: {missing}")
        return 1
    print(
        f"registry: {len(reg.ops())} operators, "
        f"{len(reg.kernels())} Algorithm-1 kernels, "
        f"backends {', '.join(reg.backends())}, "
        f"labels {', '.join(sorted(reg.labels()))}"
    )

    states = {b: _step_state(level, b) for b in BACKENDS}
    h_ref, u_ref = states["numpy"]
    h_scale = float(np.max(np.abs(h_ref)))
    u_scale = float(np.max(np.abs(u_ref)))
    failed = False
    for backend in BACKENDS:
        h, u = states[backend]
        dh = float(np.max(np.abs(h - h_ref))) / h_scale
        du = float(np.max(np.abs(u - u_ref))) / u_scale
        ok = dh <= SELFTEST_RTOL and du <= SELFTEST_RTOL
        failed = failed or not ok
        print(
            f"  {backend:8s} vs numpy after 1 RK-4 step: "
            f"|dh|/|h| = {dh:.3e}, |du|/|u| = {du:.3e} "
            f"[{'ok' if ok else 'FAIL'}]"
        )
    if failed:
        print(f"engine selftest FAILED: backends disagree beyond {SELFTEST_RTOL:g}")
        return 1
    print(f"engine selftest OK: {len(BACKENDS)} backends agree to {SELFTEST_RTOL:g}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Kernel-registry execution engine utilities.",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="one RK-4 step per backend on a small mesh; states must agree",
    )
    parser.add_argument(
        "--level",
        type=int,
        default=2,
        help="icosahedral mesh level for the selftest (default 2 = 162 cells)",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return _selftest(args.level)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
