"""Registration of the four built-in backends.

One declarative table (:data:`OPS`) lists every stencil operator of the
model with its Table I attribution and gather stencil; four registration
passes then attach implementations:

* ``numpy`` — the production gather operators (:mod:`repro.swm.operators`,
  plus the A4 gather of :mod:`repro.swm.reconstruct` and the fused C1,C2
  sweep of :mod:`repro.swm.advection`).  Complete by construction; also the
  fallback for the other backends.
* ``scatter`` — the Algorithm 2 / loop-order references of
  :mod:`repro.swm.reference`.  Semantically the "original code" the paper
  refactors away from; registered for correctness cross-checks and as the
  baseline in backend benchmarks.
* ``codegen`` — kernels compiled from the declarative
  :data:`~repro.patterns.codegen.BUILTIN_SPECS`.  Single-field specs map
   one-to-one; the two multi-field operators (``flux_divergence``,
  ``coriolis_edge_term``) are *compositions* of compiled kernels with
  point-local pre/post arithmetic — the same decomposition the Table I
  catalog uses to price them.
* ``sparse`` — fixed-sparsity stencils compiled once per mesh into
  ``scipy.sparse`` CSR operators and applied as matvecs
  (:mod:`repro.engine.sparse`), memoized in a two-level in-memory +
  versioned on-disk operator cache.

Backends other than ``numpy`` are intentionally partial: an operator they
do not register runs on the counted ``numpy`` fallback.  Which gaps are
*intentional* is declared in :data:`INTENTIONAL_FALLBACKS`, and a
lint-style test asserts no op falls back silently — a newly added operator
must either implement every backend or be whitelisted there.

The Algorithm-1 kernel drivers are registered by name alongside, so the
integrator and the CLI resolve them through the registry too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..patterns.codegen import BUILTIN_SPECS, compile_kernel
from ..patterns.pattern import PatternKind
from .registry import KernelRegistry

__all__ = [
    "OPS",
    "OpSpec",
    "INTENTIONAL_FALLBACKS",
    "build_default_registry",
]


#: backend -> op names that *deliberately* run on the counted ``numpy``
#: fallback under that backend.  ``scatter``'s loop references never got a
#: fused C sweep; ``codegen``'s declarative specs cannot express the
#: vector-valued reconstruction, the fused C sweep, or the F1 kite gather;
#: ``sparse`` excludes the one genuinely non-linear stencil — B1 couples
#: each edge's own PV with every gathered neighbour multiplicatively, so no
#: input-independent matrix computes it in a single matvec.  The registry
#: lint test enforces that every other (op, backend) pair is registered.
INTENTIONAL_FALLBACKS: dict[str, frozenset[str]] = {
    "numpy": frozenset(),
    "scatter": frozenset({"d2fdx2"}),
    "codegen": frozenset(
        {"velocity_reconstruction", "d2fdx2", "cell_from_vertices_kite"}
    ),
    "sparse": frozenset({"coriolis_edge_term"}),
}


@dataclass(frozen=True)
class OpSpec:
    """Static description of one registered operator (backend-independent)."""

    op: str
    pattern: str | None  # Table I label(s); None for helper operators
    kind: str  # stencil shape letter A-H
    stencil_attr: str | None  # gather table: "conn.X" / "tri.X"
    no_split: bool = False


#: Every stencil operator the model dispatches, in Table I order.
OPS: tuple[OpSpec, ...] = (
    OpSpec("flux_divergence", "A1", "A", "conn.edgesOnCell"),
    OpSpec("kinetic_energy", "A2", "A", "conn.edgesOnCell"),
    OpSpec("cell_divergence", "A3", "A", "conn.edgesOnCell"),
    OpSpec("velocity_reconstruction", "A4", "A", "conn.edgesOnCell"),
    OpSpec("coriolis_edge_term", "B1", "B", "tri.edgesOnEdge"),
    OpSpec("tangential_velocity", "B2", "B", "tri.edgesOnEdge"),
    # Fused C1,C2 sweep: tuple-valued, so the split executor refuses it.
    OpSpec("d2fdx2", "C1,C2", "C", None, no_split=True),
    OpSpec("cell_to_edge_mean", "D1", "D", "conn.cellsOnEdge"),
    OpSpec("vertex_from_cells_kite", "E1", "E", "conn.cellsOnVertex"),
    OpSpec("cell_from_vertices_kite", "F1", "F", "conn.verticesOnCell"),
    OpSpec("vertex_to_edge_mean", "G1", "G", "conn.verticesOnEdge"),
    OpSpec("vertex_curl", "H1", "H", "conn.edgesOnVertex"),
    # Helper operators: gradients running inside the B1/G1 spans.
    OpSpec("edge_gradient_of_cell", None, "D", "conn.cellsOnEdge"),
    OpSpec("edge_gradient_of_vertex", None, "G", "conn.verticesOnEdge"),
)


def _stencil_fn(attr: str) -> Callable:
    group, name = attr.split(".")

    def stencil(mesh):
        owner = mesh.connectivity if group == "conn" else mesh.trisk
        return getattr(owner, name)

    return stencil


def _op_meta(spec: OpSpec) -> dict:
    kind = PatternKind[spec.kind]
    return {
        "pattern": spec.pattern,
        "kind": spec.kind,
        "kernel": _kernel_of_label(spec.pattern),
        "input_point": kind.input,
        "output_point": kind.output,
        "stencil": _stencil_fn(spec.stencil_attr) if spec.stencil_attr else None,
        "no_split": spec.no_split,
    }


def _kernel_of_label(pattern: str | None) -> str | None:
    if pattern is None:
        return None
    from ..patterns.catalog import build_catalog

    label = pattern.split(",")[0]
    for inst in build_catalog(None):
        if inst.label == label:
            return inst.kernel
    raise KeyError(f"pattern {pattern!r} not in the Table I catalog")


# ------------------------------------------------------------------- numpy
def _register_numpy(reg: KernelRegistry, meta: dict) -> None:
    from ..swm import operators as ops
    from ..swm.advection import d2fdx2_raw
    from ..swm.reconstruct import reconstruct_cell_vectors

    impls = {
        "flux_divergence": ops.flux_divergence,
        "kinetic_energy": ops.cell_kinetic_energy,
        "cell_divergence": ops.cell_divergence,
        "velocity_reconstruction": reconstruct_cell_vectors,
        "coriolis_edge_term": ops.coriolis_edge_term,
        "tangential_velocity": ops.tangential_velocity,
        "d2fdx2": d2fdx2_raw,
        "cell_to_edge_mean": ops.cell_to_edge_mean,
        "vertex_from_cells_kite": ops.vertex_from_cells_kite,
        "cell_from_vertices_kite": ops.cell_from_vertices_kite,
        "vertex_to_edge_mean": ops.vertex_to_edge_mean,
        "vertex_curl": ops.vertex_curl,
        "edge_gradient_of_cell": ops.edge_gradient_of_cell,
        "edge_gradient_of_vertex": ops.edge_gradient_of_vertex,
    }
    for op, fn in impls.items():
        reg.register(op, "numpy", fn, **meta[op])


# ----------------------------------------------------------------- scatter
def _register_scatter(reg: KernelRegistry) -> None:
    from ..swm import reference as ref

    impls = {
        "flux_divergence": ref.flux_divergence_scatter,
        "kinetic_energy": ref.cell_kinetic_energy_loop,
        "cell_divergence": ref.cell_divergence_scatter,
        "velocity_reconstruction": ref.velocity_reconstruction_loop,
        "coriolis_edge_term": ref.coriolis_edge_term_loop,
        "tangential_velocity": ref.tangential_velocity_loop,
        "cell_to_edge_mean": ref.cell_to_edge_mean_loop,
        "vertex_from_cells_kite": ref.vertex_from_cells_kite_loop,
        "cell_from_vertices_kite": ref.cell_from_vertices_kite_loop,
        "vertex_to_edge_mean": ref.vertex_to_edge_mean_loop,
        "vertex_curl": ref.vertex_curl_loop,
        "edge_gradient_of_cell": ref.edge_gradient_of_cell_loop,
        "edge_gradient_of_vertex": ref.edge_gradient_of_vertex_loop,
    }
    for op, fn in impls.items():
        reg.register(op, "scatter", fn)


# ----------------------------------------------------------------- codegen
def _register_codegen(reg: KernelRegistry) -> None:
    compiled = {name: compile_kernel(spec) for name, spec in BUILTIN_SPECS.items()}

    # Single-field specs map directly onto operators.
    direct = {
        "kinetic_energy": "kinetic_energy",
        "cell_divergence": "divergence",
        "tangential_velocity": "tangential_velocity",
        "cell_to_edge_mean": "edge_mean_of_cells",
        "vertex_from_cells_kite": "h_vertex",
        "vertex_to_edge_mean": "edge_mean_of_vertices",
        "vertex_curl": "vorticity",
        "edge_gradient_of_cell": "edge_gradient_of_cell",
        "edge_gradient_of_vertex": "edge_gradient_of_vertex",
    }
    for op, spec_name in direct.items():
        reg.register(op, "codegen", compiled[spec_name])

    # Multi-field operators: compositions of compiled kernels with
    # point-local arithmetic (the X-part the catalog prices separately).
    divergence = compiled["divergence"]
    trisk = compiled["tangential_velocity"]

    def flux_divergence(mesh, u_edge, h_edge):
        return divergence(mesh, u_edge * h_edge)

    def coriolis_edge_term(mesh, u_edge, h_edge, pv_edge):
        # sum_j w_j f_j 0.5 (q_e + q_j) = 0.5 q_e K(f) + 0.5 K(f q),
        # with K the compiled TRiSK stencil and f = u h the edge flux.
        flux = u_edge * h_edge
        return 0.5 * (pv_edge * trisk(mesh, flux) + trisk(mesh, flux * pv_edge))

    reg.register("flux_divergence", "codegen", flux_divergence)
    reg.register("coriolis_edge_term", "codegen", coriolis_edge_term)


# ------------------------------------------------------------------ sparse
def _register_sparse(reg: KernelRegistry) -> None:
    from .sparse import build_sparse_impls

    for op, fn in build_sparse_impls().items():
        reg.register(op, "sparse", fn)


# ------------------------------------------------- Algorithm-1 kernel names
def _register_kernels(reg: KernelRegistry) -> None:
    from ..swm.boundary import enforce_boundary_edge
    from ..swm.diagnostics import compute_solve_diagnostics
    from ..swm.reconstruct import mpas_reconstruct
    from ..swm.tendencies import compute_tend
    from ..swm.timestep import accumulative_update, compute_next_substep_state

    reg.register_kernel("compute_tend", compute_tend)
    reg.register_kernel("enforce_boundary_edge", enforce_boundary_edge)
    reg.register_kernel("compute_next_substep_state", compute_next_substep_state)
    reg.register_kernel("compute_solve_diagnostics", compute_solve_diagnostics)
    reg.register_kernel("accumulative_update", accumulative_update)
    reg.register_kernel("mpas_reconstruct", mpas_reconstruct)


def build_default_registry() -> KernelRegistry:
    """A fresh registry with all four backends and kernel names registered."""
    reg = KernelRegistry()
    meta = {spec.op: _op_meta(spec) for spec in OPS}
    _register_numpy(reg, meta)
    _register_scatter(reg)
    _register_codegen(reg)
    _register_sparse(reg)
    _register_kernels(reg)
    return reg
