"""The precompiled sparse-operator backend (``backend="sparse"``).

Table I reduces every non-local computation of the RK loop to eight
fixed-sparsity stencil shapes, and the Algorithm-3 gather refactoring makes
each of them a *linear* map from the gathered input field to the output
field — i.e. a sparse matrix–vector product with an operator that depends
only on the mesh.  This module takes that observation literally: every
compilable registry operator is compiled **once per mesh** into a
``scipy.sparse`` CSR matrix carrying the same weights the ``numpy`` gather
backend uses (label matrices, inverse areas, TRiSK weights), and a dispatch
is then a single ``M @ x`` — no per-call index gathers, no ``(n, lanes)``
temporaries.

Compilability classification
----------------------------
``matvec``
    Pure linear stencils: one CSR matvec (11 of the 14 registry ops,
    including the block-row ``velocity_reconstruction`` and the two-row
    ``d2fdx2`` sweep).
``pre``
    Bilinear stencils whose nonlinearity is *point-local on the input
    side*: an elementwise product followed by a matvec
    (``flux_divergence`` = divergence of ``u*h``, ``kinetic_energy`` =
    weighted sum of ``u*u``).
``fallback``
    Genuinely non-linear stencils: ``coriolis_edge_term`` couples each
    output edge's own PV with every gathered neighbour multiplicatively,
    so no input-independent matrix computes it in one matvec.  It carries
    no ``sparse`` registration and runs on the counted ``numpy`` fallback
    (``engine.fallback`` metric), keeping the backend's contract — *the
    operator is the matrix* — honest.

The operator cache
------------------
Compiled operators are memoized at two levels:

* **memory** — a per-process ``WeakKeyDictionary`` keyed by the mesh
  object, so repeated dispatches (and every RK substage) reuse the same
  CSR instance and the cache dies with the mesh;
* **disk** — one versioned ``.npz`` per ``(mesh, operator)`` under
  ``cache_dir()/operators/`` (the same root as the mesh cache of
  :mod:`repro.mesh.cache`), keyed by a content fingerprint of the mesh
  arrays the compilers read.  Files carry
  :data:`OPERATOR_CACHE_VERSION`; a stale or unstamped file is recompiled
  and overwritten, never loaded blindly, and a mesh edit changes the
  fingerprint so old operators can never be served for a new mesh.

Disk persistence is automatic only for meshes with a persistent identity
of their own (built by :func:`repro.mesh.cache.cached_mesh`, which marks
them ``info["disk_cached"]``); ad-hoc meshes — random test SCVTs, the
rank-local submeshes of the process pool — compile into memory only,
mirroring the mesh cache's own policy.  Pool workers therefore rebuild
their operators after :meth:`KernelRegistry.__reduce__` reconstructs the
registry, hitting the disk cache when the mesh has one.
"""

from __future__ import annotations

import hashlib
import os
import weakref
from pathlib import Path
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..mesh.cache import cache_dir
from ..mesh.mesh import Mesh
from ..resilience.integrity import checked_load, seal

__all__ = [
    "OPERATOR_CACHE_VERSION",
    "SPARSE_FALLBACK_OPS",
    "classify_op",
    "mesh_fingerprint",
    "operator_cache_path",
    "sparse_operator",
    "clear_operator_memory_cache",
    "build_sparse_impls",
]

#: Format version of the on-disk operator archives.  Bump whenever the
#: compiled representation changes; mismatched files are recompiled.
OPERATOR_CACHE_VERSION = 1

#: Registry ops that stay on the counted ``numpy`` fallback under
#: ``backend="sparse"`` (see the module docstring's classification).
SPARSE_FALLBACK_OPS = frozenset({"coriolis_edge_term"})


# ----------------------------------------------------------------- compilers
def _lanes_csr(n_in, cols, weights, valid=None) -> sp.csr_matrix:
    """CSR operator from a padded gather table.

    ``cols``/``weights`` are ``(n_out, lanes)`` arrays (the Algorithm-4
    label-matrix form: padded lanes clamped to column 0 with weight 0);
    ``valid`` masks the live lanes.

    The CSR arrays are assembled directly (never through COO, whose
    ``tocsr`` canonicalizes) so each row stores its entries in **lane
    order**, not sorted by column.  CSR matvec accumulates each row
    sequentially in storage order, so a row's floating-point summation
    order is the lane order — invariant under the pool's rank-local
    renumbering, which keeps a decomposed run bitwise identical to the
    serial one (a column-sorted matrix would permute the sum when local
    column ids reorder).  Duplicate ``(row, col)`` pairs are kept and
    accumulate in the matvec, matching the gather semantics exactly.
    """
    cols = np.asarray(cols)
    if valid is None:
        valid = np.ones(cols.shape, dtype=bool)
    return _rows_csr(cols, np.broadcast_to(weights, cols.shape), valid, n_in)


def _rows_csr(cols, weights, valid, n_in) -> sp.csr_matrix:
    """Non-canonical CSR from ``(..., lanes)`` tables, flattened row-major.

    Leading axes are flattened into matrix rows (row-major, so a
    ``(n, 3, lanes)`` block table yields rows ``3c + i``); the last axis is
    the per-row lane order, preserved verbatim in storage.
    """
    lanes = cols.shape[-1]
    cols2 = cols.reshape(-1, lanes)
    valid2 = valid.reshape(-1, lanes)
    counts = np.count_nonzero(valid2, axis=1)
    indptr = np.zeros(cols2.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    m = sp.csr_matrix(
        (weights.reshape(-1, lanes)[valid2], cols2[valid2], indptr),
        shape=(cols2.shape[0], n_in),
    )
    return m


def _compile_cell_divergence(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    valid = mesh.connectivity.edgesOnCell >= 0
    return _lanes_csr(
        mesh.nEdges, p.eoc_safe, p.sign_dv * p.inv_area_cell[:, None], valid
    )


def _compile_kinetic_energy(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    valid = mesh.connectivity.edgesOnCell >= 0
    return _lanes_csr(
        mesh.nEdges, p.eoc_safe, p.ke_weight * p.inv_area_cell[:, None], valid
    )


def _compile_vertex_curl(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    return _lanes_csr(mesh.nEdges, p.eov, p.sign_dc * p.inv_area_tri[:, None])


def _compile_tangential_velocity(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    valid = mesh.trisk.edgesOnEdge >= 0
    return _lanes_csr(mesh.nEdges, p.eoe_safe, p.woe, valid)


def _compile_cell_to_edge_mean(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    cols = np.stack([p.c0, p.c1], axis=1)
    weights = np.full(cols.shape, 0.5)
    return _lanes_csr(mesh.nCells, cols, weights)


def _compile_vertex_to_edge_mean(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    cols = np.stack([p.v0, p.v1], axis=1)
    weights = np.full(cols.shape, 0.5)
    return _lanes_csr(mesh.nVertices, cols, weights)


def _compile_edge_gradient_of_cell(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    cols = np.stack([p.c0, p.c1], axis=1)
    weights = np.stack([-p.inv_dc, p.inv_dc], axis=1)
    return _lanes_csr(mesh.nCells, cols, weights)


def _compile_edge_gradient_of_vertex(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    cols = np.stack([p.v0, p.v1], axis=1)
    weights = np.stack([-p.inv_dv, p.inv_dv], axis=1)
    return _lanes_csr(mesh.nVertices, cols, weights)


def _compile_vertex_from_cells_kite(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    return _lanes_csr(mesh.nCells, p.cov, p.kite * p.inv_area_tri[:, None])


def _compile_cell_from_vertices_kite(mesh: Mesh) -> sp.csr_matrix:
    from ..swm.operators import plan_for

    p = plan_for(mesh)
    valid = mesh.connectivity.verticesOnCell >= 0
    return _lanes_csr(
        mesh.nVertices, p.voc_safe, p.kite_on_cell * p.inv_area_cell[:, None], valid
    )


def _compile_velocity_reconstruction(mesh: Mesh) -> sp.csr_matrix:
    """Block-row operator: rows ``3c + i`` give component ``i`` at cell ``c``."""
    from ..swm.reconstruct import reconstruction_matrices

    conn = mesh.connectivity
    mats = reconstruction_matrices(mesh)  # (nCells, 3, maxEdges)
    n, lanes = conn.n_cells, conn.max_edges
    eoc = conn.edgesOnCell
    valid = np.broadcast_to((eoc >= 0)[:, None, :], (n, 3, lanes))
    cols = np.broadcast_to(np.where(eoc >= 0, eoc, 0)[:, None, :], (n, 3, lanes))
    return _rows_csr(cols, mats, valid, conn.n_edges)


def _compile_d2fdx2(mesh: Mesh) -> sp.csr_matrix:
    """Two-row operator: rows ``2e + s`` give side ``s`` of edge ``e``."""
    from ..swm.advection import advection_coefficients

    coeffs = advection_coefficients(mesh)
    # Padded entries carry weight 0 on column 0; keeping them is harmless
    # (they accumulate in the matvec), so no validity mask is needed.
    valid = np.ones(coeffs.cells.shape, dtype=bool)
    return _rows_csr(coeffs.cells, coeffs.weights, valid, mesh.nCells)


#: operator-matrix name -> compiler.  ``flux_divergence`` reuses the
#: ``cell_divergence`` matrix (it is the divergence of the point-local
#: product ``u*h``), so it has no entry of its own.
_COMPILERS: dict[str, Callable[[Mesh], sp.csr_matrix]] = {
    "cell_divergence": _compile_cell_divergence,
    "kinetic_energy": _compile_kinetic_energy,
    "vertex_curl": _compile_vertex_curl,
    "tangential_velocity": _compile_tangential_velocity,
    "cell_to_edge_mean": _compile_cell_to_edge_mean,
    "vertex_to_edge_mean": _compile_vertex_to_edge_mean,
    "edge_gradient_of_cell": _compile_edge_gradient_of_cell,
    "edge_gradient_of_vertex": _compile_edge_gradient_of_vertex,
    "vertex_from_cells_kite": _compile_vertex_from_cells_kite,
    "cell_from_vertices_kite": _compile_cell_from_vertices_kite,
    "velocity_reconstruction": _compile_velocity_reconstruction,
    "d2fdx2": _compile_d2fdx2,
}


def classify_op(op: str) -> str:
    """``"matvec"``, ``"pre"`` or ``"fallback"`` for a registry op name."""
    if op in SPARSE_FALLBACK_OPS:
        return "fallback"
    if op in ("flux_divergence", "kinetic_energy"):
        return "pre"
    if op in _COMPILERS:
        return "matvec"
    raise KeyError(f"unknown sparse classification for operator {op!r}")


# --------------------------------------------------------------------- cache
_MEMORY_OPS: "weakref.WeakKeyDictionary[Mesh, dict[str, sp.csr_matrix]]" = (
    weakref.WeakKeyDictionary()
)
_FINGERPRINTS: "weakref.WeakKeyDictionary[Mesh, str]" = weakref.WeakKeyDictionary()

#: Mesh arrays the compilers (directly or through their weight tables) read;
#: the fingerprint hashes exactly these, so any edit that could change a
#: compiled operator also changes its cache key.
_FINGERPRINT_ARRAYS = (
    "edgesOnCell",
    "cellsOnCell",
    "cellsOnEdge",
    "verticesOnEdge",
    "cellsOnVertex",
    "verticesOnCell",
    "edgesOnVertex",
    "edgeSignOnCell",
    "edgeSignOnVertex",
    "edgesOnEdge",
    "weightsOnEdge",
    "areaCell",
    "areaTriangle",
    "kiteAreasOnVertex",
    "dcEdge",
    "dvEdge",
    "edgeNormal",
    "xCell",
)


def mesh_fingerprint(mesh: Mesh) -> str:
    """Content hash of the mesh arrays the operator compilers consume."""
    digest = _FINGERPRINTS.get(mesh)
    if digest is not None:
        return digest
    h = hashlib.sha256()
    h.update(np.float64(mesh.radius).tobytes())
    for name in _FINGERPRINT_ARRAYS:
        arr = np.ascontiguousarray(getattr(mesh, name))
        h.update(name.encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    digest = h.hexdigest()[:20]
    _FINGERPRINTS[mesh] = digest
    return digest


def operator_cache_path(mesh: Mesh, op: str) -> Path:
    """On-disk archive for one compiled ``(mesh, operator)`` pair."""
    root = cache_dir() / "operators"
    root.mkdir(parents=True, exist_ok=True)
    return root / f"{mesh_fingerprint(mesh)}_{op}.npz"


def clear_operator_memory_cache() -> None:
    """Drop in-process compiled operators (tests of the cache itself)."""
    _MEMORY_OPS.clear()


def _load_operator(path: Path, fingerprint: str) -> sp.csr_matrix | None:
    """Load one archive; ``None`` on a stale version/fingerprint (rebuild in
    place) *or* on corruption — a damaged archive is quarantined by the
    integrity layer (``resilience.cache.quarantined`` tagged
    ``kind=operator``), never raised to the dispatch path."""

    def read(p: Path) -> sp.csr_matrix | None:
        with np.load(p) as d:
            if "format_version" not in d.files:
                return None
            if int(d["format_version"]) != OPERATOR_CACHE_VERSION:
                return None
            if str(d["fingerprint"]) != fingerprint:
                return None
            return sp.csr_matrix(
                (d["data"], d["indices"], d["indptr"]), shape=tuple(d["shape"])
            )

    return checked_load(path, read, kind="operator")


def _save_operator(path: Path, fingerprint: str, m: sp.csr_matrix) -> None:
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(
        tmp,
        format_version=np.array(OPERATOR_CACHE_VERSION),
        fingerprint=np.array(fingerprint),
        data=m.data,
        indices=m.indices,
        indptr=m.indptr,
        shape=np.array(m.shape),
    )
    os.replace(tmp, path)
    seal(path)


def sparse_operator(
    mesh: Mesh, op: str, use_disk: bool | None = None
) -> sp.csr_matrix:
    """The compiled CSR operator of ``op`` on ``mesh``, built at most once.

    ``use_disk=None`` (the default) persists to disk only for meshes the
    mesh cache marked as disk-backed (``mesh.info["disk_cached"]``); pass
    ``True``/``False`` to force either policy.  Memory memoization always
    applies, so repeated dispatches return the same CSR instance.
    """
    ops = _MEMORY_OPS.get(mesh)
    if ops is None:
        ops = {}
        _MEMORY_OPS[mesh] = ops
    m = ops.get(op)
    if m is not None:
        return m
    if op not in _COMPILERS:
        raise KeyError(
            f"operator {op!r} has no sparse compiler; "
            f"compilable: {sorted(_COMPILERS)}"
        )
    if use_disk is None:
        # Duck-typed meshes (the pool's rank-local LocalMesh) carry no
        # ``info`` dict and never persist: their operators are memory-only.
        info = getattr(mesh, "info", None)
        use_disk = bool(info.get("disk_cached")) if info is not None else False
    path = fingerprint = None
    if use_disk:
        fingerprint = mesh_fingerprint(mesh)
        path = operator_cache_path(mesh, op)
        if path.exists():
            m = _load_operator(path, fingerprint)
    if m is None:
        m = _COMPILERS[op](mesh)
        if use_disk:
            _save_operator(path, fingerprint, m)
    ops[op] = m
    return m


# ----------------------------------------------------------- backend impls
class CompiledOp:
    """A registered ``sparse``-backend implementation: matvec of a cached CSR.

    ``pre`` folds point-local input arithmetic (``u*h``, ``u*u``) before the
    matvec; ``post`` reshapes block-row outputs.  Instances are plain
    callables with the registry signature ``fn(mesh, *fields)``.
    """

    def __init__(self, op: str, matrix_op: str, pre=None, post=None):
        self.op = op
        self.matrix_op = matrix_op
        self.pre = pre
        self.post = post
        self.__name__ = f"sparse_{op}"

    def operator(self, mesh: Mesh) -> sp.csr_matrix:
        return sparse_operator(mesh, self.matrix_op)

    def _vec(self, fields):
        return self.pre(*fields) if self.pre is not None else fields[0]

    def __call__(self, mesh: Mesh, *fields):
        y = self.operator(mesh) @ self._vec(fields)
        return self.post(y) if self.post is not None else y


class SliceableOp(CompiledOp):
    """A :class:`CompiledOp` the split executor can row-slice.

    ``apply_rows`` computes only the output rows in ``rows`` (a slice over
    output *points*) by slicing the CSR's rows before the matvec.  CSR
    matvec processes each row independently, so ``M[rows] @ x`` is bitwise
    identical to ``(M @ x)[rows]`` — the boundary-band reconciliation of
    :mod:`repro.engine.split` stays bitwise-stable while the inactive
    device's rows are never computed.  ``block`` maps output points to
    matrix rows (3 for the vector-valued reconstruction).
    """

    def __init__(self, op: str, matrix_op: str, pre=None, post=None, block: int = 1):
        super().__init__(op, matrix_op, pre=pre, post=post)
        self.block = block

    def apply_rows(self, mesh: Mesh, fields, rows: slice):
        m = self.operator(mesh)
        sub = m[rows.start * self.block : rows.stop * self.block]
        y = sub @ self._vec(fields)
        return self.post(y) if self.post is not None else y


def _pair(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    # A 2-D y is a batched (2n, N) member block: keep the member axis last.
    d2 = y.reshape(-1, 2) if y.ndim == 1 else y.reshape(-1, 2, y.shape[1])
    return np.ascontiguousarray(d2[:, 0]), np.ascontiguousarray(d2[:, 1])


def _triples(y: np.ndarray) -> np.ndarray:
    # Block rows 3c + i -> component i of cell c; a 2-D y is a batched
    # (3n, N) member block reshaped to (n, 3, N).
    return y.reshape(-1, 3) if y.ndim == 1 else y.reshape(-1, 3, y.shape[1])


def build_sparse_impls() -> dict[str, Callable]:
    """Backend implementations for every sparse-compilable registry op."""
    impls: dict[str, Callable] = {}
    for op in (
        "cell_divergence",
        "vertex_curl",
        "tangential_velocity",
        "cell_to_edge_mean",
        "vertex_to_edge_mean",
        "edge_gradient_of_cell",
        "edge_gradient_of_vertex",
        "vertex_from_cells_kite",
        "cell_from_vertices_kite",
    ):
        impls[op] = SliceableOp(op, op)
    impls["flux_divergence"] = SliceableOp(
        "flux_divergence", "cell_divergence", pre=lambda u, h: u * h
    )
    impls["kinetic_energy"] = SliceableOp(
        "kinetic_energy", "kinetic_energy", pre=lambda u: u * u
    )
    impls["velocity_reconstruction"] = SliceableOp(
        "velocity_reconstruction",
        "velocity_reconstruction",
        post=_triples,
        block=3,
    )
    # Tuple-valued (and no_split in the registry): plain CompiledOp.
    impls["d2fdx2"] = CompiledOp("d2fdx2", "d2fdx2", post=_pair)
    return impls
